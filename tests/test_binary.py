"""Tests for codegen, object encoding, the VM, and the decompiler."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.binary.codegen import CodegenError, compile_module
from repro.binary.decompiler import decompile, decompile_bytes
from repro.binary.isa import BinaryProgram, MachineInstr
from repro.binary.vm import VirtualMachine, VMError, run_binary
from repro.ir.lowering import lower_program
from repro.ir.passes import optimize
from repro.ir.verifier import verify_module
from repro.lang.generator import LANGUAGES, SolutionGenerator
from repro.lang.interp import interpret
from repro.lang.minic import parse_minic
from repro.lang.tasks import TASK_REGISTRY

GEN = SolutionGenerator(seed=99)


def _binary(src, level="O0", style="clang"):
    mod = lower_program(parse_minic(src))
    optimize(mod, level)
    return compile_module(mod, style=style)


class TestISA:
    def test_instruction_roundtrip(self):
        ins = MachineInstr("ADD", rd=3, rs=7, imm=-12345)
        assert MachineInstr.decode(ins.encode()) == ins

    def test_bad_opcode_rejected(self):
        with pytest.raises(ValueError):
            MachineInstr.decode(b"\xff\x00\x00\x00\x00\x00\x00\x00")

    def test_program_encode_decode(self):
        prog = _binary('int main() { printf("%d\\n", 42); return 0; }')
        restored = BinaryProgram.decode(prog.encode())
        assert [f.name for f in restored.functions] == [f.name for f in prog.functions]
        assert restored.externals == prog.externals
        assert len(restored.instructions) == len(prog.instructions)
        assert run_binary(restored) == [42]

    def test_magic_check(self):
        with pytest.raises(ValueError):
            BinaryProgram.decode(b"NOPE" + b"\x00" * 16)

    def test_size_bytes(self):
        prog = _binary("int main() { return 0; }")
        assert prog.size_bytes() == len(prog.encode())


class TestVM:
    def test_arith(self):
        assert run_binary(_binary('int main() { printf("%d\\n", 6 * 7); return 0; }')) == [42]

    def test_loop(self):
        src = 'int main() { int s = 0; for (int i = 1; i <= 10; i++) { s += i; } printf("%d\\n", s); return 0; }'
        assert run_binary(_binary(src)) == [55]

    def test_function_calls(self):
        src = (
            "int add(int a, int b) { return a + b; } "
            'int main() { printf("%d\\n", add(add(1, 2), 4)); return 0; }'
        )
        assert run_binary(_binary(src)) == [7]

    def test_recursion(self):
        src = (
            "int fib(int n) { if (n < 2) { return n; } return fib(n - 1) + fib(n - 2); } "
            'int main() { printf("%d\\n", fib(10)); return 0; }'
        )
        assert run_binary(_binary(src)) == [55]

    def test_arrays(self):
        src = (
            "int main() { int a[5]; for (int i = 0; i < 5; i++) { a[i] = i * i; } "
            'printf("%d\\n", a[4]); return 0; }'
        )
        assert run_binary(_binary(src)) == [16]

    def test_array_across_calls(self):
        src = (
            "int first(int* a) { return a[0]; } "
            'int main() { int a[] = {9, 8}; printf("%d\\n", first(a)); return 0; }'
        )
        assert run_binary(_binary(src)) == [9]

    def test_negative_division(self):
        assert run_binary(_binary('int main() { printf("%d\\n", -9 / 2); return 0; }')) == [-4]

    def test_division_by_zero_traps(self):
        src = "int main() { int z = 0; return 1 / z; }"
        with pytest.raises(VMError):
            run_binary(_binary(src))

    def test_step_budget(self):
        prog = _binary("int main() { while (1) { } return 0; }")
        with pytest.raises(VMError, match="step budget"):
            VirtualMachine(prog, max_steps=1000).run()

    def test_java_heap_arrays(self):
        sf = GEN.generate("sum_array", 0, "java")
        mod = lower_program(sf.program)
        prog = compile_module(mod)
        assert run_binary(prog) == interpret(sf.program)


class TestCodegenParity:
    """VM output == AST interpreter for the corpus, at every opt level and
    with both backends."""

    @pytest.mark.parametrize("task", sorted(TASK_REGISTRY)[::2])
    def test_o0_all_languages(self, task):
        for lang in LANGUAGES:
            sf = GEN.generate(task, 0, lang)
            mod = lower_program(sf.program, name=sf.identifier)
            prog = compile_module(mod)
            assert run_binary(prog) == interpret(sf.program), sf.identifier

    @pytest.mark.parametrize("level", ["O1", "O2", "O3", "Oz"])
    def test_optimized_binaries(self, level):
        for task in ("sum_array", "gcd", "binary_search", "sort_median"):
            for lang in LANGUAGES:
                sf = GEN.generate(task, 1, lang)
                mod = lower_program(sf.program, name=sf.identifier)
                optimize(mod, level)
                prog = compile_module(mod)
                assert run_binary(prog) == interpret(sf.program), f"{sf.identifier}@{level}"

    def test_gcc_style_same_semantics(self):
        for task in ("max_subarray", "fibonacci"):
            sf = GEN.generate(task, 2, "cpp")
            mod = lower_program(sf.program)
            assert run_binary(compile_module(mod, style="gcc")) == interpret(sf.program)

    def test_gcc_binaries_bigger(self):
        sf = GEN.generate("sum_array", 0, "c")
        mod1 = lower_program(sf.program)
        mod2 = lower_program(sf.program)
        clang_size = compile_module(mod1, style="clang").size_bytes()
        gcc_size = compile_module(mod2, style="gcc").size_bytes()
        assert gcc_size > clang_size * 1.3  # paper measured ~1.7x after decomp

    def test_unknown_style_rejected(self):
        mod = lower_program(parse_minic("int main() { return 0; }"))
        with pytest.raises(CodegenError):
            compile_module(mod, style="icc")

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2000))
    def test_property_random_binaries_match(self, seed):
        gen = SolutionGenerator(seed=seed)
        names = sorted(TASK_REGISTRY)
        task = names[seed % len(names)]
        lang = LANGUAGES[seed % 3]
        level = ["O0", "O1", "O2", "O3", "Oz"][seed % 5]
        style = ["clang", "gcc"][seed % 2]
        sf = gen.generate(task, seed % 4, lang)
        mod = lower_program(sf.program)
        optimize(mod, level)
        prog = compile_module(mod, style=style)
        assert run_binary(prog) == interpret(sf.program)


class TestDecompiler:
    def _decompiled(self, task="sum_array", lang="c", level="O0", style="clang"):
        sf = GEN.generate(task, 0, lang)
        mod = lower_program(sf.program, name=sf.identifier)
        optimize(mod, level)
        prog = compile_module(mod, style=style)
        return mod, decompile_bytes(prog.encode())

    def test_produces_verifiable_ir(self):
        _, dec = self._decompiled()
        verify_module(dec)

    def test_function_symbols_recovered(self):
        src_mod, dec = self._decompiled()
        src_names = {f.name for f in src_mod.defined_functions()}
        dec_names = {f.name for f in dec.defined_functions()}
        assert src_names == dec_names

    def test_types_are_lossy_i64(self):
        from repro.ir.printer import print_module

        _, dec = self._decompiled()
        text = print_module(dec)
        assert "i64" in text
        # source types are gone entirely from recovered function signatures
        assert "define i64" in text or "define void" not in text

    def test_decompiled_larger_than_source_ir(self):
        src_mod, dec = self._decompiled()
        assert dec.size() > src_mod.size()

    def test_gcc_decompiles_larger_than_clang(self):
        _, dec_clang = self._decompiled(style="clang")
        _, dec_gcc = self._decompiled(style="gcc")
        assert dec_gcc.size() > dec_clang.size() * 1.3

    def test_higher_opt_changes_decompiled_shape(self):
        _, dec_o0 = self._decompiled(level="O0")
        _, dec_o3 = self._decompiled(level="O3")
        blocks_o0 = sum(len(f.blocks) for f in dec_o0.defined_functions())
        blocks_o3 = sum(len(f.blocks) for f in dec_o3.defined_functions())
        assert blocks_o0 != blocks_o3

    def test_inttoptr_artifacts_present(self):
        from repro.ir.printer import print_module

        _, dec = self._decompiled(task="sort_median", lang="c")
        text = print_module(dec)
        assert "inttoptr" in text or "ptrtoint" in text

    def test_decompile_all_languages(self):
        for lang in LANGUAGES:
            _, dec = self._decompiled(lang=lang)
            verify_module(dec)
            assert dec.source_language == "decompiled"

    def test_externals_become_declarations(self):
        _, dec = self._decompiled(lang="java")
        decls = [f.name for f in dec.functions if f.is_declaration]
        assert any("java" in d for d in decls)
