"""Tests for graceful degradation and deadlines in the retrieval service.

A serve tier built for faults: a corrupt shard is quarantined and the
survivors keep answering (flagged ``degraded`` with a coverage fraction),
a corrupt quantizer payload falls back from ANN to the exact path, a
batch that blows its deadline returns a retryable error instead of
hanging the connection, and SIGTERM/SIGINT drain in-flight requests with
complete ordered responses before the process exits.
"""

import base64
import json
import os
import signal
import socket
import subprocess
import sys
import time

import pytest

from repro.config import cpu_config, scaled, tiny_data_config
from repro.core.trainer import MatchTrainer
from repro.data.corpus import CorpusBuilder
from repro.data.pairs import build_pairs
from repro.index import EmbeddingIndex, ShardedEmbeddingIndex, open_index
from repro.index.sharded import ShardCorruption
from repro.serve import RetrievalServer, ServerConfig, create_server

TIMEOUT = 120.0


@pytest.fixture(scope="module")
def corpus():
    samples = CorpusBuilder(tiny_data_config()).build(["c", "java"])
    c = [s for s in samples if s.language == "c"]
    j = [s for s in samples if s.language == "java"]
    return c, j


@pytest.fixture(scope="module")
def trained(corpus):
    c, j = corpus
    ds = build_pairs(c, j, "binary", "source", seed=0, max_pairs_per_task=3)
    cfg = scaled(cpu_config(), epochs=2, hidden_dim=16, embed_dim=16, num_layers=1)
    trainer = MatchTrainer(cfg)
    trainer.train(ds)
    return trainer


def build_sharded(trained, samples, root, **kw):
    idx = EmbeddingIndex(trained)
    idx.add(
        [s.source_graph for s in samples],
        metas=[{"id": s.identifier} for s in samples],
    )
    return ShardedEmbeddingIndex.from_index(idx, root, 3, **kw)


def corrupt_last_shard(root):
    shard = sorted(root.glob("shard-*.npz"))[-1]
    shard.write_bytes(shard.read_bytes()[:64])
    return shard


def _binary_request(sample, **extra):
    req = {"binary_b64": base64.b64encode(sample.binary_bytes).decode()}
    req.update(extra)
    return req


def _parsed(req, default_k=3):
    """Validate like the real intake path (fills the ``k`` default)."""
    from repro.serve.core import parse_request

    return parse_request(json.dumps(req), default_k)


class TestDegradedShards:
    def test_corrupt_shard_is_quarantined_and_flagged(
        self, trained, corpus, tmp_path
    ):
        c, j = corpus
        built = build_sharded(trained, j, tmp_path / "idx")
        total = len(built)
        corrupt_last_shard(tmp_path / "idx")
        index = open_index(tmp_path / "idx", trained, degraded=True)
        server = RetrievalServer(trained, index, default_k=3)
        responses = server.handle_batch(
            [_parsed(_binary_request(c[0], id="q0", k=3)),
             _parsed(_binary_request(c[1], id="q1"))]
        )
        assert len(responses) == 2
        for resp in responses:
            assert resp["degraded"] is True
            assert 0.0 < resp["coverage"] < 1.0
            assert resp["hits"]  # survivors still answer
        assert index.quarantined
        lost = total - round(resp["coverage"] * total)
        assert lost >= 1

    def test_degraded_hits_agree_with_survivors(self, trained, corpus, tmp_path):
        """Degraded answers are *correct over what remains*: identical to an
        index built from only the surviving shards' entries."""
        c, j = corpus
        build_sharded(trained, j, tmp_path / "idx")
        corrupt_last_shard(tmp_path / "idx")
        index = open_index(tmp_path / "idx", trained, degraded=True)
        server = RetrievalServer(trained, index, default_k=3)
        (got,) = server.handle_batch([_parsed(_binary_request(c[0], id="q"))])
        # Survivor set = entries of the non-corrupt shards (the last shard,
        # holding the tail entries, was the one corrupted above).
        keep = j[: (len(j) // 3) * 3] if len(j) % 3 else j[: len(j) - 3]
        healthy = EmbeddingIndex(trained)
        healthy.add(
            [s.source_graph for s in keep],
            metas=[{"id": s.identifier} for s in keep],
        )
        ref = RetrievalServer(trained, healthy, default_k=3)
        (want,) = ref.handle_batch([_parsed(_binary_request(c[0], id="q"))])
        got_pairs = [(h["key"], round(h["score"], 6)) for h in got["hits"]]
        want_pairs = [(h["key"], round(h["score"], 6)) for h in want["hits"]]
        assert got_pairs == want_pairs

    def test_strict_open_raises_shard_corruption(self, trained, corpus, tmp_path):
        c, j = corpus
        build_sharded(trained, j, tmp_path / "idx")
        corrupt_last_shard(tmp_path / "idx")
        index = open_index(tmp_path / "idx", trained)  # strict: no flag
        server = RetrievalServer(trained, index, default_k=3)
        with pytest.raises(ShardCorruption):
            server.handle_batch([_parsed(_binary_request(c[0], id="q", k=None))])

    def test_healthy_index_has_no_degraded_key(self, trained, corpus, tmp_path):
        c, j = corpus
        build_sharded(trained, j, tmp_path / "idx")
        index = open_index(tmp_path / "idx", trained, degraded=True)
        server = RetrievalServer(trained, index, default_k=3)
        (resp,) = server.handle_batch([_parsed(_binary_request(c[0], id="q"))])
        assert "degraded" not in resp and "coverage" not in resp


class TestAnnFallback:
    def _corrupt_quantizer(self, root):
        manifest = json.loads((root / "manifest.json").read_text())
        manifest["quantizer"]["centroids"] = manifest["quantizer"]["centroids"][:-1]
        (root / "manifest.json").write_text(json.dumps(manifest))

    def test_corrupt_payload_falls_back_to_exact(self, trained, corpus, tmp_path):
        c, j = corpus
        build_sharded(trained, j, tmp_path / "idx", cells=2)
        self._corrupt_quantizer(tmp_path / "idx")
        index = open_index(tmp_path / "idx", trained, degraded=True)
        assert index.quantizer is None and index.quantizer_error
        server = RetrievalServer(
            trained, index, default_k=3, mode="ann", allow_degraded=True
        )
        assert server.mode == "exact"
        (resp,) = server.handle_batch([_parsed(_binary_request(c[0], id="q"))])
        assert resp["degraded"] is True
        assert resp["ann_fallback"] == "exact"
        assert resp["hits"]
        # ... and the fallback answers are the exact path's answers.
        ref = RetrievalServer(trained, index, default_k=3)
        (want,) = ref.handle_batch([_parsed(_binary_request(c[0], id="q"))])
        assert resp["hits"] == want["hits"]

    def test_corrupt_payload_without_allow_degraded_raises(
        self, trained, corpus, tmp_path
    ):
        _, j = corpus
        build_sharded(trained, j, tmp_path / "idx", cells=2)
        self._corrupt_quantizer(tmp_path / "idx")
        index = open_index(tmp_path / "idx", trained, degraded=True)
        with pytest.raises(ValueError, match="ann"):
            RetrievalServer(trained, index, mode="ann")

    def test_never_trained_quantizer_is_still_a_config_error(
        self, trained, corpus, tmp_path
    ):
        """allow_degraded forgives corruption, not misconfiguration."""
        _, j = corpus
        build_sharded(trained, j, tmp_path / "idx")  # no cells: no quantizer
        index = open_index(tmp_path / "idx", trained, degraded=True)
        assert index.quantizer is None and index.quantizer_error is None
        with pytest.raises(ValueError, match="quantizer"):
            RetrievalServer(trained, index, mode="ann", allow_degraded=True)


class TestDeadlines:
    @pytest.fixture(scope="class")
    def assets(self, trained, corpus, tmp_path_factory):
        _, j = corpus
        root = tmp_path_factory.mktemp("deadline")
        checkpoint = root / "model.npz"
        trained.save(checkpoint)
        build_sharded(trained, j, root / "idx")
        return {"checkpoint": str(checkpoint), "index": str(root / "idx")}

    def test_hung_batch_gets_retryable_error_then_service_recovers(
        self, assets, corpus
    ):
        c, _ = corpus
        config = ServerConfig(
            checkpoint=assets["checkpoint"],
            index_path=assets["index"],
            port=0,
            workers=1,
            max_batch=2,
            max_delay_ms=2.0,
            default_k=3,
            enable_test_hooks=True,
            batch_timeout_s=2.0,
        )
        with create_server(config) as server:
            with _client(server.address) as sock:
                _send(sock, _binary_request(c[0], id="stuck", test_sleep_ms=30000))
                resp = _recv(sock)
                assert resp["id"] == "stuck"
                assert "deadline exceeded" in resp["error"]
                assert resp["retryable"] is True
                # The hung worker was killed and respawned: the service
                # answers a retry instead of wedging forever.  The deadline
                # clock runs from submit, so a retry racing the respawn's
                # model load can itself expire — retryable means exactly
                # "send it again", so the client contract is a retry loop.
                for attempt in range(5):
                    _send(sock, _binary_request(c[1], id=f"retry{attempt}"))
                    resp = _recv(sock)
                    if "hits" in resp:
                        break
                    assert resp["retryable"] is True
                assert "hits" in resp, resp
            timeouts = server.pool.timeouts
            assert timeouts >= 1
            assert server.stats_snapshot()["deadline_timeouts"] == timeouts

    def test_no_deadline_means_no_watchdog(self, assets):
        config = ServerConfig(
            checkpoint=assets["checkpoint"],
            index_path=assets["index"],
            port=0,
            workers=1,
        )
        with create_server(config) as server:
            assert server.pool.batch_timeout_s is None
            assert server.pool.timeouts == 0


# Minimal socket helpers (the full Client lives in test_serve_concurrent).
def _client(address):
    sock = socket.create_connection(tuple(address), timeout=TIMEOUT)
    sock.settimeout(TIMEOUT)
    return sock


def _send(sock, obj):
    sock.sendall((json.dumps(obj) + "\n").encode())


def _recv(sock, _bufs={}):
    buf = _bufs.setdefault(id(sock), bytearray())
    while b"\n" not in buf:
        chunk = sock.recv(65536)
        if not chunk:
            raise ConnectionError("server closed the connection")
        buf += chunk
    line, _, rest = bytes(buf).partition(b"\n")
    _bufs[id(sock)] = bytearray(rest)
    return json.loads(line)


class TestGracefulShutdown:
    @pytest.fixture(scope="class")
    def assets(self, trained, corpus, tmp_path_factory):
        _, j = corpus
        root = tmp_path_factory.mktemp("shutdown")
        checkpoint = root / "model.npz"
        trained.save(checkpoint)
        build_sharded(trained, j, root / "idx")
        return {"checkpoint": str(checkpoint), "index": str(root / "idx")}

    @pytest.mark.parametrize("sig", [signal.SIGTERM, signal.SIGINT])
    def test_signal_drains_inflight_before_exit(self, assets, corpus, sig):
        """`repro serve --socket` under SIGTERM/SIGINT answers everything
        already admitted — in order, complete — then exits cleanly."""
        c, _ = corpus
        env = dict(os.environ)
        env["PYTHONPATH"] = "src"
        # Hold every batch in flight ~50ms so the signal lands mid-work.
        env["REPRO_FAULTS"] = "slow-io:worker.batch"
        proc = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro",
                "serve",
                assets["checkpoint"],
                assets["index"],
                "--socket",
                "127.0.0.1:0",
                "--workers",
                "1",
                "--batch",
                "2",
                "--max-delay-ms",
                "2",
            ],
            env=env,
            stderr=subprocess.PIPE,
            text=True,
        )
        try:
            banner = proc.stderr.readline()
            assert "serving on" in banner, banner
            host_port = banner.split("serving on ", 1)[1].split()[0]
            host, port = host_port.rsplit(":", 1)
            with socket.create_connection((host, int(port)), timeout=TIMEOUT) as sock:
                sock.settimeout(TIMEOUT)
                n = 6
                for i in range(n):
                    _send(sock, _binary_request(c[i % len(c)], id=f"q{i}"))
                time.sleep(0.15)  # admitted; several batches still in flight
                proc.send_signal(sig)
                got = [_recv(sock) for _ in range(n)]
            assert [r["id"] for r in got] == [f"q{i}" for i in range(n)]
            assert all("hits" in r for r in got), got
            assert proc.wait(timeout=TIMEOUT) == 0
        finally:
            if proc.poll() is None:
                proc.kill()
            proc.stderr.close()
