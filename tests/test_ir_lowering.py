"""Tests: AST→IR lowering for all three front-ends, IR interpreter parity."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ir.interp import IRInterpError, run_module
from repro.ir.lowering import (
    CXX_PRINT,
    JAVA_ARRAYLENGTH,
    JAVA_NEWARRAY,
    JAVA_THROW_OOB,
    MANGLED_SORT,
    lower_program,
)
from repro.ir.printer import print_module
from repro.ir.verifier import collect_callees, verify_module
from repro.lang.generator import LANGUAGES, SolutionGenerator
from repro.lang.interp import interpret
from repro.lang.minic import parse_minic
from repro.lang.minicpp import parse_minicpp
from repro.lang.minijava import parse_minijava
from repro.lang.tasks import TASK_REGISTRY

GEN = SolutionGenerator(seed=77)


def _lower_c(src):
    return lower_program(parse_minic(src))


class TestBasicLowering:
    def test_simple_return(self):
        mod = _lower_c("int f() { return 7; }")
        verify_module(mod)
        assert run_module(mod, "f") == []  # nothing printed

    def test_arith_module_runs(self):
        mod = _lower_c('int main() { printf("%d\\n", (2 + 3) * 4); return 0; }')
        verify_module(mod)
        run = run_module(mod)
        assert run == [20]

    def test_if_else(self):
        src = 'int main() { int x = 5; if (x > 3) { printf("%d\\n", 1); } else { printf("%d\\n", 0); } return 0; }'
        assert run_module(_lower_c(src)) == [1]

    def test_while_loop(self):
        src = 'int main() { int i = 0; int s = 0; while (i < 5) { s += i; i++; } printf("%d\\n", s); return 0; }'
        assert run_module(_lower_c(src)) == [10]

    def test_for_with_break_continue(self):
        src = (
            "int main() { int s = 0; for (int i = 0; i < 10; i++) { "
            "if (i == 3) { continue; } if (i == 6) { break; } s += i; } "
            'printf("%d\\n", s); return 0; }'
        )
        assert run_module(_lower_c(src)) == [0 + 1 + 2 + 4 + 5]

    def test_short_circuit_via_phi(self):
        src = (
            "int main() { int a[] = {1}; int n = 1; "
            'if (n > 5 && a[5] > 0) { printf("%d\\n", 1); } else { printf("%d\\n", 0); } return 0; }'
        )
        # must not trap on a[5]
        assert run_module(_lower_c(src)) == [0]

    def test_nested_calls(self):
        src = (
            "int sq(int x) { return x * x; } "
            'int main() { printf("%d\\n", sq(sq(2))); return 0; }'
        )
        assert run_module(_lower_c(src)) == [16]

    def test_array_roundtrip(self):
        src = (
            "int main() { int a[4]; for (int i = 0; i < 4; i++) { a[i] = i * i; } "
            'printf("%d\\n", a[3]); return 0; }'
        )
        assert run_module(_lower_c(src)) == [9]

    def test_unary_not(self):
        src = 'int main() { int x = 0; printf("%d\\n", !x); return 0; }'
        assert run_module(_lower_c(src)) == [1]

    def test_negative_numbers(self):
        src = 'int main() { printf("%d\\n", -7 / 2); printf("%d\\n", -7 % 2); return 0; }'
        assert run_module(_lower_c(src)) == [-3, -1]

    def test_unreachable_code_dropped(self):
        mod = _lower_c("int f() { return 1; return 2; }")
        verify_module(mod)


class TestFrontEndDivergence:
    """The cross-language IR asymmetries the paper depends on."""

    def _modules(self, task="sum_array", variant=0):
        mods = {}
        for lang in LANGUAGES:
            sf = GEN.generate(task, variant, lang)
            mods[lang] = lower_program(sf.program, name=sf.identifier)
        return mods

    def test_all_verify(self):
        for mod in self._modules().values():
            verify_module(mod)

    def test_java_ir_larger_than_c(self):
        mods = self._modules()
        # bounds checks + runtime calls make Java IR bigger
        assert mods["java"].size() > mods["c"].size()

    def test_java_uses_runtime_calls(self):
        mods = self._modules()
        callees = set(collect_callees(mods["java"]))
        assert JAVA_ARRAYLENGTH in callees or JAVA_NEWARRAY in callees

    def test_java_has_throw_blocks(self):
        mods = self._modules()
        text = print_module(mods["java"])
        assert JAVA_THROW_OOB in text
        assert "unreachable" in text

    def test_cpp_instantiates_sort_template(self):
        sf = GEN.generate("sort_median", 1, "cpp")
        # ensure this variant uses std::sort (otherwise find one that does)
        for variant in range(8):
            sf = GEN.generate("sort_median", variant, "cpp")
            if "std::sort" in sf.text:
                break
        else:
            pytest.skip("no std::sort variant found in 8 tries")
        mod = lower_program(sf.program)
        assert mod.has(MANGLED_SORT)
        assert not mod.get(MANGLED_SORT).is_declaration  # body present!

    def test_java_sort_stays_external(self):
        for variant in range(8):
            sf = GEN.generate("sort_median", variant, "java")
            if "Arrays.sort" in sf.text:
                break
        else:
            pytest.skip("no Arrays.sort variant found")
        mod = lower_program(sf.program)
        assert mod.get("java.util.Arrays.sort").is_declaration  # no body

    def test_print_callees_differ_by_language(self):
        mods = self._modules()
        assert "printf" in collect_callees(mods["c"])
        assert CXX_PRINT in collect_callees(mods["cpp"])
        assert "java.io.PrintStream.println" in collect_callees(mods["java"])


class TestPrinter:
    def test_module_text_shape(self):
        mod = _lower_c("int f(int x) { return x + 1; }")
        text = print_module(mod)
        assert "define i32 @f(i32 %x)" in text
        assert "add i32" in text
        assert "ret i32" in text

    def test_declaration_printed(self):
        sf = GEN.generate("sum_array", 0, "java")
        text = print_module(lower_program(sf.program))
        assert "declare" in text

    def test_icmp_text(self):
        mod = _lower_c("int f(int x) { if (x < 3) { return 1; } return 0; }")
        assert "icmp slt i32" in print_module(mod)

    def test_phi_text(self):
        src = "int f(int a, int b) { if (a > 0 && b > 0) { return 1; } return 0; }"
        assert "phi i1" in print_module(_lower_c(src))


class TestSemanticParity:
    """AST interpreter and IR interpreter agree for the whole corpus."""

    @pytest.mark.parametrize("task", sorted(TASK_REGISTRY))
    def test_ast_vs_ir_all_languages(self, task):
        for variant in range(2):
            for lang in LANGUAGES:
                sf = GEN.generate(task, variant, lang)
                expected = interpret(sf.program)
                mod = lower_program(sf.program, name=sf.identifier)
                verify_module(mod)
                assert run_module(mod) == expected, f"{sf.identifier}"

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=5000))
    def test_property_random_programs_match(self, seed):
        gen = SolutionGenerator(seed=seed)
        names = sorted(TASK_REGISTRY)
        task = names[seed % len(names)]
        lang = LANGUAGES[seed % 3]
        sf = gen.generate(task, seed % 7, lang)
        assert run_module(lower_program(sf.program)) == interpret(sf.program)


class TestIRInterpreterTraps:
    def test_oob_load_traps(self):
        src = "int main() { int a[2]; return a[9]; }"
        with pytest.raises(IRInterpError):
            run_module(_lower_c(src))

    def test_java_bounds_check_throws(self):
        src = (
            "public class Main { public static void main(String[] args) { "
            "int[] a = new int[2]; System.out.println(a[5]); } }"
        )
        mod = lower_program(parse_minijava(src))
        with pytest.raises(IRInterpError, match="OutOfBounds|unreachable"):
            run_module(mod)

    def test_division_by_zero_traps(self):
        src = "int main() { int z = 0; return 5 / z; }"
        with pytest.raises(IRInterpError):
            run_module(_lower_c(src))

    def test_step_budget(self):
        from repro.ir.interp import IRInterpreter

        src = "int main() { while (1) { } return 0; }"
        mod = _lower_c(src)
        with pytest.raises(IRInterpError, match="step budget"):
            IRInterpreter(mod, max_steps=500).run()
