"""Tests for the static-analysis framework (``repro.ir.analysis``).

Covers the CFG utilities (orders, dominators, frontiers), the worklist
solver's two instances (reaching definitions with genuine GEN/KILL,
liveness with phi-to-edge attribution), def-use chains, the
interprocedural call-graph summaries, and the verifier integration —
including the malformed-IR classes that must each raise a descriptive
:class:`VerificationError` naming function, block, and instruction.
"""

import pytest

from repro.ir.analysis import (
    CallGraph,
    DefUseChains,
    DominatorTree,
    analyze_module,
    dominance_frontiers,
    immediate_dominators,
    liveness,
    postorder,
    reaching_definitions,
    reverse_postorder,
)
from repro.ir.builder import IRBuilder
from repro.ir.lowering import lower_program
from repro.ir.module import Function, Module
from repro.ir.passes import optimize
from repro.ir.types import I32
from repro.ir.verifier import (
    VerificationError,
    verify_all,
    verify_dataflow,
    verify_module,
)
from repro.lang.generator import SolutionGenerator
from repro.lang.minic import parse_minic


def diamond():
    """entry → (left | right) → merge, phi at the join."""
    fn = Function("f", [I32], ["x"], I32)
    entry = fn.new_block("entry")
    left = fn.new_block("left")
    right = fn.new_block("right")
    merge = fn.new_block("merge")
    b = IRBuilder(entry)
    pre = b.add(fn.args[0], b.const(10))
    cond = b.icmp("sgt", fn.args[0], b.const(0))
    b.condbr(cond, left, right)
    b.position(left)
    l = b.add(fn.args[0], b.const(1))
    b.br(merge)
    b.position(right)
    r = b.sub(fn.args[0], b.const(1))
    b.br(merge)
    b.position(merge)
    p = b.phi(I32, [(l, left), (r, right)])
    total = b.add(p, pre)  # cross-block use of the entry def
    b.ret(total)
    return fn, dict(entry=entry, left=left, right=right, merge=merge), dict(
        pre=pre, cond=cond, l=l, r=r, p=p, total=total
    )


def loop():
    """entry → header ⇄ body, header → exit; loop-carried phi."""
    fn = Function("loop", [I32], ["n"], I32)
    entry = fn.new_block("entry")
    header = fn.new_block("header")
    body = fn.new_block("body")
    exit_ = fn.new_block("exit")
    b = IRBuilder(entry)
    b.br(header)
    b.position(header)
    i = b.phi(I32)
    cond = b.icmp("slt", i, fn.args[0])
    b.condbr(cond, body, exit_)
    b.position(body)
    nxt = b.add(i, b.const(1))
    b.br(header)
    i.operands = [b.const(0), nxt]
    i.blocks = [entry, body]
    b.position(exit_)
    b.ret(i)
    return fn, dict(entry=entry, header=header, body=body, exit=exit_), dict(
        i=i, cond=cond, nxt=nxt
    )


class TestCFG:
    def test_orders_cover_reachable_blocks(self):
        fn, blocks, _ = diamond()
        rpo = reverse_postorder(fn)
        assert rpo[0] is blocks["entry"]
        assert rpo[-1] is blocks["merge"]
        assert list(reversed(postorder(fn))) == rpo
        assert set(rpo) == set(blocks.values())

    def test_unreachable_blocks_excluded(self):
        fn, blocks, _ = diamond()
        dead = fn.new_block("dead")
        IRBuilder(dead).ret(IRBuilder.const(0))
        assert dead not in set(postorder(fn))
        assert dead not in immediate_dominators(fn)
        assert not DominatorTree(fn).reachable(dead)

    def test_immediate_dominators(self):
        fn, blocks, _ = diamond()
        idom = immediate_dominators(fn)
        assert idom[blocks["entry"]] is None
        assert idom[blocks["left"]] is blocks["entry"]
        assert idom[blocks["right"]] is blocks["entry"]
        # The join is dominated by the branch point, not either arm.
        assert idom[blocks["merge"]] is blocks["entry"]

    def test_dominator_tree_queries(self):
        fn, blocks, _ = diamond()
        dom = DominatorTree(fn)
        assert dom.dominates(blocks["entry"], blocks["merge"])
        assert dom.dominates(blocks["merge"], blocks["merge"])
        assert not dom.strictly_dominates(blocks["merge"], blocks["merge"])
        assert not dom.dominates(blocks["left"], blocks["merge"])

    def test_dominance_frontiers_diamond(self):
        fn, blocks, _ = diamond()
        df = dominance_frontiers(fn)
        assert df[blocks["left"]] == [blocks["merge"]]
        assert df[blocks["right"]] == [blocks["merge"]]
        assert df[blocks["entry"]] == []

    def test_dominance_frontiers_loop(self):
        fn, blocks, _ = loop()
        df = dominance_frontiers(fn)
        # The back edge puts the header in its own frontier (and the body's).
        assert df[blocks["body"]] == [blocks["header"]]
        assert blocks["header"] in df[blocks["header"]]


class TestReachingDefinitions:
    def _store_chain(self):
        """entry stores 1, mid stores 2 to the same slot, exit loads."""
        fn = Function("g", [], [], I32)
        entry = fn.new_block("entry")
        mid = fn.new_block("mid")
        exit_ = fn.new_block("exit")
        b = IRBuilder(entry)
        slot = b.alloca(I32)
        s1 = b.store(b.const(1), slot)
        b.br(mid)
        b.position(mid)
        s2 = b.store(b.const(2), slot)
        b.br(exit_)
        b.position(exit_)
        b.load(slot)
        b.ret(b.const(0))
        return fn, exit_, s1, s2

    def test_store_kills_previous_store(self):
        fn, exit_, s1, s2 = self._store_chain()
        _, result = reaching_definitions(fn)
        assert s2.uid in result.in_of(exit_)
        assert s1.uid not in result.in_of(exit_)

    def test_may_join_keeps_both_branch_stores(self):
        fn = Function("h", [I32], ["x"], I32)
        entry = fn.new_block("entry")
        left = fn.new_block("left")
        right = fn.new_block("right")
        merge = fn.new_block("merge")
        b = IRBuilder(entry)
        slot = b.alloca(I32)
        cond = b.icmp("sgt", fn.args[0], b.const(0))
        b.condbr(cond, left, right)
        b.position(left)
        s1 = b.store(b.const(1), slot)
        b.br(merge)
        b.position(right)
        s2 = b.store(b.const(2), slot)
        b.br(merge)
        b.position(merge)
        b.load(slot)
        b.ret(b.const(0))
        _, result = reaching_definitions(fn)
        assert {s1.uid, s2.uid} <= result.in_of(merge)

    def test_loop_reaches_fixpoint(self):
        fn, blocks, vals = loop()
        _, result = reaching_definitions(fn)
        # The loop-carried increment reaches the header from the back edge.
        assert vals["nxt"].uid in result.in_of(blocks["header"])
        assert result.iterations >= 2


class TestLiveness:
    def test_phi_operands_live_on_incoming_edge(self):
        fn, blocks, vals = diamond()
        analysis, result = liveness(fn)
        assert vals["l"].uid in result.out_of(blocks["left"])
        assert vals["r"].uid in result.out_of(blocks["right"])
        # Each arm's value is live only out of its own edge.
        assert vals["l"].uid not in result.out_of(blocks["right"])
        # The phi's uses do not leak into its own block's live-in.
        assert vals["l"].uid not in result.in_of(blocks["merge"])

    def test_argument_tokens(self):
        fn, blocks, _ = diamond()
        _, result = liveness(fn)
        assert ("arg", 0) in result.in_of(blocks["entry"])
        assert ("arg", 0) not in result.in_of(blocks["merge"])

    def test_defs_killed_at_definition(self):
        fn, blocks, vals = diamond()
        _, result = liveness(fn)
        # pre is defined in entry, so it is live out of entry but not in.
        assert vals["pre"].uid in result.out_of(blocks["entry"])
        assert vals["pre"].uid not in result.in_of(blocks["entry"])

    def test_reporting_order_is_deterministic(self):
        fn, blocks, _ = diamond()
        analysis, result = liveness(fn)
        tokens = analysis.live_in(result, blocks["entry"])
        assert tokens == tuple(sorted(result.in_of(blocks["entry"]), key=repr))


class TestDefUseChains:
    def test_users_in_program_order(self):
        fn, _, vals = diamond()
        chains = DefUseChains.build(fn)
        users = chains.users(fn.args[0])
        assert [u.user for u in users] == [vals["pre"], vals["cond"], vals["l"], vals["r"]]

    def test_cross_block_pairs(self):
        fn, _, vals = diamond()
        pairs = DefUseChains.build(fn).cross_block_pairs()
        # pre (entry) → total (merge) crosses; the phi reads l/r along their
        # own defining edges, so those do not.
        assert [(d, u) for d, u, _ in pairs] == [(vals["pre"], vals["total"])]

    def test_phi_crossing_uses_incoming_block(self):
        fn, blocks, vals = loop()
        # Rewire the phi so the entry-defined constant slot becomes an
        # instruction flowing around the back edge: i = phi [t, entry], [t, body].
        b = IRBuilder(blocks["entry"])
        blocks["entry"].instructions.pop()  # drop the old terminator
        t = b.add(fn.args[0], b.const(0))
        b.br(blocks["header"])
        vals["i"].operands = [t, t]
        vals["i"].blocks = [blocks["entry"], blocks["body"]]
        blocks["body"].instructions.remove(vals["nxt"])
        pairs = DefUseChains.build(fn).cross_block_pairs()
        # The entry-edge occurrence of t does not cross (incoming == def
        # block); the body-edge one does, recorded at its operand slot.
        # i itself flows header → exit into the ret.
        ret = blocks["exit"].instructions[-1]
        assert [(d, u, pos) for d, u, pos in pairs] == [
            (t, vals["i"], 1),
            (vals["i"], ret, 0),
        ]

    def test_invalid_uses_empty_on_well_formed(self):
        fn, _, _ = diamond()
        assert DefUseChains.build(fn).invalid_uses() == []


class TestCallGraph:
    def _module(self):
        src = (
            "int leaf(int x) { return x * 3 + 1; } "
            "int reader(int* p) { return p[0] + leaf(2); } "
            'int main() { int a[] = {7}; printf("%d\\n", reader(a)); return 0; }'
        )
        module = lower_program(parse_minic(src))
        # O1 promotes the front-end's local allocas; what remains is each
        # function's *real* memory behaviour (no inlining at O1).
        optimize(module, "O1")
        return module

    def test_local_summaries(self):
        summaries = CallGraph(self._module()).summaries()
        assert summaries["leaf"].pure
        assert summaries["reader"].reads_memory
        assert not summaries["leaf"].writes_memory

    def test_interprocedural_propagation(self):
        summaries = CallGraph(self._module()).summaries()
        # main inherits reader's read and printf's externality.
        assert summaries["main"].reads_memory
        assert summaries["main"].calls_external
        assert "leaf" in summaries["main"].may_call

    def test_scc_mutual_recursion(self):
        module = Module("m")
        for name in ("a", "b"):
            fn = module.add(Function(name, [I32], ["x"], I32))
            blk = fn.new_block("entry")
            b = IRBuilder(blk)
            callee = "b" if name == "a" else "a"
            b.ret(b.call(callee, [fn.args[0]], I32))
        cg = CallGraph(module)
        assert ["a", "b"] in cg.sccs()
        summaries = cg.summaries()
        # The cycle converges: both are pure, each may call the other.
        assert summaries["a"].pure and summaries["b"].pure
        assert summaries["a"].may_call == frozenset({"b"})
        assert summaries["b"].may_call == frozenset({"a"})

    def test_describe_is_stable(self):
        summaries = CallGraph(self._module()).summaries()
        assert summaries["leaf"].describe() == "summary @leaf pure calls=0"


class TestMalformedIR:
    def test_use_not_dominated_by_def(self):
        fn = Function("f", [I32], ["x"], I32)
        entry = fn.new_block("entry")
        left = fn.new_block("left")
        merge = fn.new_block("merge")
        b = IRBuilder(entry)
        cond = b.icmp("sgt", fn.args[0], b.const(0))
        b.condbr(cond, left, merge)
        b.position(left)
        v = b.add(fn.args[0], b.const(1))
        b.br(merge)
        b.position(merge)
        bad = b.add(v, b.const(1))  # v does not dominate merge
        b.ret(bad)
        module = Module("m")
        module.add(fn)
        with pytest.raises(VerificationError) as exc:
            verify_dataflow(module)
        msg = str(exc.value)
        assert "f/merge" in msg and bad.short() in msg and "dominate" in msg

    def test_phi_operand_count_mismatch(self):
        fn, blocks, vals = diamond()
        vals["p"].operands = vals["p"].operands[:1]  # 1 value, 2 blocks
        module = Module("m")
        module.add(fn)
        with pytest.raises(VerificationError) as exc:
            verify_dataflow(module)
        msg = str(exc.value)
        assert "f/merge" in msg and vals["p"].short() in msg

    def test_phi_missing_reachable_predecessor(self):
        fn, blocks, vals = diamond()
        vals["p"].operands = [vals["l"]]
        vals["p"].blocks = [blocks["left"]]  # right is a reachable pred
        module = Module("m")
        module.add(fn)
        with pytest.raises(VerificationError, match="missing incoming"):
            verify_module(module)

    def test_terminatorless_block(self):
        fn = Function("f", [I32], ["x"], I32)
        entry = fn.new_block("entry")
        b = IRBuilder(entry)
        last = b.add(fn.args[0], b.const(1))
        module = Module("m")
        module.add(fn)
        with pytest.raises(VerificationError) as exc:
            verify_module(module)
        msg = str(exc.value)
        assert "f/entry" in msg and last.short() in msg and "terminator" in msg

    def test_cross_function_operand_leakage(self):
        module = Module("m")
        donor = module.add(Function("donor", [I32], ["x"], I32))
        b = IRBuilder(donor.new_block("entry"))
        foreign = b.add(donor.args[0], b.const(1))
        b.ret(foreign)
        thief = module.add(Function("thief", [], [], I32))
        blk = thief.new_block("entry")
        b = IRBuilder(blk)
        bad = b.add(foreign, b.const(2))
        b.ret(bad)
        with pytest.raises(VerificationError) as exc:
            verify_module(module)
        msg = str(exc.value)
        assert "thief/entry" in msg and foreign.short() in msg and "outside" in msg


class TestVerifyIntegration:
    def test_verify_after_every_pass_runs_clean(self):
        gen = SolutionGenerator(seed=11, independent=True)
        for task in ("gcd", "sum_array"):
            for lang in ("c", "java"):
                sf = gen.generate(task, 0, lang)
                module = lower_program(sf.program, name=sf.identifier)
                optimize(module, "O3", verify=True)  # raises on any violation

    def test_verify_all_prefixes_context(self):
        fn = Function("f", [], [], I32)
        fn.new_block("entry")  # empty block: structurally invalid
        module = Module("m")
        module.add(fn)
        with pytest.raises(VerificationError, match="^after pass 'x': "):
            verify_all(module, context="after pass 'x'")

    def test_analyze_module_flags_unreachable_as_warning(self):
        fn, _, _ = diamond()
        dead = fn.new_block("dead")
        IRBuilder(dead).ret(IRBuilder.const(0))
        module = Module("m")
        module.add(fn)
        findings = analyze_module(module)
        assert any(f.kind == "unreachable" for f in findings)
        assert all(f.severity != "error" for f in findings)
        verify_dataflow(module)  # warnings must not raise
