"""Tests for the coarse quantizer: determinism, correctness, round trips.

The quantizer is the ANN path's geometry: everything downstream (cell
assignments on disk, recall gates in the benches, bit-identical probing
after reopen) leans on `fit` being a pure function of (data, k, seed)
and on the manifest round trip preserving the centroids exactly.
"""

import numpy as np
import pytest

from repro.index import CoarseQuantizer


def _blobs(n=400, k=8, dim=12, seed=3, spread=0.05):
    """Well-separated clustered data: n rows around k unit-norm centers."""
    rng = np.random.default_rng(seed)
    centers = rng.standard_normal((k, dim)).astype(np.float32) * 3.0
    assign = np.arange(n) % k
    noise = rng.standard_normal((n, dim)).astype(np.float32) * spread
    return centers[assign] + noise, assign


class TestFit:
    def test_deterministic_for_seed(self):
        x, _ = _blobs()
        a = CoarseQuantizer.fit(x, 8, seed=5)
        b = CoarseQuantizer.fit(x, 8, seed=5)
        np.testing.assert_array_equal(a.centroids, b.centroids)

    def test_seed_changes_solution(self):
        # Not a strict guarantee of k-means, but on asymmetric data two
        # seeds landing on bit-identical centroids would mean the seed is
        # ignored somewhere.
        rng = np.random.default_rng(0)
        x = rng.standard_normal((300, 16)).astype(np.float32)
        a = CoarseQuantizer.fit(x, 10, seed=1)
        b = CoarseQuantizer.fit(x, 10, seed=2)
        assert not np.array_equal(a.centroids, b.centroids)

    def test_recovers_separated_clusters(self):
        x, truth = _blobs(n=400, k=8)
        quantizer = CoarseQuantizer.fit(x, 8, seed=0)
        cells = quantizer.assign(x)
        # Every true cluster should land in exactly one fitted cell.
        for label in range(8):
            assert len(set(cells[truth == label].tolist())) == 1

    def test_k_clamped_to_rows(self):
        x = np.eye(3, 6, dtype=np.float32)
        quantizer = CoarseQuantizer.fit(x, 50, seed=0)
        assert quantizer.num_cells == 3

    def test_duplicate_heavy_data(self):
        # All-identical rows starve the k-means++ distance distribution
        # (total mass 0) and leave cells empty each Lloyd round; both
        # fallbacks must keep the fit finite and deterministic.
        x = np.ones((20, 4), dtype=np.float32)
        a = CoarseQuantizer.fit(x, 4, seed=7)
        b = CoarseQuantizer.fit(x, 4, seed=7)
        np.testing.assert_array_equal(a.centroids, b.centroids)
        assert np.isfinite(a.centroids).all()
        assert a.assign(x).shape == (20,)

    def test_validation(self):
        x = np.ones((4, 2), dtype=np.float32)
        with pytest.raises(ValueError, match="zero embeddings"):
            CoarseQuantizer.fit(np.zeros((0, 2), dtype=np.float32), 2)
        with pytest.raises(ValueError, match="num_cells"):
            CoarseQuantizer.fit(x, 0)
        with pytest.raises(ValueError, match="iters"):
            CoarseQuantizer.fit(x, 2, iters=0)


class TestAssign:
    def test_matches_brute_force(self):
        x, _ = _blobs(n=257, k=6, dim=9)  # odd n exercises the last block
        quantizer = CoarseQuantizer.fit(x, 6, seed=0)
        d2 = (
            (x.astype(np.float64) ** 2).sum(axis=1)[:, None]
            - 2.0 * x.astype(np.float64) @ quantizer.centroids.T.astype(np.float64)
            + (quantizer.centroids.astype(np.float64) ** 2).sum(axis=1)[None, :]
        )
        np.testing.assert_array_equal(quantizer.assign(x), np.argmin(d2, axis=1))

    def test_empty_and_bad_dim(self):
        quantizer = CoarseQuantizer.fit(np.eye(4, dtype=np.float32), 2)
        assert quantizer.assign(np.zeros((0, 4))).shape == (0,)
        with pytest.raises(ValueError, match="dim"):
            quantizer.assign(np.zeros((3, 5), dtype=np.float32))

    def test_nearest_cells_orders_by_distance(self):
        centroids = np.asarray([[0.0], [1.0], [4.0]], dtype=np.float32)
        quantizer = CoarseQuantizer(centroids)
        cells = quantizer.nearest_cells(np.asarray([[0.9]]), nprobe=3)
        assert cells.tolist() == [[1, 0, 2]]
        assert quantizer.nearest_cells(np.asarray([[0.0]]), nprobe=99).shape == (1, 3)
        with pytest.raises(ValueError, match="nprobe"):
            quantizer.nearest_cells(np.asarray([[0.0]]), nprobe=0)


class TestManifest:
    def test_round_trip_bit_exact(self):
        x, _ = _blobs(n=100, k=5, dim=7)
        quantizer = CoarseQuantizer.fit(x, 5, seed=11)
        # Through JSON for realism: that is how the index persists it.
        import json

        payload = json.loads(json.dumps(quantizer.to_manifest()))
        reopened = CoarseQuantizer.from_manifest(payload)
        np.testing.assert_array_equal(reopened.centroids, quantizer.centroids)
        np.testing.assert_array_equal(reopened.assign(x), quantizer.assign(x))

    def test_corrupt_payload_rejected(self):
        x, _ = _blobs(n=50, k=3, dim=4)
        payload = CoarseQuantizer.fit(x, 3).to_manifest()
        payload["num_cells"] = 99
        with pytest.raises(ValueError, match="corrupt"):
            CoarseQuantizer.from_manifest(payload)

    def test_needs_a_centroid(self):
        with pytest.raises(ValueError, match="at least one"):
            CoarseQuantizer(np.zeros((0, 4), dtype=np.float32))
