"""Tests for the transformation subsystem (repro.transform + pipeline stage)."""

import hashlib
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.artifacts import ArtifactKey, ArtifactStore, source_text_id
from repro.binary.isa import BinaryProgram
from repro.binary.vm import run_binary
from repro.index import graph_fingerprint
from repro.pipeline import STAGE_TRANSFORM, STAGES, CompilationPipeline
from repro.transform import (
    TRANSFORM_REGISTRY,
    TransformError,
    TransformSpec,
    chain_id,
    parse_transform_chain,
    validate_intensity,
)

# Branches, a loop and a surviving call (at O1): every registered
# transform has eligible sites on this program.
PROBE = """\
int helper(int a, int b) { int t = a * 2 + b; return t - 3; }
int main() {
    int s = 0;
    for (int i = 1; i <= 8; i++) {
        if (i % 2 == 0) { s += helper(i, s); } else { s = s - i; }
    }
    printf("%d\\n", s);
    return 0;
}
"""

STACKED = "deadcode@0.7~5+instsub@1~5+blockreorder@1~5+regrename@1~5+pad@0.5~5"


def compile_probe(transforms=None, store=None, cache_key=None):
    return CompilationPipeline(store=store, transforms=transforms).compile(
        PROBE, "c", name="det-probe", opt_level="O1", cache_key=cache_key
    )


class TestSpecGrammar:
    def test_parse_defaults(self):
        spec = TransformSpec.parse("deadcode")
        assert (spec.name, spec.intensity, spec.seed) == ("deadcode", 1.0, 0)

    def test_parse_full(self):
        spec = TransformSpec.parse("regrename@0.25~7")
        assert (spec.name, spec.intensity, spec.seed) == ("regrename", 0.25, 7)
        assert spec.spec == "regrename@0.25~7"

    def test_chain_roundtrip(self):
        chain = parse_transform_chain("deadcode@0.5~3+pad")
        assert chain_id(chain) == "deadcode@0.5~3+pad@1~0"
        assert parse_transform_chain("") == ()

    def test_intensity_canonicalized_to_spec_rendering(self):
        # Distinct intensities below %g precision must not share one
        # canonical spec (and therefore one artifact key) while behaving
        # differently — construction rounds to what .spec renders.
        a = TransformSpec("deadcode", 0.33333332)
        b = TransformSpec("deadcode", 0.33333334)
        assert a.spec == b.spec
        assert a.intensity == b.intensity == float(f"{0.33333334:g}")

    def test_unknown_name_rejected(self):
        with pytest.raises(TransformError, match="unknown transform"):
            TransformSpec.parse("nosuch")

    @pytest.mark.parametrize("bad", ["nan", "inf", "-0.1", "1.5", "x"])
    def test_bad_intensity_rejected(self, bad):
        with pytest.raises(TransformError):
            validate_intensity(bad)
        with pytest.raises(TransformError):
            TransformSpec.parse(f"deadcode@{bad}")

    def test_bad_seed_rejected(self):
        with pytest.raises(TransformError, match="seed"):
            TransformSpec.parse("deadcode~x")

    def test_registry_levels(self):
        levels = {t.level for t in TRANSFORM_REGISTRY.values()}
        assert levels == {"ir", "binary"}
        assert {"inline", "deadcode", "instsub", "blockreorder",
                "regrename", "pad"} <= set(TRANSFORM_REGISTRY)


class TestArtifactKeyVariants:
    def _key(self, transforms=""):
        return ArtifactKey("t", 0, "c", "O1", "clang", "src", transforms=transforms)

    def test_canonicalized(self):
        assert self._key("deadcode").transforms == "deadcode@1~0"
        assert self._key("deadcode").digest == self._key("deadcode@1~0").digest

    def test_cross_level_order_canonicalized(self):
        # IR-level transforms always apply before binary-level ones, so
        # the two spellings are one compilation — and one cache entry.
        assert chain_id(parse_transform_chain("pad+deadcode")) == \
            "deadcode@1~0+pad@1~0"
        assert self._key("pad+deadcode").digest == self._key("deadcode+pad").digest

    def test_variant_digests_distinct(self):
        digests = {
            self._key().digest,
            self._key("deadcode").digest,
            self._key("deadcode@0.5").digest,
            self._key("deadcode+pad").digest,
        }
        assert len(digests) == 4

    def test_unknown_variant_name_rejected(self):
        with pytest.raises(TransformError, match="unknown transform"):
            self._key("nosuch")

    @pytest.mark.parametrize("bad", ["deadcode@nan", "deadcode@-1", "deadcode@2"])
    def test_bad_intensity_rejected(self, bad):
        with pytest.raises(TransformError):
            self._key(bad)


class TestSemanticsPreserved:
    """Transformed binaries must execute identically to clean ones."""

    @pytest.mark.parametrize("name", sorted(TRANSFORM_REGISTRY))
    def test_vm_output_unchanged(self, name):
        clean = compile_probe()
        spec = TransformSpec(name, 1.0, seed=3)
        transformed = compile_probe(transforms=(spec,))
        clean_out = run_binary(BinaryProgram.decode(clean.binary_bytes))
        trans_out = run_binary(BinaryProgram.decode(transformed.binary_bytes))
        assert trans_out == clean_out

    def test_stacked_chain_output_unchanged(self):
        clean = compile_probe()
        transformed = compile_probe(transforms=STACKED)
        assert run_binary(BinaryProgram.decode(transformed.binary_bytes)) == \
            run_binary(BinaryProgram.decode(clean.binary_bytes))

    @pytest.mark.parametrize("name", sorted(TRANSFORM_REGISTRY))
    def test_perturbs_binary_and_graph(self, name):
        clean = compile_probe()
        transformed = compile_probe(transforms=(TransformSpec(name, 1.0, seed=3),))
        assert transformed.binary_bytes != clean.binary_bytes
        assert graph_fingerprint(transformed.decompiled_graph) != \
            graph_fingerprint(clean.decompiled_graph)

    def test_source_side_never_transformed(self):
        clean = compile_probe()
        transformed = compile_probe(transforms=STACKED)
        assert graph_fingerprint(transformed.source_graph) == \
            graph_fingerprint(clean.source_graph)


class TestDeterminism:
    @pytest.mark.parametrize("name", sorted(TRANSFORM_REGISTRY))
    def test_same_seed_same_bytes(self, name):
        chain = (TransformSpec(name, 0.7, seed=9),)
        assert compile_probe(transforms=chain).binary_bytes == \
            compile_probe(transforms=chain).binary_bytes

    def test_different_seed_different_bytes(self):
        # deadcode draws its injected constants from the spec RNG, so a
        # different seed must produce different bytes.
        a = compile_probe(transforms=(TransformSpec("deadcode", 1.0, seed=1),))
        b = compile_probe(transforms=(TransformSpec("deadcode", 1.0, seed=2),))
        assert a.binary_bytes != b.binary_bytes

    def test_intensity_zero_is_noop_on_bytes(self):
        clean = compile_probe()
        chain = tuple(TransformSpec(n, 0.0, seed=3) for n in sorted(TRANSFORM_REGISTRY))
        assert compile_probe(transforms=chain).binary_bytes == clean.binary_bytes

    def test_cross_process_byte_identical(self, tmp_path):
        """Same spec ⇒ byte-identical artifacts in a separate process."""
        in_process = hashlib.sha256(
            compile_probe(transforms=STACKED).binary_bytes
        ).hexdigest()
        src_file = tmp_path / "probe.c"
        src_file.write_text(PROBE)
        script = (
            "import hashlib, sys\n"
            "from repro.pipeline import CompilationPipeline\n"
            "src = open(sys.argv[1]).read()\n"
            f"r = CompilationPipeline(transforms={STACKED!r}).compile(\n"
            "    src, 'c', name='det-probe', opt_level='O1')\n"
            "print(hashlib.sha256(r.binary_bytes).hexdigest())\n"
        )
        src_root = Path(__file__).resolve().parent.parent / "src"
        env = dict(os.environ)
        env["PYTHONPATH"] = f"{src_root}{os.pathsep}{env.get('PYTHONPATH', '')}"
        out = subprocess.run(
            [sys.executable, "-c", script, str(src_file)],
            capture_output=True, text=True, env=env, check=True,
        )
        assert out.stdout.strip() == in_process


class TestStoreCommute:
    def test_stacked_transforms_commute_with_warm_reload(self, tmp_path):
        """store.put(transform(x)) then warm get == recomputing transform(x)."""
        key = ArtifactKey(
            "probe", 0, "c", "O1", "clang", source_text_id(PROBE),
            transforms=chain_id(parse_transform_chain(STACKED)),
        )
        store = ArtifactStore(tmp_path / "store")
        cold = compile_probe(transforms=STACKED, store=store, cache_key=key)
        assert not cold.from_cache

        warm = compile_probe(
            transforms=STACKED, store=ArtifactStore(tmp_path / "store"), cache_key=key
        )
        recomputed = compile_probe(transforms=STACKED)
        assert warm.from_cache
        assert warm.binary_bytes == cold.binary_bytes == recomputed.binary_bytes
        assert graph_fingerprint(warm.decompiled_graph) == \
            graph_fingerprint(recomputed.decompiled_graph)
        assert graph_fingerprint(warm.source_graph) == \
            graph_fingerprint(recomputed.source_graph)
        assert warm.transforms == recomputed.transforms

    def test_clean_and_transformed_entries_coexist(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        sid = source_text_id(PROBE)
        clean_key = ArtifactKey("probe", 0, "c", "O1", "clang", sid)
        trans_key = ArtifactKey(
            "probe", 0, "c", "O1", "clang", sid, transforms="pad@1~3"
        )
        clean = compile_probe(store=store, cache_key=clean_key)
        transformed = compile_probe(
            transforms="pad@1~3", store=store, cache_key=trans_key
        )
        assert len(store) == 2
        assert store.get(clean_key).binary_bytes == clean.binary_bytes
        assert store.get(trans_key).binary_bytes == transformed.binary_bytes


class TestPipelineStage:
    def test_transform_stage_recorded(self):
        result = compile_probe(transforms="pad@1~3")
        assert STAGE_TRANSFORM in result.stages_completed
        assert STAGE_TRANSFORM in result.stage_seconds
        assert result.complete
        assert result.transforms == ["pad@1~3"]

    def test_clean_compile_has_no_transform_stage(self):
        result = compile_probe()
        assert result.stages_completed == list(STAGES)
        assert result.transforms == []

    def test_cache_key_chain_mismatch_rejected(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        clean_key = ArtifactKey("probe", 0, "c", "O1", "clang", source_text_id(PROBE))
        with pytest.raises(ValueError, match="transform chain"):
            compile_probe(transforms="pad@1~3", store=store, cache_key=clean_key)
        trans_key = ArtifactKey(
            "probe", 0, "c", "O1", "clang", source_text_id(PROBE),
            transforms="pad@1~3",
        )
        with pytest.raises(ValueError, match="transform chain"):
            compile_probe(store=store, cache_key=trans_key)
        # Matching chains (canonicalized both sides) still compile fine.
        assert compile_probe(
            transforms="pad@1~3", store=store, cache_key=trans_key
        ).complete

    def test_per_call_override(self):
        pipeline = CompilationPipeline(transforms="pad@1~3")
        clean = pipeline.compile(PROBE, "c", name="x", opt_level="O1", transforms=())
        assert clean.transforms == []
        assert clean.binary_bytes == compile_probe().binary_bytes


class TestCLIBoundary:
    def _parse(self, argv):
        from repro.cli import build_parser

        return build_parser().parse_args(argv)

    def test_good_arguments(self):
        args = self._parse([
            "robustness", "m.npz",
            "--transforms", "deadcode,pad+regrename",
            "--intensities", "0.25,1",
        ])
        assert args.transforms == ["deadcode", "pad+regrename"]
        assert args.intensities == [0.25, 1.0]

    def test_full_spec_grammar_accepted(self):
        args = self._parse([
            "robustness", "m.npz", "--transforms", "deadcode@0.5~3+pad,regrename@1",
        ])
        assert args.transforms == ["deadcode@0.5~3+pad", "regrename@1"]

    @pytest.mark.parametrize("bad", ["nan", "-1", "2", "0.5,inf"])
    def test_bad_intensity_exits(self, bad, capsys):
        with pytest.raises(SystemExit):
            self._parse(["robustness", "m.npz", "--intensities", bad])
        assert "intensity" in capsys.readouterr().err

    def test_unknown_transform_exits(self, capsys):
        with pytest.raises(SystemExit):
            self._parse(["robustness", "m.npz", "--transforms", "deadcode,nosuch"])
        assert "unknown transform" in capsys.readouterr().err

    def test_source_langs_validated(self, capsys):
        args = self._parse(["robustness", "m.npz", "--source-langs", " java , cpp"])
        assert args.source_langs == ["java", "cpp"]
        with pytest.raises(SystemExit):
            self._parse(["robustness", "m.npz", "--source-langs", "jav"])
        assert "unknown language" in capsys.readouterr().err

    def test_transforms_listing(self, capsys):
        from repro.cli import main

        assert main(["transforms"]) == 0
        out = capsys.readouterr().out
        for name in TRANSFORM_REGISTRY:
            assert name in out
