"""Shared test utilities: finite-difference gradient checking."""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.nn.tensor import Tensor


def numeric_grad(
    fn: Callable[[], Tensor], param: Tensor, eps: float = 1e-2
) -> np.ndarray:
    """Central-difference gradient of scalar ``fn()`` w.r.t. ``param``.

    ``fn`` must re-run the full forward pass reading ``param.data``.
    float32 arithmetic limits accuracy, so callers compare with loose
    tolerances (rtol ~ 1e-2).
    """
    grad = np.zeros_like(param.data, dtype=np.float64)
    flat = param.data.reshape(-1)
    gflat = grad.reshape(-1)
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        hi = float(fn().data)
        flat[i] = orig - eps
        lo = float(fn().data)
        flat[i] = orig
        gflat[i] = (hi - lo) / (2 * eps)
    return grad


def check_gradients(
    fn: Callable[[], Tensor],
    params: Sequence[Tensor],
    rtol: float = 5e-2,
    atol: float = 5e-3,
) -> None:
    """Assert autograd gradients match finite differences for each param."""
    for p in params:
        p.zero_grad()
    loss = fn()
    loss.backward()
    for p in params:
        assert p.grad is not None, "parameter received no gradient"
        num = numeric_grad(fn, p)
        np.testing.assert_allclose(p.grad, num, rtol=rtol, atol=atol)
