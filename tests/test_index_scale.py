"""Tests for the scalable index layer: codecs, ANN probing, migration.

Three contracts layered on top of the sharded index's exactness story:

* **codecs** — int8/fp16 shards are raw memory-mapped ``.npy`` arrays
  whose exact-mode scores approximate the float32 reference (the
  quantization error is the only difference: the scoring code dequantizes
  bounded blocks, never a corpus-sized matrix);
* **ann** — with ``nprobe >= num_cells`` the ANN path degenerates to
  exact search over the same stored rows, hit for hit, and with fewer
  probes every returned hit still comes from a probed cell;
* **migration** — legacy v1 manifests open and score bit-identically,
  and corrupt quantized shards fail loudly with actionable messages.
"""

import json

import numpy as np
import pytest

from repro.config import cpu_config, scaled, tiny_data_config
from repro.core.trainer import MatchTrainer
from repro.data.corpus import CorpusBuilder
from repro.data.pairs import build_pairs
from repro.eval.retrieval import evaluate_retrieval
from repro.index import EmbeddingIndex, ShardedEmbeddingIndex
from repro.index.sharded import INDEX_FORMAT_VERSION, MANIFEST_NAME, _FORMAT_V1
from repro.serve import RetrievalServer


@pytest.fixture(scope="module")
def corpus():
    samples = CorpusBuilder(tiny_data_config()).build(["c", "java"])
    c = [s for s in samples if s.language == "c"]
    j = [s for s in samples if s.language == "java"]
    return c, j


@pytest.fixture(scope="module")
def trained(corpus):
    c, j = corpus
    ds = build_pairs(c, j, "binary", "source", seed=0, max_pairs_per_task=3)
    cfg = scaled(cpu_config(), epochs=2, hidden_dim=16, embed_dim=16, num_layers=1)
    trainer = MatchTrainer(cfg)
    trainer.train(ds)
    return trainer


@pytest.fixture(scope="module")
def mono(trained, corpus):
    _, j = corpus
    index = EmbeddingIndex(trained)
    index.add(
        [s.source_graph for s in j], metas=[{"id": s.identifier} for s in j]
    )
    return index


def _queries(corpus, n=3):
    c, _ = corpus
    return [s.decompiled_graph for s in c[:n]]


class TestQuantizedCodecs:
    @pytest.mark.parametrize("codec", ["int8", "fp16"])
    def test_build_open_score(self, trained, corpus, mono, tmp_path, codec):
        root = tmp_path / codec
        ShardedEmbeddingIndex.from_index(mono, root, 3, codec=codec)
        reopened = ShardedEmbeddingIndex.open(root, trained)
        assert reopened.codec == codec
        queries = _queries(corpus)
        got = reopened.scores_batch(queries)
        want = mono.scores_batch(queries)
        # Quantization noise only: int8 keeps ~2 decimal places on these
        # magnitudes, fp16 ~3.
        np.testing.assert_allclose(got, want, atol=0.05 if codec == "int8" else 0.01)
        assert reopened.keys == mono._keys
        assert reopened.metas == mono.metas

    def test_shards_stay_memory_mapped(self, trained, mono, tmp_path):
        root = tmp_path / "idx"
        ShardedEmbeddingIndex.from_index(mono, root, 3, codec="int8")
        reopened = ShardedEmbeddingIndex.open(root, trained)
        reopened.scores_batch(embeddings=mono.embeddings[:2])
        for shard in reopened._shards:
            assert isinstance(shard.embeddings, np.memmap)
            assert shard.embeddings.dtype == np.int8

    def test_streaming_bounds_dequantized_bytes(self, trained, mono, tmp_path):
        root = tmp_path / "idx"
        sharded = ShardedEmbeddingIndex.from_index(mono, root, 2, codec="int8")
        sharded.score_block_rows = 2  # force multiple blocks per shard
        sharded.scores_batch(embeddings=mono.embeddings[:2])
        full = mono.embeddings.nbytes
        assert 0 < sharded.last_peak_block_bytes < full
        assert sharded.last_peak_dequant_bytes < full

    def test_int8_round_trip_error_is_small(self):
        from repro.index.sharded import _dequantize, _quantize

        rng = np.random.default_rng(0)
        matrix = rng.standard_normal((64, 8)).astype(np.float32)
        raw, scale = _quantize(matrix, "int8")
        assert raw.dtype == np.int8
        recovered = _dequantize(raw, "int8", scale)
        assert np.abs(recovered - matrix).max() <= (scale / 2 + 1e-7).max()
        # Zero-only columns dequantize through the sentinel scale of 1.
        zeros = np.zeros((4, 3), dtype=np.float32)
        raw, scale = _quantize(zeros, "int8")
        np.testing.assert_array_equal(scale, np.ones(3, dtype=np.float32))
        np.testing.assert_array_equal(_dequantize(raw, "int8", scale), zeros)

    def test_growth_and_merge_keep_codec(self, trained, corpus, mono, tmp_path):
        _, j = corpus
        half = len(j) // 2
        left = EmbeddingIndex(trained)
        left.add_precomputed(
            mono._keys[:half], mono.embeddings[:half], mono._metas[:half]
        )
        right = EmbeddingIndex(trained)
        right.add_precomputed(
            mono._keys[half:], mono.embeddings[half:], mono._metas[half:]
        )
        a = ShardedEmbeddingIndex.from_index(left, tmp_path / "a", 2, codec="fp16")
        b = ShardedEmbeddingIndex.from_index(right, tmp_path / "b", 2, codec="fp16")
        a.merge(b)
        assert len(a) == len(mono)
        np.testing.assert_allclose(a.embeddings, mono.embeddings, atol=0.01)
        reopened = ShardedEmbeddingIndex.open(tmp_path / "a", trained)
        np.testing.assert_array_equal(reopened.embeddings, a.embeddings)
        mixed = ShardedEmbeddingIndex.from_index(mono, tmp_path / "f32", 2)
        with pytest.raises(ValueError, match="codecs differ"):
            a.merge(mixed)

    def test_unknown_codec_rejected(self, trained, tmp_path):
        with pytest.raises(ValueError, match="codec"):
            ShardedEmbeddingIndex.create(trained, tmp_path / "idx", codec="int4")


class TestAnnMode:
    @pytest.fixture()
    def ann_index(self, trained, mono, tmp_path):
        sharded = ShardedEmbeddingIndex.from_index(
            mono, tmp_path / "idx", 3, codec="int8", cells=4, quantizer_seed=0
        )
        return ShardedEmbeddingIndex.open(tmp_path / "idx", trained)

    @staticmethod
    def _assert_same_ranking(ann_lists, exact_lists, atol=1e-5):
        # The exact and ANN paths score through different batch shapes, so
        # the pair head may round the same row differently in the last bit:
        # the contract is same hit set + allclose scores, with order
        # agreeing wherever the scores are distinguishable.
        for ann_hits, exact_hits in zip(ann_lists, exact_lists):
            assert {h.index for h in ann_hits} == {h.index for h in exact_hits}
            by_index = {h.index: h for h in ann_hits}
            for eh in exact_hits:
                ah = by_index[eh.index]
                assert ah.score == pytest.approx(eh.score, abs=atol)
                assert (ah.key, ah.meta) == (eh.key, eh.meta)
            for prev, cur in zip(ann_hits, ann_hits[1:]):
                assert prev.score > cur.score or (
                    prev.score == cur.score and prev.key <= cur.key
                )

    def test_full_probe_matches_exact(self, corpus, ann_index):
        queries = _queries(corpus)
        exact = ann_index.topk_batch(queries, k=5)
        ann = ann_index.topk_batch(
            queries, k=5, mode="ann", nprobe=ann_index.quantizer.num_cells
        )
        self._assert_same_ranking(ann, exact)
        # k=None: the full ranking covers every entry.
        full = ann_index.topk_batch(
            queries, k=None, mode="ann", nprobe=ann_index.quantizer.num_cells
        )
        assert all(len(hits) == len(ann_index) for hits in full)
        self._assert_same_ranking(full, ann_index.topk_batch(queries, k=None))

    def test_hits_come_from_probed_cells(self, corpus, ann_index):
        queries = _queries(corpus, n=2)
        from repro.index.embedding_index import score_pairs_tiled

        q = ann_index._encoder.embed_queries(queries, 32)
        cell_scores = score_pairs_tiled(
            ann_index.trainer, q, ann_index.quantizer.centroids
        )
        all_cells = np.concatenate(
            [s.cells for s in (ann_index._ensure(p) for p in range(ann_index.num_shards))]
        )
        for nprobe in (1, 2):
            probed = np.argsort(-cell_scores, axis=1, kind="stable")[:, :nprobe]
            hit_lists = ann_index.topk_batch(queries, k=None, mode="ann", nprobe=nprobe)
            for qi, hits in enumerate(hit_lists):
                assert hits  # at least the probed cells' entries
                for hit in hits:
                    assert all_cells[hit.index] in probed[qi]

    def test_single_query_topk(self, corpus, ann_index):
        (query,) = _queries(corpus, n=1)
        ann = ann_index.topk(
            query, k=3, mode="ann", nprobe=ann_index.quantizer.num_cells
        )
        exact = ann_index.topk(query, k=3)
        self._assert_same_ranking([ann], [exact])

    def test_reopen_probes_identically(self, trained, corpus, mono, tmp_path):
        root = tmp_path / "idx"
        built = ShardedEmbeddingIndex.from_index(mono, root, 3, cells=4)
        reopened = ShardedEmbeddingIndex.open(root, trained)
        np.testing.assert_array_equal(
            built.quantizer.centroids, reopened.quantizer.centroids
        )
        queries = _queries(corpus)
        a = built.topk_batch(queries, k=3, mode="ann", nprobe=2)
        b = reopened.topk_batch(queries, k=3, mode="ann", nprobe=2)
        assert [[(h.index, h.score) for h in hits] for hits in a] == [
            [(h.index, h.score) for h in hits] for hits in b
        ]

    def test_validation(self, trained, corpus, mono, tmp_path, ann_index):
        (query,) = _queries(corpus, n=1)
        plain = ShardedEmbeddingIndex.from_index(mono, tmp_path / "plain", 3)
        with pytest.raises(ValueError, match="quantizer"):
            plain.topk(query, k=1, mode="ann")
        with pytest.raises(ValueError, match="shards="):
            ann_index.topk(query, k=1, mode="ann", shards=[0])
        with pytest.raises(ValueError, match="nprobe"):
            ann_index.topk(query, k=1, mode="ann", nprobe=0)
        with pytest.raises(ValueError, match="mode"):
            ann_index.topk(query, k=1, mode="fuzzy")
        with pytest.raises(ValueError, match="mode='exact'"):
            mono.topk(query, k=1, mode="ann")
        with pytest.raises(ValueError, match="mode"):
            mono.topk(query, k=1, mode="fuzzy")

    def test_evaluate_retrieval_full_probe_matches_exact(
        self, trained, corpus, ann_index
    ):
        c, j = corpus
        queries = [(s.decompiled_graph, s.task) for s in c[:4]]
        candidates = [(s.source_graph, s.task) for s in j]
        exact = evaluate_retrieval(trained, queries, candidates, index=ann_index)
        ann = evaluate_retrieval(
            trained,
            queries,
            candidates,
            index=ann_index,
            mode="ann",
            nprobe=ann_index.quantizer.num_cells,
        )
        assert ann.row() == exact.row()
        with pytest.raises(ValueError, match="index="):
            evaluate_retrieval(trained, queries, candidates, mode="ann")

    def test_serve_ann_smoke(self, trained, corpus, ann_index):
        import base64

        c, _ = corpus
        server = RetrievalServer(trained, ann_index, default_k=3, mode="ann", nprobe=2)
        graph = server.pipeline.graph_of_binary(c[0].binary_bytes)
        encoded = base64.b64encode(c[0].binary_bytes).decode()
        (resp,) = server.handle_batch(
            [{"id": "q", "binary_b64": encoded, "k": 3}]
        )
        want = ann_index.topk(graph, k=3, mode="ann", nprobe=2)
        assert [h["index"] for h in resp["hits"]] == [h.index for h in want]

    def test_serve_ann_requires_quantizer(self, trained, mono):
        with pytest.raises(ValueError, match="quantizer"):
            RetrievalServer(trained, mono, mode="ann")


class TestQuantizerSampling:
    def test_subsample_covers_periodic_layouts(self, trained, tmp_path):
        """Round-robin corpus layouts must not alias with the training
        subsample.

        With rows laid out ``i % blobs`` a *strided* subsample only ever
        sees the blobs whose id divides the stride, so every other blob
        is left without a nearby centroid and ANN recall collapses for
        queries landing there.  The seeded uniform sample has to leave
        every row close to its assigned centroid even when it can only
        afford a quarter of the corpus.
        """
        rng = np.random.default_rng(3)
        dim = 2 * trained.config.hidden_dim
        blobs, total = 8, 256
        centers = rng.standard_normal((blobs, dim)).astype(np.float32)
        rows = centers[np.arange(total) % blobs] + 0.01 * rng.standard_normal(
            (total, dim)
        ).astype(np.float32)
        mono = EmbeddingIndex(trained)
        mono.add_precomputed([f"{i:064x}" for i in range(total)], rows)
        sharded = ShardedEmbeddingIndex.from_index(mono, tmp_path / "idx", 64)
        quantizer = sharded.train_quantizer(blobs, seed=0, max_train_rows=64)
        assigned = quantizer.assign(rows)
        err = np.linalg.norm(rows - quantizer.centroids[assigned], axis=1)
        # Blob centers sit ~sqrt(2*dim) apart; an unsampled blob's rows
        # would be that far from their centroid.  Sampled blobs stay at
        # noise scale.
        assert err.max() < 1.0


class TestMigration:
    def test_v1_manifest_opens_and_scores_bit_identically(
        self, trained, corpus, mono, tmp_path
    ):
        root = tmp_path / "idx"
        ShardedEmbeddingIndex.from_index(mono, root, 3)
        # Rewrite the manifest exactly as the v1 writer left it: v1 had no
        # format_version / codec / quantizer keys at all.
        manifest = json.loads((root / MANIFEST_NAME).read_text())
        manifest["format"] = _FORMAT_V1
        for key in ("format_version", "codec", "quantizer"):
            manifest.pop(key, None)
        (root / MANIFEST_NAME).write_text(json.dumps(manifest))
        legacy = ShardedEmbeddingIndex.open(root, trained)
        assert legacy.codec == "float32" and legacy.quantizer is None
        queries = _queries(corpus)
        np.testing.assert_array_equal(
            legacy.scores_batch(queries), mono.scores_batch(queries)
        )
        # The v1 manifest is not rewritten by read-only use...
        assert json.loads((root / MANIFEST_NAME).read_text())["format"] == _FORMAT_V1
        # ...and mutation upgrades it in place to the current version.
        legacy.train_quantizer(2)
        upgraded = json.loads((root / MANIFEST_NAME).read_text())
        assert upgraded["format_version"] == 1  # version reflects origin
        assert upgraded["quantizer"]["num_cells"] == 2

    def test_format_version_recorded(self, trained, mono, tmp_path):
        root = tmp_path / "idx"
        ShardedEmbeddingIndex.from_index(mono, root, 3)
        manifest = json.loads((root / MANIFEST_NAME).read_text())
        assert manifest["format_version"] == INDEX_FORMAT_VERSION
        assert manifest["codec"] == "float32"

    def test_truncated_quantized_shard_fails_loudly(
        self, trained, corpus, mono, tmp_path
    ):
        root = tmp_path / "idx"
        ShardedEmbeddingIndex.from_index(mono, root, 3, codec="int8")
        shard_path = root / "shard-0000.npy"
        raw = shard_path.read_bytes()
        shard_path.write_bytes(raw[: len(raw) // 2])
        reopened = ShardedEmbeddingIndex.open(root, trained)
        with pytest.raises(ValueError, match="corrupt or truncated"):
            reopened.scores(_queries(corpus, n=1)[0])

    def test_corrupt_sidecar_fails_loudly(self, trained, corpus, mono, tmp_path):
        root = tmp_path / "idx"
        ShardedEmbeddingIndex.from_index(mono, root, 3, codec="int8")
        (root / "shard-0000.meta.json").write_text("{not json")
        reopened = ShardedEmbeddingIndex.open(root, trained)
        with pytest.raises(ValueError, match="sidecar"):
            reopened.scores(_queries(corpus, n=1)[0])

    def test_corrupt_cells_fails_loudly(self, trained, corpus, mono, tmp_path):
        root = tmp_path / "idx"
        ShardedEmbeddingIndex.from_index(mono, root, 3, cells=4)
        (root / "shard-0000.cells.npy").write_bytes(b"\x93NUMPY junk")
        reopened = ShardedEmbeddingIndex.open(root, trained)
        with pytest.raises(ValueError, match="train_quantizer"):
            reopened.topk(_queries(corpus, n=1)[0], k=1, mode="ann")

    def test_wrong_dtype_shard_rejected(self, trained, corpus, mono, tmp_path):
        root = tmp_path / "idx"
        ShardedEmbeddingIndex.from_index(mono, root, len(mono), codec="int8")
        entries = len(mono)
        np.save(root / "shard-0000.npy", np.zeros((entries, mono.dim), np.float16))
        reopened = ShardedEmbeddingIndex.open(root, trained)
        with pytest.raises(ValueError, match="dtype"):
            reopened.scores(_queries(corpus, n=1)[0])
