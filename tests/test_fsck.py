"""Tests for `repro fsck`: classification, quarantine, and repair.

The invariants under test: a healthy store scans clean; deliberate
corruption is classified (never silently passed); quarantine moves the
damage out of the store's namespace; artifact repair re-derives the entry
through the content-addressed pipeline and lands bit-identical bytes.
"""

import json
import shutil

import pytest

from repro.artifacts import ArtifactStore
from repro.cli import main
from repro.config import DataConfig, cpu_config, scaled, tiny_data_config
from repro.core.trainer import MatchTrainer
from repro.data.corpus import CorpusBuilder
from repro.data.pairs import build_pairs
from repro.exec.store import ModelStore
from repro.fsck import detect_kind, fsck
from repro.index import EmbeddingIndex, ShardedEmbeddingIndex


@pytest.fixture(scope="module")
def built_store(tmp_path_factory):
    """A small corpus-backed artifact store (pristine; tests copy it)."""
    root = tmp_path_factory.mktemp("fsck_store") / "artifacts"
    cfg = DataConfig(num_tasks=2, variants=1, seed=0)
    CorpusBuilder(cfg, store=ArtifactStore(root)).build(["c"])
    return root


@pytest.fixture(scope="module")
def trained(built_store):
    samples = CorpusBuilder(tiny_data_config()).build(["c", "java"])
    c = [s for s in samples if s.language == "c"]
    j = [s for s in samples if s.language == "java"]
    ds = build_pairs(c, j, "binary", "source", seed=0, max_pairs_per_task=3)
    trainer = MatchTrainer(
        scaled(cpu_config(), epochs=1, hidden_dim=16, embed_dim=16, num_layers=1)
    )
    trainer.train(ds)
    return trainer, j


def copy_store(src, tmp_path):
    dst = tmp_path / "store"
    shutil.copytree(src, dst)
    return dst


def corrupt_one(root):
    """Truncate the first store entry; returns (path, original_bytes)."""
    path = sorted(root.glob("*/*.npz"))[0]
    original = path.read_bytes()
    path.write_bytes(original[: len(original) // 2])
    return path, original


class TestDetectKind:
    def test_detects_each_layout(self, built_store, tmp_path):
        assert detect_kind(built_store) == "artifacts"
        (tmp_path / "idx").mkdir()
        (tmp_path / "idx" / "manifest.json").write_text("{}")
        assert detect_kind(tmp_path / "idx") == "index"
        entry = tmp_path / "models" / "ab" / ("ab" + "0" * 14 + ".npz")
        entry.parent.mkdir(parents=True)
        entry.write_bytes(b"")
        assert detect_kind(tmp_path / "models") == "models"
        with pytest.raises(ValueError, match="cannot tell"):
            (tmp_path / "empty").mkdir()
            detect_kind(tmp_path / "empty")


class TestArtifactFsck:
    def test_healthy_store_scans_clean(self, built_store):
        report = fsck(built_store)
        assert report["clean"]
        assert report["counts"].get("corrupt", 0) == 0
        assert report["counts"]["ok"] == len(list(built_store.glob("*/*.npz")))

    def test_corruption_is_classified(self, built_store, tmp_path):
        root = copy_store(built_store, tmp_path)
        corrupt_one(root)
        report = fsck(root)
        assert not report["clean"]
        assert report["counts"]["corrupt"] == 1

    def test_quarantine_moves_damage_out(self, built_store, tmp_path):
        root = copy_store(built_store, tmp_path)
        path, _ = corrupt_one(root)
        before = len(ArtifactStore(root))
        report = fsck(root, quarantine=True)
        assert not path.exists()
        quarantined = list((root / "quarantine").iterdir())
        assert len(quarantined) == 1
        assert quarantined[0].name.endswith(".quarantined")
        # The store no longer counts the quarantined entry.
        assert len(ArtifactStore(root)) == before - 1
        assert report["actions"]["quarantined"] == 1

    def test_repair_restores_bit_identical_bytes(self, built_store, tmp_path):
        root = copy_store(built_store, tmp_path)
        path, original = corrupt_one(root)
        report = fsck(root, repair=True)
        assert report["clean"]
        assert report["actions"]["repaired"] == 1
        assert path.read_bytes() == original  # re-derived, not restored
        assert fsck(root)["clean"]

    def test_orphan_tmps_are_reported_and_deleted(self, built_store, tmp_path):
        root = copy_store(built_store, tmp_path)
        orphan = root / "ab" / "half-written.tmp"
        orphan.parent.mkdir(exist_ok=True)
        orphan.write_bytes(b"junk")
        report = fsck(root)
        assert report["counts"]["orphaned-tmp"] == 1
        assert orphan.exists()  # scan-only never mutates
        report = fsck(root, quarantine=True)
        assert report["actions"]["deleted"] == 1
        assert not orphan.exists()


class TestModelFsck:
    @pytest.fixture()
    def model_root(self, trained, tmp_path):
        trainer, _ = trained
        store = ModelStore(tmp_path / "models")
        store.put("ab" + "0" * 14, trainer, {"name": "t"})
        return tmp_path / "models"

    def test_healthy_then_corrupt(self, model_root):
        assert fsck(model_root)["clean"]
        path = sorted(model_root.glob("*/*.npz"))[0]
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])
        report = fsck(model_root)
        assert not report["clean"]
        assert report["counts"]["corrupt"] == 1

    def test_models_are_unrepairable_but_quarantined(self, model_root):
        path = sorted(model_root.glob("*/*.npz"))[0]
        path.write_bytes(path.read_bytes()[:100])
        report = fsck(model_root, repair=True)
        assert not path.exists()
        assert report["actions"].get("unrepairable") == 1


class TestIndexFsck:
    @pytest.fixture()
    def index_root(self, trained, tmp_path):
        trainer, j = trained
        idx = EmbeddingIndex(trainer)
        idx.add(
            [s.source_graph for s in j],
            metas=[{"id": s.identifier} for s in j],
        )
        ShardedEmbeddingIndex.from_index(idx, tmp_path / "index", 3)
        return tmp_path / "index"

    def test_healthy_index_scans_clean(self, index_root):
        report = fsck(index_root)
        assert report["kind"] == "index"
        assert report["clean"]

    def test_corrupt_shard_is_flagged_and_quarantined(self, index_root):
        shard = sorted(index_root.glob("shard-*.npz"))[0]
        shard.write_bytes(shard.read_bytes()[:64])
        report = fsck(index_root)
        assert not report["clean"]
        assert report["counts"]["corrupt"] == 1
        fsck(index_root, quarantine=True)
        assert not shard.exists()
        assert list((index_root / "quarantine").iterdir())

    def test_manifest_untouched_by_quarantine(self, index_root):
        manifest = (index_root / "manifest.json").read_text()
        shard = sorted(index_root.glob("shard-*.npz"))[0]
        shard.write_bytes(b"not an npz")
        fsck(index_root, quarantine=True)
        assert (index_root / "manifest.json").read_text() == manifest


class TestFsckCli:
    def test_json_report_and_exit_codes(self, built_store, tmp_path, capsys):
        root = copy_store(built_store, tmp_path)
        assert main(["fsck", str(root), "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["clean"]
        corrupt_one(root)
        assert main(["fsck", str(root), "--json"]) == 1
        capsys.readouterr()
        assert main(["fsck", str(root), "--repair", "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["actions"]["repaired"] == 1

    def test_bad_kind_is_usage_error(self, tmp_path, capsys):
        (tmp_path / "empty").mkdir()
        with pytest.raises(SystemExit):
            main(["fsck", str(tmp_path / "empty"), "--kind", "nonsense"])
        capsys.readouterr()
        # Undetectable layout: a usage error (rc 2), not a crash.
        assert main(["fsck", str(tmp_path / "empty")]) == 2
        assert "cannot tell" in capsys.readouterr().err
