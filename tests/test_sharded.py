"""Tests for the sharded embedding index: exactness, laziness, growth.

The contract is the same as the monolithic index's, with one word
stronger: an index sharded from a monolithic one must return *bit
identical* scores (the shards hold the same float32 rows and the scoring
code path is shared), while loading shards lazily and growing via
``add_shard`` / ``merge`` without rewriting existing shard files.
"""

import json

import numpy as np
import pytest

from repro.config import cpu_config, scaled, tiny_data_config
from repro.core.trainer import MatchTrainer
from repro.data.corpus import CorpusBuilder
from repro.data.pairs import build_pairs
from repro.index import EmbeddingIndex, ShardedEmbeddingIndex, open_index
from repro.index.sharded import MANIFEST_NAME


@pytest.fixture(scope="module")
def corpus():
    samples = CorpusBuilder(tiny_data_config()).build(["c", "java"])
    c = [s for s in samples if s.language == "c"]
    j = [s for s in samples if s.language == "java"]
    return c, j


def _train(corpus, **overrides):
    c, j = corpus
    ds = build_pairs(c, j, "binary", "source", seed=0, max_pairs_per_task=3)
    cfg = scaled(
        cpu_config(), epochs=2, hidden_dim=16, embed_dim=16, num_layers=1, **overrides
    )
    trainer = MatchTrainer(cfg)
    trainer.train(ds)
    return trainer


@pytest.fixture(scope="module")
def trained(corpus):
    return _train(corpus)


@pytest.fixture()
def mono(trained, corpus):
    """Monolithic reference index over every java source graph."""
    _, j = corpus
    index = EmbeddingIndex(trained)
    index.add(
        [s.source_graph for s in j], metas=[{"id": s.identifier} for s in j]
    )
    return index


class TestFromIndexParity:
    def test_scores_bit_identical(self, trained, corpus, mono, tmp_path):
        c, _ = corpus
        sharded = ShardedEmbeddingIndex.from_index(mono, tmp_path / "idx", 3)
        assert sharded.num_shards == int(np.ceil(len(mono) / 3))
        assert len(sharded) == len(mono)
        queries = [s.decompiled_graph for s in c[:3]]
        np.testing.assert_array_equal(
            sharded.scores_batch(queries), mono.scores_batch(queries)
        )
        np.testing.assert_array_equal(
            sharded.scores(queries[0]), mono.scores(queries[0])
        )

    def test_topk_hits_identical(self, trained, corpus, mono, tmp_path):
        c, _ = corpus
        sharded = ShardedEmbeddingIndex.from_index(mono, tmp_path / "idx", 4)
        for sample in c[:2]:
            mono_hits = mono.topk(sample.decompiled_graph, k=5)
            shard_hits = sharded.topk(sample.decompiled_graph, k=5)
            assert [(h.index, h.score, h.key, h.meta) for h in shard_hits] == [
                (h.index, h.score, h.key, h.meta) for h in mono_hits
            ]

    def test_save_load_query_round_trip(self, trained, corpus, mono, tmp_path):
        """The full disk round trip: shard, reopen, query — same answers."""
        c, _ = corpus
        ShardedEmbeddingIndex.from_index(mono, tmp_path / "idx", 3)
        reopened = ShardedEmbeddingIndex.open(tmp_path / "idx", trained)
        query = c[0].decompiled_graph
        np.testing.assert_array_equal(reopened.scores(query), mono.scores(query))
        assert [h.meta for h in reopened.topk(query, k=3)] == [
            h.meta for h in mono.topk(query, k=3)
        ]

    def test_keys_metas_embeddings_aligned(self, trained, mono, tmp_path):
        sharded = ShardedEmbeddingIndex.from_index(mono, tmp_path / "idx", 3)
        assert sharded.keys == mono._keys
        assert sharded.metas == mono.metas
        np.testing.assert_array_equal(sharded.embeddings, mono.embeddings)


class TestLaziness:
    def test_open_loads_nothing(self, trained, mono, tmp_path):
        ShardedEmbeddingIndex.from_index(mono, tmp_path / "idx", 3)
        reopened = ShardedEmbeddingIndex.open(tmp_path / "idx", trained)
        assert reopened.resident_shards == 0
        assert len(reopened) == len(mono)  # sizing needs no shard loads
        assert reopened.num_shards > 1

    def test_query_materializes_shards(self, trained, corpus, mono, tmp_path):
        c, _ = corpus
        ShardedEmbeddingIndex.from_index(mono, tmp_path / "idx", 3)
        reopened = ShardedEmbeddingIndex.open(tmp_path / "idx", trained)
        reopened.scores(c[0].decompiled_graph)
        assert reopened.resident_shards == reopened.num_shards

    def test_entry_queries_skip_encoder_after_first_gather(
        self, trained, corpus, mono, tmp_path
    ):
        """Like the monolithic index, a query equal to an indexed entry
        reuses the stored embedding instead of re-running the encoder."""
        c, j = corpus
        ShardedEmbeddingIndex.from_index(mono, tmp_path / "idx", 3)
        reopened = ShardedEmbeddingIndex.open(tmp_path / "idx", trained)
        reopened.scores(c[0].decompiled_graph)  # first gather seeds the cache
        before = trained.model.encoder_graph_count
        reopened.scores(j[0].source_graph)  # an indexed entry
        assert trained.model.encoder_graph_count == before

    def test_shard_subset_query(self, trained, corpus, mono, tmp_path):
        """A subset query loads (and scores) only the selected shards."""
        c, _ = corpus
        sharded = ShardedEmbeddingIndex.from_index(mono, tmp_path / "idx", 3)
        reopened = ShardedEmbeddingIndex.open(tmp_path / "idx", trained)
        query = c[0].decompiled_graph
        subset = reopened.scores(query, shards=[0])
        assert reopened.resident_shards == 1
        np.testing.assert_array_equal(subset, sharded.scores(query)[:3])
        hits = reopened.topk(query, k=2, shards=[0])
        assert all(h.index < 3 for h in hits)
        with pytest.raises(ValueError, match="no shard"):
            reopened.scores(query, shards=[99])


class TestGrowth:
    def test_add_shard_from_graphs(self, trained, corpus, mono):
        _, j = corpus
        import tempfile

        with tempfile.TemporaryDirectory() as tmp:
            sharded = ShardedEmbeddingIndex.create(trained, tmp + "/idx")
            graphs = [s.source_graph for s in j]
            metas = [{"id": s.identifier} for s in j]
            sharded.add_shard(graphs[:3], metas[:3])
            sharded.add_shard(graphs[3:], metas[3:])
            assert sharded.num_shards == 2 and len(sharded) == len(j)
            assert sharded.metas == mono.metas
            np.testing.assert_allclose(
                sharded.embeddings, mono.embeddings, atol=1e-5
            )

    def test_add_shard_validation(self, trained, corpus, tmp_path):
        _, j = corpus
        sharded = ShardedEmbeddingIndex.create(trained, tmp_path / "idx")
        with pytest.raises(ValueError):
            sharded.add_shard()  # neither graphs nor index
        with pytest.raises(ValueError):
            sharded.add_shard([])  # empty shard
        with pytest.raises(ValueError):
            sharded.add_shard([j[0].source_graph], metas=[{}, {}])
        piece = EmbeddingIndex(trained)
        with pytest.raises(ValueError):
            sharded.add_shard(index=piece)  # empty prebuilt index

    def test_merge(self, trained, corpus, mono, tmp_path):
        _, j = corpus
        half = len(j) // 2
        left = EmbeddingIndex(trained)
        left.add_precomputed(
            mono._keys[:half], mono.embeddings[:half], mono._metas[:half]
        )
        right = EmbeddingIndex(trained)
        right.add_precomputed(
            mono._keys[half:], mono.embeddings[half:], mono._metas[half:]
        )
        a = ShardedEmbeddingIndex.from_index(left, tmp_path / "a", 2)
        b = ShardedEmbeddingIndex.from_index(right, tmp_path / "b", 2)
        a.merge(b)
        assert len(a) == len(mono)
        np.testing.assert_array_equal(a.embeddings, mono.embeddings)
        # The merged index persists: reopening sees all shards.
        reopened = ShardedEmbeddingIndex.open(tmp_path / "a", trained)
        assert reopened.num_shards == a.num_shards
        np.testing.assert_array_equal(reopened.embeddings, mono.embeddings)

    def test_merge_into_itself_rejected(self, trained, mono, tmp_path):
        a = ShardedEmbeddingIndex.from_index(mono, tmp_path / "a", 2)
        with pytest.raises(ValueError, match="itself"):
            a.merge(a)
        same_dir = ShardedEmbeddingIndex.open(tmp_path / "a", trained)
        with pytest.raises(ValueError, match="itself"):
            a.merge(same_dir)

    def test_create_refuses_overwrite(self, trained, tmp_path):
        ShardedEmbeddingIndex.create(trained, tmp_path / "idx")
        with pytest.raises(ValueError, match="already holds"):
            ShardedEmbeddingIndex.create(trained, tmp_path / "idx")

    def test_empty_index_queries(self, trained, corpus, tmp_path):
        c, _ = corpus
        sharded = ShardedEmbeddingIndex.create(trained, tmp_path / "idx")
        assert sharded.scores(c[0].decompiled_graph).shape == (0,)
        assert sharded.topk(c[0].decompiled_graph, k=3) == []
        assert sharded.topk_batch([c[0].decompiled_graph], k=3) == [[]]


class TestValidation:
    def test_foreign_model_rejected(self, trained, corpus, mono, tmp_path):
        ShardedEmbeddingIndex.from_index(mono, tmp_path / "idx", 3)
        other = _train(corpus, seed=99)
        with pytest.raises(ValueError, match="different model"):
            ShardedEmbeddingIndex.open(tmp_path / "idx", other)

    def test_non_index_dir_rejected(self, trained, tmp_path):
        with pytest.raises(ValueError, match="not a sharded index"):
            ShardedEmbeddingIndex.open(tmp_path, trained)

    def test_bad_manifest_rejected(self, trained, tmp_path):
        (tmp_path / MANIFEST_NAME).write_text(json.dumps({"format": "nope"}))
        with pytest.raises(ValueError, match="manifest"):
            ShardedEmbeddingIndex.open(tmp_path, trained)

    def test_tampered_shard_rejected(self, trained, corpus, mono, tmp_path):
        """A shard whose arrays disagree with the manifest fails loudly."""
        c, _ = corpus
        ShardedEmbeddingIndex.from_index(mono, tmp_path / "idx", 3)
        manifest = json.loads((tmp_path / "idx" / MANIFEST_NAME).read_text())
        manifest["shards"][0]["entries"] += 1
        (tmp_path / "idx" / MANIFEST_NAME).write_text(json.dumps(manifest))
        reopened = ShardedEmbeddingIndex.open(tmp_path / "idx", trained)
        with pytest.raises(ValueError, match="corrupt"):
            reopened.scores(c[0].decompiled_graph)

    def test_tag_round_trips(self, trained, mono, tmp_path):
        sharded = ShardedEmbeddingIndex.from_index(
            mono, tmp_path / "idx", 3, tag="corpus-v2"
        )
        assert sharded.tag == "corpus-v2"
        reopened = ShardedEmbeddingIndex.open(tmp_path / "idx", trained)
        assert reopened.tag == "corpus-v2"
        reopened.set_tag("corpus-v3")
        assert ShardedEmbeddingIndex.open(tmp_path / "idx", trained).tag == "corpus-v3"


class TestOpenIndex:
    def test_dispatches_on_disk_layout(self, trained, corpus, mono, tmp_path):
        _, j = corpus
        mono_path = tmp_path / "mono.npz"
        mono.save(mono_path)
        ShardedEmbeddingIndex.from_index(mono, tmp_path / "sharded", 3)
        assert isinstance(open_index(mono_path, trained), EmbeddingIndex)
        assert isinstance(
            open_index(tmp_path / "sharded", trained), ShardedEmbeddingIndex
        )


class TestShardSelection:
    def test_duplicate_shards_rejected(self, trained, corpus, mono, tmp_path):
        c, _ = corpus
        sharded = ShardedEmbeddingIndex.from_index(mono, tmp_path / "idx", 3)
        query = c[0].decompiled_graph
        with pytest.raises(ValueError, match="duplicate shard"):
            sharded.scores(query, shards=[0, 0])
        with pytest.raises(ValueError, match="duplicate shard"):
            sharded.topk(query, k=2, shards=[1, 0, 1])
        # A permutation without repeats is still fine.
        assert sharded.scores(query, shards=[1, 0]).shape[0] == 6


class _SpyArchive:
    """np.load stand-in that records the embeddings array it hands out."""

    def __init__(self, archive, handed):
        self._archive = archive
        self._handed = handed
        self.files = archive.files

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self._archive.close()

    def __getitem__(self, key):
        arr = self._archive[key]
        if key == "embeddings":
            self._handed["arr"] = arr
        return arr


class TestNoCopyLoads:
    """astype(copy=False) regression: loading float32 must not duplicate."""

    def test_monolithic_load_shares_archive_memory(
        self, trained, mono, tmp_path, monkeypatch
    ):
        import repro.index.embedding_index as ei

        path = tmp_path / "mono.npz"
        mono.save(path)
        handed = {}
        real_load = np.load
        monkeypatch.setattr(
            ei.np, "load", lambda p: _SpyArchive(real_load(p), handed)
        )
        reopened = EmbeddingIndex.load(path, trained)
        row = reopened._cache[reopened._keys[0]]
        assert np.shares_memory(row, handed["arr"])

    def test_shard_load_shares_archive_memory(
        self, trained, mono, tmp_path, monkeypatch
    ):
        import repro.index.sharded as sh

        ShardedEmbeddingIndex.from_index(mono, tmp_path / "idx", 3)
        reopened = ShardedEmbeddingIndex.open(tmp_path / "idx", trained)
        handed = {}
        real_load = np.load
        monkeypatch.setattr(
            sh.np, "load", lambda p: _SpyArchive(real_load(p), handed)
        )
        shard = reopened._ensure(0)
        assert shard.embeddings is handed["arr"]


class TestTieBreaking:
    """Equal scores break ties by entry key, not insertion position."""

    @pytest.fixture()
    def equal_corpus(self, trained, mono):
        # Every entry carries the same embedding row, so every query
        # scores every entry identically — the pure tie-break case.
        keys = sorted(mono._keys, reverse=True)  # insertion order != key order
        row = np.tile(mono.embeddings[:1], (len(keys), 1))
        index = EmbeddingIndex(trained)
        index.add_precomputed(keys, row, [{"key": k} for k in keys])
        return index

    def test_ranked_hits_order(self, trained, corpus, equal_corpus):
        c, _ = corpus
        hits = equal_corpus.topk(c[0].decompiled_graph, k=None)
        scores = [h.score for h in hits]
        assert len(set(scores)) == 1  # the premise: all tied
        assert [h.key for h in hits] == sorted(h.key for h in hits)

    def test_sharded_matches_monolithic_on_ties(
        self, trained, corpus, equal_corpus, tmp_path
    ):
        c, _ = corpus
        sharded = ShardedEmbeddingIndex.from_index(equal_corpus, tmp_path / "idx", 2)
        query = c[0].decompiled_graph
        mono_hits = equal_corpus.topk(query, k=4)
        shard_hits = sharded.topk(query, k=4)
        assert [(h.index, h.key) for h in shard_hits] == [
            (h.index, h.key) for h in mono_hits
        ]

    def test_ann_merge_matches_exact_on_ties(
        self, trained, corpus, equal_corpus, tmp_path
    ):
        # One shard, so exact and ANN score through identical batch
        # shapes: every score is bit-equal and only the tie-break orders
        # the hits.  (Across different shapes the pair head may round the
        # same row differently — that case is covered with a tolerance in
        # test_index_scale.py.)
        c, _ = corpus
        sharded = ShardedEmbeddingIndex.from_index(
            equal_corpus, tmp_path / "idx", len(equal_corpus), cells=2
        )
        query = c[0].decompiled_graph
        exact = sharded.topk(query, k=4)
        ann = sharded.topk(
            query, k=4, mode="ann", nprobe=sharded.quantizer.num_cells
        )
        assert len({h.score for h in ann}) == 1  # the premise: all tied
        assert [(h.index, h.key) for h in ann] == [
            (h.index, h.key) for h in exact
        ]
        assert [h.key for h in ann] == sorted(h.key for h in ann)
