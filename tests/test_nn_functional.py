"""Tests for functional ops: concat/stack/softmax/segment reductions."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import functional as F
from repro.nn.tensor import Tensor
from tests.helpers import check_gradients


def _t(shape, seed=0):
    rng = np.random.default_rng(seed)
    return Tensor(rng.standard_normal(shape).astype(np.float32), requires_grad=True)


class TestConcatStack:
    def test_concat_forward(self):
        a, b = Tensor([[1.0]]), Tensor([[2.0]])
        np.testing.assert_allclose(F.concat([a, b], axis=0).data, [[1.0], [2.0]])

    def test_concat_grad(self):
        a, b = _t((2, 3), 1), _t((4, 3), 2)
        check_gradients(lambda: (F.concat([a, b], axis=0) ** 2).sum(), [a, b])

    def test_concat_axis1_grad(self):
        a, b = _t((2, 3), 1), _t((2, 2), 2)
        check_gradients(lambda: (F.concat([a, b], axis=1) ** 2).sum(), [a, b])

    def test_stack_grad(self):
        a, b, c = _t((3,), 1), _t((3,), 2), _t((3,), 3)
        check_gradients(lambda: (F.stack([a, b, c]) ** 2).sum(), [a, b, c])

    def test_stack_new_axis(self):
        a, b = _t((2, 2), 1), _t((2, 2), 2)
        assert F.stack([a, b], axis=1).shape == (2, 2, 2)


class TestMaximum:
    def test_maximum_forward(self):
        a = Tensor([1.0, 5.0])
        b = Tensor([3.0, 2.0])
        np.testing.assert_allclose(F.maximum(a, b).data, [3.0, 5.0])

    def test_maximum_grad_routing(self):
        a = Tensor(np.array([1.0, 5.0], dtype=np.float32), requires_grad=True)
        b = Tensor(np.array([3.0, 2.0], dtype=np.float32), requires_grad=True)
        F.maximum(a, b).sum().backward()
        np.testing.assert_allclose(a.grad, [0.0, 1.0])
        np.testing.assert_allclose(b.grad, [1.0, 0.0])

    def test_elementwise_max_three(self):
        ts = [Tensor(np.full((2,), v, dtype=np.float32)) for v in (1.0, 3.0, 2.0)]
        np.testing.assert_allclose(F.elementwise_max(ts).data, [3.0, 3.0])


class TestSoftmax:
    def test_softmax_sums_to_one(self):
        x = _t((4, 5))
        s = F.softmax(x, axis=-1).data.sum(axis=-1)
        np.testing.assert_allclose(s, np.ones(4), rtol=1e-5)

    def test_softmax_grad(self):
        x = _t((2, 3))
        w = np.random.default_rng(9).standard_normal((2, 3)).astype(np.float32)
        check_gradients(lambda: (F.softmax(x, axis=-1) * Tensor(w)).sum(), [x])

    def test_softmax_large_values_stable(self):
        x = Tensor(np.array([[1000.0, 1000.0]], dtype=np.float32))
        out = F.softmax(x).data
        assert np.all(np.isfinite(out))
        np.testing.assert_allclose(out, [[0.5, 0.5]])

    def test_log_softmax_matches_log_of_softmax(self):
        x = _t((3, 4), 5)
        np.testing.assert_allclose(
            F.log_softmax(x).data, np.log(F.softmax(x).data), rtol=1e-4, atol=1e-5
        )


class TestDropout:
    def test_dropout_eval_identity(self):
        x = _t((10, 10))
        out = F.dropout(x, 0.5, np.random.default_rng(0), training=False)
        assert out is x

    def test_dropout_zero_p_identity(self):
        x = _t((4,))
        assert F.dropout(x, 0.0, np.random.default_rng(0), training=True) is x

    def test_dropout_scales_kept_values(self):
        x = Tensor(np.ones((1000,), dtype=np.float32))
        out = F.dropout(x, 0.5, np.random.default_rng(0), training=True)
        kept = out.data[out.data > 0]
        np.testing.assert_allclose(kept, 2.0)
        # roughly half survive
        assert 350 < kept.size < 650


class TestEmbedding:
    def test_lookup_forward(self):
        w = Tensor(np.arange(12, dtype=np.float32).reshape(4, 3), requires_grad=True)
        out = F.embedding_lookup(w, np.array([1, 3]))
        np.testing.assert_allclose(out.data, [[3, 4, 5], [9, 10, 11]])

    def test_lookup_grad_accumulates_repeats(self):
        w = _t((5, 2))
        idx = np.array([2, 2, 2])
        F.embedding_lookup(w, idx).sum().backward()
        np.testing.assert_allclose(w.grad[2], [3.0, 3.0])
        np.testing.assert_allclose(w.grad[0], [0.0, 0.0])

    def test_lookup_2d_indices(self):
        w = _t((7, 4))
        out = F.embedding_lookup(w, np.zeros((2, 3), dtype=np.int64))
        assert out.shape == (2, 3, 4)

    def test_lookup_rejects_float_indices(self):
        w = _t((3, 2))
        with pytest.raises(TypeError):
            F.embedding_lookup(w, np.array([0.5]))


class TestSegmentOps:
    def test_segment_sum_forward(self):
        x = Tensor(np.array([[1.0], [2.0], [3.0]], dtype=np.float32))
        out = F.segment_sum(x, np.array([0, 0, 1]), 2)
        np.testing.assert_allclose(out.data, [[3.0], [3.0]])

    def test_segment_sum_empty_segment_is_zero(self):
        x = Tensor(np.ones((2, 2), dtype=np.float32))
        out = F.segment_sum(x, np.array([0, 0]), 3)
        np.testing.assert_allclose(out.data[1:], 0.0)

    def test_segment_sum_grad(self):
        x = _t((5, 2))
        seg = np.array([0, 1, 1, 2, 0])
        check_gradients(lambda: (F.segment_sum(x, seg, 3) ** 2).sum(), [x])

    def test_segment_mean_forward(self):
        x = Tensor(np.array([[2.0], [4.0], [10.0]], dtype=np.float32))
        out = F.segment_mean(x, np.array([0, 0, 1]), 2)
        np.testing.assert_allclose(out.data, [[3.0], [10.0]])

    def test_segment_mean_grad(self):
        x = _t((4, 3))
        seg = np.array([0, 0, 1, 1])
        check_gradients(lambda: (F.segment_mean(x, seg, 2) ** 2).sum(), [x])

    def test_segment_max_forward(self):
        x = Tensor(np.array([[1.0], [5.0], [3.0]], dtype=np.float32))
        out = F.segment_max(x, np.array([0, 0, 1]), 2)
        np.testing.assert_allclose(out.data, [[5.0], [3.0]])

    def test_segment_max_empty_segment_is_zero(self):
        x = Tensor(np.ones((1, 2), dtype=np.float32))
        out = F.segment_max(x, np.array([0]), 2)
        np.testing.assert_allclose(out.data[1], 0.0)

    def test_segment_max_grad_distinct(self):
        rng = np.random.default_rng(3)
        x = Tensor(rng.permutation(10).astype(np.float32).reshape(5, 2), requires_grad=True)
        seg = np.array([0, 1, 0, 1, 2])
        check_gradients(lambda: (F.segment_max(x, seg, 3) ** 2).sum(), [x])

    def test_segment_softmax_sums_to_one_per_segment(self):
        x = _t((6,), 4)
        seg = np.array([0, 0, 1, 1, 1, 2])
        out = F.segment_softmax(x, seg, 3).data
        np.testing.assert_allclose(np.bincount(seg, weights=out), [1, 1, 1], rtol=1e-4)

    def test_segment_softmax_grad(self):
        x = _t((5,), 8)
        seg = np.array([0, 0, 1, 1, 1])
        w = np.random.default_rng(1).standard_normal(5).astype(np.float32)
        check_gradients(lambda: (F.segment_softmax(x, seg, 2) * Tensor(w)).sum(), [x])

    def test_segment_softmax_multihead(self):
        x = _t((4, 2), 6)
        seg = np.array([0, 0, 1, 1])
        out = F.segment_softmax(x, seg, 2).data
        sums = np.zeros((2, 2))
        np.add.at(sums, seg, out)
        np.testing.assert_allclose(sums, 1.0, rtol=1e-4)

    @settings(max_examples=25, deadline=None)
    @given(
        n=st.integers(min_value=1, max_value=30),
        segs=st.integers(min_value=1, max_value=5),
        seed=st.integers(min_value=0, max_value=100),
    )
    def test_property_segment_sum_equals_loop(self, n, segs, seed):
        rng = np.random.default_rng(seed)
        x = rng.standard_normal((n, 3)).astype(np.float32)
        seg = rng.integers(0, segs, size=n)
        out = F.segment_sum(Tensor(x), seg, segs).data
        expected = np.zeros((segs, 3), dtype=np.float64)
        for i in range(n):
            expected[seg[i]] += x[i]
        np.testing.assert_allclose(out, expected, rtol=1e-4, atol=1e-5)

    @settings(max_examples=25, deadline=None)
    @given(
        n=st.integers(min_value=1, max_value=30),
        segs=st.integers(min_value=1, max_value=5),
        seed=st.integers(min_value=0, max_value=100),
    )
    def test_property_segment_max_equals_loop(self, n, segs, seed):
        rng = np.random.default_rng(seed)
        x = rng.standard_normal((n, 2)).astype(np.float32)
        seg = rng.integers(0, segs, size=n)
        out = F.segment_max(Tensor(x), seg, segs).data
        for s in range(segs):
            rows = x[seg == s]
            if rows.size:
                np.testing.assert_allclose(out[s], rows.max(axis=0), rtol=1e-5)
            else:
                np.testing.assert_allclose(out[s], 0.0)


class TestUtility:
    def test_one_hot(self):
        out = F.one_hot(np.array([0, 2]), 3)
        np.testing.assert_allclose(out, [[1, 0, 0], [0, 0, 1]])

    def test_clip_grad_norm_scales(self):
        t = _t((4,), 2)
        (t * 100.0).sum().backward()
        pre = F.clip_grad_norm([t], max_norm=1.0)
        assert pre > 1.0
        assert np.linalg.norm(t.grad) == pytest.approx(1.0, rel=1e-4)

    def test_clip_grad_norm_noop_below_max(self):
        t = _t((2,), 3)
        t.grad = np.array([0.1, 0.1], dtype=np.float32)
        F.clip_grad_norm([t], max_norm=10.0)
        np.testing.assert_allclose(t.grad, [0.1, 0.1])

    def test_pad_sequences(self):
        seqs = [np.array([1, 2, 3]), np.array([4])]
        out = F.pad_sequences(seqs, length=4, pad_value=0)
        np.testing.assert_array_equal(out, [[1, 2, 3, 0], [4, 0, 0, 0]])

    def test_pad_sequences_truncates(self):
        out = F.pad_sequences([np.arange(10)], length=3, pad_value=-1)
        np.testing.assert_array_equal(out, [[0, 1, 2]])
