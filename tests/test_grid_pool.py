"""Cross-start-method parity and fault tests for the warm worker pool.

The pool's contract (repro.exec.pool) is that *scheduling cannot change
results*: ``run_grid`` output must be bit-identical whether jobs run
serially, on fork workers, or on spawn workers, in any submission order,
with any worker count — and a worker killed mid-job must be respawned and
its job retried without corrupting the model store or leaking a shared-
memory segment.  This suite pins each clause.
"""

import multiprocessing
import os

import numpy as np
import pytest

from repro.config import cpu_config, scaled, tiny_data_config
from repro.eval.experiments import build_crosslang_dataset
from repro.exec import (
    ExperimentSpec,
    JobFailed,
    ModelStore,
    WarmPool,
    run_grid,
)
from repro.exec.pool import WORKER_JOB_SITE, SharedRef, ping
from repro.utils.shm import SharedBlock, leaked_segments

#: Every start method this platform offers that the pool must support.
START_METHODS = [
    m for m in ("fork", "spawn") if m in multiprocessing.get_all_start_methods()
]

needs_fork = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="fork start method unavailable on this platform",
)

# Probability-0.5 crash seed whose per-worker draw stream at the pool job
# site is [False, True, False]: the first worker survives job 1, dies on
# job 2, and its respawned replacement (fresh per-process counters, n=0)
# completes the retry.  Derived from the fault plan's documented formula:
# derive_rng(seed, "fault", "crash", site, n).random() < prob.
CRASH_SEED = 23
CRASH_AFTER_ONE = f"crash:{WORKER_JOB_SITE}@0.5~{CRASH_SEED}"
CRASH_ALWAYS = f"crash:{WORKER_JOB_SITE}"


@pytest.fixture(scope="module")
def dataset():
    ds, _ = build_crosslang_dataset(tiny_data_config(seed=5), ["c"], ["java"])
    return ds


def tiny_config(**overrides):
    return scaled(cpu_config(seed=5), epochs=2, **overrides)


def grid_jobs(dataset, seeds):
    return [
        (ExperimentSpec(f"pool-{seed}", tiny_config(seed=seed)), dataset)
        for seed in seeds
    ]


def states_by_fingerprint(runs):
    return {r.fingerprint: r.trainer.model.state_dict() for r in runs}


def assert_runs_bitwise_equal(expected, actual):
    assert [r.fingerprint for r in expected] == [r.fingerprint for r in actual]
    for e_run, a_run in zip(expected, actual):
        e_state = e_run.trainer.model.state_dict()
        a_state = a_run.trainer.model.state_dict()
        assert sorted(e_state) == sorted(a_state)
        for key in e_state:
            np.testing.assert_array_equal(e_state[key], a_state[key])


def store_temp_files(store):
    return [p for p in store.root.rglob(".*") if p.is_file() and ".tmp" in p.name]


def _raise_value_error(message):
    raise ValueError(message)


class TestCrossStartMethodParity:
    """One serial reference, every start method bit-identical to it."""

    @pytest.fixture(scope="class")
    def serial(self, dataset, tmp_path_factory):
        store = ModelStore(tmp_path_factory.mktemp("serial-store"))
        return run_grid(grid_jobs(dataset, (1, 2)), store=store)

    @pytest.mark.parametrize("start_method", START_METHODS)
    def test_pool_matches_serial_bitwise(
        self, dataset, tmp_path, serial, start_method
    ):
        parallel = run_grid(
            grid_jobs(dataset, (1, 2)),
            store=ModelStore(tmp_path),
            workers=2,
            start_method=start_method,
        )
        assert_runs_bitwise_equal(serial, parallel)

    @pytest.mark.parametrize("start_method", START_METHODS)
    def test_shuffled_submission_order_is_invisible(
        self, dataset, tmp_path, serial, start_method
    ):
        shuffled = run_grid(
            grid_jobs(dataset, (2, 1)),  # reversed submission order
            store=ModelStore(tmp_path),
            workers=2,
            start_method=start_method,
        )
        by_fp = states_by_fingerprint(shuffled)
        assert by_fp.keys() == states_by_fingerprint(serial).keys()
        for run in serial:
            for key, arr in run.trainer.model.state_dict().items():
                np.testing.assert_array_equal(arr, by_fp[run.fingerprint][key])

    def test_duplicate_fingerprints_train_once(self, dataset, tmp_path):
        spec = ExperimentSpec("dup", tiny_config(seed=9))
        store = ModelStore(tmp_path)
        runs = run_grid(
            [(spec, dataset), (spec, dataset), (spec, dataset)],
            store=store,
            workers=2,
        )
        assert len(runs) == 3
        assert len({r.fingerprint for r in runs}) == 1
        assert len(store) == 1
        assert_runs_bitwise_equal(runs[:1] * 3, runs)

    def test_more_workers_than_jobs(self, dataset, tmp_path, serial):
        parallel = run_grid(
            grid_jobs(dataset, (1, 2)), store=ModelStore(tmp_path), workers=6
        )
        assert_runs_bitwise_equal(serial, parallel)


class TestSharedObjects:
    @pytest.mark.parametrize("start_method", START_METHODS)
    def test_shared_ref_resolves_to_equal_object(self, start_method):
        payload = {"rows": list(range(50)), "tag": "shared"}
        with WarmPool(1, start_method=start_method) as pool:
            pool.share("obj", payload)
            results = pool.run(ping, [(SharedRef("obj"),), (SharedRef("obj"),)])
        assert results == [payload, payload]

    @needs_fork
    def test_unshare_then_reshare_same_key_serves_new_object(self):
        with WarmPool(1, start_method="fork") as pool:
            pool.share("k", "first")
            assert pool.run(ping, [(SharedRef("k"),)]) == ["first"]
            pool.unshare("k")
            pool.share("k", "second")
            assert pool.run(ping, [(SharedRef("k"),)]) == ["second"]

    def test_unpublished_ref_is_a_clean_job_error(self):
        with WarmPool(1) as pool:
            with pytest.raises(JobFailed, match="not published"):
                pool.run(ping, [(SharedRef("never-shared"),)])
            assert pool.run(ping, [(7,)]) == [7]  # pool survived the error

    @pytest.mark.parametrize("start_method", START_METHODS)
    def test_share_lifecycle_leaves_no_segments(self, start_method):
        before = set(leaked_segments())
        with WarmPool(1, start_method=start_method) as pool:
            pool.share("a", b"x" * 4096)
            pool.share("b", b"y" * 4096)
            assert pool.run(ping, [(SharedRef("a"),)]) == [b"x" * 4096]
            pool.unshare("a")
            # Only the still-published "b" segment remains.
            assert set(leaked_segments()) - before == {pool._shares["b"].name}
        # close() unlinked the never-unshared "b" segment too.
        assert set(leaked_segments()) == before

    def test_shared_block_roundtrip_and_unlink(self):
        before = set(leaked_segments())
        block = SharedBlock.from_bytes(b"payload-bytes")
        try:
            attached = SharedBlock.attach(block.name, block.nbytes)
            assert bytes(attached.buf) == b"payload-bytes"
            attached.close()
        finally:
            block.close()
            block.unlink()
            block.unlink()  # idempotent
        assert set(leaked_segments()) == before


class TestFaultTolerance:
    def test_killed_worker_is_respawned_and_job_retried(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", CRASH_AFTER_ONE)
        with WarmPool(1) as pool:
            assert pool.run(ping, [(1,), (2,)]) == [1, 2]
            assert pool.respawns == 1
            assert pool.jobs_done == 2

    def test_grid_survives_worker_crash_without_store_damage(
        self, dataset, tmp_path, monkeypatch
    ):
        reference = run_grid(
            grid_jobs(dataset, (1, 2)), store=ModelStore(tmp_path / "ref")
        )
        monkeypatch.setenv("REPRO_FAULTS", CRASH_AFTER_ONE)
        before = set(leaked_segments())
        store = ModelStore(tmp_path / "faulty")
        with WarmPool(1) as pool:
            runs = run_grid(grid_jobs(dataset, (1, 2)), store=store, pool=pool)
            assert pool.respawns == 1
        assert_runs_bitwise_equal(reference, runs)
        # Every committed entry verifies against its sidecar; the killed
        # worker left no half-written temp and no shared-memory segment.
        for run in runs:
            assert ModelStore.verify_checksum(store.path_for(run.fingerprint))
        assert store_temp_files(store) == []
        assert set(leaked_segments()) == before

    def test_relentless_crasher_fails_cleanly_then_pool_recovers(
        self, monkeypatch
    ):
        before = set(leaked_segments())
        monkeypatch.setenv("REPRO_FAULTS", CRASH_ALWAYS)
        with WarmPool(1) as pool:
            pool.share("k", [1, 2, 3])
            with pytest.raises(JobFailed, match="retries"):
                pool.run(ping, [(SharedRef("k"),)])
            monkeypatch.delenv("REPRO_FAULTS")
            # Respawned (fault-free) workers serve the next batch.
            assert pool.run(ping, [(SharedRef("k"),), (9,)]) == [[1, 2, 3], 9]
        assert set(leaked_segments()) == before

    @needs_fork
    def test_clean_job_exception_fails_fast_without_retry(self):
        with WarmPool(1, start_method="fork") as pool:
            with pytest.raises(JobFailed, match="failed cleanly.*boom"):
                pool.run(_raise_value_error, [("boom",)])
            assert pool.respawns == 0  # an exception is an answer, not a death
            assert pool.run(ping, [(3,)]) == [3]

    @needs_fork
    def test_hung_worker_hits_the_job_timeout(self):
        pool = WarmPool(1, start_method="fork", job_timeout=0.5, max_job_retries=0)
        with pool:
            with pytest.raises(JobFailed, match="hung past"):
                pool.run(_sleep_forever, [()])


def _sleep_forever():
    import time

    time.sleep(60)


class TestPoolBasics:
    def test_rejects_zero_workers(self):
        with pytest.raises(ValueError, match="workers"):
            WarmPool(0)

    def test_closed_pool_refuses_jobs(self):
        pool = WarmPool(1)
        pool.close()
        pool.close()  # idempotent
        with pytest.raises(RuntimeError, match="closed"):
            pool.run(ping, [(1,)])

    def test_results_keep_payload_order(self):
        with WarmPool(2) as pool:
            values = list(range(10))
            assert pool.run(ping, [(v,) for v in values]) == values

    def test_workers_stay_resident_across_batches(self):
        with WarmPool(2) as pool:
            pool.run(ping, [(1,), (2,), (3,)])
            pids_a = {w.proc.pid for w in pool._pool}
            pool.run(ping, [(4,), (5,), (6,)])
            pids_b = {w.proc.pid for w in pool._pool}
        assert pids_a == pids_b
        assert pool.respawns == 0

    def test_empty_batch(self):
        with WarmPool(1) as pool:
            assert pool.run(ping, []) == []
