"""Tests for ProGraML-style graph construction, batching, and the tokenizer."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs.batch import batch_graphs
from repro.graphs.programl import (
    CALL,
    CONTROL,
    DATA,
    NODE_CONSTANT,
    NODE_INSTRUCTION,
    NODE_VARIABLE,
    build_graph,
)
from repro.ir.lowering import lower_program
from repro.lang.generator import SolutionGenerator
from repro.lang.minic import parse_minic
from repro.tokenize.tokenizer import PAD, UNK, VAR, IRTokenizer, normalize_ir_text

GEN = SolutionGenerator(seed=5)


def _graph(src="int f(int x) { return x + 1; } int main() { printf(\"%d\\n\", f(2)); return 0; }"):
    return build_graph(lower_program(parse_minic(src)))


class TestGraphConstruction:
    def test_has_three_node_types(self):
        g = _graph()
        types = set(g.node_types)
        assert NODE_INSTRUCTION in types
        assert NODE_VARIABLE in types
        assert NODE_CONSTANT in types

    def test_has_three_relations(self):
        g = _graph()
        assert set(g.edges) == {CONTROL, DATA, CALL}
        assert g.edge_count(CONTROL) > 0
        assert g.edge_count(DATA) > 0
        assert g.edge_count(CALL) > 0

    def test_edge_indices_in_range(self):
        g = _graph()
        for rel, e in g.edges.items():
            if e.shape[1]:
                assert e.min() >= 0 and e.max() < g.num_nodes

    def test_positions_match_edges(self):
        g = _graph()
        for rel in g.edges:
            assert g.positions[rel].shape[0] == g.edges[rel].shape[1]

    def test_full_text_is_instruction_text(self):
        g = _graph()
        instr_fulls = [
            f for f, t in zip(g.node_full_texts, g.node_types) if t == NODE_INSTRUCTION
        ]
        assert any("add i32" in f for f in instr_fulls)

    def test_text_is_opcode(self):
        g = _graph()
        instr_texts = [
            t for t, ty in zip(g.node_texts, g.node_types) if ty == NODE_INSTRUCTION
        ]
        assert "add" in instr_texts
        assert "ret" in instr_texts

    def test_call_edge_to_callee_entry(self):
        g = _graph()
        assert g.edge_count(CALL) >= 2  # call->entry and ret->call

    def test_constants_are_shared(self):
        src = "int f() { return 7 + 7; }"
        g = _graph(src)
        const_fulls = [
            f for f, t in zip(g.node_full_texts, g.node_types) if t == NODE_CONSTANT
        ]
        assert const_fulls.count("i32 7") == 1

    def test_external_declaration_node(self):
        sf = GEN.generate("sum_array", 0, "java")
        g = build_graph(lower_program(sf.program))
        assert any("declare" in f for f in g.node_full_texts)

    def test_branch_positions_distinguish_targets(self):
        src = "int f(int x) { if (x > 0) { return 1; } return 0; }"
        g = _graph(src)
        ctrl_pos = g.positions[CONTROL]
        assert 1 in ctrl_pos  # the false edge of the condbr

    def test_java_graph_bigger_than_c(self):
        c = build_graph(lower_program(GEN.generate("sum_array", 0, "c").program))
        j = build_graph(lower_program(GEN.generate("sum_array", 0, "java").program))
        assert j.num_nodes > c.num_nodes  # the paper's Figure 4 asymmetry


class TestBatching:
    def test_batch_offsets(self):
        g1, g2 = _graph(), _graph("int g() { return 2; }")
        b = batch_graphs([g1, g2])
        assert b.num_nodes == g1.num_nodes + g2.num_nodes
        assert b.num_graphs == 2
        # second graph's edges shifted past first graph's nodes
        e2 = b.edges[CONTROL][:, g1.edge_count(CONTROL):]
        if e2.size:
            assert e2.min() >= g1.num_nodes

    def test_graph_ids(self):
        g1, g2 = _graph(), _graph("int g() { return 2; }")
        b = batch_graphs([g1, g2])
        assert (b.graph_ids[: g1.num_nodes] == 0).all()
        assert (b.graph_ids[g1.num_nodes :] == 1).all()

    def test_single_graph_batch(self):
        g = _graph()
        b = batch_graphs([g])
        assert b.num_nodes == g.num_nodes
        np.testing.assert_array_equal(b.edges[DATA], g.edges[DATA])


class TestTokenizer:
    def test_var_normalization(self):
        assert "[VAR]" in normalize_ir_text("%5 = add i32 %x, 3")
        assert "%5" not in normalize_ir_text("%5 = add i32 %x, 3")

    def test_label_normalization(self):
        out = normalize_ir_text("br label %bb3")
        assert "[LBL]" in out

    def test_train_builds_vocab(self):
        tok = IRTokenizer(max_vocab=64).train(["add i32", "sub i32", "mul i64"])
        assert tok.vocab_size <= 64
        assert "add" in tok.vocab and "i32" in tok.vocab

    def test_vocab_cap_respected(self):
        texts = [f"op{i} i32" for i in range(5000)]
        tok = IRTokenizer(max_vocab=128).train(texts)
        assert tok.vocab_size == 128

    def test_truncation_power_of_two(self):
        tok = IRTokenizer().train(["a b c d e", "a b c"])
        assert tok.truncation_length in (4, 8)  # mean 4 → 4

    def test_encode_unknown_maps_to_unk(self):
        tok = IRTokenizer(max_vocab=16).train(["add i32"])
        ids = tok.encode("frobnicate")
        assert ids == [tok.vocab[UNK]]

    def test_encode_batch_padding(self):
        tok = IRTokenizer().train(["add i32 i32 i32 add add add add"])
        out = tok.encode_batch(["add", "add i32 i32"], length=4)
        assert out.shape == (2, 4)
        assert out[0, 1] == tok.vocab[PAD]

    def test_encode_batch_truncates(self):
        tok = IRTokenizer().train(["a b"])
        out = tok.encode_batch(["a " * 50], length=4)
        assert out.shape[1] == 4

    def test_state_roundtrip(self):
        tok = IRTokenizer(max_vocab=32).train(["add i32 %1, %2"])
        tok2 = IRTokenizer.from_state(tok.state())
        assert tok2.encode("add i32") == tok.encode("add i32")
        assert tok2.truncation_length == tok.truncation_length

    @settings(max_examples=20, deadline=None)
    @given(st.text(alphabet="abc %123=,", min_size=0, max_size=40))
    def test_property_encode_never_crashes(self, text):
        tok = IRTokenizer(max_vocab=32).train(["add i32 %1"])
        ids = tok.encode(text)
        assert all(0 <= i < tok.vocab_size for i in ids)
