"""Tests for the GraphBinMatch model, trainer, baselines, and pipeline."""

import numpy as np
import pytest

from repro.baselines import B2SFinder, BinPro, LICCA, XLIRModel
from repro.baselines.xlir import XLIRConfig, linearize
from repro.config import cpu_config, scaled, tiny_data_config
from repro.core.model import GraphBinMatch
from repro.core.node_features import node_strings, train_tokenizer
from repro.core.pipeline import MatcherPipeline, compile_to_views
from repro.core.trainer import MatchTrainer
from repro.data.corpus import CorpusBuilder
from repro.data.pairs import build_pairs
from repro.graphs.batch import batch_graphs
from repro.lang.generator import SolutionGenerator


@pytest.fixture(scope="module")
def dataset():
    builder = CorpusBuilder(tiny_data_config())
    samples = builder.build(["c", "java"])
    c = [s for s in samples if s.language == "c"]
    j = [s for s in samples if s.language == "java"]
    return build_pairs(c, j, "binary", "source", seed=0, max_pairs_per_task=4)


@pytest.fixture(scope="module")
def trained(dataset):
    cfg = scaled(cpu_config(), epochs=8, hidden_dim=32, embed_dim=24, num_layers=2)
    trainer = MatchTrainer(cfg)
    report = trainer.train(dataset)
    return trainer, report


class TestModelForward:
    def test_scores_in_unit_interval(self, dataset, trained):
        trainer, _ = trained
        scores = trainer.predict(dataset.test)
        assert len(scores) == len(dataset.test)
        assert np.all((scores >= 0) & (scores <= 1))

    def test_training_reduces_loss(self, trained):
        _, report = trained
        assert report.epoch_losses[-1] < report.epoch_losses[0]

    def test_odd_graph_count_rejected(self, dataset, trained):
        trainer, _ = trained
        model = trainer.model
        batch = batch_graphs([dataset.test[0].left])
        from repro.core.node_features import encode_nodes

        ids = encode_nodes(trainer.tokenizer, batch)
        with pytest.raises(ValueError):
            model(batch, ids)

    def test_pad_never_wins_max(self, trained, dataset):
        trainer, _ = trained
        model = trainer.model
        # All-PAD row (id 0) must embed to zeros, not -1e9 garbage.
        ids = np.zeros((2, 4), dtype=np.int64)
        out = model.node_features(ids).data
        np.testing.assert_allclose(out, 0.0)

    def test_deterministic_inference(self, dataset, trained):
        trainer, _ = trained
        a = trainer.predict(dataset.test[:4])
        b = trainer.predict(dataset.test[:4])
        np.testing.assert_allclose(a, b)

    def test_feature_mode_text_changes_tokens(self, dataset):
        full = train_tokenizer([dataset.train[0].left], mode="full_text", max_vocab=128)
        text = train_tokenizer([dataset.train[0].left], mode="text", max_vocab=128)
        assert full.vocab_size > text.vocab_size  # full_text is richer

    def test_learns_better_than_chance(self, dataset, trained):
        trainer, _ = trained
        scores = trainer.predict(dataset.train[:20])
        labels = np.array([p.label for p in dataset.train[:20]])
        from repro.eval.metrics import classification_metrics

        m = classification_metrics(labels, scores >= 0.5)
        assert m.accuracy > 0.6  # on (seen) training pairs


class TestFusedTrainingRegression:
    """The fused optimizer path must stay exact and must not cost epochs.

    Guards the regression where arena scatter/gather copies made fused
    epochs *slower* than the reference loop: gradients now accumulate
    straight into the arena's flat buffer, so the fused step does strictly
    less copying per batch.
    """

    @pytest.fixture(scope="class")
    def reports(self, dataset):
        cfg = scaled(
            cpu_config(seed=3), epochs=4, hidden_dim=32, embed_dim=24, num_layers=2
        )
        ref = MatchTrainer(cfg)
        ref_report = ref.train(dataset, early_stopping=True, fused_optimizer=False)
        fused = MatchTrainer(cfg)
        fused_report = fused.train(dataset, early_stopping=True, fused_optimizer=True)
        return ref, ref_report, fused, fused_report

    def test_curves_and_weights_bit_identical(self, reports):
        ref, ref_report, fused, fused_report = reports
        assert ref_report.epoch_losses == fused_report.epoch_losses  # diff == 0
        assert ref_report.valid_f1_curve == fused_report.valid_f1_curve
        assert ref_report.best_epoch == fused_report.best_epoch
        ref_state = ref.model.state_dict()
        fused_state = fused.model.state_dict()
        for key in ref_state:
            np.testing.assert_array_equal(ref_state[key], fused_state[key])

    def test_backward_writes_into_the_arena(self, reports):
        _, _, fused, _ = reports
        arena = fused.optimizer.arena
        assert arena is not None
        for p, gview in zip(fused.optimizer.params, arena.grad_views):
            assert p.grad_buffer is gview  # backward accumulates in place

    def test_valid_time_is_accounted_per_epoch(self, reports):
        _, ref_report, _, fused_report = reports
        for report in (ref_report, fused_report):
            assert len(report.epoch_valid_seconds) == len(report.epoch_seconds)
            for total, valid in zip(report.epoch_seconds, report.epoch_valid_seconds):
                assert 0.0 <= valid <= total

    def test_fused_epochs_not_slower(self, reports):
        _, ref_report, _, fused_report = reports

        def min_train_epoch(report):
            return min(
                t - v
                for t, v in zip(report.epoch_seconds, report.epoch_valid_seconds)
            )

        # Min-over-epochs of the train-only time (every epoch is identical
        # work) is the noise-robust estimator; the 1.25 headroom absorbs
        # scheduler jitter at test scale while still catching a real
        # regression like the old scatter/gather copies.
        assert min_train_epoch(fused_report) <= 1.25 * min_train_epoch(ref_report)


class TestBaselines:
    def test_linearize_contains_ir(self, dataset):
        text = linearize(dataset.train[0].right)
        assert "i32" in text

    def test_xlir_lstm_runs(self, dataset):
        cfg = XLIRConfig(encoder="lstm", epochs=1, max_tokens=32, embed_dim=16, hidden_dim=16)
        model = XLIRModel(cfg)
        losses = model.fit(dataset.train[:16])
        assert len(losses) == 1
        scores = model.score(dataset.test[:6])
        assert np.all((scores >= 0) & (scores <= 1))

    def test_xlir_transformer_runs(self, dataset):
        cfg = XLIRConfig(encoder="transformer", epochs=1, max_tokens=32, embed_dim=16, hidden_dim=16)
        model = XLIRModel(cfg)
        model.fit(dataset.train[:16])
        scores = model.score(dataset.test[:6])
        assert np.all((scores >= 0) & (scores <= 1))

    def test_xlir_unknown_encoder_rejected(self):
        with pytest.raises(ValueError):
            XLIRModel(XLIRConfig(encoder="mamba")).fit([])

    def test_binpro_scores(self, dataset):
        model = BinPro()
        model.fit(dataset.train)
        scores = model.score(dataset.test)
        assert np.all((scores >= 0) & (scores <= 1))

    def test_b2sfinder_separates_somewhat(self, dataset):
        model = B2SFinder()
        model.fit(dataset.train)
        scores = model.score(dataset.train)
        labels = np.array([p.label for p in dataset.train])
        # same-task pairs should look at least a bit more similar on average
        assert scores[labels == 1].mean() > scores[labels == 0].mean()

    def test_licca_identical_graph_high(self, dataset):
        p = dataset.train[0]
        from repro.data.pairs import MatchingPair

        twin = MatchingPair(p.right, p.right, 1, p.task_right, p.task_right)
        score = LICCA().score([twin])[0]
        assert score > 0.95


class TestPipeline:
    C_SRC = (
        "int triple(int x) { return x * 3; }\n"
        'int main() { printf("%d\\n", triple(5)); return 0; }\n'
    )

    def test_compile_to_views(self):
        views = compile_to_views(self.C_SRC, "c")
        assert views.source_graph.num_nodes > 0
        assert views.decompiled_graph.num_nodes > views.source_graph.num_nodes
        assert len(views.binary_bytes) > 0

    def test_unsupported_language(self):
        with pytest.raises(ValueError):
            compile_to_views("fn main() {}", "rust")

    def test_pipeline_requires_trained_model(self):
        with pytest.raises(ValueError):
            MatcherPipeline(MatchTrainer(cpu_config()))

    def test_match_and_rank(self, trained):
        trainer, _ = trained
        pipe = MatcherPipeline(trainer)
        views = compile_to_views(self.C_SRC, "c")
        score = pipe.match_binary_to_source(views.binary_bytes, self.C_SRC, "c")
        assert 0.0 <= score <= 1.0
        gen = SolutionGenerator(seed=4)
        other = gen.generate("gcd", 0, "java").text
        ranked = pipe.rank_sources(views.binary_bytes, [(self.C_SRC, "c"), (other, "java")])
        assert len(ranked) == 2
        assert {i for i, _ in ranked} == {0, 1}
