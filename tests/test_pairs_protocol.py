"""Tests for the pairing protocol: eval negative ratio, hard negatives,
and quantile-aware threshold calibration."""

import numpy as np
import pytest

from repro.config import DataConfig, tiny_data_config
from repro.data.corpus import CorpusBuilder
from repro.data.pairs import build_pairs, split_tasks
from repro.eval.threshold import _candidate_thresholds, best_threshold, sweep_thresholds


@pytest.fixture(scope="module")
def samples():
    # 12 tasks so the 6:2:2 split leaves >= 2 tasks in every split —
    # single-task eval splits cannot form cross-task negatives at all.
    cfg = DataConfig(num_tasks=12, variants=2, seed=3, compile_failure_pct=0)
    return CorpusBuilder(cfg).build(["c", "java"])


def _sides(samples):
    c = [s for s in samples if s.language == "c"]
    j = [s for s in samples if s.language == "java"]
    return c, j


class TestEvalNegRatio:
    def test_train_always_balanced(self, samples):
        c, j = _sides(samples)
        ds = build_pairs(c, j, "binary", "source", seed=0, eval_neg_ratio=3.0)
        labels = [p.label for p in ds.train]
        assert sum(labels) == len(labels) - sum(labels)

    def test_eval_ratio_applied(self, samples):
        c, j = _sides(samples)
        ds = build_pairs(c, j, "binary", "source", seed=0, eval_neg_ratio=3.0)
        for split in (ds.valid, ds.test):
            pos = sum(p.label for p in split)
            neg = len(split) - pos
            assert neg == pytest.approx(3 * pos, abs=1)

    def test_ratio_one_is_balanced_everywhere(self, samples):
        c, j = _sides(samples)
        ds = build_pairs(c, j, "binary", "source", seed=0, eval_neg_ratio=1.0)
        for split in (ds.train, ds.valid, ds.test):
            pos = sum(p.label for p in split)
            assert pos == pytest.approx(len(split) - pos, abs=1)


class TestHardNegatives:
    def test_negatives_are_cross_task(self, samples):
        c, j = _sides(samples)
        ds = build_pairs(c, j, "binary", "source", seed=0)
        for p in ds.train:
            if p.label == 0:
                assert p.task_left != p.task_right

    def test_hard_negatives_are_size_close(self, samples):
        """Train negatives must be closer in size than random cross-task
        pairs would be on average (half of them are mined by size)."""
        c, j = _sides(samples)
        ds = build_pairs(c, j, "binary", "source", seed=0)
        neg_gaps = [
            abs(p.left.num_nodes - p.right.num_nodes)
            for p in ds.train
            if p.label == 0
        ]
        # random cross-task expectation: average gap over all combos
        import itertools

        all_gaps = [
            abs(a.decompiled_graph.num_nodes - b.source_graph.num_nodes)
            for a, b in itertools.product(c, j)
            if a.task != b.task
        ]
        assert np.mean(neg_gaps) <= np.mean(all_gaps) + 1e-9

    def test_determinism(self, samples):
        c, j = _sides(samples)
        a = build_pairs(c, j, "binary", "source", seed=5)
        b = build_pairs(c, j, "binary", "source", seed=5)
        assert [(p.task_left, p.task_right, p.label) for p in a.train] == [
            (p.task_left, p.task_right, p.label) for p in b.train
        ]


class TestSplitTasks:
    def test_622_proportions(self):
        tr, va, te = split_tasks([f"t{i}" for i in range(20)], seed=1)
        assert (len(tr), len(va), len(te)) == (12, 4, 4)

    def test_disjoint(self):
        tr, va, te = split_tasks([f"t{i}" for i in range(10)], seed=2)
        assert not (set(tr) & set(va)) and not (set(va) & set(te)) and not (set(tr) & set(te))


class TestCandidateThresholds:
    def test_includes_midpoints(self):
        scores = np.array([0.90, 0.92, 0.99])
        cands = _candidate_thresholds(scores)
        assert 0.91 in np.round(cands, 2)

    def test_constant_scores_fall_back_to_grid(self):
        cands = _candidate_thresholds(np.full(5, 0.5))
        assert len(cands) == 19  # the coarse grid only

    def test_best_threshold_separates_narrow_band(self):
        """All scores in [0.9, 1.0]: a coarse grid cannot split them, the
        quantile-aware sweep can."""
        labels = np.array([0, 0, 0, 1, 1, 1])
        scores = np.array([0.91, 0.92, 0.93, 0.97, 0.98, 0.99])
        th = best_threshold(labels, scores)
        assert 0.93 < th < 0.97
        m = sweep_thresholds(labels, scores, [th])[0]
        assert m.f1 == 1.0

    def test_best_threshold_prefers_true_split_over_degenerate(self):
        labels = np.array([0] * 9 + [1] * 3)
        scores = np.concatenate([np.linspace(0.1, 0.5, 9), [0.8, 0.85, 0.9]])
        th = best_threshold(labels, scores)
        m = sweep_thresholds(labels, scores, [th])[0]
        assert m.precision == 1.0 and m.recall == 1.0
