"""Parity tests: fused (ParameterArena) optimizers vs the reference loops.

The fused paths must be *bit-identical* to the per-parameter reference
implementations — any divergence compounds over a training run — including
the awkward cases: parameters whose ``grad`` is ``None`` (skipped, moments
untouched), ``weight_decay > 0``, and external weight surgery
(``load_state_dict``) between steps.
"""

import numpy as np
import pytest

from repro.nn.functional import clip_grad_norm
from repro.nn.module import Parameter
from repro.nn.optim import Adam, SGD, ParameterArena


def make_params(seed=0):
    rng = np.random.default_rng(seed)
    shapes = [(5, 7), (32,), (3, 3, 4), (1,), (16, 8)]
    return [Parameter(rng.standard_normal(s).astype(np.float32)) for s in shapes]


def make_grads(params, seed=1, scale=1.0):
    rng = np.random.default_rng(seed)
    return [
        (rng.standard_normal(p.data.shape) * scale).astype(np.float32) for p in params
    ]


def clone_of(params):
    clones = make_params()
    for src, dst in zip(params, clones):
        dst.data[...] = src.data
    return clones


def assert_params_equal(ref, fused):
    for i, (a, b) in enumerate(zip(ref, fused)):
        np.testing.assert_array_equal(a.data, b.data, err_msg=f"param {i}")


def set_grads(params, grads, missing=()):
    for i, (p, g) in enumerate(zip(params, grads)):
        p.grad = None if i in missing else g.copy()


class TestParameterArena:
    def test_data_becomes_views_with_same_values(self):
        params = make_params()
        before = [p.data.copy() for p in params]
        arena = ParameterArena(params)
        for p, orig in zip(params, before):
            assert p.data.base is arena.flat
            np.testing.assert_array_equal(p.data, orig)

    def test_flat_write_reaches_params(self):
        params = make_params()
        arena = ParameterArena(params)
        arena.flat[:] = 3.0
        assert all(np.all(p.data == 3.0) for p in params)

    def test_gather_reports_missing_and_zeroes_slices(self):
        params = make_params()
        arena = ParameterArena(params)
        grads = make_grads(params)
        arena.grad_flat[:] = 7.0  # stale values must not survive a gather
        set_grads(params, grads, missing={1, 3})
        missing = arena.gather()
        assert missing == [1, 3]
        for i, (o, n) in enumerate(arena.slices):
            expected = np.zeros(n) if i in missing else grads[i].ravel()
            np.testing.assert_array_equal(arena.grad_flat[o : o + n], expected)

    def test_adopt_reabsorbs_external_assignment(self):
        params = make_params()
        arena = ParameterArena(params)
        replacement = np.full(params[0].data.shape, 2.5, dtype=np.float32)
        params[0].data = replacement.copy()  # e.g. load_state_dict
        arena.adopt()
        assert params[0].data.base is arena.flat
        np.testing.assert_array_equal(params[0].data, replacement)

    def test_adopt_rejects_shape_change(self):
        params = make_params()
        arena = ParameterArena(params)
        params[0].data = np.zeros(3, dtype=np.float32)
        with pytest.raises(ValueError, match="shape changed"):
            arena.adopt()


class TestAdamParity:
    @pytest.mark.parametrize("weight_decay", [0.0, 0.013])
    def test_bitwise_over_steps(self, weight_decay):
        ref = make_params()
        fused = clone_of(ref)
        opt_ref = Adam(ref, lr=2e-3, weight_decay=weight_decay, fused=False)
        opt_fused = Adam(fused, lr=2e-3, weight_decay=weight_decay, fused=True)
        for step in range(7):
            grads = make_grads(ref, seed=10 + step)
            set_grads(ref, grads)
            set_grads(fused, grads)
            opt_ref.step()
            opt_fused.step()
            assert_params_equal(ref, fused)

    def test_missing_grads_skip_params_and_moments(self):
        ref = make_params()
        fused = clone_of(ref)
        opt_ref = Adam(ref, lr=1e-2, fused=False)
        opt_fused = Adam(fused, lr=1e-2, fused=True)
        # Build up nonzero moments first, then drop grads for two params:
        # the reference loop's `continue` leaves weights AND moments frozen.
        for step in range(3):
            grads = make_grads(ref, seed=20 + step)
            missing = {0, 4} if step == 1 else set()
            set_grads(ref, grads, missing)
            set_grads(fused, grads, missing)
            opt_ref.step()
            opt_fused.step()
            assert_params_equal(ref, fused)
        state_ref = opt_ref.state_export()
        state_fused = opt_fused.state_export()
        np.testing.assert_array_equal(state_ref["m"], state_fused["m"])
        np.testing.assert_array_equal(state_ref["v"], state_fused["v"])

    def test_all_grads_missing_is_noop(self):
        fused = make_params()
        before = [p.data.copy() for p in fused]
        opt = Adam(fused, lr=1e-2, fused=True)
        for p in fused:
            p.grad = None
        opt.step()
        assert_params_equal([Parameter(b) for b in before], fused)
        assert opt.t == 1  # the loop also advances t on empty steps

    def test_state_roundtrip_across_flavors(self):
        ref = make_params()
        fused = clone_of(ref)
        opt_ref = Adam(ref, lr=1e-3, fused=False)
        opt_fused = Adam(fused, lr=1e-3, fused=True)
        for step in range(3):
            grads = make_grads(ref, seed=30 + step)
            set_grads(ref, grads)
            opt_ref.step()
        # Reference-trained state imports into a fused optimizer and both
        # continue to identical weights.
        opt_fused.state_import(opt_ref.state_export())
        for p_ref, p_fused in zip(ref, fused):
            p_fused.data[...] = p_ref.data
        grads = make_grads(ref, seed=99)
        set_grads(ref, grads)
        set_grads(fused, grads)
        opt_ref.step()
        opt_fused.step()
        assert_params_equal(ref, fused)

    def test_state_import_rejects_wrong_size(self):
        opt = Adam(make_params(), fused=True)
        with pytest.raises(ValueError, match="size mismatch"):
            opt.state_import({"algo": "adam", "t": 1, "m": np.zeros(3), "v": np.zeros(3)})

    def test_state_import_rejects_wrong_algo(self):
        opt = Adam(make_params(), fused=True)
        with pytest.raises(ValueError, match="not an Adam state"):
            opt.state_import({"algo": "sgd", "velocity": np.zeros(3)})


class TestSGDParity:
    @pytest.mark.parametrize("momentum", [0.0, 0.9])
    def test_bitwise_over_steps(self, momentum):
        ref = make_params()
        fused = clone_of(ref)
        opt_ref = SGD(ref, lr=1e-2, momentum=momentum, fused=False)
        opt_fused = SGD(fused, lr=1e-2, momentum=momentum, fused=True)
        for step in range(5):
            grads = make_grads(ref, seed=40 + step)
            missing = {2} if step == 2 else set()
            set_grads(ref, grads, missing)
            set_grads(fused, grads, missing)
            opt_ref.step()
            opt_fused.step()
            assert_params_equal(ref, fused)

    def test_state_roundtrip(self):
        params = make_params()
        opt = SGD(params, lr=1e-2, momentum=0.9, fused=True)
        set_grads(params, make_grads(params))
        opt.step()
        state = opt.state_export()
        other = SGD(clone_of(params), lr=1e-2, momentum=0.9, fused=True)
        other.state_import(state)
        np.testing.assert_array_equal(
            other.state_export()["velocity"], state["velocity"]
        )


class TestFusedClip:
    def test_norm_and_grads_bitwise(self):
        ref = make_params()
        fused = clone_of(ref)
        grads = make_grads(ref, seed=5, scale=4.0)
        set_grads(ref, grads, missing={1})
        set_grads(fused, grads, missing={1})
        opt = Adam(fused, fused=True)
        norm_ref = clip_grad_norm(ref, 1.0)
        norm_fused = opt.clip_grad_norm(1.0)
        assert norm_ref == norm_fused
        for i, (a, b) in enumerate(zip(ref, fused)):
            if i == 1:
                assert a.grad is None and b.grad is None
            else:
                np.testing.assert_array_equal(a.grad, b.grad, err_msg=f"grad {i}")

    def test_below_threshold_leaves_grads_untouched(self):
        fused = make_params()
        grads = make_grads(fused, seed=6, scale=1e-4)
        set_grads(fused, grads)
        opt = Adam(fused, fused=True)
        norm = opt.clip_grad_norm(1e9)
        assert norm < 1e9
        for p, g in zip(fused, grads):
            np.testing.assert_array_equal(p.grad, g)

    def test_clip_then_step_consumes_scaled_grads(self):
        ref = make_params()
        fused = clone_of(ref)
        grads = make_grads(ref, seed=7, scale=10.0)
        set_grads(ref, grads)
        set_grads(fused, grads)
        opt_ref = Adam(ref, lr=1e-2, fused=False)
        opt_fused = Adam(fused, lr=1e-2, fused=True)
        clip_grad_norm(ref, 0.5)
        opt_fused.clip_grad_norm(0.5)
        opt_ref.step()
        opt_fused.step()
        assert_params_equal(ref, fused)


class TestZeroGrad:
    def test_clears_all_grads(self):
        params = make_params()
        opt = Adam(params, fused=True)
        set_grads(params, make_grads(params))
        opt.zero_grad()
        assert all(p.grad is None for p in params)

    def test_weight_surgery_between_steps_is_adopted(self):
        # Early stopping calls load_state_dict, which replaces p.data with
        # fresh arrays; the next fused step must pick those values up.
        params = make_params()
        opt = Adam(params, lr=1e-2, fused=True)
        set_grads(params, make_grads(params))
        opt.step()
        surgery = np.zeros_like(params[0].data)
        params[0].data = surgery.copy()
        set_grads(params, make_grads(params, seed=50))
        opt.step()
        assert params[0].data.base is opt.arena.flat
        # The step moved the zeroed weights, starting from the new values.
        assert not np.array_equal(params[0].data, surgery)
        assert float(np.max(np.abs(params[0].data))) < 0.1
