"""Parity tests: fused (ParameterArena) optimizers vs the reference loops.

The fused paths must be *bit-identical* to the per-parameter reference
implementations — any divergence compounds over a training run — including
the awkward cases: parameters whose ``grad`` is ``None`` (skipped, moments
untouched), ``weight_decay > 0``, and external weight surgery
(``load_state_dict``) between steps.
"""

import numpy as np
import pytest

from repro.nn.functional import clip_grad_norm
from repro.nn.module import Parameter
from repro.nn.optim import Adam, SGD, ParameterArena, SharedArenaState
from repro.utils.shm import leaked_segments


def make_params(seed=0):
    rng = np.random.default_rng(seed)
    shapes = [(5, 7), (32,), (3, 3, 4), (1,), (16, 8)]
    return [Parameter(rng.standard_normal(s).astype(np.float32)) for s in shapes]


def make_grads(params, seed=1, scale=1.0):
    rng = np.random.default_rng(seed)
    return [
        (rng.standard_normal(p.data.shape) * scale).astype(np.float32) for p in params
    ]


def clone_of(params):
    clones = make_params()
    for src, dst in zip(params, clones):
        dst.data[...] = src.data
    return clones


def assert_params_equal(ref, fused):
    for i, (a, b) in enumerate(zip(ref, fused)):
        np.testing.assert_array_equal(a.data, b.data, err_msg=f"param {i}")


def set_grads(params, grads, missing=()):
    for i, (p, g) in enumerate(zip(params, grads)):
        p.grad = None if i in missing else g.copy()


class TestParameterArena:
    def test_data_becomes_views_with_same_values(self):
        params = make_params()
        before = [p.data.copy() for p in params]
        arena = ParameterArena(params)
        for p, orig in zip(params, before):
            assert p.data.base is arena.flat
            np.testing.assert_array_equal(p.data, orig)

    def test_flat_write_reaches_params(self):
        params = make_params()
        arena = ParameterArena(params)
        arena.flat[:] = 3.0
        assert all(np.all(p.data == 3.0) for p in params)

    def test_gather_reports_missing_and_zeroes_slices(self):
        params = make_params()
        arena = ParameterArena(params)
        grads = make_grads(params)
        arena.grad_flat[:] = 7.0  # stale values must not survive a gather
        set_grads(params, grads, missing={1, 3})
        missing = arena.gather()
        assert missing == [1, 3]
        for i, (o, n) in enumerate(arena.slices):
            expected = np.zeros(n) if i in missing else grads[i].ravel()
            np.testing.assert_array_equal(arena.grad_flat[o : o + n], expected)

    def test_adopt_reabsorbs_external_assignment(self):
        params = make_params()
        arena = ParameterArena(params)
        replacement = np.full(params[0].data.shape, 2.5, dtype=np.float32)
        params[0].data = replacement.copy()  # e.g. load_state_dict
        arena.adopt()
        assert params[0].data.base is arena.flat
        np.testing.assert_array_equal(params[0].data, replacement)

    def test_adopt_rejects_shape_change(self):
        params = make_params()
        arena = ParameterArena(params)
        params[0].data = np.zeros(3, dtype=np.float32)
        with pytest.raises(ValueError, match="shape changed"):
            arena.adopt()


class TestAdamParity:
    @pytest.mark.parametrize("weight_decay", [0.0, 0.013])
    def test_bitwise_over_steps(self, weight_decay):
        ref = make_params()
        fused = clone_of(ref)
        opt_ref = Adam(ref, lr=2e-3, weight_decay=weight_decay, fused=False)
        opt_fused = Adam(fused, lr=2e-3, weight_decay=weight_decay, fused=True)
        for step in range(7):
            grads = make_grads(ref, seed=10 + step)
            set_grads(ref, grads)
            set_grads(fused, grads)
            opt_ref.step()
            opt_fused.step()
            assert_params_equal(ref, fused)

    def test_missing_grads_skip_params_and_moments(self):
        ref = make_params()
        fused = clone_of(ref)
        opt_ref = Adam(ref, lr=1e-2, fused=False)
        opt_fused = Adam(fused, lr=1e-2, fused=True)
        # Build up nonzero moments first, then drop grads for two params:
        # the reference loop's `continue` leaves weights AND moments frozen.
        for step in range(3):
            grads = make_grads(ref, seed=20 + step)
            missing = {0, 4} if step == 1 else set()
            set_grads(ref, grads, missing)
            set_grads(fused, grads, missing)
            opt_ref.step()
            opt_fused.step()
            assert_params_equal(ref, fused)
        state_ref = opt_ref.state_export()
        state_fused = opt_fused.state_export()
        np.testing.assert_array_equal(state_ref["m"], state_fused["m"])
        np.testing.assert_array_equal(state_ref["v"], state_fused["v"])

    def test_all_grads_missing_is_noop(self):
        fused = make_params()
        before = [p.data.copy() for p in fused]
        opt = Adam(fused, lr=1e-2, fused=True)
        for p in fused:
            p.grad = None
        opt.step()
        assert_params_equal([Parameter(b) for b in before], fused)
        assert opt.t == 1  # the loop also advances t on empty steps

    def test_state_roundtrip_across_flavors(self):
        ref = make_params()
        fused = clone_of(ref)
        opt_ref = Adam(ref, lr=1e-3, fused=False)
        opt_fused = Adam(fused, lr=1e-3, fused=True)
        for step in range(3):
            grads = make_grads(ref, seed=30 + step)
            set_grads(ref, grads)
            opt_ref.step()
        # Reference-trained state imports into a fused optimizer and both
        # continue to identical weights.
        opt_fused.state_import(opt_ref.state_export())
        for p_ref, p_fused in zip(ref, fused):
            p_fused.data[...] = p_ref.data
        grads = make_grads(ref, seed=99)
        set_grads(ref, grads)
        set_grads(fused, grads)
        opt_ref.step()
        opt_fused.step()
        assert_params_equal(ref, fused)

    def test_state_import_rejects_wrong_size(self):
        opt = Adam(make_params(), fused=True)
        with pytest.raises(ValueError, match="size mismatch"):
            opt.state_import({"algo": "adam", "t": 1, "m": np.zeros(3), "v": np.zeros(3)})

    def test_state_import_rejects_wrong_algo(self):
        opt = Adam(make_params(), fused=True)
        with pytest.raises(ValueError, match="not an Adam state"):
            opt.state_import({"algo": "sgd", "velocity": np.zeros(3)})


class TestSGDParity:
    @pytest.mark.parametrize("momentum", [0.0, 0.9])
    def test_bitwise_over_steps(self, momentum):
        ref = make_params()
        fused = clone_of(ref)
        opt_ref = SGD(ref, lr=1e-2, momentum=momentum, fused=False)
        opt_fused = SGD(fused, lr=1e-2, momentum=momentum, fused=True)
        for step in range(5):
            grads = make_grads(ref, seed=40 + step)
            missing = {2} if step == 2 else set()
            set_grads(ref, grads, missing)
            set_grads(fused, grads, missing)
            opt_ref.step()
            opt_fused.step()
            assert_params_equal(ref, fused)

    def test_state_roundtrip(self):
        params = make_params()
        opt = SGD(params, lr=1e-2, momentum=0.9, fused=True)
        set_grads(params, make_grads(params))
        opt.step()
        state = opt.state_export()
        other = SGD(clone_of(params), lr=1e-2, momentum=0.9, fused=True)
        other.state_import(state)
        np.testing.assert_array_equal(
            other.state_export()["velocity"], state["velocity"]
        )


class TestFusedClip:
    def test_norm_and_grads_bitwise(self):
        ref = make_params()
        fused = clone_of(ref)
        grads = make_grads(ref, seed=5, scale=4.0)
        set_grads(ref, grads, missing={1})
        set_grads(fused, grads, missing={1})
        opt = Adam(fused, fused=True)
        norm_ref = clip_grad_norm(ref, 1.0)
        norm_fused = opt.clip_grad_norm(1.0)
        assert norm_ref == norm_fused
        for i, (a, b) in enumerate(zip(ref, fused)):
            if i == 1:
                assert a.grad is None and b.grad is None
            else:
                np.testing.assert_array_equal(a.grad, b.grad, err_msg=f"grad {i}")

    def test_below_threshold_leaves_grads_untouched(self):
        fused = make_params()
        grads = make_grads(fused, seed=6, scale=1e-4)
        set_grads(fused, grads)
        opt = Adam(fused, fused=True)
        norm = opt.clip_grad_norm(1e9)
        assert norm < 1e9
        for p, g in zip(fused, grads):
            np.testing.assert_array_equal(p.grad, g)

    def test_clip_then_step_consumes_scaled_grads(self):
        ref = make_params()
        fused = clone_of(ref)
        grads = make_grads(ref, seed=7, scale=10.0)
        set_grads(ref, grads)
        set_grads(fused, grads)
        opt_ref = Adam(ref, lr=1e-2, fused=False)
        opt_fused = Adam(fused, lr=1e-2, fused=True)
        clip_grad_norm(ref, 0.5)
        opt_fused.clip_grad_norm(0.5)
        opt_ref.step()
        opt_fused.step()
        assert_params_equal(ref, fused)


def make_exact_grads(params, seed=1):
    """Gradients whose values (and k=4 scaled sums) are float32-exact.

    Multiples of 1/8 with small magnitude: scaling by 1/4 and summing four
    of them stays exactly representable, so accumulation arithmetic has a
    well-defined bit-exact reference.
    """
    rng = np.random.default_rng(seed)
    return [
        (rng.integers(-16, 17, size=p.data.shape) / 8.0).astype(np.float32)
        for p in params
    ]


class TestGradientAccumulation:
    """k micro-batches through accumulate() ≡ one combined batch."""

    K = 4  # power of two: 1/k and the partial sums are float32-exact

    def _micro_grads(self, params, missing_schedule):
        """Per-micro-batch grads; ``missing_schedule[i]`` = params absent."""
        micros = [
            make_exact_grads(params, seed=60 + m) for m in range(self.K)
        ]
        for m, absent in enumerate(missing_schedule):
            for i in absent:
                micros[m][i] = None
        return micros

    def _combined(self, params, micros):
        """The reference big-batch gradient: scaled sum of contributions."""
        combined = []
        for i in range(len(params)):
            present = [g[i] for g in micros if g[i] is not None]
            if not present:
                combined.append(None)
                continue
            total = np.zeros_like(params[i].data)
            for g in present:
                total += g * np.float32(1.0 / self.K)
            combined.append(total)
        return combined

    @pytest.mark.parametrize("fused", [False, True])
    @pytest.mark.parametrize("algo", [Adam, SGD])
    def test_microbatches_match_combined_batch_bitwise(self, algo, fused):
        ref = make_params()
        acc = clone_of(ref)
        opt_ref = algo(ref, lr=1e-2, fused=fused)
        opt_acc = algo(acc, lr=1e-2, fused=fused)
        # Schedule includes a never-contributing param (index 3) and one
        # that skips only some micro-batches (index 1).
        schedule = [{3}, {1, 3}, {3}, {1, 3}]
        for step in range(3):
            micros = self._micro_grads(ref, schedule)
            combined = self._combined(ref, micros)
            for i, g in enumerate(combined):
                ref[i].grad = None if g is None else g.copy()
            opt_ref.step()
            for grads in micros:
                for i, g in enumerate(grads):
                    acc[i].grad = None if g is None else g.copy()
                opt_acc.accumulate(scale=1.0 / self.K)
            opt_acc.step()
            assert_params_equal(ref, acc)
        # Moments agree too — a never-contributing param stayed frozen.
        s_ref, s_acc = opt_ref.state_export(), opt_acc.state_export()
        for key in s_ref:
            np.testing.assert_array_equal(
                np.asarray(s_ref[key]), np.asarray(s_acc[key]), err_msg=key
            )

    @pytest.mark.parametrize("fused", [False, True])
    def test_accumulated_clip_matches_combined_batch(self, fused):
        ref = make_params()
        acc = clone_of(ref)
        opt_ref = Adam(ref, lr=1e-2, fused=fused)
        opt_acc = Adam(acc, lr=1e-2, fused=fused)
        micros = self._micro_grads(ref, [set()] * self.K)
        combined = self._combined(ref, micros)
        for i, g in enumerate(combined):
            ref[i].grad = g.copy()
        for grads in micros:
            for i, g in enumerate(grads):
                acc[i].grad = g.copy()
            opt_acc.accumulate(scale=1.0 / self.K)
        norm_ref = opt_ref.clip_grad_norm(0.25)
        norm_acc = opt_acc.clip_grad_norm(0.25)
        assert norm_ref == norm_acc
        opt_ref.step()
        opt_acc.step()
        assert_params_equal(ref, acc)

    def test_accumulate_clears_grads_and_survives_zero_grad(self):
        params = make_params()
        opt = Adam(params, fused=True)
        set_grads(params, make_exact_grads(params))
        opt.accumulate(scale=0.5)
        assert all(p.grad is None for p in params)
        opt.zero_grad()  # must not discard the accumulated sums
        set_grads(params, make_exact_grads(params, seed=61))
        opt.accumulate(scale=0.5)
        before = [p.data.copy() for p in params]
        opt.step()
        assert any(
            not np.array_equal(b, p.data) for b, p in zip(before, params)
        )

    def test_scale_one_is_plain_summation(self):
        params = make_params()
        opt = SGD(params, lr=1e-2, fused=False)
        g = make_exact_grads(params)
        set_grads(params, g)
        opt.accumulate()
        set_grads(params, g)
        opt.accumulate()
        other = make_params()
        opt2 = SGD(other, lr=1e-2, fused=False)
        set_grads(other, [x + x for x in g])
        opt.step()
        opt2.step()
        assert_params_equal(other, params)


class TestDirectGradBuffers:
    """Backward accumulates straight into the arena (the fused fast path)."""

    def test_backward_lands_in_arena_without_copy(self):
        params = make_params()
        arena = ParameterArena(params)
        grads = make_exact_grads(params)
        for p, g in zip(params, grads):
            p._accumulate(g)  # what Tensor.backward calls
            p._accumulate(g)
        for p, gview, g in zip(params, arena.grad_views, grads):
            assert p.grad is gview  # no per-step allocation, no copy
            np.testing.assert_array_equal(p.grad, g + g)
        missing = arena.gather()  # nothing to copy, nothing missing
        assert missing == []
        for (o, n), g in zip(arena.slices, grads):
            np.testing.assert_array_equal(
                arena.grad_flat[o : o + n], (g + g).ravel()
            )

    def test_buffer_accumulation_matches_reference_bitwise(self):
        direct = make_params()
        ParameterArena(direct)
        plain = clone_of(direct)
        grads_a = make_exact_grads(direct, seed=70)
        grads_b = make_exact_grads(direct, seed=71)
        for p, a, b in zip(direct, grads_a, grads_b):
            p._accumulate(a)
            p._accumulate(b)
        for p, a, b in zip(plain, grads_a, grads_b):
            p._accumulate(a)
            p._accumulate(b)
        for i, (d, p) in enumerate(zip(direct, plain)):
            np.testing.assert_array_equal(d.grad, p.grad, err_msg=f"param {i}")

    def test_clip_does_not_double_scale_view_backed_grads(self):
        params = make_params()
        opt = Adam(params, fused=True)
        grads = make_exact_grads(params)
        for p, g in zip(params, grads):
            p._accumulate(g * np.float32(8.0))  # force norm > max_norm
        ref = clone_of(params)
        opt_ref = Adam(ref, fused=False)
        for p, g in zip(ref, grads):
            p.grad = g * np.float32(8.0)
        norm_fused = opt.clip_grad_norm(1.0)
        norm_ref = opt_ref.clip_grad_norm(1.0)
        assert norm_fused == norm_ref
        for i, (a, b) in enumerate(zip(params, ref)):
            np.testing.assert_array_equal(a.grad, b.grad, err_msg=f"grad {i}")


class TestSharedArenaState:
    def test_shared_export_roundtrips_bitwise(self):
        params = make_params()
        opt = Adam(params, lr=1e-2, fused=True)
        set_grads(params, make_grads(params))
        opt.step()
        snapshot = opt.arena.state_export(shared=True)
        try:
            expected = opt.arena.flat.copy()
            opt.arena.flat[:] = 0.0
            opt.arena.state_import(snapshot)
            np.testing.assert_array_equal(opt.arena.flat, expected)
        finally:
            snapshot.close()
            snapshot.unlink()

    def test_attach_by_name_sees_the_same_bytes(self):
        params = make_params()
        arena = ParameterArena(params)
        snapshot = arena.state_export(shared=True)
        try:
            attached = SharedArenaState.attach(snapshot.name, snapshot.size)
            np.testing.assert_array_equal(attached.array(), arena.flat)
            attached.close()
        finally:
            snapshot.close()
            snapshot.unlink()

    def test_unlink_removes_the_segment(self):
        before = set(leaked_segments())
        snapshot = ParameterArena(make_params()).state_export(shared=True)
        assert set(leaked_segments()) - before == {snapshot.name}
        snapshot.close()
        snapshot.unlink()
        snapshot.unlink()  # idempotent
        assert set(leaked_segments()) == before

    def test_heap_export_is_a_copy(self):
        arena = ParameterArena(make_params())
        snapshot = arena.state_export()
        snapshot[:] = -1.0
        assert not np.array_equal(arena.flat, snapshot)

    def test_import_rejects_wrong_size(self):
        arena = ParameterArena(make_params())
        with pytest.raises(ValueError, match="size mismatch"):
            arena.state_import(np.zeros(3, dtype=np.float32))


class TestZeroGrad:
    def test_clears_all_grads(self):
        params = make_params()
        opt = Adam(params, fused=True)
        set_grads(params, make_grads(params))
        opt.zero_grad()
        assert all(p.grad is None for p in params)

    def test_weight_surgery_between_steps_is_adopted(self):
        # Early stopping calls load_state_dict, which replaces p.data with
        # fresh arrays; the next fused step must pick those values up.
        params = make_params()
        opt = Adam(params, lr=1e-2, fused=True)
        set_grads(params, make_grads(params))
        opt.step()
        surgery = np.zeros_like(params[0].data)
        params[0].data = surgery.copy()
        set_grads(params, make_grads(params, seed=50))
        opt.step()
        assert params[0].data.base is opt.arena.flat
        # The step moved the zeroed weights, starting from the new values.
        assert not np.array_equal(params[0].data, surgery)
        assert float(np.max(np.abs(params[0].data))) < 0.1
