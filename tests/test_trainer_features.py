"""Tests for trainer features added on top of the paper's loop:
early stopping, label smoothing, and the encoded-batch reuse."""

import numpy as np
import pytest

from repro.config import cpu_config, scaled, tiny_data_config
from repro.core.trainer import MatchTrainer, weighted_epoch_loss
from repro.data.corpus import CorpusBuilder
from repro.data.pairs import build_pairs


@pytest.fixture(scope="module")
def dataset():
    builder = CorpusBuilder(tiny_data_config())
    samples = builder.build(["c", "java"])
    c = [s for s in samples if s.language == "c"]
    j = [s for s in samples if s.language == "java"]
    return build_pairs(c, j, "binary", "source", seed=0, max_pairs_per_task=3)


def _cfg(**kw):
    base = dict(epochs=3, hidden_dim=16, embed_dim=16, num_layers=1)
    base.update(kw)
    return scaled(cpu_config(), **base)


class TestEarlyStopping:
    def test_records_curve_and_best_epoch(self, dataset):
        tr = MatchTrainer(_cfg())
        report = tr.train(dataset, early_stopping=True)
        assert len(report.valid_f1_curve) == 3
        assert 0 <= report.best_epoch < 3

    def test_disabled_by_default(self, dataset):
        tr = MatchTrainer(_cfg())
        report = tr.train(dataset)
        assert report.valid_f1_curve == []
        assert report.best_epoch == -1

    def test_restores_best_epoch_weights(self, dataset):
        """After training, predictions must match the best epoch's state —
        i.e. retraining for exactly best_epoch+1 epochs with the same seed
        gives the same scores."""
        tr = MatchTrainer(_cfg(epochs=4))
        report = tr.train(dataset, early_stopping=True)
        scores_full = tr.predict(dataset.test[:4])

        tr2 = MatchTrainer(_cfg(epochs=report.best_epoch + 1))
        tr2.train(dataset, early_stopping=False)
        scores_cut = tr2.predict(dataset.test[:4])
        np.testing.assert_allclose(scores_full, scores_cut, rtol=1e-4, atol=1e-5)


class TestLabelSmoothing:
    def test_smoothing_changes_training(self, dataset):
        a = MatchTrainer(_cfg(label_smoothing=0.0))
        ra = a.train(dataset)
        b = MatchTrainer(_cfg(label_smoothing=0.3))
        rb = b.train(dataset)
        assert not np.allclose(ra.epoch_losses, rb.epoch_losses)

    def test_smoothed_loss_floor(self, dataset):
        """With smoothing s the minimal achievable BCE is H(s/2) > 0."""
        s = 0.3
        tr = MatchTrainer(_cfg(label_smoothing=s, epochs=5))
        report = tr.train(dataset)
        floor = -(s / 2 * np.log(s / 2) + (1 - s / 2) * np.log(1 - s / 2))
        assert report.epoch_losses[-1] >= floor - 1e-3


class TestEpochLoss:
    """The reported curve weights batches by pair count (ragged-tail fix)."""

    def test_weighted_mean(self):
        # Full batches of 4 at loss 1.0, ragged tail of 1 pair at loss 9.0:
        # an unweighted mean (3.67) overstates the tail by ~2.4x.
        batches = [(1.0, 4), (1.0, 4), (9.0, 1)]
        assert weighted_epoch_loss(batches) == pytest.approx((4 + 4 + 9) / 9)
        assert weighted_epoch_loss(batches) < float(
            np.mean([l for l, _ in batches])
        )

    def test_equal_batches_match_plain_mean(self):
        batches = [(0.5, 8), (1.5, 8), (2.5, 8)]
        assert weighted_epoch_loss(batches) == pytest.approx(1.5)

    def test_empty(self):
        assert weighted_epoch_loss([]) == 0.0

    def test_train_reports_weighted_curve(self, dataset):
        # Pick a batch size that leaves a ragged final minibatch, forcing
        # the weighted path to handle unequal batch sizes.
        n = len(dataset.train)
        bs = next(b for b in (4, 3, 5) if n % b)
        tr = MatchTrainer(_cfg(epochs=2, batch_pairs=bs))
        report = tr.train(dataset)
        assert len(report.epoch_losses) == 2
        assert all(np.isfinite(l) and l > 0 for l in report.epoch_losses)


class TestTrainingDeterminism:
    def test_same_seed_same_losses(self, dataset):
        a = MatchTrainer(_cfg()).train(dataset)
        b = MatchTrainer(_cfg()).train(dataset)
        np.testing.assert_allclose(a.epoch_losses, b.epoch_losses, rtol=1e-6)

    def test_different_seed_different_losses(self, dataset):
        a = MatchTrainer(_cfg(seed=1)).train(dataset)
        b = MatchTrainer(_cfg(seed=2)).train(dataset)
        assert not np.allclose(a.epoch_losses, b.epoch_losses)


class TestTrainReportTimings:
    def test_phase_timings_recorded(self, dataset):
        tr = MatchTrainer(_cfg())
        report = tr.train(dataset, early_stopping=True)
        for phase in ("encode", "train", "optimize", "valid"):
            assert phase in report.timings
            assert report.timings[phase] >= 0.0
        assert report.timings["train"] > 0.0
        assert len(report.epoch_seconds) == tr.config.epochs

    def test_valid_timing_zero_without_early_stopping(self, dataset):
        tr = MatchTrainer(_cfg())
        report = tr.train(dataset, early_stopping=False)
        assert report.timings["valid"] == 0.0


class TestEncodedPairMemo:
    def test_same_list_encoded_once(self, dataset):
        tr = MatchTrainer(_cfg())
        tr.train(dataset)
        first = tr.encode_pairs(dataset.valid)
        second = tr.encode_pairs(dataset.valid)
        assert first is second

    def test_different_lists_encoded_separately(self, dataset):
        tr = MatchTrainer(_cfg())
        tr.train(dataset)
        assert tr.encode_pairs(dataset.valid) is not tr.encode_pairs(dataset.test)

    def test_batch_size_part_of_key(self, dataset):
        tr = MatchTrainer(_cfg())
        tr.train(dataset)
        assert tr.encode_pairs(dataset.valid, 32) is not tr.encode_pairs(dataset.valid, 8)

    def test_predict_scores_unchanged_by_memo(self, dataset):
        tr = MatchTrainer(_cfg())
        tr.train(dataset)
        np.testing.assert_array_equal(
            tr.predict(dataset.test), tr.predict(dataset.test)
        )

    def test_predict_matches_fresh_trainer_on_copy(self, dataset):
        # A memo hit must not leak stale encodings across equal-content,
        # different-identity lists.
        tr = MatchTrainer(_cfg())
        tr.train(dataset)
        copied = list(dataset.test)
        np.testing.assert_array_equal(tr.predict(copied), tr.predict(dataset.test))


class TestOptimizerResume:
    def test_checkpoint_carries_optimizer_state(self, dataset, tmp_path):
        tr = MatchTrainer(_cfg())
        tr.train(dataset)
        t_first = tr.optimizer.t
        assert t_first > 0
        tr.save(tmp_path / "ck.npz")
        reloaded = MatchTrainer.load(tmp_path / "ck.npz")
        assert reloaded._restored_opt is not None
        reloaded.train(dataset)
        assert reloaded.optimizer.t == 2 * t_first  # moments continued, not reset

    def test_restored_moments_match_saved(self, dataset, tmp_path):
        tr = MatchTrainer(_cfg())
        tr.train(dataset)
        saved = tr.optimizer.state_export()
        tr.save(tmp_path / "ck.npz")
        reloaded = MatchTrainer.load(tmp_path / "ck.npz")
        state = reloaded._restored_opt["state"]
        assert int(state["t"]) == saved["t"]
        np.testing.assert_array_equal(np.asarray(state["m"]), saved["m"])
        np.testing.assert_array_equal(np.asarray(state["v"]), saved["v"])

    def test_resume_rejects_config_mismatch(self, dataset, tmp_path):
        tr = MatchTrainer(_cfg())
        tr.train(dataset)
        tr.save(tmp_path / "ck.npz")
        reloaded = MatchTrainer.load(tmp_path / "ck.npz")
        reloaded.config = _cfg(learning_rate=9e-9)
        with pytest.raises(ValueError, match="refusing to resume"):
            reloaded.train(dataset)

    def test_resume_rejects_layout_mismatch(self, dataset, tmp_path):
        from repro.core.model import GraphBinMatch

        tr = MatchTrainer(_cfg())
        tr.train(dataset)
        tr.save(tmp_path / "ck.npz")
        reloaded = MatchTrainer.load(tmp_path / "ck.npz")
        reloaded.model = GraphBinMatch(reloaded.tokenizer.vocab_size + 7, reloaded.config)
        with pytest.raises(ValueError, match="refusing to resume"):
            reloaded.train(dataset)

    def test_untrained_checkpoint_has_no_optimizer_state(self, dataset, tmp_path):
        tr = MatchTrainer(_cfg())
        tr.fit_tokenizer(dataset.train)
        tr._ensure_model()
        tr.save(tmp_path / "ck.npz")
        reloaded = MatchTrainer.load(tmp_path / "ck.npz")
        assert reloaded._restored_opt is None
        reloaded.train(dataset)  # trains from scratch without complaint


class TestReviewRegressions:
    def test_predict_reencodes_after_list_growth(self, dataset):
        tr = MatchTrainer(_cfg())
        tr.train(dataset)
        pairs = list(dataset.test)
        first = tr.predict(pairs)
        pairs.append(dataset.valid[0])
        second = tr.predict(pairs)
        assert len(second) == len(first) + 1
        np.testing.assert_array_equal(second[: len(first)], first)

    def test_early_stopping_restores_best_epoch_moments(self, dataset):
        import math

        tr = MatchTrainer(_cfg(epochs=4))
        report = tr.train(dataset, early_stopping=True)
        steps_per_epoch = math.ceil(len(dataset.train) / tr.config.batch_pairs)
        # Optimizer state must correspond to the restored best-epoch
        # weights, not to wherever the last epoch wandered.
        assert tr.optimizer.t == steps_per_epoch * (report.best_epoch + 1)
