"""Tests for the fault-injection framework and the stores' integrity layer.

Covers the spec grammar (repro.faults), the deterministic draw streams,
the injection chokepoints (hit / replace), and how the artifact and model
stores behave when faults fire: clean descriptive errors or observable
misses, never silent corruption and never a wrong answer.
"""

import errno
import os
import time

import pytest

from repro import faults
from repro.artifacts import ArtifactKey, ArtifactStore, source_text_id
from repro.faults import (
    FAULT_REGISTRY,
    FaultPlan,
    FaultSpec,
    FaultSpecError,
    InjectedFault,
    TRUNCATE_KEEP_FRACTION,
    parse_fault_chain,
)
from repro.pipeline import CompilationPipeline
from repro.utils.fsio import find_orphan_tmps, sweep_orphan_tmps

SOURCE = "int gcd(int a, int b) { while (b) { int t = b; b = a % b; a = t; } return a; }"


@pytest.fixture(autouse=True)
def no_leftover_plan():
    """Every test starts and ends with no plan installed."""
    faults.clear()
    yield
    faults.clear()


def make_key(text=SOURCE, transforms=""):
    return ArtifactKey(
        task="gcd",
        variant=1,
        language="c",
        opt_level="O1",
        compiler="llvm-mock",
        source_id=source_text_id(text),
        transforms=transforms,
    )


@pytest.fixture(scope="module")
def compiled():
    return CompilationPipeline().compile(SOURCE, "c", name="gcd/v1.c")


# --------------------------------------------------------------- grammar
class TestSpecGrammar:
    def test_parse_minimal(self):
        spec = FaultSpec.parse("eio-read")
        assert spec.kind == "eio-read"
        assert spec.prob == 1.0
        assert spec.seed == 0
        assert spec.sites == ""
        assert spec.site_glob == FAULT_REGISTRY["eio-read"].default_sites

    def test_parse_full(self):
        spec = FaultSpec.parse("torn-replace:artifacts.*@0.25~7")
        assert spec.kind == "torn-replace"
        assert spec.sites == "artifacts.*"
        assert spec.prob == 0.25
        assert spec.seed == 7

    def test_canonical_round_trip(self):
        spec = FaultSpec.parse("enospc:index.*@0.5~3")
        assert FaultSpec.parse(spec.spec) == spec

    def test_chain_parses_in_order(self):
        chain = parse_fault_chain("eio-read+slow-io:worker.*@0.1")
        assert [s.kind for s in chain] == ["eio-read", "slow-io"]
        assert parse_fault_chain("") == ()
        assert parse_fault_chain("   ") == ()

    def test_unknown_kind_rejected(self):
        with pytest.raises(FaultSpecError, match="unknown fault"):
            FaultSpec.parse("bitrot")

    def test_bad_probability_rejected(self):
        with pytest.raises(FaultSpecError, match="probability"):
            FaultSpec.parse("eio-read@1.5")
        with pytest.raises(FaultSpecError, match="probability"):
            FaultSpec.parse("eio-read@nan")

    def test_bad_seed_rejected(self):
        with pytest.raises(FaultSpecError, match="seed"):
            FaultSpec.parse("eio-read~lucky")

    def test_site_glob_alternation(self):
        spec = FaultSpec.parse("eio-write")
        assert spec.matches("artifacts.put.write")
        assert spec.matches("artifacts.put.replace")
        assert not spec.matches("artifacts.get.read")


class TestDeterminism:
    def test_draws_are_reproducible_across_plans(self):
        spec = FaultSpec.parse("eio-read:site.read@0.5~11")

        def sequence():
            plan = FaultPlan([spec])
            return [plan.should_fire(0, "site.read") for _ in range(20)]

        first, second = sequence(), sequence()
        assert first == second
        assert any(first) and not all(first)  # prob 0.5 actually mixes

    def test_streams_are_per_site(self):
        spec = FaultSpec.parse("eio-read:*@0.5~11")
        plan = FaultPlan([spec])
        a = [plan.should_fire(0, "a.read") for _ in range(20)]
        b = [plan.should_fire(0, "b.read") for _ in range(20)]
        assert a != b


# ------------------------------------------------------------- injection
class TestInjection:
    def test_no_plan_is_a_noop(self):
        faults.hit("anything.at.all")  # must not raise

    def test_eio_read_raises_real_oserror(self):
        with faults.active("eio-read"):
            with pytest.raises(InjectedFault) as exc:
                faults.hit("store.get.read")
            assert exc.value.errno == errno.EIO
            assert "injected:" in str(exc.value)
            faults.hit("store.put.write")  # read fault spares write sites

    def test_enospc_carries_its_errno(self):
        with faults.active("enospc"):
            with pytest.raises(InjectedFault) as exc:
                faults.hit("store.put.write")
            assert exc.value.errno == errno.ENOSPC

    def test_env_activation(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "eio-read")
        with pytest.raises(InjectedFault):
            faults.hit("store.get.read")
        monkeypatch.setenv("REPRO_FAULTS", "")
        faults.hit("store.get.read")  # re-parsed on change: no-op again

    def test_install_overrides_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "eio-read")
        faults.install("")  # explicit empty plan wins over the env
        faults.hit("store.get.read")

    def test_torn_replace_keeps_temp_and_dst_absent(self, tmp_path):
        src, dst = tmp_path / "x.tmp", tmp_path / "x"
        src.write_bytes(b"payload")
        with faults.active("torn-replace"):
            with pytest.raises(InjectedFault, match="torn-replace"):
                faults.replace(src, dst, "unit")
        assert src.exists() and not dst.exists()

    def test_truncated_write_commits_half_the_bytes(self, tmp_path):
        src, dst = tmp_path / "y.tmp", tmp_path / "y"
        src.write_bytes(b"x" * 100)
        with faults.active("truncated-write"):
            faults.replace(src, dst, "unit")
        assert not src.exists()
        assert dst.stat().st_size == int(100 * TRUNCATE_KEEP_FRACTION)

    def test_replace_without_plan_is_plain_replace(self, tmp_path):
        src, dst = tmp_path / "z.tmp", tmp_path / "z"
        src.write_bytes(b"ok")
        faults.replace(src, dst, "unit")
        assert dst.read_bytes() == b"ok"


# ----------------------------------------------------------- orphan sweep
class TestOrphanSweep:
    def test_age_gate(self, tmp_path):
        fresh = tmp_path / "a.tmp"
        stale = tmp_path / "sub" / "b.tmp"
        stale.parent.mkdir()
        fresh.write_bytes(b"")
        stale.write_bytes(b"")
        old = time.time() - 7200
        os.utime(stale, (old, old))
        assert find_orphan_tmps(tmp_path, 3600) == [stale]
        assert sweep_orphan_tmps(tmp_path, 3600) == 1
        assert fresh.exists() and not stale.exists()

    def test_store_open_sweeps(self, tmp_path):
        stale = tmp_path / "store" / "leftover.tmp"
        stale.parent.mkdir(parents=True)
        stale.write_bytes(b"")
        old = time.time() - 7200
        os.utime(stale, (old, old))
        store = ArtifactStore(tmp_path / "store")
        assert store.swept_tmps == 1
        assert not stale.exists()


# ------------------------------------------------------- store integrity
class TestArtifactStoreUnderFaults:
    def test_put_get_round_trip_records_checksum(self, tmp_path, compiled):
        store = ArtifactStore(tmp_path)
        key = make_key()
        store.put(key, compiled)
        got = store.get(key)
        assert got is not None
        assert got.binary_bytes == compiled.binary_bytes
        assert key.digest in store.journal_keys()

    def test_eio_write_fails_put_cleanly(self, tmp_path, compiled):
        store = ArtifactStore(tmp_path)
        with faults.active("eio-write"):
            with pytest.raises(InjectedFault, match="injected"):
                store.put(make_key(), compiled)
        assert len(store) == 0
        assert find_orphan_tmps(tmp_path, 0) == []  # cleanup ran

    def test_torn_replace_fails_put_and_sweep_recovers(self, tmp_path, compiled):
        store = ArtifactStore(tmp_path)
        with faults.active("torn-replace"):
            with pytest.raises(InjectedFault):
                store.put(make_key(), compiled)
        assert len(store) == 0

    def test_truncated_write_is_caught_by_verify_reads(self, tmp_path, compiled):
        store = ArtifactStore(tmp_path, verify_reads=True)
        key = make_key()
        with faults.active("truncated-write"):
            store.put(key, compiled)
        assert store.get(key) is None  # corrupt ⇒ miss, never wrong bytes
        assert store.read_errors == 1

    def test_eio_read_is_an_observable_miss(self, tmp_path, compiled):
        store = ArtifactStore(tmp_path)
        key = make_key()
        store.put(key, compiled)
        with faults.active("eio-read"):
            assert store.get(key) is None
        assert store.read_errors == 1
        assert store.get(key) is not None  # entry itself is intact

    def test_env_verify_reads(self, tmp_path, compiled, monkeypatch):
        key = make_key()
        store = ArtifactStore(tmp_path)
        store.put(key, compiled)
        # Corrupt the payload without touching the stored checksum.
        path = store.path_for(key)
        data = bytearray(path.read_bytes())
        data[-40] ^= 0xFF
        path.write_bytes(bytes(data))
        monkeypatch.setenv("REPRO_VERIFY_READS", "1")
        checked = ArtifactStore(tmp_path)
        assert checked.verify_reads
        assert checked.get(key) is None  # flipped byte ⇒ miss, not bad data
        assert checked.read_errors == 1
