"""Tests for the sorted segment-reduction engine (repro.nn.segments).

The engine replaces ``np.add.at`` / ``np.maximum.at``; every property test
compares against exactly those references, so a regression in the fast path
cannot hide.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn.functional import segment_max, segment_mean, segment_softmax, segment_sum
from repro.nn.segments import (
    ConvPlan,
    SegmentIndex,
    as_segment_index,
    build_conv_plan,
    scatter_add_rows,
    seg_counts,
    seg_max,
    seg_sum,
)
from repro.nn.tensor import Tensor


def ref_seg_sum(data, ids, num_segments):
    out = np.zeros((num_segments,) + data.shape[1:], dtype=np.float32)
    np.add.at(out, ids, data)
    return out


def ref_seg_max(data, ids, num_segments, empty=0.0):
    out = np.full((num_segments,) + data.shape[1:], -np.inf, dtype=np.float32)
    np.maximum.at(out, ids, data)
    out[~np.isfinite(out)] = empty
    return out


@st.composite
def segment_case(draw, max_items=60, max_segments=12, cols=None):
    n_seg = draw(st.integers(1, max_segments))
    n_items = draw(st.integers(0, max_items))
    ids = np.asarray(
        draw(st.lists(st.integers(0, n_seg - 1), min_size=n_items, max_size=n_items)),
        dtype=np.int64,
    )
    c = cols if cols is not None else draw(st.integers(1, 5))
    data = (
        draw(
            st.lists(
                st.floats(-10, 10, width=32),
                min_size=n_items * c,
                max_size=n_items * c,
            )
        )
    )
    data = np.asarray(data, dtype=np.float32).reshape(n_items, c)
    return ids, data, n_seg


class TestSegmentIndex:
    def test_empty(self):
        si = SegmentIndex(np.zeros(0, dtype=np.int64), 5)
        assert len(si) == 0
        assert seg_sum(np.zeros((0, 3), dtype=np.float32), si).shape == (5, 3)
        assert np.all(seg_counts(si) == 0)

    def test_basic_layout(self):
        si = SegmentIndex(np.array([2, 0, 2, 1]), 4)
        assert sorted(si.unique.tolist()) == [0, 1, 2]
        counts = seg_counts(si)
        np.testing.assert_array_equal(counts, [1, 1, 2, 0])

    def test_as_segment_index_passthrough(self):
        si = SegmentIndex(np.array([0, 1]), 2)
        assert as_segment_index(si, 2) is si

    def test_as_segment_index_wrong_count_rejected(self):
        si = SegmentIndex(np.array([0, 1]), 2)
        with pytest.raises(ValueError):
            as_segment_index(si, 3)

    def test_matrix_is_cached(self):
        si = SegmentIndex(np.array([0, 1, 1]), 2)
        assert si.matrix() is si.matrix()

    def test_matrix_rows_sum_items(self):
        ids = np.array([0, 1, 1, 3])
        si = SegmentIndex(ids, 4)
        m = si.matrix().toarray()
        assert m.shape == (4, 4)
        np.testing.assert_array_equal(m.sum(axis=1), [1, 2, 0, 1])


class TestRawReductions:
    @settings(max_examples=60, deadline=None)
    @given(segment_case())
    def test_seg_sum_matches_add_at(self, case):
        ids, data, n_seg = case
        si = SegmentIndex(ids, n_seg)
        np.testing.assert_allclose(
            seg_sum(data, si), ref_seg_sum(data, ids, n_seg), rtol=1e-4, atol=1e-4
        )

    @settings(max_examples=60, deadline=None)
    @given(segment_case())
    def test_seg_max_matches_maximum_at(self, case):
        ids, data, n_seg = case
        si = SegmentIndex(ids, n_seg)
        np.testing.assert_allclose(
            seg_max(data, si), ref_seg_max(data, ids, n_seg), rtol=1e-5
        )

    @settings(max_examples=60, deadline=None)
    @given(segment_case(cols=3))
    def test_scatter_add_rows_matches_add_at(self, case):
        ids, data, n_seg = case
        ref = np.zeros((n_seg, 3), dtype=np.float32)
        np.add.at(ref, ids, data)
        np.testing.assert_allclose(
            scatter_add_rows(n_seg, ids, data), ref, rtol=1e-4, atol=1e-4
        )

    def test_scatter_add_rows_multidim_indices(self):
        idx = np.array([[0, 1], [1, 0]])
        upd = np.ones((2, 2, 3), dtype=np.float32)
        out = scatter_add_rows(2, idx, upd)
        np.testing.assert_allclose(out, np.full((2, 3), 2.0))

    def test_scatter_add_rows_scalar_payload(self):
        idx = np.array([0, 0, 1])
        upd = np.array([1.0, 2.0, 3.0], dtype=np.float32)
        out = scatter_add_rows(3, idx, upd)
        np.testing.assert_allclose(out, [3.0, 3.0, 0.0])

    def test_seg_sum_1d_payload(self):
        si = SegmentIndex(np.array([0, 0, 2]), 3)
        out = seg_sum(np.array([1.0, 2.0, 5.0], dtype=np.float32), si)
        np.testing.assert_allclose(out, [3.0, 0.0, 5.0])

    def test_seg_max_empty_fill(self):
        si = SegmentIndex(np.array([0]), 3)
        out = seg_max(np.array([[2.0]], dtype=np.float32), si, empty=-7.0)
        np.testing.assert_allclose(out[1:], -7.0)


class TestFunctionalWithIndex:
    """The functional wrappers must accept a prebuilt SegmentIndex."""

    def test_segment_sum_accepts_index(self):
        ids = np.array([0, 1, 1])
        x = Tensor(np.eye(3, dtype=np.float32), requires_grad=True)
        si = SegmentIndex(ids, 2)
        out_idx = segment_sum(x, si, 2)
        out_raw = segment_sum(Tensor(np.eye(3, dtype=np.float32)), ids, 2)
        np.testing.assert_allclose(out_idx.data, out_raw.data)

    def test_segment_sum_gradient_with_index(self):
        ids = np.array([0, 1, 1, 0])
        x = Tensor(np.arange(8, dtype=np.float32).reshape(4, 2), requires_grad=True)
        si = SegmentIndex(ids, 2)
        segment_sum(x, si, 2).sum().backward()
        np.testing.assert_allclose(x.grad, np.ones((4, 2)))

    def test_segment_max_gradient_ties_split(self):
        ids = np.array([0, 0])
        x = Tensor(np.array([[3.0], [3.0]]), requires_grad=True)
        segment_max(x, SegmentIndex(ids, 1), 1).sum().backward()
        np.testing.assert_allclose(x.grad, [[0.5], [0.5]])

    def test_segment_softmax_sums_to_one_per_segment(self):
        ids = np.array([0, 0, 1, 1, 1])
        scores = Tensor(np.random.default_rng(0).normal(size=(5, 2)).astype(np.float32))
        alpha = segment_softmax(scores, SegmentIndex(ids, 2), 2).data
        np.testing.assert_allclose(alpha[:2].sum(axis=0), 1.0, rtol=1e-5)
        np.testing.assert_allclose(alpha[2:].sum(axis=0), 1.0, rtol=1e-5)

    def test_segment_mean_counts(self):
        ids = np.array([0, 0, 1])
        x = Tensor(np.array([[2.0], [4.0], [6.0]]))
        out = segment_mean(x, SegmentIndex(ids, 3), 3)
        np.testing.assert_allclose(out.data, [[3.0], [6.0], [0.0]])


class TestConvPlan:
    def test_self_loops_appended(self):
        edges = np.array([[0, 1], [1, 2]])
        plan = build_conv_plan(edges, np.array([0, 1]), 4, add_self_loops=True)
        assert plan.src.shape == (6,)  # 2 edges + 4 loops
        np.testing.assert_array_equal(plan.src[2:], np.arange(4))
        np.testing.assert_array_equal(plan.dst[2:], np.arange(4))
        np.testing.assert_array_equal(plan.pos[2:], 0)

    def test_no_self_loops(self):
        edges = np.array([[0], [1]])
        plan = build_conv_plan(edges, None, 3, add_self_loops=False)
        assert plan.src.shape == (1,)
        assert plan.pos is None

    def test_empty_edges(self):
        plan = build_conv_plan(None, None, 3, add_self_loops=True)
        np.testing.assert_array_equal(plan.src, np.arange(3))
        assert plan.dst_index.num_segments == 3

    def test_dst_index_consistent(self):
        edges = np.array([[0, 1, 2], [2, 2, 0]])
        plan = build_conv_plan(edges, None, 3)
        np.testing.assert_array_equal(plan.dst_index.ids, plan.dst)

    def test_plan_is_dataclass_with_num_nodes(self):
        plan = build_conv_plan(None, None, 5)
        assert isinstance(plan, ConvPlan)
        assert plan.num_nodes == 5


class TestScatterIndexMemo:
    def test_same_array_object_reuses_index(self):
        from repro.nn.segments import _SCATTER_INDEX_MEMO, _memoized_segment_index

        ids = np.array([0, 2, 2, 1], dtype=np.int64)
        first = _memoized_segment_index(ids, 3)
        second = _memoized_segment_index(ids, 3)
        assert first is second
        assert (id(ids), 3) in _SCATTER_INDEX_MEMO

    def test_num_rows_is_part_of_the_key(self):
        from repro.nn.segments import _memoized_segment_index

        ids = np.array([0, 1], dtype=np.int64)
        assert _memoized_segment_index(ids, 2) is not _memoized_segment_index(ids, 4)

    def test_lru_cap_bounds_entries(self):
        from repro.nn.segments import (
            _SCATTER_INDEX_MEMO,
            _SCATTER_INDEX_MEMO_CAP,
            _memoized_segment_index,
        )

        keep = [np.array([0, 1], dtype=np.int64) for _ in range(20)]
        for ids in keep:
            _memoized_segment_index(ids, 2)
        for _ in range(_SCATTER_INDEX_MEMO_CAP + 8):
            _memoized_segment_index(np.array([0, 1], dtype=np.int64), 2)
        assert len(_SCATTER_INDEX_MEMO) <= _SCATTER_INDEX_MEMO_CAP
        # The early entries were least recently used and must be gone.
        assert (id(keep[0]), 2) not in _SCATTER_INDEX_MEMO

    def test_scatter_add_rows_memoized_result_correct(self):
        ids = np.array([1, 0, 1, 2], dtype=np.int64)
        updates = np.arange(8, dtype=np.float32).reshape(4, 2)
        want = np.zeros((3, 2), dtype=np.float32)
        np.add.at(want, ids, updates)
        first = scatter_add_rows(3, ids, updates)
        second = scatter_add_rows(3, ids, updates * 2)
        np.testing.assert_allclose(first, want)
        np.testing.assert_allclose(second, want * 2)
