"""Tests for GATv2, HeteroConv, the hetero stack, and graph pooling."""

import numpy as np
import pytest

from repro.nn.gnn import GATv2Conv, HeteroConv, HeteroGNNStack
from repro.nn.pooling import GlobalAttentionPool, MeanPool
from repro.nn.tensor import Tensor
from tests.helpers import check_gradients


def _rng(seed=0):
    return np.random.default_rng(seed)


def _graph(n=5, e=8, seed=0):
    rng = _rng(seed)
    x = Tensor(rng.standard_normal((n, 4)).astype(np.float32))
    edges = rng.integers(0, n, size=(2, e)).astype(np.int64)
    pos = rng.integers(0, 3, size=e).astype(np.int64)
    return x, edges, pos


class TestGATv2Conv:
    def test_output_shape(self):
        x, edges, pos = _graph()
        conv = GATv2Conv(4, 6, rng=_rng(1))
        assert conv(x, edges).shape == (5, 6)

    def test_multihead_shape(self):
        x, edges, _ = _graph()
        conv = GATv2Conv(4, 8, heads=2, rng=_rng(1))
        assert conv(x, edges).shape == (5, 8)

    def test_rejects_bad_head_split(self):
        with pytest.raises(ValueError):
            GATv2Conv(4, 7, heads=2)

    def test_isolated_node_survives_via_self_loop(self):
        x = Tensor(np.ones((3, 4), dtype=np.float32))
        edges = np.array([[0], [1]], dtype=np.int64)  # node 2 isolated
        conv = GATv2Conv(4, 4, rng=_rng(2))
        out = conv(x, edges).data
        assert np.abs(out[2]).sum() > 0

    def test_no_self_loops_zero_for_isolated(self):
        x = Tensor(np.ones((3, 4), dtype=np.float32))
        edges = np.array([[0], [1]], dtype=np.int64)
        conv = GATv2Conv(4, 4, add_self_loops=False, rng=_rng(2))
        out = conv(x, edges).data
        np.testing.assert_allclose(out[2], conv.bias.data, atol=1e-6)

    def test_empty_edge_set(self):
        x = Tensor(np.ones((3, 4), dtype=np.float32))
        edges = np.zeros((2, 0), dtype=np.int64)
        conv = GATv2Conv(4, 4, rng=_rng(3))
        assert conv(x, edges).shape == (3, 4)

    def test_position_feature_changes_output(self):
        x, edges, pos = _graph(seed=5)
        conv = GATv2Conv(4, 4, edge_dim=1, rng=_rng(4))
        out_a = conv(x, edges, pos).data
        out_b = conv(x, edges, (pos + 1) % 3).data
        assert not np.allclose(out_a, out_b)

    def test_position_clipped_into_table(self):
        x, edges, _ = _graph(seed=6)
        conv = GATv2Conv(4, 4, edge_dim=1, max_positions=4, rng=_rng(5))
        big_pos = np.full(edges.shape[1], 1000, dtype=np.int64)
        out = conv(x, edges, big_pos)
        assert np.all(np.isfinite(out.data))

    def test_gradcheck_small(self):
        rng = _rng(7)
        x = Tensor(rng.standard_normal((4, 3)).astype(np.float32))
        edges = np.array([[0, 1, 2, 3], [1, 2, 3, 0]], dtype=np.int64)
        conv = GATv2Conv(3, 2, rng=rng)
        check_gradients(lambda: (conv(x, edges) ** 2).sum(), conv.parameters())

    def test_input_gradient_flows(self):
        rng = _rng(8)
        x = Tensor(rng.standard_normal((4, 3)).astype(np.float32), requires_grad=True)
        edges = np.array([[0, 1], [1, 0]], dtype=np.int64)
        conv = GATv2Conv(3, 2, rng=rng)
        (conv(x, edges) ** 2).sum().backward()
        assert x.grad is not None and np.abs(x.grad).sum() > 0

    def test_attention_normalizes_over_in_edges(self):
        # A node receiving messages from identical neighbors should output the
        # same value as receiving from one (softmax convexity sanity).
        rng = _rng(9)
        conv = GATv2Conv(3, 3, add_self_loops=False, rng=rng)
        h = rng.standard_normal((1, 3)).astype(np.float32)
        x2 = Tensor(np.vstack([h, h, np.zeros((1, 3))]).astype(np.float32))
        one = conv(x2, np.array([[0], [2]], dtype=np.int64)).data[2]
        two = conv(x2, np.array([[0, 1], [2, 2]], dtype=np.int64)).data[2]
        np.testing.assert_allclose(one, two, rtol=1e-4, atol=1e-5)


class TestHeteroConv:
    def _convs(self, rng):
        return {
            "control": GATv2Conv(4, 4, rng=rng),
            "data": GATv2Conv(4, 4, rng=rng),
            "call": GATv2Conv(4, 4, rng=rng),
        }

    def test_three_relations_shape(self):
        x, edges, _ = _graph()
        conv = HeteroConv(self._convs(_rng(1)))
        out = conv(x, {"control": edges, "data": edges, "call": edges})
        assert out.shape == (5, 4)

    def test_missing_relation_treated_as_empty(self):
        x, edges, _ = _graph()
        conv = HeteroConv(self._convs(_rng(2)))
        out = conv(x, {"control": edges})
        assert out.shape == (5, 4)

    def test_max_dominates(self):
        # max aggregation: output >= each relation's own output elementwise
        x, edges, _ = _graph(seed=3)
        convs = self._convs(_rng(3))
        conv = HeteroConv(convs, aggregate="max")
        combined = conv(x, {"control": edges}).data
        single = convs["control"](x, edges).data
        assert np.all(combined >= single - 1e-5)

    def test_sum_and_mean_aggregates(self):
        x, edges, _ = _graph(seed=4)
        convs = self._convs(_rng(4))
        s = HeteroConv(convs, aggregate="sum")(x, {"control": edges, "data": edges})
        convs2 = self._convs(_rng(4))
        m = HeteroConv(convs2, aggregate="mean")(x, {"control": edges, "data": edges})
        np.testing.assert_allclose(s.data / 3.0, m.data, rtol=1e-4, atol=1e-5)

    def test_rejects_unknown_aggregate(self):
        with pytest.raises(ValueError):
            HeteroConv(self._convs(_rng(0)), aggregate="median")


class TestHeteroGNNStack:
    def test_stack_shapes(self):
        x, edges, pos = _graph()
        stack = HeteroGNNStack(
            ["control", "data", "call"], in_dim=4, hidden_dim=8, num_layers=3, rng=_rng(5)
        )
        out = stack(x, {"control": edges}, {"control": pos})
        assert out.shape == (5, 8)

    def test_all_params_receive_grad(self):
        x, edges, pos = _graph(seed=6)
        stack = HeteroGNNStack(
            ["control", "data"], in_dim=4, hidden_dim=4, num_layers=2, rng=_rng(6)
        )
        out = stack(x, {"control": edges, "data": edges}, {"control": pos, "data": pos})
        (out**2).sum().backward()
        missing = [n for n, p in stack.named_parameters() if p.grad is None]
        assert not missing, f"params without grad: {missing}"

    def test_layer_count(self):
        stack = HeteroGNNStack(["control"], 4, 8, num_layers=5, rng=_rng(0))
        assert len(stack.layers) == 5
        assert len(stack.norms) == 5


class TestPooling:
    def test_attention_pool_single_graph(self):
        rng = _rng(1)
        x = Tensor(rng.standard_normal((6, 4)).astype(np.float32))
        pool = GlobalAttentionPool(4, rng=rng)
        assert pool(x).shape == (1, 4)

    def test_attention_pool_batched(self):
        rng = _rng(2)
        x = Tensor(rng.standard_normal((7, 4)).astype(np.float32))
        gid = np.array([0, 0, 0, 1, 1, 2, 2])
        pool = GlobalAttentionPool(4, rng=rng)
        assert pool(x, gid, 3).shape == (3, 4)

    def test_batched_equals_individual(self):
        rng = _rng(3)
        pool = GlobalAttentionPool(4, rng=rng)
        xa = rng.standard_normal((3, 4)).astype(np.float32)
        xb = rng.standard_normal((2, 4)).astype(np.float32)
        both = pool(
            Tensor(np.vstack([xa, xb])), np.array([0, 0, 0, 1, 1]), 2
        ).data
        solo_a = pool(Tensor(xa)).data[0]
        solo_b = pool(Tensor(xb)).data[0]
        np.testing.assert_allclose(both[0], solo_a, rtol=1e-4, atol=1e-5)
        np.testing.assert_allclose(both[1], solo_b, rtol=1e-4, atol=1e-5)

    def test_attention_pool_gradcheck(self):
        rng = _rng(4)
        x = Tensor(rng.standard_normal((4, 3)).astype(np.float32))
        pool = GlobalAttentionPool(3, rng=rng)
        check_gradients(lambda: (pool(x) ** 2).sum(), pool.parameters())

    def test_mean_pool(self):
        x = Tensor(np.array([[2.0, 0.0], [4.0, 2.0]], dtype=np.float32))
        out = MeanPool()(x).data
        np.testing.assert_allclose(out, [[3.0, 1.0]])

    def test_mean_pool_batched(self):
        x = Tensor(np.arange(8, dtype=np.float32).reshape(4, 2))
        out = MeanPool()(x, np.array([0, 0, 1, 1]), 2).data
        np.testing.assert_allclose(out, [[1.0, 2.0], [5.0, 6.0]])


class TestConvPlanValidation:
    def _setup(self, add_self_loops=True):
        conv = GATv2Conv(6, 8, add_self_loops=add_self_loops)
        x = Tensor(np.random.default_rng(0).standard_normal((4, 6)).astype(np.float32))
        edges = np.array([[0, 1, 2], [1, 2, 3]], dtype=np.int64)
        return conv, x, edges

    def test_matching_plan_accepted(self):
        from repro.nn.segments import build_conv_plan

        conv, x, edges = self._setup()
        plan = build_conv_plan(edges, None, 4, add_self_loops=True)
        direct = conv(x, edges)
        via_plan = conv(x, plan=plan)
        np.testing.assert_allclose(via_plan.data, direct.data)

    def test_self_loop_mismatch_rejected(self):
        from repro.nn.segments import build_conv_plan

        conv, x, edges = self._setup(add_self_loops=True)
        plan = build_conv_plan(edges, None, 4, add_self_loops=False)
        with pytest.raises(ValueError, match="add_self_loops"):
            conv(x, plan=plan)

    def test_mismatch_rejected_both_directions(self):
        from repro.nn.segments import build_conv_plan

        conv, x, edges = self._setup(add_self_loops=False)
        plan = build_conv_plan(edges, None, 4, add_self_loops=True)
        with pytest.raises(ValueError, match="add_self_loops"):
            conv(x, plan=plan)

    def test_node_count_mismatch_still_rejected(self):
        from repro.nn.segments import build_conv_plan

        conv, x, edges = self._setup()
        plan = build_conv_plan(edges, None, 9, add_self_loops=True)
        with pytest.raises(ValueError, match="nodes"):
            conv(x, plan=plan)
