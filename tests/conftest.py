"""Shared pytest plumbing: an opt-in per-test timeout.

A hung warm-pool worker (deadlocked pipe, orphaned child waiting on a
parent that already failed) would otherwise stall the whole suite until
the CI job's global timeout fires — long after the interesting stack is
gone.  ``REPRO_TEST_TIMEOUT=<seconds>`` (set by ``scripts/verify.sh`` and
the CI workflow; unset for interactive runs so debuggers are usable) arms
a ``SIGALRM`` around every test and fails the offender with a Python
traceback pointing at the blocked line.

No third-party plugin (pytest-timeout is not in the image); SIGALRM is
main-thread-only and Unix-only, which matches how the suite runs.
"""

from __future__ import annotations

import os
import signal

import pytest


def _timeout_seconds() -> float:
    raw = os.environ.get("REPRO_TEST_TIMEOUT", "").strip()
    if not raw:
        return 0.0
    try:
        return max(float(raw), 0.0)
    except ValueError:
        return 0.0


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_call(item):
    seconds = _timeout_seconds()
    if seconds <= 0 or not hasattr(signal, "SIGALRM"):
        yield
        return

    def _on_alarm(signum, frame):
        raise TimeoutError(
            f"test exceeded REPRO_TEST_TIMEOUT={seconds:g}s: {item.nodeid}"
        )

    previous = signal.signal(signal.SIGALRM, _on_alarm)
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)
