"""Tests for layers, modules, optimizers, losses, LSTM, transformer."""

import numpy as np
import pytest

import repro.nn as nn
from repro.nn.tensor import Tensor
from tests.helpers import check_gradients


def _rng(seed=0):
    return np.random.default_rng(seed)


class TestLinear:
    def test_forward_shape(self):
        layer = nn.Linear(4, 3, rng=_rng())
        out = layer(Tensor(np.ones((2, 4), dtype=np.float32)))
        assert out.shape == (2, 3)

    def test_no_bias(self):
        layer = nn.Linear(4, 3, bias=False, rng=_rng())
        assert layer.bias is None
        assert len(layer.parameters()) == 1

    def test_gradcheck(self):
        layer = nn.Linear(3, 2, rng=_rng(1))
        x = Tensor(_rng(2).standard_normal((4, 3)).astype(np.float32))
        check_gradients(lambda: (layer(x) ** 2).sum(), layer.parameters())

    def test_batched_input(self):
        layer = nn.Linear(3, 2, rng=_rng())
        out = layer(Tensor(np.zeros((2, 5, 3), dtype=np.float32)))
        assert out.shape == (2, 5, 2)


class TestEmbedding:
    def test_padding_idx_zero_initialized(self):
        emb = nn.Embedding(10, 4, padding_idx=0, rng=_rng())
        np.testing.assert_allclose(emb.weight.data[0], 0.0)

    def test_forward(self):
        emb = nn.Embedding(10, 4, rng=_rng())
        out = emb(np.array([[1, 2], [3, 4]]))
        assert out.shape == (2, 2, 4)

    def test_grad_flows_to_table(self):
        emb = nn.Embedding(5, 3, rng=_rng())
        emb(np.array([1, 1])).sum().backward()
        np.testing.assert_allclose(emb.weight.grad[1], 2.0)


class TestLayerNorm:
    def test_normalizes(self):
        ln = nn.LayerNorm(8)
        x = Tensor(_rng(0).standard_normal((4, 8)).astype(np.float32) * 10 + 5)
        out = ln(x).data
        np.testing.assert_allclose(out.mean(axis=-1), 0.0, atol=1e-4)
        np.testing.assert_allclose(out.std(axis=-1), 1.0, atol=1e-2)

    def test_gradcheck(self):
        ln = nn.LayerNorm(4)
        x = Tensor(_rng(1).standard_normal((2, 4)).astype(np.float32))
        w = Tensor(_rng(2).standard_normal((2, 4)).astype(np.float32))
        check_gradients(lambda: (ln(x) * w).sum(), ln.parameters())

    def test_input_gradcheck(self):
        ln = nn.LayerNorm(4)
        x = Tensor(_rng(3).standard_normal((2, 4)).astype(np.float32), requires_grad=True)
        w = Tensor(_rng(4).standard_normal((2, 4)).astype(np.float32))
        check_gradients(lambda: (ln(x) * w).sum(), [x])


class TestDropoutLayer:
    def test_train_vs_eval(self):
        d = nn.Dropout(0.5, rng=_rng())
        x = Tensor(np.ones((100,), dtype=np.float32))
        d.train()
        assert (d(x).data == 0).any()
        d.eval()
        np.testing.assert_allclose(d(x).data, 1.0)


class TestContainers:
    def test_mlp_shapes(self):
        mlp = nn.MLP([4, 8, 2], rng=_rng())
        out = mlp(Tensor(np.zeros((3, 4), dtype=np.float32)))
        assert out.shape == (3, 2)

    def test_mlp_final_activation(self):
        mlp = nn.MLP([2, 2], rng=_rng(), final_activation=lambda t: t.sigmoid())
        out = mlp(Tensor(np.zeros((1, 2), dtype=np.float32))).data
        assert np.all((out > 0) & (out < 1))

    def test_module_list_iteration(self):
        ml = nn.ModuleList([nn.Linear(2, 2, rng=_rng()) for _ in range(3)])
        assert len(ml) == 3
        assert len(list(iter(ml))) == 3
        assert isinstance(ml[1], nn.Linear)

    def test_module_dict(self):
        md = nn.ModuleDict({"a": nn.Linear(2, 2, rng=_rng())})
        assert "a" in md
        assert isinstance(md["a"], nn.Linear)

    def test_named_parameters_dotted(self):
        mlp = nn.MLP([2, 3, 1], rng=_rng())
        names = [n for n, _ in mlp.named_parameters()]
        assert "layers.0.weight" in names
        assert "layers.1.bias" in names

    def test_state_dict_roundtrip(self):
        a = nn.MLP([3, 4, 2], rng=_rng(1))
        b = nn.MLP([3, 4, 2], rng=_rng(2))
        b.load_state_dict(a.state_dict())
        x = Tensor(_rng(0).standard_normal((2, 3)).astype(np.float32))
        np.testing.assert_allclose(a(x).data, b(x).data)

    def test_load_state_dict_rejects_mismatch(self):
        a = nn.MLP([3, 4, 2], rng=_rng())
        with pytest.raises(KeyError):
            a.load_state_dict({"bogus": np.zeros(2)})

    def test_num_parameters(self):
        layer = nn.Linear(3, 2, rng=_rng())
        assert layer.num_parameters() == 3 * 2 + 2

    def test_zero_grad_clears_all(self):
        mlp = nn.MLP([2, 2], rng=_rng())
        mlp(Tensor(np.ones((1, 2), dtype=np.float32))).sum().backward()
        assert any(p.grad is not None for p in mlp.parameters())
        mlp.zero_grad()
        assert all(p.grad is None for p in mlp.parameters())


class TestOptimizers:
    def _quadratic_setup(self):
        w = nn.Parameter(np.array([5.0, -3.0], dtype=np.float32))
        return w

    def test_sgd_descends(self):
        w = self._quadratic_setup()
        opt = nn.SGD([w], lr=0.1)
        for _ in range(100):
            opt.zero_grad()
            (w * w).sum().backward()
            opt.step()
        np.testing.assert_allclose(w.data, 0.0, atol=1e-3)

    def test_sgd_momentum_descends(self):
        w = self._quadratic_setup()
        opt = nn.SGD([w], lr=0.05, momentum=0.9)
        for _ in range(300):
            opt.zero_grad()
            (w * w).sum().backward()
            opt.step()
        np.testing.assert_allclose(w.data, 0.0, atol=1e-2)

    def test_adam_descends(self):
        w = self._quadratic_setup()
        opt = nn.Adam([w], lr=0.2)
        for _ in range(200):
            opt.zero_grad()
            (w * w).sum().backward()
            opt.step()
        np.testing.assert_allclose(w.data, 0.0, atol=1e-2)

    def test_adam_skips_gradless_params(self):
        w = self._quadratic_setup()
        frozen = nn.Parameter(np.array([1.0], dtype=np.float32))
        opt = nn.Adam([w, frozen], lr=0.1)
        opt.zero_grad()
        (w * w).sum().backward()
        opt.step()
        np.testing.assert_allclose(frozen.data, [1.0])

    def test_cosine_schedule_decays(self):
        w = self._quadratic_setup()
        opt = nn.Adam([w], lr=1.0)
        sched = nn.CosineSchedule(opt, base_lr=1.0, total_steps=10)
        lrs = [sched.step() for _ in range(10)]
        assert lrs[0] > lrs[-1]
        assert lrs[-1] == pytest.approx(0.0, abs=1e-6)

    def test_cosine_warmup(self):
        w = self._quadratic_setup()
        opt = nn.SGD([w], lr=1.0)
        sched = nn.CosineSchedule(opt, base_lr=1.0, total_steps=20, warmup=5)
        lrs = [sched.step() for _ in range(5)]
        np.testing.assert_allclose(lrs, [0.2, 0.4, 0.6, 0.8, 1.0])


class TestLosses:
    def test_bce_perfect_prediction_near_zero(self):
        pred = Tensor(np.array([0.999, 0.001], dtype=np.float32))
        loss = nn.binary_cross_entropy(pred, np.array([1.0, 0.0]))
        assert loss.item() < 0.01

    def test_bce_wrong_prediction_large(self):
        pred = Tensor(np.array([0.01], dtype=np.float32))
        loss = nn.binary_cross_entropy(pred, np.array([1.0]))
        assert loss.item() > 2.0

    def test_bce_gradcheck(self):
        logits = Tensor(
            _rng(0).standard_normal(6).astype(np.float32), requires_grad=True
        )
        target = (_rng(1).random(6) > 0.5).astype(np.float32)
        check_gradients(
            lambda: nn.binary_cross_entropy(logits.sigmoid(), target), [logits]
        )

    def test_bce_with_logits_matches_composed(self):
        x = Tensor(_rng(2).standard_normal(8).astype(np.float32))
        t = (_rng(3).random(8) > 0.5).astype(np.float32)
        a = nn.binary_cross_entropy_with_logits(x, t).item()
        b = nn.binary_cross_entropy(x.sigmoid(), t).item()
        assert a == pytest.approx(b, rel=1e-3, abs=1e-4)

    def test_triplet_zero_when_separated(self):
        a = Tensor(np.zeros((2, 4), dtype=np.float32))
        p = Tensor(np.zeros((2, 4), dtype=np.float32))
        n = Tensor(np.full((2, 4), 10.0, dtype=np.float32))
        assert nn.triplet_margin_loss(a, p, n, margin=0.5).item() == 0.0

    def test_triplet_positive_when_collapsed(self):
        a = Tensor(np.zeros((1, 4), dtype=np.float32))
        loss = nn.triplet_margin_loss(a, a, a, margin=0.5)
        assert loss.item() == pytest.approx(0.5)

    def test_mse(self):
        pred = Tensor(np.array([1.0, 2.0], dtype=np.float32))
        assert nn.mse_loss(pred, np.array([0.0, 0.0])).item() == pytest.approx(2.5)


class TestLSTM:
    def test_shapes(self):
        lstm = nn.LSTM(4, 8, rng=_rng())
        x = Tensor(np.zeros((2, 5, 4), dtype=np.float32))
        all_h, last_h = lstm(x)
        assert all_h.shape == (2, 5, 8)
        assert last_h.shape == (2, 8)

    def test_mask_freezes_state(self):
        lstm = nn.LSTM(2, 4, rng=_rng(1))
        x = Tensor(_rng(0).standard_normal((1, 6, 2)).astype(np.float32))
        mask_full = np.ones((1, 6))
        mask_short = np.ones((1, 6))
        mask_short[:, 3:] = 0
        _, h_short = lstm(x, mask_short)
        # State after step 3 should equal state with only first 3 steps.
        x3 = Tensor(x.data[:, :3, :])
        _, h3 = lstm(x3, np.ones((1, 3)))
        np.testing.assert_allclose(h_short.data, h3.data, rtol=1e-5)
        _, h_full = lstm(x, mask_full)
        assert not np.allclose(h_full.data, h_short.data)

    def test_gradient_flows_through_time(self):
        lstm = nn.LSTM(2, 3, rng=_rng(2))
        x = Tensor(
            _rng(1).standard_normal((2, 4, 2)).astype(np.float32), requires_grad=True
        )
        _, h = lstm(x)
        (h * h).sum().backward()
        assert x.grad is not None
        assert np.abs(x.grad[:, 0, :]).sum() > 0  # first timestep got gradient


class TestTransformer:
    def test_encoder_shapes(self):
        enc = nn.TransformerEncoder(dim=8, heads=2, num_layers=2, rng=_rng())
        x = Tensor(np.zeros((2, 6, 8), dtype=np.float32))
        assert enc(x).shape == (2, 6, 8)

    def test_padding_mask_blocks_attention(self):
        enc = nn.TransformerEncoder(dim=8, heads=2, num_layers=1, rng=_rng(3))
        enc.eval()
        rng = _rng(4)
        x = rng.standard_normal((1, 4, 8)).astype(np.float32)
        mask = np.array([[1, 1, 0, 0]])
        out1 = enc(Tensor(x), mask).data[:, :2]
        x2 = x.copy()
        x2[:, 2:] = 99.0  # perturb masked positions only
        out2 = enc(Tensor(x2), mask).data[:, :2]
        np.testing.assert_allclose(out1, out2, rtol=1e-4, atol=1e-5)

    def test_gradients_reach_projections(self):
        enc = nn.TransformerEncoder(dim=8, heads=2, num_layers=1, rng=_rng(5))
        x = Tensor(_rng(6).standard_normal((2, 3, 8)).astype(np.float32))
        (enc(x) ** 2).sum().backward()
        grads = [p.grad for p in enc.parameters()]
        assert all(g is not None for g in grads)

    def test_sinusoidal_table_range(self):
        table = nn.attention.sinusoidal_positions(16, 8) if hasattr(nn, "attention") else None
        from repro.nn.attention import sinusoidal_positions

        table = sinusoidal_positions(16, 8)
        assert table.shape == (16, 8)
        assert np.all(np.abs(table) <= 1.0)
