"""Tests for the concurrent socket retrieval service (repro.serve --socket).

The serving contract under concurrency: each connection gets its
responses in its own request order, as complete non-interleaved JSON
lines; batched results are bit-identical to the sequential stdin path;
faults (disconnects, garbage framing, slowloris trickle, a worker
crashing mid-batch) are contained to the connection or batch that caused
them; overload sheds deterministically with ``overloaded`` responses;
and an index hot-swap finishes in-flight queries on the old index while
later queries see the new one.
"""

import base64
import io
import json
import os
import socket
import threading
import time

import pytest

from repro.config import cpu_config, scaled, tiny_data_config
from repro.core.trainer import MatchTrainer
from repro.data.corpus import CorpusBuilder
from repro.data.pairs import build_pairs
from repro.index import EmbeddingIndex, ShardedEmbeddingIndex, open_index
from repro.serve import RetrievalServer, ServerConfig, create_server

# Generous wall bound for any single round-trip; the assertions that
# matter are about ordering and content, not absolute speed.
TIMEOUT = 120.0


@pytest.fixture(scope="module")
def corpus():
    samples = CorpusBuilder(tiny_data_config()).build(["c", "java"])
    c = [s for s in samples if s.language == "c"]
    j = [s for s in samples if s.language == "java"]
    return c, j


@pytest.fixture(scope="module")
def trained(corpus):
    c, j = corpus
    ds = build_pairs(c, j, "binary", "source", seed=0, max_pairs_per_task=3)
    cfg = scaled(cpu_config(), epochs=2, hidden_dim=16, embed_dim=16, num_layers=1)
    trainer = MatchTrainer(cfg)
    trainer.train(ds)
    return trainer


@pytest.fixture(scope="module")
def assets(trained, corpus, tmp_path_factory):
    """On-disk checkpoint + two distinguishable sharded indexes (A and B)."""
    _, j = corpus
    root = tmp_path_factory.mktemp("serve_concurrent")
    checkpoint = root / "model.npz"
    trained.save(checkpoint)
    paths = {"checkpoint": str(checkpoint)}
    for tag, samples in (("A", j), ("B", list(reversed(j)))):
        idx = EmbeddingIndex(trained)
        idx.add(
            [s.source_graph for s in samples],
            metas=[{"id": s.identifier, "index_tag": tag} for s in samples],
        )
        ShardedEmbeddingIndex.from_index(idx, root / f"index{tag}", 3)
        paths[tag] = str(root / f"index{tag}")
    return paths


@pytest.fixture(scope="module")
def server(assets):
    """The shared service most tests talk to: 2 workers, small batches."""
    config = ServerConfig(
        checkpoint=assets["checkpoint"],
        index_path=assets["A"],
        port=0,
        workers=2,
        max_batch=4,
        max_delay_ms=5.0,
        queue_depth=64,
        default_k=3,
        max_line_bytes=8192,
        enable_test_hooks=True,
    )
    with create_server(config) as srv:
        yield srv


class Client:
    """One JSON-lines client connection with framed reads."""

    def __init__(self, address, timeout=TIMEOUT):
        if isinstance(address, str):
            self.sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            self.sock.connect(address)
        else:
            self.sock = socket.create_connection(tuple(address), timeout=timeout)
        self.sock.settimeout(timeout)
        self._buf = b""

    def send(self, obj):
        self.send_raw((json.dumps(obj) + "\n").encode())

    def send_raw(self, data: bytes):
        self.sock.sendall(data)

    def recv(self) -> dict:
        while b"\n" not in self._buf:
            chunk = self.sock.recv(65536)
            if not chunk:
                raise ConnectionError("server closed the connection")
            self._buf += chunk
        line, self._buf = self._buf.split(b"\n", 1)
        return json.loads(line)

    def recv_all(self, n: int):
        return [self.recv() for _ in range(n)]

    def at_eof(self) -> bool:
        """True once the server has closed its side (after draining)."""
        try:
            return self.sock.recv(1) == b""
        except OSError:
            return True

    def close(self):
        try:
            self.sock.close()
        except OSError:
            pass

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()


def _binary_request(sample, **extra):
    req = {"binary_b64": base64.b64encode(sample.binary_bytes).decode()}
    req.update(extra)
    return req


class TestParity:
    def test_single_client_matches_stdin_path(
        self, server, trained, assets, corpus
    ):
        """The socket path returns bit-identical responses to `repro serve`
        reading the same requests from stdin over the same index."""
        c, j = corpus
        requests = [
            _binary_request(c[0], id="q0"),
            _binary_request(c[1], id="q1", k=1),
            {"id": "q2", "source": j[0].source_text, "language": "java"},
            _binary_request(c[2], id="q3", k=None),
        ]
        index = open_index(assets["A"], trained)
        stdin_server = RetrievalServer(trained, index, batch_size=4, default_k=3)
        out = io.StringIO()
        stdin_server.serve(
            io.StringIO("".join(json.dumps(r) + "\n" for r in requests)), out
        )
        expected = [json.loads(line) for line in out.getvalue().splitlines()]
        with Client(server.address) as client:
            for req in requests:
                client.send(req)
            got = client.recv_all(len(requests))
        assert got == expected

    def test_batched_bit_identical_to_sequential(self, server, corpus):
        """One pipelined burst (scored in shared batches) returns exactly
        what the same requests return one-at-a-time on fresh connections."""
        c, _ = corpus
        requests = [_binary_request(s, id=s.identifier) for s in c[:4]]
        sequential = []
        for req in requests:
            with Client(server.address) as client:
                client.send(req)
                sequential.append(client.recv())
        with Client(server.address) as client:
            for req in requests:
                client.send(req)
            batched = client.recv_all(len(requests))
        assert batched == sequential


class TestConcurrency:
    def test_many_clients_get_ordered_responses(self, server, corpus):
        c, _ = corpus
        clients, per_client = 8, 5
        failures = []

        def run(ci):
            try:
                with Client(server.address) as client:
                    ids = [f"c{ci}-q{j}" for j in range(per_client)]
                    for j, rid in enumerate(ids):
                        client.send(_binary_request(c[j % len(c)], id=rid))
                    responses = client.recv_all(per_client)
                    got_ids = [r.get("id") for r in responses]
                    if got_ids != ids:
                        failures.append(f"client {ci}: order {got_ids} != {ids}")
                    for r in responses:
                        if "hits" not in r:
                            failures.append(f"client {ci}: no hits in {r}")
            except Exception as exc:  # noqa: BLE001 - collected for the assert
                failures.append(f"client {ci}: {type(exc).__name__}: {exc}")

        threads = [
            threading.Thread(target=run, args=(ci,)) for ci in range(clients)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=TIMEOUT)
        assert not failures, failures

    def test_interleaved_clients_keep_their_own_streams(self, server, corpus):
        """Requests interleaved across two connections route every response
        to the connection that asked, each in its own order."""
        c, _ = corpus
        with Client(server.address) as one, Client(server.address) as two:
            for j in range(3):
                one.send(_binary_request(c[j], id=f"one-{j}"))
                two.send(_binary_request(c[j], id=f"two-{j}"))
            got_one = one.recv_all(3)
            got_two = two.recv_all(3)
        assert [r["id"] for r in got_one] == ["one-0", "one-1", "one-2"]
        assert [r["id"] for r in got_two] == ["two-0", "two-1", "two-2"]
        assert all("hits" in r for r in got_one + got_two)

    def test_stats_control(self, server, corpus):
        c, _ = corpus
        with Client(server.address) as client:
            client.send(_binary_request(c[0], id="warm"))
            assert "hits" in client.recv()
            client.send({"control": "stats", "id": "st"})
            resp = client.recv()
        assert resp["id"] == "st"
        stats = resp["stats"]
        assert stats["responses"] >= 1 and stats["workers"] == 2
        for key in ("requests", "shed", "batches", "flushed_on_deadline"):
            assert key in stats

    def test_unknown_control_is_an_error(self, server):
        with Client(server.address) as client:
            client.send({"control": "bogus", "id": "x"})
            resp = client.recv()
        assert resp["id"] == "x" and "unknown control" in resp["error"]


class TestFaults:
    def test_disconnect_mid_request_leaves_server_up(self, server, corpus):
        c, _ = corpus
        with Client(server.address) as client:
            client.send_raw(b'{"id": "half", "binary_b64": "AAAA')  # no newline
        # The partial line is served at EOF (here: as a parse error that has
        # no one left to read it).  The service must shrug it off.
        with Client(server.address) as client:
            client.send(_binary_request(c[0], id="after"))
            assert "hits" in client.recv()

    def test_disconnect_before_response_is_dropped_quietly(self, server, corpus):
        c, _ = corpus
        with Client(server.address) as client:
            client.send(_binary_request(c[0], id="gone"))
        with Client(server.address) as client:
            client.send(_binary_request(c[1], id="still-here"))
            resp = client.recv()
        assert resp["id"] == "still-here" and "hits" in resp

    def test_truncated_json_errors_but_connection_survives(self, server, corpus):
        c, _ = corpus
        with Client(server.address) as client:
            client.send_raw(b'{"id": "trunc", "binary_b64": "AAAA\n')
            resp = client.recv()
            assert "error" in resp
            client.send(_binary_request(c[0], id="next"))
            resp = client.recv()
        assert resp["id"] == "next" and "hits" in resp

    def test_oversized_line_gets_in_order_error_then_close(self, server, corpus):
        c, _ = corpus
        with Client(server.address) as client:
            client.send(_binary_request(c[0], id="fine"))
            client.send_raw(b"x" * (server.config.max_line_bytes + 100))
            first, second = client.recv_all(2)
            assert first["id"] == "fine" and "hits" in first
            assert "exceeds" in second["error"]
            assert client.at_eof()

    def test_slowloris_does_not_starve_other_clients(self, server, corpus):
        """A client trickling bytes holds only its own reader thread.  The
        request's tail is withheld until the fast clients are done, so the
        slow request is *provably* incomplete while they are served."""
        c, _ = corpus
        payload = (json.dumps(_binary_request(c[0], id="slow")) + "\n").encode()
        release = threading.Event()
        slow = Client(server.address)

        def trickle():
            body, tail = payload[:-8], payload[-8:]
            for i in range(0, len(body), 16):
                slow.send_raw(body[i : i + 16])
                time.sleep(0.005)
            release.wait(TIMEOUT)
            slow.send_raw(tail)

        feeder = threading.Thread(target=trickle)
        feeder.start()
        try:
            # Fast clients are served while the slow request cannot complete.
            for j in range(3):
                with Client(server.address) as fast:
                    fast.send(_binary_request(c[j], id=f"fast-{j}"))
                    assert "hits" in fast.recv()
        finally:
            release.set()
            feeder.join(timeout=TIMEOUT)
        resp = slow.recv()
        slow.close()
        assert resp["id"] == "slow" and "hits" in resp

    def test_worker_crash_fails_batch_not_server(self, server, corpus):
        c, _ = corpus
        before = server.pool.crashes
        with Client(server.address) as client:
            client.send(_binary_request(c[0], id="boom", test_crash=True))
            resp = client.recv()
            assert resp["id"] == "boom" and "crashed" in resp["error"]
            client.send(_binary_request(c[1], id="alive"))
            resp = client.recv()
        assert resp["id"] == "alive" and "hits" in resp
        assert server.pool.crashes == before + 1

    def test_worker_crash_spares_other_clients_batches(self, server, corpus):
        c, _ = corpus
        with Client(server.address) as victim, Client(server.address) as bystander:
            victim.send(_binary_request(c[0], id="boom2", test_crash=True))
            time.sleep(0.05)  # let the crash batch flush (5 ms deadline)
            bystander.send(_binary_request(c[1], id="unharmed"))
            boom = victim.recv()
            ok = bystander.recv()
        assert "crashed" in boom["error"]
        assert ok["id"] == "unharmed" and "hits" in ok


class TestBackpressure:
    @pytest.fixture(scope="class")
    def bp_server(self, assets):
        """Tiny admission bound and one worker: overload is easy to provoke."""
        config = ServerConfig(
            checkpoint=assets["checkpoint"],
            index_path=assets["A"],
            port=0,
            workers=1,
            max_batch=2,
            max_delay_ms=5.0,
            queue_depth=2,
            default_k=2,
            enable_test_hooks=True,
        )
        with create_server(config) as srv:
            yield srv

    def test_overload_sheds_deterministically(self, bp_server, corpus):
        """With the worker held busy and queue_depth=2, exactly the first two
        requests are admitted and every further one is shed immediately."""
        c, _ = corpus
        with Client(bp_server.address) as client:
            client.send(_binary_request(c[0], id="held", test_sleep_ms=800))
            client.send(_binary_request(c[1], id="q1"))
            for j in range(2, 6):
                client.send(_binary_request(c[j % len(c)], id=f"q{j}"))
            responses = client.recv_all(6)
        assert [r["id"] for r in responses] == ["held", "q1"] + [
            f"q{j}" for j in range(2, 6)
        ]
        assert "hits" in responses[0] and "hits" in responses[1]
        for shed in responses[2:]:
            assert shed["error"] == "overloaded"
            assert isinstance(shed["retry_after_ms"], int)
            assert shed["retry_after_ms"] >= 1
        # Capacity returns once responses drain: the next request is served.
        with Client(bp_server.address) as client:
            client.send(_binary_request(c[0], id="recovered"))
            assert "hits" in client.recv()

    def test_lone_request_flushes_on_deadline(self, bp_server, corpus):
        """A request that never fills a batch is still answered promptly via
        the deadline flush, not stuck waiting for more traffic."""
        c, _ = corpus
        before = bp_server.scheduler.stats.flushed_on_deadline
        start = time.monotonic()
        with Client(bp_server.address) as client:
            client.send(_binary_request(c[0], id="lone"))
            resp = client.recv()
        assert "hits" in resp
        assert time.monotonic() - start < TIMEOUT
        assert bp_server.scheduler.stats.flushed_on_deadline > before


class TestHotSwap:
    @pytest.fixture(scope="class")
    def swap_server(self, assets):
        config = ServerConfig(
            checkpoint=assets["checkpoint"],
            index_path=assets["A"],
            port=0,
            workers=2,
            max_batch=4,
            max_delay_ms=5.0,
            default_k=2,
            enable_test_hooks=True,
        )
        with create_server(config) as srv:
            yield srv

    @staticmethod
    def _tags(resp):
        return {h["meta"]["index_tag"] for h in resp["hits"]}

    def test_swap_moves_new_queries_inflight_stay_old(
        self, swap_server, assets, corpus
    ):
        c, _ = corpus
        with Client(swap_server.address) as steady:
            steady.send(_binary_request(c[0], id="pre"))
            assert self._tags(steady.recv()) == {"A"}
            # Hold a query in flight on the old index while swapping.
            steady.send(_binary_request(c[1], id="inflight", test_sleep_ms=600))
            time.sleep(0.1)  # past the 5 ms deadline: dispatched, not buffered
            with Client(swap_server.address) as ctl:
                ctl.send({"control": "reload", "index": assets["B"], "id": "rl"})
                ack = ctl.recv()  # blocks until every worker swapped
                assert ack["reloaded"] is True and ack["workers"] == 2
                assert ack["errors"] == [] and ack["index"] == assets["B"]
                ctl.send(_binary_request(c[2], id="post"))
                assert self._tags(ctl.recv()) == {"B"}
            inflight = steady.recv()
            assert inflight["id"] == "inflight"
            assert self._tags(inflight) == {"A"}  # finished on the old index
            steady.send(_binary_request(c[3], id="after"))
            assert self._tags(steady.recv()) == {"B"}
        assert swap_server.stats.swaps == 1

    def test_reload_missing_index_is_an_error_service_survives(
        self, swap_server, corpus
    ):
        c, _ = corpus
        with Client(swap_server.address) as client:
            client.send({"control": "reload", "index": "/nonexistent/idx", "id": "r"})
            resp = client.recv()
            assert "reload failed" in resp.get("error", "") or resp.get("errors")
            client.send(_binary_request(c[0], id="still-serving"))
            assert "hits" in client.recv()


class TestUnixSocket:
    def test_unix_socket_round_trip(self, assets, corpus, tmp_path):
        c, _ = corpus
        path = str(tmp_path / "serve.sock")
        config = ServerConfig(
            checkpoint=assets["checkpoint"],
            index_path=assets["A"],
            unix_socket=path,
            workers=1,
            max_batch=2,
            max_delay_ms=5.0,
            default_k=2,
        )
        with create_server(config) as srv:
            assert srv.address == path
            with Client(path) as client:
                client.send(_binary_request(c[0], id="ux"))
                resp = client.recv()
        assert resp["id"] == "ux" and len(resp["hits"]) == 2
