"""Tests for the robustness evaluation harness (repro.eval.robustness)."""

import pytest

from repro.artifacts import ArtifactStore
from repro.config import DataConfig, cpu_config, scaled, tiny_data_config
from repro.core.trainer import MatchTrainer
from repro.data.corpus import CorpusBuilder
from repro.data.pairs import build_pairs
from repro.eval.retrieval import evaluate_retrieval
from repro.eval.robustness import (
    CLEAN,
    RobustnessHarness,
    RobustnessReport,
    chain_specs,
)
from repro.index import ShardedEmbeddingIndex
from repro.transform import TransformError

CORPUS_CFG = DataConfig(num_tasks=5, variants=1, seed=0)


@pytest.fixture(scope="module")
def trained():
    samples = CorpusBuilder(tiny_data_config()).build(["c", "java"])
    c = [s for s in samples if s.language == "c"]
    j = [s for s in samples if s.language == "java"]
    ds = build_pairs(c, j, "binary", "source", seed=0, max_pairs_per_task=3)
    trainer = MatchTrainer(
        scaled(cpu_config(), epochs=2, hidden_dim=16, embed_dim=16, num_layers=1)
    )
    trainer.train(ds)
    return trainer


def _harness(trained, tmp_path=None, **kw):
    if tmp_path is not None:
        kw.setdefault("store", ArtifactStore(tmp_path / "artifacts"))
        kw.setdefault("index_root", tmp_path / "index")
    return RobustnessHarness(trained, CORPUS_CFG, **kw)


class TestChainSpecs:
    def test_builds_specs(self):
        specs = chain_specs("deadcode+pad", 0.5, 7)
        assert [(s.name, s.intensity, s.seed) for s in specs] == [
            ("deadcode", 0.5, 7), ("pad", 0.5, 7),
        ]

    def test_explicit_spec_elements_are_pinned(self):
        specs = chain_specs("deadcode@0.25~9+pad", 0.5, 7)
        assert [(s.name, s.intensity, s.seed) for s in specs] == [
            ("deadcode", 0.25, 9), ("pad", 0.5, 7),
        ]

    def test_decorations_pin_independently(self):
        # "~" pins only the seed (intensity still sweeps); "@" pins only
        # the intensity (seed still comes from the sweep).
        specs = chain_specs("deadcode~9+pad@0.25", 0.5, 7)
        assert [(s.name, s.intensity, s.seed) for s in specs] == [
            ("deadcode", 0.5, 9), ("pad", 0.25, 7),
        ]

    def test_unknown_name_raises(self):
        with pytest.raises(TransformError):
            chain_specs("deadcode+nosuch", 1.0, 0)


class TestHarness:
    def test_clean_row_matches_direct_retrieval(self, trained):
        harness = _harness(trained)
        report = harness.evaluate(chains=("pad",), intensities=(1.0,))
        direct = evaluate_retrieval(
            trained, harness.clean_queries(), harness.candidates
        )
        clean = report.clean
        assert clean.chain == CLEAN
        assert clean.result.num_queries == direct.num_queries
        assert clean.result.mrr == pytest.approx(direct.mrr)
        assert clean.result.hit_at[1] == pytest.approx(direct.hit_at[1])
        assert clean.result.mean_average_precision == pytest.approx(
            direct.mean_average_precision
        )

    def test_matrix_shape_and_render(self, trained):
        harness = _harness(trained)
        report = harness.evaluate(
            chains=("pad", "deadcode+regrename"), intensities=(0.5, 1.0)
        )
        matrix = report.matrix()
        assert set(matrix) == {CLEAN, "pad", "deadcode+regrename"}
        assert set(matrix["pad"]) == {"0.5", "1"}
        assert {"mrr", "hit1", "hit3", "hit5", "hit10", "map", "num_queries",
                "spec"} == set(matrix["pad"]["1"])
        assert matrix["pad"]["1"]["spec"] == "pad@1~0"

        rendered = report.render()
        assert "pad" in rendered and "clean" in rendered

    def test_to_dict_reports_only_computed_ranks(self, trained):
        harness = _harness(trained)
        report = harness.evaluate(chains=(), intensities=(), ks=(1, 10))
        d = report.clean.to_dict()
        assert "hit5" not in d and {"hit1", "hit10"} <= set(d)
        assert "-" in report.render()  # Hit@5 column shows 'not computed'

    def test_pinned_chains_not_duplicated_across_intensities(self, trained):
        harness = _harness(trained)
        report = harness.evaluate(chains=("pad@0.25",), intensities=(0.5, 1.0))
        cells = [c for c in report.cells if c.chain != CLEAN]
        assert len(cells) == 1
        assert cells[0].spec == "pad@0.25~0"

    def test_transformed_queries_are_cached_in_store(self, trained, tmp_path):
        harness = _harness(trained, tmp_path)
        harness.evaluate(chains=("pad",), intensities=(1.0,))
        store = ArtifactStore(tmp_path / "artifacts")
        # clean corpus (both languages) + one transformed variant per query
        assert len(store) > len(harness.query_samples)

    def test_warm_rerun_reuses_index_and_store(self, trained, tmp_path):
        cold = _harness(trained, tmp_path)
        cold_report = cold.evaluate(chains=("pad",), intensities=(1.0,))

        warm = _harness(trained, tmp_path)
        warm_report = warm.evaluate(chains=("pad",), intensities=(1.0,))
        # The warm harness opened the persisted sharded index instead of
        # re-encoding candidates, and every compilation hit the store.
        assert isinstance(warm.clean_index(), ShardedEmbeddingIndex)
        assert warm.store.hits > 0
        assert warm.store.misses == 0
        assert warm_report.matrix() == cold_report.matrix()

    def test_index_rejects_other_checkpoint(self, trained, tmp_path):
        cold = _harness(trained, tmp_path)
        cold.evaluate(chains=(), intensities=())
        other = MatchTrainer(
            scaled(cpu_config(seed=9), epochs=1, hidden_dim=16, embed_dim=16,
                   num_layers=1)
        )
        samples = CorpusBuilder(tiny_data_config()).build(["c", "java"])
        ds = build_pairs(
            [s for s in samples if s.language == "c"],
            [s for s in samples if s.language == "java"],
            "binary", "source", seed=1, max_pairs_per_task=2,
        )
        other.train(ds)
        stale = _harness(other, tmp_path)
        with pytest.raises(ValueError):
            stale.evaluate(chains=(), intensities=())

    def test_max_queries_caps(self, trained):
        harness = _harness(trained, max_queries=2)
        assert len(harness.query_samples) == 2

    def test_untrained_trainer_rejected(self):
        with pytest.raises(ValueError, match="no trained model"):
            RobustnessHarness(MatchTrainer(cpu_config()), CORPUS_CFG)

    def test_empty_report_has_no_clean(self):
        with pytest.raises(ValueError, match="clean baseline"):
            RobustnessReport().clean
