"""Tests for independent per-language solution rendering (CLCDSA realism).

With ``independent=True`` the three language renderings of a (task,
variant) stop sharing identifiers and literal data — matching pairs share
the *algorithm*, nothing else.  This is what keeps literal-matching
baselines (B2SFinder's constants feature) honest.
"""

import re

import pytest

from repro.config import DataConfig
from repro.data.corpus import CorpusBuilder
from repro.lang.generator import SolutionGenerator
from repro.lang.interp import interpret

_INT_RE = re.compile(r"-?\b\d+\b")


def _literals(text: str) -> set:
    """Multi-digit integer literals (single digits are universal noise)."""
    return {m for m in _INT_RE.findall(text) if len(m.lstrip("-")) > 1}


class TestIndependentGeneration:
    def test_lockstep_shares_literals(self):
        gen = SolutionGenerator(seed=3, independent=False)
        c = gen.generate("sum_array", 0, "c")
        j = gen.generate("sum_array", 0, "java")
        assert _literals(c.text) == _literals(j.text)

    def test_independent_diverges_literals(self):
        gen = SolutionGenerator(seed=3, independent=True)
        diverged = 0
        for task in ("sum_array", "dot_product", "count_above", "linear_search"):
            c = gen.generate(task, 0, "c")
            j = gen.generate(task, 0, "java")
            if _literals(c.text) != _literals(j.text):
                diverged += 1
        assert diverged >= 3  # overwhelmingly different data

    def test_independent_same_language_unchanged_semantics(self):
        """Independence must not break single-language executability."""
        gen = SolutionGenerator(seed=3, independent=True)
        for lang in ("c", "cpp", "java"):
            sf = gen.generate("gcd", 1, lang)
            out = interpret(sf.program)
            assert len(out) == 1  # prints exactly the one result

    def test_independent_is_deterministic(self):
        a = SolutionGenerator(seed=5, independent=True).generate("fibonacci", 2, "cpp")
        b = SolutionGenerator(seed=5, independent=True).generate("fibonacci", 2, "cpp")
        assert a.text == b.text

    def test_independent_differs_from_lockstep(self):
        lock = SolutionGenerator(seed=5, independent=False).generate("fibonacci", 2, "java")
        ind = SolutionGenerator(seed=5, independent=True).generate("fibonacci", 2, "java")
        assert lock.text != ind.text

    def test_lockstep_cross_language_equivalence_still_holds(self):
        gen = SolutionGenerator(seed=9, independent=False)
        outs = {lang: interpret(gen.generate("max_element", 1, lang).program)
                for lang in ("c", "cpp", "java")}
        assert outs["c"] == outs["cpp"] == outs["java"]


class TestCorpusIndependence:
    def test_data_config_default_independent(self):
        assert DataConfig().independent_solutions is True

    def test_corpus_builder_honors_flag(self):
        on = CorpusBuilder(DataConfig(num_tasks=2, variants=1, independent_solutions=True))
        off = CorpusBuilder(DataConfig(num_tasks=2, variants=1, independent_solutions=False))
        assert on.generator.independent is True
        assert off.generator.independent is False

    def test_independent_corpus_builds_and_compiles(self):
        cfg = DataConfig(num_tasks=3, variants=1, seed=1, compile_failure_pct=0)
        samples = CorpusBuilder(cfg).build(["c", "java"])
        assert len(samples) == 6
        for s in samples:
            assert s.source_graph.num_nodes > 0
            assert s.decompiled_graph.num_nodes > 0
