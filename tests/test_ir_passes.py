"""Tests for the optimization passes: correctness (semantics preserved at
every level, verified against the AST oracle) and effect (each pass does
what its name says)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ir.interp import run_module
from repro.ir.lowering import lower_program
from repro.ir.passes import (
    OPT_LEVELS,
    constant_fold,
    dead_code_elimination,
    inline_functions,
    instcombine,
    mem2reg,
    optimize,
    peel_loops,
    simplify_cfg,
)
from repro.ir.passes.peel import compute_dominators, find_natural_loops
from repro.ir.printer import print_module
from repro.ir.verifier import verify_module
from repro.lang.generator import LANGUAGES, SolutionGenerator
from repro.lang.interp import interpret
from repro.lang.minic import parse_minic
from repro.lang.tasks import TASK_REGISTRY

GEN = SolutionGenerator(seed=303)


def _mod(src):
    return lower_program(parse_minic(src))


SUM_SRC = (
    "int total(int* a, int n) { int s = 0; for (int i = 0; i < n; i++) { s += a[i]; } return s; } "
    'int main() { int a[] = {4, 7, 1}; printf("%d\\n", total(a, 3)); return 0; }'
)


class TestMem2Reg:
    def test_promotes_allocas(self):
        mod = _mod("int f(int x) { int y = x + 1; return y * 2; }")
        before = sum(1 for i in mod.get("f").instructions() if i.opcode == "alloca")
        assert before >= 2
        mem2reg(mod)
        after = sum(1 for i in mod.get("f").instructions() if i.opcode == "alloca")
        assert after == 0
        verify_module(mod)

    def test_loop_gets_phi(self):
        mod = _mod("int f(int n) { int s = 0; int i = 0; while (i < n) { s += i; i++; } return s; }")
        mem2reg(mod)
        verify_module(mod)
        assert any(i.opcode == "phi" for i in mod.get("f").instructions())

    def test_semantics_preserved(self):
        mod = _mod(SUM_SRC)
        expected = run_module(mod)
        mem2reg(mod)
        verify_module(mod)
        assert run_module(mod) == expected

    def test_array_allocas_not_promoted(self):
        mod = _mod("int f() { int a[3]; a[0] = 5; return a[0]; }")
        mem2reg(mod)
        # the sized alloca must survive (it is memory, not a scalar)
        assert any(
            i.opcode == "alloca" and i.operands for i in mod.get("f").instructions()
        )
        assert run_module(mod, "f") == []

    def test_if_merge_phi(self):
        src = "int f(int x) { int r = 0; if (x > 0) { r = 1; } else { r = 2; } return r; }"
        mod = _mod(src)
        mem2reg(mod)
        verify_module(mod)
        phis = [i for i in mod.get("f").instructions() if i.opcode == "phi"]
        assert len(phis) >= 1


class TestConstFold:
    def test_folds_arithmetic(self):
        mod = _mod("int f() { return (2 + 3) * 4; }")
        mem2reg(mod)
        n = constant_fold(mod)
        assert n >= 2
        text = print_module(mod)
        assert "ret i32 20" in text

    def test_preserves_division_trap(self):
        mod = _mod("int f() { int z = 0; return 5 / z; }")
        mem2reg(mod)
        constant_fold(mod)
        assert any(i.opcode == "sdiv" for i in mod.get("f").instructions())

    def test_folds_icmp(self):
        mod = _mod("int f() { if (3 < 5) { return 1; } return 0; }")
        mem2reg(mod)
        constant_fold(mod)
        assert not any(i.opcode == "icmp" for i in mod.get("f").instructions())


class TestInstCombine:
    def test_add_zero(self):
        mod = _mod("int f(int x) { return x + 0; }")
        mem2reg(mod)
        assert instcombine(mod) >= 1
        assert not any(i.opcode == "add" for i in mod.get("f").instructions())

    def test_mul_one(self):
        mod = _mod("int f(int x) { return x * 1; }")
        mem2reg(mod)
        instcombine(mod)
        assert not any(i.opcode == "mul" for i in mod.get("f").instructions())

    def test_mul_zero_constant(self):
        mod = _mod("int f(int x) { return x * 0; }")
        mem2reg(mod)
        instcombine(mod)
        assert "ret i32 0" in print_module(mod)

    def test_double_negation(self):
        mod = _mod("int f(int x) { return -(-x); }")
        mem2reg(mod)
        instcombine(mod)
        dead_code_elimination(mod)  # the inner sub is now unused
        fn = mod.get("f")
        assert not any(i.opcode == "sub" for i in fn.instructions())


class TestDCE:
    def test_removes_unused(self):
        mod = _mod("int f(int x) { int unused = x * 99; return x; }")
        mem2reg(mod)
        removed = dead_code_elimination(mod)
        assert removed >= 1
        assert not any(i.opcode == "mul" for i in mod.get("f").instructions())

    def test_keeps_calls(self):
        mod = _mod("int g() { return 1; } int f() { g(); return 0; }")
        mem2reg(mod)
        dead_code_elimination(mod)
        assert any(i.opcode == "call" for i in mod.get("f").instructions())

    def test_keeps_stores(self):
        mod = _mod("int f(int* a) { a[0] = 9; return 0; }")
        dead_code_elimination(mod)
        assert any(i.opcode == "store" for i in mod.get("f").instructions())


class TestSimplifyCFG:
    def test_constant_branch_folded(self):
        mod = _mod("int f() { if (1 > 0) { return 7; } return 8; }")
        mem2reg(mod)
        constant_fold(mod)
        simplify_cfg(mod)
        fn = mod.get("f")
        assert not any(i.opcode == "condbr" for i in fn.instructions())
        assert run_module(mod, "f") == []

    def test_unreachable_removed(self):
        mod = _mod("int f() { if (0) { return 1; } return 2; }")
        mem2reg(mod)
        constant_fold(mod)
        before = len(mod.get("f").blocks)
        simplify_cfg(mod)
        assert len(mod.get("f").blocks) < before
        verify_module(mod)

    def test_straight_line_merged(self):
        mod = _mod("int f(int x) { int y = x + 1; int z = y * 2; return z; }")
        mem2reg(mod)
        simplify_cfg(mod)
        assert len(mod.get("f").blocks) == 1


class TestInline:
    def test_small_callee_inlined(self):
        mod = _mod(
            "int sq(int x) { return x * x; } "
            'int main() { printf("%d\\n", sq(6)); return 0; }'
        )
        expected = run_module(mod)
        n = inline_functions(mod, max_callee_size=40)
        assert n >= 1
        verify_module(mod)
        assert run_module(mod) == expected
        callees = [
            i.extra["callee"]
            for i in mod.get("main").instructions()
            if i.opcode == "call"
        ]
        assert "sq" not in callees

    def test_multi_return_callee(self):
        src = (
            "int pick(int x) { if (x > 0) { return 10; } return 20; } "
            'int main() { printf("%d\\n", pick(1)); printf("%d\\n", pick(-1)); return 0; }'
        )
        mod = _mod(src)
        expected = run_module(mod)
        inline_functions(mod, max_callee_size=40)
        verify_module(mod)
        assert run_module(mod) == expected

    def test_threshold_respected(self):
        mod = _mod(SUM_SRC)
        inline_functions(mod, max_callee_size=1)
        callees = [
            i.extra["callee"]
            for i in mod.get("main").instructions()
            if i.opcode == "call"
        ]
        assert "total" in callees

    def test_recursive_not_inlined(self):
        src = (
            "int fact(int n) { if (n <= 1) { return 1; } return n * fact(n - 1); } "
            'int main() { printf("%d\\n", fact(5)); return 0; }'
        )
        mod = _mod(src)
        inline_functions(mod, max_callee_size=100)
        assert run_module(mod) == [120]


class TestPeel:
    def test_dominators_entry(self):
        mod = _mod(SUM_SRC)
        fn = mod.get("total")
        dom = compute_dominators(fn)
        for blk in fn.blocks:
            if blk in dom:
                assert fn.entry in dom[blk]

    def test_finds_loop(self):
        mod = _mod(SUM_SRC)
        loops = find_natural_loops(mod.get("total"))
        assert len(loops) == 1

    def test_peel_preserves_semantics(self):
        mod = _mod(SUM_SRC)
        expected = run_module(mod)
        n = peel_loops(mod)
        assert n >= 1
        verify_module(mod)
        assert run_module(mod) == expected

    def test_peel_grows_cfg(self):
        mod = _mod(SUM_SRC)
        before = len(mod.get("total").blocks)
        peel_loops(mod)
        assert len(mod.get("total").blocks) > before

    def test_nested_loops(self):
        src = (
            "int f(int n) { int s = 0; for (int i = 0; i < n; i++) { "
            "for (int j = 0; j < i; j++) { s += j; } } return s; } "
            'int main() { printf("%d\\n", f(6)); return 0; }'
        )
        mod = _mod(src)
        expected = run_module(mod)
        peel_loops(mod)
        verify_module(mod)
        assert run_module(mod) == expected


class TestPipelines:
    def test_unknown_level_rejected(self):
        with pytest.raises(ValueError):
            optimize(_mod(SUM_SRC), "O9")

    @pytest.mark.parametrize("level", sorted(OPT_LEVELS))
    def test_all_levels_verify_and_preserve(self, level):
        mod = _mod(SUM_SRC)
        expected = run_module(mod)
        optimize(mod, level)
        verify_module(mod)
        assert run_module(mod) == expected

    def test_o1_shrinks_code(self):
        base = _mod(SUM_SRC)
        opt = optimize(_mod(SUM_SRC), "O1")
        assert opt.size() < base.size()

    def test_o3_restructures_more_than_o1(self):
        o1 = optimize(_mod(SUM_SRC), "O1")
        o3 = optimize(_mod(SUM_SRC), "O3")
        o1_blocks = sum(len(f.blocks) for f in o1.defined_functions())
        o3_blocks = sum(len(f.blocks) for f in o3.defined_functions())
        assert o3_blocks != o1_blocks  # peeling + inlining changed the CFG

    @pytest.mark.parametrize("level", ["O1", "O2", "O3", "Oz"])
    @pytest.mark.parametrize("task", sorted(TASK_REGISTRY)[::3])
    def test_corpus_semantics_all_levels(self, level, task):
        for lang in LANGUAGES:
            sf = GEN.generate(task, 0, lang)
            expected = interpret(sf.program)
            mod = lower_program(sf.program, name=sf.identifier)
            optimize(mod, level)
            verify_module(mod)
            assert run_module(mod) == expected, f"{sf.identifier} @ {level}"

    @settings(max_examples=12, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=3000),
        level=st.sampled_from(["O1", "O2", "O3", "Oz"]),
    )
    def test_property_random_program_all_levels(self, seed, level):
        gen = SolutionGenerator(seed=seed)
        names = sorted(TASK_REGISTRY)
        task = names[seed % len(names)]
        lang = LANGUAGES[seed % 3]
        sf = gen.generate(task, seed % 5, lang)
        mod = lower_program(sf.program)
        optimize(mod, level)
        verify_module(mod)
        assert run_module(mod) == interpret(sf.program)
