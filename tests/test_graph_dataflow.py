"""Tests for the analysis-derived graph relations (dataflow/callsummary).

Gates the contracts the corpus/index layers depend on: base relations are
byte-identical with the feature on or off, the new edges are cross-block
only, serialization round-trips exactly, fresh processes emit identical
bytes, extended-relation batches feed the model (and base-relation batches
still do, via the zero-edge fallback), and artifact keys distinguish the
graph schema.
"""

import hashlib
import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.artifacts import ArtifactKey, ArtifactStore
from repro.config import EXTENDED_RELATIONS as CFG_EXTENDED
from repro.config import ModelConfig
from repro.core.model import GraphBinMatch
from repro.core.node_features import encode_nodes, train_tokenizer
from repro.graphs.batch import batch_graphs, batch_relations
from repro.graphs.programl import (
    CALLSUMMARY,
    DATAFLOW,
    EXTENDED_RELATIONS,
    NODE_SUMMARY,
    RELATIONS,
    build_graph,
)
from repro.graphs.serialize import graph_from_arrays, graph_to_arrays
from repro.ir.analysis import DefUseChains
from repro.ir.lowering import lower_program
from repro.ir.passes import optimize
from repro.lang.generator import SolutionGenerator
from repro.pipeline import CompilationPipeline

GEN = SolutionGenerator(seed=5, independent=True)


def _module(task="gcd", lang="c", opt="O2"):
    sf = GEN.generate(task, 0, lang)
    module = lower_program(sf.program, name=sf.identifier)
    optimize(module, opt)
    return module


@pytest.fixture(scope="module")
def module():
    return _module()


@pytest.fixture(scope="module")
def clean_graph(module):
    return build_graph(module, name="g")


@pytest.fixture(scope="module")
def dataflow_graph(module):
    return build_graph(module, name="g", dataflow=True)


class TestBuild:
    def test_extended_relations_present(self, dataflow_graph):
        assert set(dataflow_graph.edges) == set(EXTENDED_RELATIONS)
        assert dataflow_graph.edge_count(DATAFLOW) > 0
        assert dataflow_graph.edge_count(CALLSUMMARY) > 0

    def test_base_relations_byte_identical(self, clean_graph, dataflow_graph):
        for rel in RELATIONS:
            assert np.array_equal(clean_graph.edges[rel], dataflow_graph.edges[rel])
            assert np.array_equal(
                clean_graph.positions[rel], dataflow_graph.positions[rel]
            )
        # Summary nodes append after the clean node list — the prefix is
        # untouched, so base edges index the same nodes in both graphs.
        n = clean_graph.num_nodes
        assert dataflow_graph.node_texts[:n] == clean_graph.node_texts
        assert dataflow_graph.node_types[:n] == clean_graph.node_types

    def test_dataflow_edge_count_matches_chains(self, module, dataflow_graph):
        expected = sum(
            len(DefUseChains.build(fn).cross_block_pairs())
            for fn in module.defined_functions()
        )
        assert dataflow_graph.edge_count(DATAFLOW) == expected

    def test_summary_nodes_typed_and_targeted(self, dataflow_graph):
        summary_ids = {
            i for i, t in enumerate(dataflow_graph.node_types) if t == NODE_SUMMARY
        }
        assert summary_ids
        dsts = dataflow_graph.edges[CALLSUMMARY][1]
        assert set(dsts.tolist()) <= summary_ids
        # Each summary node carries the interprocedural facts as text.
        for i in summary_ids:
            assert dataflow_graph.node_full_texts[i].startswith("summary @")

    def test_clean_graph_unchanged_without_flag(self, clean_graph):
        assert set(clean_graph.edges) == set(RELATIONS)
        assert NODE_SUMMARY not in clean_graph.node_types


class TestSerialize:
    def test_round_trip_exact(self, dataflow_graph):
        back = graph_from_arrays(graph_to_arrays(dataflow_graph))
        assert back.node_texts == dataflow_graph.node_texts
        assert back.node_types == dataflow_graph.node_types
        assert set(back.edges) == set(dataflow_graph.edges)
        for rel in dataflow_graph.edges:
            assert np.array_equal(back.edges[rel], dataflow_graph.edges[rel])
            assert np.array_equal(back.positions[rel], dataflow_graph.positions[rel])

    def test_cross_process_bytes_identical(self):
        script = (
            "import hashlib\n"
            "from repro.graphs.programl import CALLSUMMARY, DATAFLOW, build_graph\n"
            "from repro.ir.lowering import lower_program\n"
            "from repro.ir.passes import optimize\n"
            "from repro.lang.generator import SolutionGenerator\n"
            "sf = SolutionGenerator(seed=5, independent=True).generate('gcd', 0, 'c')\n"
            "m = lower_program(sf.program, name=sf.identifier)\n"
            "optimize(m, 'O2')\n"
            "g = build_graph(m, name='g', dataflow=True)\n"
            "h = hashlib.sha256()\n"
            "for rel in (DATAFLOW, CALLSUMMARY):\n"
            "    h.update(g.edges[rel].tobytes() + g.positions[rel].tobytes())\n"
            "h.update('|'.join(g.node_full_texts).encode())\n"
            "print(h.hexdigest())\n"
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = str(Path(__file__).resolve().parent.parent / "src")
        env["PYTHONHASHSEED"] = "random"

        def digest():
            return subprocess.run(
                [sys.executable, "-c", script],
                capture_output=True, text=True, env=env, check=True,
            ).stdout.strip()

        assert digest() == digest()


class TestBatching:
    def test_batch_relations_base_first(self, clean_graph, dataflow_graph):
        rels = batch_relations([clean_graph, dataflow_graph])
        assert rels[: len(RELATIONS)] == list(RELATIONS)
        assert set(rels) == set(EXTENDED_RELATIONS)

    def test_mixed_batch_zero_fills(self, clean_graph, dataflow_graph):
        batch = batch_graphs([clean_graph, dataflow_graph])
        assert batch.edges[DATAFLOW].shape[1] == dataflow_graph.edge_count(DATAFLOW)

    def test_extended_model_forward(self, dataflow_graph):
        config = ModelConfig(
            embed_dim=16, hidden_dim=16, num_layers=1, max_vocab=64,
            relations=CFG_EXTENDED,
        )
        tok = train_tokenizer([dataflow_graph], max_vocab=64)
        model = GraphBinMatch(tok.vocab_size, config)
        batch = batch_graphs([dataflow_graph, dataflow_graph])
        scores = model.forward(batch, encode_nodes(tok, batch))
        assert scores.shape == (1,)
        assert 0.0 <= float(scores.data[0]) <= 1.0

    def test_extended_model_tolerates_base_batch(self, clean_graph):
        config = ModelConfig(
            embed_dim=16, hidden_dim=16, num_layers=1, max_vocab=64,
            relations=CFG_EXTENDED,
        )
        tok = train_tokenizer([clean_graph], max_vocab=64)
        model = GraphBinMatch(tok.vocab_size, config)
        batch = batch_graphs([clean_graph, clean_graph])
        scores = model.forward(batch, encode_nodes(tok, batch))
        assert scores.shape == (1,)

    def test_unknown_relation_rejected(self):
        with pytest.raises(ValueError, match="unknown graph relations"):
            GraphBinMatch(8, ModelConfig(relations=("control", "wormhole")))


class TestArtifactKeys:
    def _key(self, **kw):
        return ArtifactKey(
            task="gcd", variant=0, language="c", opt_level="O2",
            compiler="clang", source_id="s", **kw,
        )

    def test_graph_features_in_digest(self):
        assert self._key().digest != self._key(graph_features="dataflow").digest

    def test_unknown_graph_features_rejected(self):
        with pytest.raises(ValueError, match="graph_features"):
            self._key(graph_features="telepathy")

    def test_pipeline_rejects_mismatched_key(self, tmp_path):
        store = ArtifactStore(tmp_path)
        pipeline = CompilationPipeline(store=store, dataflow_edges=True)
        sf = GEN.generate("gcd", 0, "c")
        with pytest.raises(ValueError, match="graph features"):
            pipeline.compile(
                sf.text, "c", name=sf.identifier, program=sf.program,
                cache_key=self._key(),  # key says base schema
            )

    def test_store_round_trip_preserves_edges(self, tmp_path):
        store = ArtifactStore(tmp_path)
        pipeline = CompilationPipeline(store=store, dataflow_edges=True)
        sf = GEN.generate("gcd", 0, "c")
        key = self._key(graph_features="dataflow")
        first = pipeline.compile(
            sf.text, "c", name=sf.identifier, program=sf.program, cache_key=key,
        )
        warm = CompilationPipeline(store=store, dataflow_edges=True)
        second = warm.compile(
            sf.text, "c", name=sf.identifier, program=sf.program, cache_key=key,
        )
        for graph_a, graph_b in (
            (first.source_graph, second.source_graph),
            (first.decompiled_graph, second.decompiled_graph),
        ):
            assert set(graph_a.edges) == set(graph_b.edges)
            for rel in graph_a.edges:
                assert np.array_equal(graph_a.edges[rel], graph_b.edges[rel])
                assert np.array_equal(graph_a.positions[rel], graph_b.positions[rel])
