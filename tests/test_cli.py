"""Tests for the command-line interface (repro.cli)."""

import numpy as np
import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_generate_defaults(self):
        args = build_parser().parse_args(["generate", "gcd"])
        assert args.language == "c"
        assert args.variant == 0

    def test_train_defaults(self):
        args = build_parser().parse_args(["train"])
        assert args.num_tasks == 24
        assert args.output == "graphbinmatch.npz"

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_bad_language_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["generate", "gcd", "--language", "rust"])


class TestTasksCommand:
    def test_lists_registry(self, capsys):
        assert main(["tasks"]) == 0
        out = capsys.readouterr().out
        assert "sum_array" in out
        assert "gcd" in out


class TestGenerateCommand:
    def test_generates_source(self, capsys):
        assert main(["generate", "sum_array", "--language", "java"]) == 0
        out = capsys.readouterr().out
        assert "sum_array/v0.java" in out
        assert "source graph" in out
        assert "decompiled graph" in out

    def test_show_ir(self, capsys):
        assert main(["generate", "gcd", "--show-ir"]) == 0
        out = capsys.readouterr().out
        assert "front-end IR" in out

    def test_unknown_task_raises(self):
        with pytest.raises(KeyError):
            main(["generate", "not_a_task"])


class TestAnalyzeCommand:
    def test_text_report(self, capsys):
        assert main(["analyze", "gcd", "--opt-level", "O2"]) == 0
        out = capsys.readouterr().out
        assert "gcd/v0.c @ O2" in out
        assert "cross-block def-use edges" in out
        assert "live-in" in out
        assert "summary @gcd" in out
        assert "verifier findings: 0" in out

    def test_json_report(self, capsys):
        import json

        assert main(["analyze", "gcd", "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["module"] == "gcd/v0.c"
        assert report["findings"] == []
        assert {f["name"] for f in report["functions"]} >= {"gcd", "main"}
        assert report["summaries"]["printf"]["defined"] is False

    def test_function_filter(self, capsys):
        assert main(["analyze", "gcd", "--function", "gcd"]) == 0
        out = capsys.readouterr().out
        assert "@gcd:" in out and "@main:" not in out

    def test_unknown_function_errors(self, capsys):
        assert main(["analyze", "gcd", "--function", "nope"]) == 1
        assert "no defined function" in capsys.readouterr().err


class TestTrainEvaluateRetrieve:
    """End-to-end CLI pipeline at minimum scale (one tiny model)."""

    @pytest.fixture(scope="class")
    def checkpoint(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("cli") / "model.npz"
        rc = main([
            "train",
            "--num-tasks", "6",
            "--variants", "1",
            "--epochs", "2",
            "--output", str(path),
        ])
        assert rc == 0
        return path

    def test_train_writes_checkpoint(self, checkpoint):
        assert checkpoint.exists()

    def test_evaluate_prints_metrics(self, checkpoint, capsys):
        rc = main([
            "evaluate", str(checkpoint),
            "--num-tasks", "6", "--variants", "1",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "precision=" in out
        assert "f1=" in out

    def test_retrieve_prints_metrics(self, checkpoint, capsys):
        rc = main(["retrieve", str(checkpoint), "--num-tasks", "4", "--queries", "2"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "MRR=" in out


class TestIndexParser:
    def test_build_defaults(self):
        args = build_parser().parse_args(["index", "build", "model.npz"])
        assert args.index_command == "build"
        assert args.output == "index.npz"
        assert args.languages == "java"

    def test_query_defaults(self):
        args = build_parser().parse_args(["index", "query", "model.npz", "index.npz"])
        assert args.index_command == "query"
        assert args.top_k == 5

    def test_subcommand_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["index"])


class TestServeParser:
    def test_defaults(self):
        args = build_parser().parse_args(["serve", "model.npz", "index.npz"])
        assert args.command == "serve"
        assert args.batch == 8
        assert args.top_k == 5
        assert args.store is None

    def test_index_build_shard_size(self):
        args = build_parser().parse_args(
            ["index", "build", "model.npz", "--shard-size", "4"]
        )
        assert args.shard_size == 4

    def test_requires_index(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve", "model.npz"])


class TestCorpusParser:
    def test_build_defaults(self):
        args = build_parser().parse_args(["corpus", "build"])
        assert args.corpus_command == "build"
        assert args.languages == "c,java"
        assert args.store is None
        assert args.parallel == 0

    def test_stats_requires_store(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["corpus", "stats"])

    def test_subcommand_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["corpus"])


class TestCorpusCommands:
    def test_build_reports_stats_and_stages(self, capsys):
        rc = main(["corpus", "build", "--num-tasks", "3", "--variants", "1"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "built" in out and "Table-I statistics" in out
        assert "per-stage wall clock" in out
        assert "codegen" in out and "decompile" in out

    def test_build_cold_then_warm_store(self, tmp_path, capsys):
        store = str(tmp_path / "artifacts")
        argv = [
            "corpus", "build", "--num-tasks", "3", "--variants", "1",
            "--languages", "c", "--store", store,
        ]
        assert main(argv) == 0
        cold = capsys.readouterr().out
        assert "artifact store: 0 hits" in cold
        assert main(argv) == 0
        warm = capsys.readouterr().out
        assert ", 0 misses" in warm

    def test_build_parallel(self, tmp_path, capsys):
        rc = main([
            "corpus", "build", "--num-tasks", "3", "--variants", "1",
            "--languages", "c", "--store", str(tmp_path / "artifacts"),
            "--parallel", "2",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "parallel x2" in out

    def test_stats_command(self, tmp_path, capsys):
        store = str(tmp_path / "artifacts")
        assert main([
            "corpus", "build", "--num-tasks", "2", "--variants", "1",
            "--languages", "c", "--store", store,
        ]) == 0
        capsys.readouterr()
        assert main(["corpus", "stats", store]) == 0
        out = capsys.readouterr().out
        assert "entries:" in out and "size:" in out


class TestIndexCommands:
    """Build and query an embedding index through the CLI."""

    @pytest.fixture(scope="class")
    def checkpoint(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("cli-index") / "model.npz"
        rc = main([
            "train",
            "--num-tasks", "6",
            "--variants", "1",
            "--epochs", "2",
            "--output", str(path),
        ])
        assert rc == 0
        return path

    @pytest.fixture(scope="class")
    def index_path(self, checkpoint, tmp_path_factory):
        path = tmp_path_factory.mktemp("cli-index") / "index.npz"
        rc = main([
            "index", "build", str(checkpoint),
            "--output", str(path),
            "--num-tasks", "6",
            "--variants", "1",
        ])
        assert rc == 0
        return path

    def test_build_writes_index(self, index_path, capsys):
        assert index_path.exists()

    def test_build_reports_counts(self, checkpoint, tmp_path, capsys):
        out_path = tmp_path / "idx.npz"
        rc = main([
            "index", "build", str(checkpoint),
            "--output", str(out_path),
            "--num-tasks", "4",
            "--variants", "1",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "indexed" in out
        assert "encoded" in out

    def test_query_ranks_candidates(self, checkpoint, index_path, capsys):
        rc = main([
            "index", "query", str(checkpoint), str(index_path),
            "--task", "gcd",
            "--language", "c",
            "--top-k", "3",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "query: gcd/v0.c" in out
        # three ranked lines with scores
        ranked = [l for l in out.splitlines() if l.strip().startswith(("1.", "2.", "3."))]
        assert len(ranked) == 3

    @pytest.fixture(scope="class")
    def sharded_path(self, checkpoint, tmp_path_factory):
        path = tmp_path_factory.mktemp("cli-index") / "sharded"
        rc = main([
            "index", "build", str(checkpoint),
            "--output", str(path),
            "--num-tasks", "6",
            "--variants", "1",
            "--shard-size", "2",
        ])
        assert rc == 0
        return path

    def test_build_sharded_directory(self, sharded_path):
        assert (sharded_path / "manifest.json").exists()
        assert (sharded_path / "shard-0000.npz").exists()

    def test_negative_shard_size_rejected(self, checkpoint, tmp_path):
        """A negative --shard-size must error, not silently go monolithic."""
        with pytest.raises(ValueError, match="shard_entries"):
            main([
                "index", "build", str(checkpoint),
                "--output", str(tmp_path / "idx"),
                "--num-tasks", "4", "--variants", "1",
                "--shard-size", "-2",
            ])

    def test_rebuild_sharded_overwrites(self, checkpoint, sharded_path):
        """Re-running index build on the same directory must not crash."""
        rc = main([
            "index", "build", str(checkpoint),
            "--output", str(sharded_path),
            "--num-tasks", "4",
            "--variants", "1",
            "--shard-size", "3",
        ])
        assert rc == 0
        import json as json_mod

        manifest = json_mod.loads((sharded_path / "manifest.json").read_text())
        # Old shard files from the size-2 build are gone, not orphaned.
        on_disk = sorted(p.name for p in sharded_path.glob("shard-*.npz"))
        assert on_disk == sorted(s["file"] for s in manifest["shards"])

    def test_query_sharded_index(self, checkpoint, sharded_path, capsys):
        rc = main([
            "index", "query", str(checkpoint), str(sharded_path),
            "--task", "gcd", "--language", "c", "--top-k", "2",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        ranked = [l for l in out.splitlines() if l.strip().startswith(("1.", "2."))]
        assert len(ranked) == 2

    def test_serve_command_round_trip(
        self, checkpoint, index_path, capsys, monkeypatch
    ):
        """repro serve: JSON-lines in on stdin, ranked hits out on stdout."""
        import io
        import json
        import sys

        from repro.core.pipeline import compile_to_views
        from repro.lang.generator import SolutionGenerator

        import base64

        sf = SolutionGenerator(seed=0, independent=True).generate("gcd", 0, "c")
        views = compile_to_views(sf.text, "c", name=sf.identifier)
        requests = "".join(
            json.dumps(r) + "\n"
            for r in (
                {
                    "id": "bin",
                    "binary_b64": base64.b64encode(views.binary_bytes).decode(),
                    "k": 3,
                },
                {"id": "src", "source": sf.text, "language": "c", "k": 2},
                {"id": "oops"},
            )
        )
        monkeypatch.setattr(sys, "stdin", io.StringIO(requests))
        rc = main([
            "serve", str(checkpoint), str(index_path), "--batch", "2",
        ])
        assert rc == 0
        captured = capsys.readouterr()
        lines = [json.loads(l) for l in captured.out.splitlines()]
        assert [l["id"] for l in lines] == ["bin", "src", "oops"]
        assert len(lines[0]["hits"]) == 3
        assert len(lines[1]["hits"]) == 2
        assert "error" in lines[2]
        assert "served 3 requests" in captured.err


class TestExperimentCommand:
    ARGS = ["--binary-langs", "c", "--source-langs", "java",
            "--num-tasks", "6", "--variants", "1", "--epochs", "2"]

    def test_run_defaults(self):
        args = build_parser().parse_args(["experiment", "run"])
        assert args.num_tasks == 12
        assert args.epochs == 12

    def test_subcommand_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment"])

    def test_run_without_store_trains(self, capsys):
        assert main(["experiment", "run", *self.ARGS]) == 0
        out = capsys.readouterr().out
        assert "trained" in out
        assert "no store" in out
        assert "f1=" in out

    def test_run_cold_then_warm_identical_rows(self, tmp_path, capsys):
        store = ["--store", str(tmp_path / "models")]
        assert main(["experiment", "run", *self.ARGS, *store]) == 0
        cold_out = capsys.readouterr().out
        assert "trained" in cold_out
        assert main(["experiment", "run", *self.ARGS, *store]) == 0
        warm_out = capsys.readouterr().out
        assert "cache hit" in warm_out
        # Identical metric rows from the reloaded trainer.
        assert cold_out.splitlines()[-1] == warm_out.splitlines()[-1]

    def test_list_shows_entries(self, tmp_path, capsys):
        store = ["--store", str(tmp_path / "models")]
        assert main(["experiment", "run", *self.ARGS, "--name", "listed", *store]) == 0
        capsys.readouterr()
        assert main(["experiment", "list", str(tmp_path / "models")]) == 0
        out = capsys.readouterr().out
        assert "1 experiments" in out
        assert "listed" in out
        assert "valid_f1=" in out
