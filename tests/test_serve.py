"""Tests for the JSON-lines retrieval service (repro.serve).

The serving contract: responses come back in request order, one JSON
object per line; bad requests produce error responses without killing the
loop; pipelined requests are scored in shared batches; and the warm
pipeline/index pair is reused across every request.
"""

import base64
import io
import json

import numpy as np
import pytest

from repro.config import cpu_config, scaled, tiny_data_config
from repro.core.trainer import MatchTrainer
from repro.data.corpus import CorpusBuilder
from repro.data.pairs import build_pairs
from repro.index import EmbeddingIndex, ShardedEmbeddingIndex
from repro.serve import RetrievalServer


@pytest.fixture(scope="module")
def corpus():
    samples = CorpusBuilder(tiny_data_config()).build(["c", "java"])
    c = [s for s in samples if s.language == "c"]
    j = [s for s in samples if s.language == "java"]
    return c, j


@pytest.fixture(scope="module")
def trained(corpus):
    c, j = corpus
    ds = build_pairs(c, j, "binary", "source", seed=0, max_pairs_per_task=3)
    cfg = scaled(cpu_config(), epochs=2, hidden_dim=16, embed_dim=16, num_layers=1)
    trainer = MatchTrainer(cfg)
    trainer.train(ds)
    return trainer


@pytest.fixture(scope="module")
def index(trained, corpus):
    _, j = corpus
    idx = EmbeddingIndex(trained)
    idx.add(
        [s.source_graph for s in j], metas=[{"id": s.identifier} for s in j]
    )
    return idx


def _serve(server, requests):
    out = io.StringIO()
    stats = server.serve(io.StringIO("".join(r + "\n" for r in requests)), out)
    return [json.loads(line) for line in out.getvalue().splitlines()], stats


def _binary_request(sample, **extra):
    req = {"binary_b64": base64.b64encode(sample.binary_bytes).decode()}
    req.update(extra)
    return json.dumps(req)


class TestRequests:
    def test_binary_query_ranks_index(self, trained, index, corpus):
        c, j = corpus
        server = RetrievalServer(trained, index, default_k=3)
        responses, stats = _serve(server, [_binary_request(c[0], id="q1")])
        assert stats.requests == 1 and stats.errors == 0
        (resp,) = responses
        assert resp["id"] == "q1"
        assert len(resp["hits"]) == 3
        assert resp["hits"][0]["rank"] == 1
        # Hits mirror the index's own ranking exactly.
        want = index.topk(
            server.pipeline.graph_of_binary(c[0].binary_bytes), k=3
        )
        assert [h["index"] for h in resp["hits"]] == [h.index for h in want]
        assert [h["meta"] for h in resp["hits"]] == [h.meta for h in want]

    def test_source_query(self, trained, index, corpus):
        _, j = corpus
        server = RetrievalServer(trained, index, default_k=2)
        req = json.dumps({"id": "s", "source": j[0].source_text, "language": "java"})
        responses, stats = _serve(server, [req])
        assert stats.errors == 0
        assert len(responses[0]["hits"]) == 2
        # Hits mirror the index's own ranking of the compiled source graph.
        want = index.topk(
            server.pipeline.graph_of_source(j[0].source_text, "java"), k=2
        )
        assert [h["meta"] for h in responses[0]["hits"]] == [h.meta for h in want]

    def test_per_request_k_and_null_k(self, trained, index, corpus):
        c, _ = corpus
        server = RetrievalServer(trained, index, default_k=2)
        responses, _ = _serve(
            server,
            [
                _binary_request(c[0], id="a", k=1),
                _binary_request(c[0], id="b", k=None),
                _binary_request(c[0], id="c"),
            ],
        )
        assert [r["id"] for r in responses] == ["a", "b", "c"]
        assert len(responses[0]["hits"]) == 1
        assert len(responses[1]["hits"]) == len(index)  # null = full ranking
        assert len(responses[2]["hits"]) == 2  # server default

    def test_responses_preserve_request_order(self, trained, index, corpus):
        c, j = corpus
        server = RetrievalServer(trained, index, batch_size=2, default_k=1)
        requests = [
            _binary_request(c[0], id="q0"),
            json.dumps({"id": "q1", "source": j[0].source_text, "language": "java"}),
            _binary_request(c[1], id="q2"),
        ]
        responses, stats = _serve(server, requests)
        assert [r["id"] for r in responses] == ["q0", "q1", "q2"]
        assert stats.batches == 2  # 2 + 1


class TestBatching:
    def test_requests_share_batched_scoring(self, trained, corpus):
        c, j = corpus
        fresh = EmbeddingIndex(trained)  # own query cache: counting encodes
        fresh.add([s.source_graph for s in j])
        server = RetrievalServer(trained, fresh, batch_size=4, default_k=1)
        trained.model.encoder_graph_count = 0
        distinct = [s for s in c[:4]]
        responses, stats = _serve(
            server, [_binary_request(s, id=s.identifier) for s in distinct]
        )
        assert stats.batches == 1
        # All four query graphs went through the encoder in one batch.
        assert trained.model.encoder_graph_count == 4
        assert len(responses) == 4

    def test_flush_on_eof_below_batch_size(self, trained, index, corpus):
        c, _ = corpus
        server = RetrievalServer(trained, index, batch_size=64, default_k=1)
        responses, stats = _serve(server, [_binary_request(c[0])])
        assert stats.batches == 1 and len(responses) == 1

    def test_pipe_input_batches_pipelined_requests(self, trained, index, corpus):
        """A real pipe with queued requests must batch them, not serve 1-by-1
        (stdlib text streams hide read-ahead lines from select, which once
        degraded piped traffic to batches of one)."""
        import os

        c, _ = corpus
        server = RetrievalServer(trained, index, batch_size=4, default_k=1)
        read_fd, write_fd = os.pipe()
        payload = "".join(
            _binary_request(s, id=s.identifier) + "\n" for s in c[:4]
        ).encode()
        os.write(write_fd, payload)
        os.close(write_fd)
        out = io.StringIO()
        with os.fdopen(read_fd, "r") as in_stream:
            stats = server.serve(in_stream, out)
        assert stats.requests == 4
        assert stats.batches == 1  # all four scored in one pass
        assert len(out.getvalue().splitlines()) == 4

    def test_pipe_input_flushes_partial_batch(self, trained, index, corpus):
        """Fewer queued requests than batch_size still get answered (no
        deadlock waiting for a batch that will never fill)."""
        import os

        c, _ = corpus
        server = RetrievalServer(trained, index, batch_size=8, default_k=1)
        read_fd, write_fd = os.pipe()
        os.write(write_fd, (_binary_request(c[0], id="solo") + "\n").encode())
        os.close(write_fd)
        out = io.StringIO()
        with os.fdopen(read_fd, "r") as in_stream:
            stats = server.serve(in_stream, out)
        assert stats.batches == 1
        assert json.loads(out.getvalue())["id"] == "solo"

    def test_blank_lines_ignored(self, trained, index, corpus):
        c, _ = corpus
        server = RetrievalServer(trained, index, default_k=1)
        out = io.StringIO()
        stats = server.serve(
            io.StringIO("\n\n" + _binary_request(c[0]) + "\n\n"), out
        )
        assert stats.requests == 1

    def test_stats_reset_per_serve_loop(self, trained, index, corpus):
        """A reused warm server reports per-loop stats, not lifetime totals."""
        c, _ = corpus
        server = RetrievalServer(trained, index, default_k=1)
        _serve(server, [_binary_request(c[0])])
        stats = server.serve(io.StringIO(_binary_request(c[1]) + "\n"), io.StringIO())
        assert stats.requests == 1

    def test_bad_batch_size_rejected(self, trained, index):
        with pytest.raises(ValueError):
            RetrievalServer(trained, index, batch_size=0)

    def test_bad_default_k_rejected_at_startup(self, trained, index):
        """--top-k 0 must fail when the server starts, not per request."""
        for bad in (0, -1, 2.5):
            with pytest.raises(ValueError):
                RetrievalServer(trained, index, default_k=bad)
        RetrievalServer(trained, index, default_k=None)  # full rankings ok


class TestErrors:
    def test_bad_json_line(self, trained, index, corpus):
        c, _ = corpus
        server = RetrievalServer(trained, index, default_k=1)
        responses, stats = _serve(
            server, ["{not json", _binary_request(c[0], id="ok")]
        )
        assert stats.errors == 1
        assert "bad JSON" in responses[0]["error"]
        assert responses[1]["id"] == "ok"

    def test_parse_error_echoes_id(self, trained, index):
        server = RetrievalServer(trained, index)
        responses, _ = _serve(server, [json.dumps({"id": "oops"})])
        assert responses[0]["id"] == "oops"
        assert "binary_b64" in responses[0]["error"]

    def test_error_does_not_poison_batch(self, trained, index, corpus):
        c, _ = corpus
        server = RetrievalServer(trained, index, batch_size=3, default_k=1)
        responses, stats = _serve(
            server,
            [
                _binary_request(c[0], id="good1"),
                json.dumps({"id": "bad", "binary_b64": "!!!not-base64!!!"}),
                _binary_request(c[1], id="good2"),
            ],
        )
        assert stats.errors == 1
        assert [r["id"] for r in responses] == ["good1", "bad", "good2"]
        assert "error" in responses[1] and "hits" in responses[0]

    @pytest.mark.parametrize(
        "req",
        [
            {"source": "int x;"},  # missing language
            {"source": "int x;", "language": 3},
            {"binary_b64": "aa", "source": "x", "language": "c"},  # both
            {"binary_b64": "aa", "k": 0},
            {"binary_b64": "aa", "k": -2},
            {"binary_b64": "aa", "k": "five"},
            {"binary_b64": 7},
        ],
    )
    def test_malformed_requests_get_error_responses(self, trained, index, req):
        server = RetrievalServer(trained, index)
        responses, stats = _serve(server, [json.dumps(req)])
        assert stats.errors == 1
        assert "error" in responses[0]

    def test_uncompilable_source_is_an_error_response(self, trained, index):
        server = RetrievalServer(trained, index)
        responses, _ = _serve(
            server,
            [json.dumps({"id": "x", "source": "not a program", "language": "java"})],
        )
        assert "error" in responses[0] and responses[0]["id"] == "x"


class TestInputEdgeCases:
    def test_fd_ready_reports_closed_fd_as_not_pending(self):
        """A closed fd can deliver no more input: `_fd_ready` must say
        not-pending so the loop flushes what it holds.  A blanket `return
        True` on select() errors once stalled partial batches forever."""
        import os

        from repro.serve.core import _fd_ready

        read_fd, write_fd = os.pipe()
        os.close(write_fd)
        os.close(read_fd)
        assert _fd_ready(read_fd) is False  # EBADF -> OSError
        assert _fd_ready(-1) is False  # ValueError

    def test_final_request_without_trailing_newline(self, trained, index, corpus):
        """EOF right after the last request (no trailing newline) must still
        serve it, not drop it on the floor."""
        c, _ = corpus
        server = RetrievalServer(trained, index, default_k=1)
        out = io.StringIO()
        stats = server.serve(io.StringIO(_binary_request(c[0], id="last")), out)
        assert stats.requests == 1
        assert json.loads(out.getvalue())["id"] == "last"

    def test_final_request_without_trailing_newline_pipe(
        self, trained, index, corpus
    ):
        """Same contract over a real pipe: earlier complete lines batch as
        usual and the unterminated final line is served at EOF."""
        import os

        c, _ = corpus
        server = RetrievalServer(trained, index, batch_size=4, default_k=1)
        read_fd, write_fd = os.pipe()
        payload = (
            _binary_request(c[0], id="first") + "\n" + _binary_request(c[1], id="last")
        ).encode()
        os.write(write_fd, payload)
        os.close(write_fd)
        out = io.StringIO()
        with os.fdopen(read_fd, "r") as in_stream:
            stats = server.serve(in_stream, out)
        assert stats.requests == 2
        assert [json.loads(l)["id"] for l in out.getvalue().splitlines()] == [
            "first",
            "last",
        ]


class TestShardedServing:
    def test_sharded_index_behind_server(self, trained, index, corpus, tmp_path):
        c, _ = corpus
        ShardedEmbeddingIndex.from_index(index, tmp_path / "idx", 3)
        sharded = ShardedEmbeddingIndex.open(tmp_path / "idx", trained)
        mono_server = RetrievalServer(trained, index, default_k=4)
        shard_server = RetrievalServer(trained, sharded, default_k=4)
        req = [_binary_request(c[0], id="q")]
        mono_responses, _ = _serve(mono_server, req)
        shard_responses, _ = _serve(shard_server, req)
        assert mono_responses == shard_responses
