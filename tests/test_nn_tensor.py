"""Unit tests for the autograd engine: ops, broadcasting, gradient checks."""

import numpy as np
import pytest

from repro.nn.tensor import Tensor, no_grad, ones, tensor, zeros
from tests.helpers import check_gradients


def _t(shape, seed=0, requires_grad=True):
    rng = np.random.default_rng(seed)
    return Tensor(rng.standard_normal(shape).astype(np.float32), requires_grad=requires_grad)


class TestBasics:
    def test_construction_casts_to_float32(self):
        t = Tensor([1.0, 2.0], requires_grad=True)
        assert t.dtype == np.float32

    def test_int_data_stays_int_without_grad(self):
        t = Tensor(np.array([1, 2, 3]))
        assert t.dtype.kind in "iu"

    def test_shape_ndim_size(self):
        t = zeros(2, 3)
        assert t.shape == (2, 3) and t.ndim == 2 and t.size == 6

    def test_item_scalar(self):
        assert tensor(3.5).item() == pytest.approx(3.5)

    def test_detach_cuts_tape(self):
        a = _t((3,))
        b = (a * 2).detach()
        assert not b.requires_grad

    def test_no_grad_context(self):
        a = _t((3,))
        with no_grad():
            b = a * 2
        assert not b.requires_grad

    def test_ones_zeros(self):
        assert np.all(ones(2, 2).data == 1)
        assert np.all(zeros(2, 2).data == 0)

    def test_repr_mentions_shape(self):
        assert "shape=(2, 3)" in repr(zeros(2, 3))


class TestArithmetic:
    def test_add_forward(self):
        a, b = Tensor([1.0, 2.0]), Tensor([3.0, 4.0])
        np.testing.assert_allclose((a + b).data, [4.0, 6.0])

    def test_add_broadcast_grad(self):
        a = _t((2, 3), 1)
        b = _t((3,), 2)
        check_gradients(lambda: (a + b).sum(), [a, b])

    def test_scalar_radd(self):
        a = _t((3,))
        check_gradients(lambda: (1.5 + a).sum(), [a])

    def test_sub_grad(self):
        a, b = _t((4,), 1), _t((4,), 2)
        check_gradients(lambda: (a - b).sum(), [a, b])

    def test_rsub(self):
        a = _t((3,))
        np.testing.assert_allclose((2.0 - a).data, 2.0 - a.data, rtol=1e-6)

    def test_mul_grad(self):
        a, b = _t((2, 2), 1), _t((2, 2), 2)
        check_gradients(lambda: (a * b).sum(), [a, b])

    def test_mul_broadcast_grad(self):
        a = _t((2, 3), 1)
        b = _t((1, 3), 2)
        check_gradients(lambda: (a * b).sum(), [a, b])

    def test_div_grad(self):
        a = _t((3,), 1)
        b = Tensor(np.array([1.5, 2.0, 2.5], dtype=np.float32), requires_grad=True)
        check_gradients(lambda: (a / b).sum(), [a, b])

    def test_rtruediv(self):
        b = Tensor(np.array([2.0, 4.0], dtype=np.float32), requires_grad=True)
        check_gradients(lambda: (1.0 / b).sum(), [b])

    def test_pow_grad(self):
        a = Tensor(np.array([1.0, 2.0, 3.0], dtype=np.float32), requires_grad=True)
        check_gradients(lambda: (a**3).sum(), [a])

    def test_neg_grad(self):
        a = _t((3,))
        check_gradients(lambda: (-a).sum(), [a])

    def test_matmul_2d_grad(self):
        a, b = _t((3, 4), 1), _t((4, 2), 2)
        check_gradients(lambda: (a @ b).sum(), [a, b])

    def test_matmul_batched_grad(self):
        a, b = _t((2, 3, 4), 1), _t((2, 4, 2), 2)
        check_gradients(lambda: (a @ b).sum(), [a, b])

    def test_matmul_vector(self):
        a, b = _t((4,), 1), _t((4,), 2)
        check_gradients(lambda: a @ b, [a, b])

    def test_shared_operand_accumulates(self):
        a = _t((3,))
        check_gradients(lambda: (a * a + a).sum(), [a])

    def test_diamond_graph_gradient(self):
        # y = (a+a) * (a*2): gradient must accumulate through both branches.
        a = _t((2,))
        check_gradients(lambda: ((a + a) * (a * 2.0)).sum(), [a])


class TestShapes:
    def test_reshape_grad(self):
        a = _t((2, 6))
        check_gradients(lambda: (a.reshape(3, 4) * 2).sum(), [a])

    def test_reshape_tuple_arg(self):
        a = _t((4,))
        assert a.reshape((2, 2)).shape == (2, 2)

    def test_transpose_grad(self):
        a = _t((2, 3))
        check_gradients(lambda: (a.T * _t((3, 2), 5).detach()).sum(), [a])

    def test_transpose_axes(self):
        a = _t((2, 3, 4))
        assert a.transpose(2, 0, 1).shape == (4, 2, 3)

    def test_getitem_slice_grad(self):
        a = _t((5, 3))
        check_gradients(lambda: (a[1:4] * 2).sum(), [a])

    def test_getitem_fancy_grad(self):
        a = _t((5, 3))
        idx = np.array([0, 2, 2, 4])
        check_gradients(lambda: (a[idx] * 3).sum(), [a])

    def test_getitem_repeated_rows_accumulate(self):
        a = Tensor(np.eye(3, dtype=np.float32), requires_grad=True)
        out = a[np.array([1, 1, 1])].sum()
        out.backward()
        assert a.grad[1].sum() == pytest.approx(9.0)


class TestReductions:
    def test_sum_all_grad(self):
        a = _t((3, 4))
        check_gradients(lambda: a.sum(), [a])

    def test_sum_axis_grad(self):
        a = _t((3, 4))
        check_gradients(lambda: (a.sum(axis=0) ** 2).sum(), [a])

    def test_sum_keepdims(self):
        a = _t((3, 4))
        assert a.sum(axis=1, keepdims=True).shape == (3, 1)

    def test_mean_grad(self):
        a = _t((4, 2))
        check_gradients(lambda: (a.mean(axis=0) ** 2).sum(), [a])

    def test_mean_all(self):
        a = _t((4,))
        assert a.mean().item() == pytest.approx(float(a.data.mean()), rel=1e-5)

    def test_max_axis_grad(self):
        rng = np.random.default_rng(7)
        # Distinct values avoid tie-splitting ambiguity vs numeric grad.
        vals = rng.permutation(12).astype(np.float32).reshape(3, 4)
        a = Tensor(vals, requires_grad=True)
        check_gradients(lambda: (a.max(axis=1) ** 2).sum(), [a])

    def test_max_keepdims_shape(self):
        a = _t((3, 4))
        assert a.max(axis=1, keepdims=True).shape == (3, 1)


class TestElementwise:
    def test_exp_grad(self):
        a = _t((3,))
        check_gradients(lambda: a.exp().sum(), [a])

    def test_log_grad(self):
        a = Tensor(np.array([0.5, 1.0, 2.0], dtype=np.float32), requires_grad=True)
        check_gradients(lambda: a.log().sum(), [a])

    def test_sqrt_grad(self):
        a = Tensor(np.array([1.0, 4.0, 9.0], dtype=np.float32), requires_grad=True)
        check_gradients(lambda: a.sqrt().sum(), [a])

    def test_tanh_grad(self):
        a = _t((4,))
        check_gradients(lambda: a.tanh().sum(), [a])

    def test_sigmoid_grad(self):
        a = _t((4,))
        check_gradients(lambda: a.sigmoid().sum(), [a])

    def test_sigmoid_extreme_values_stable(self):
        a = Tensor(np.array([-100.0, 100.0], dtype=np.float32))
        out = a.sigmoid().data
        assert np.all(np.isfinite(out))
        assert out[0] == pytest.approx(0.0, abs=1e-6)
        assert out[1] == pytest.approx(1.0, abs=1e-6)

    def test_relu_grad(self):
        a = Tensor(np.array([-1.0, 0.5, 2.0], dtype=np.float32), requires_grad=True)
        check_gradients(lambda: a.relu().sum(), [a])

    def test_leaky_relu_grad(self):
        a = Tensor(np.array([-2.0, -0.5, 0.5, 2.0], dtype=np.float32), requires_grad=True)
        check_gradients(lambda: a.leaky_relu(0.2).sum(), [a])

    def test_leaky_relu_negative_slope(self):
        a = Tensor(np.array([-1.0], dtype=np.float32))
        assert a.leaky_relu(0.3).data[0] == pytest.approx(-0.3)

    def test_clip_grad(self):
        a = Tensor(np.array([-2.0, 0.0, 2.0], dtype=np.float32), requires_grad=True)
        out = a.clip(-1.0, 1.0)
        out.sum().backward()
        np.testing.assert_allclose(a.grad, [0.0, 1.0, 0.0])


class TestBackwardMechanics:
    def test_backward_requires_grad_error(self):
        a = Tensor([1.0])
        with pytest.raises(RuntimeError):
            a.backward()

    def test_grad_accumulates_across_backward_calls(self):
        a = _t((2,))
        (a * 2).sum().backward()
        (a * 2).sum().backward()
        np.testing.assert_allclose(a.grad, [4.0, 4.0])

    def test_zero_grad(self):
        a = _t((2,))
        (a * 2).sum().backward()
        a.zero_grad()
        assert a.grad is None

    def test_long_chain_no_recursion_error(self):
        a = _t((2,))
        x = a
        for _ in range(2000):
            x = x + 1.0
        x.sum().backward()
        np.testing.assert_allclose(a.grad, [1.0, 1.0])

    def test_add_aliasing_same_grad_to_both_parents(self):
        # Regression: add passes the same array to both parents; ensure the
        # stored gradients do not alias each other.
        a, b = _t((3,), 1), _t((3,), 2)
        s = a + b
        y = (s * 1.0) + (s * 1.0)
        y.sum().backward()
        np.testing.assert_allclose(a.grad, [2.0, 2.0, 2.0])
        np.testing.assert_allclose(b.grad, [2.0, 2.0, 2.0])
