"""Tests for the embedding index: pairwise parity, caching, persistence.

The contract under test is exactness — the index is an optimization, not
an approximation: top-k order and scores from :class:`EmbeddingIndex` must
match full pairwise ``trainer.predict`` scoring for both ``pair_features``
modes, duplicate graphs must not re-enter the encoder, and a save/load
round trip must preserve scores.
"""

import numpy as np
import pytest

from repro.config import cpu_config, scaled, tiny_data_config
from repro.core.pipeline import MatcherPipeline, compile_to_views
from repro.core.trainer import MatchTrainer
from repro.data.corpus import CorpusBuilder
from repro.data.pairs import MatchingPair, build_pairs
from repro.eval.retrieval import (
    evaluate_retrieval,
    rank_candidates,
    retrieval_corpus_from_samples,
)
from repro.index import EmbeddingIndex, graph_fingerprint


@pytest.fixture(scope="module")
def corpus():
    samples = CorpusBuilder(tiny_data_config()).build(["c", "java"])
    c = [s for s in samples if s.language == "c"]
    j = [s for s in samples if s.language == "java"]
    return c, j


def _train(corpus, **overrides):
    c, j = corpus
    ds = build_pairs(c, j, "binary", "source", seed=0, max_pairs_per_task=3)
    cfg = scaled(
        cpu_config(), epochs=2, hidden_dim=16, embed_dim=16, num_layers=1, **overrides
    )
    trainer = MatchTrainer(cfg)
    trainer.train(ds)
    return trainer


@pytest.fixture(scope="module")
def trained(corpus):
    """Trainer with the default CPU preset (pair_features='interaction')."""
    return _train(corpus)


@pytest.fixture(scope="module")
def trained_concat(corpus):
    """Trainer exercising the plain-concat pair head."""
    return _train(corpus, pair_features="concat")


def _pairwise_reference(trainer, query_graph, candidate_graphs):
    pairs = [MatchingPair(query_graph, g, 0, "?", "?") for g in candidate_graphs]
    return trainer.predict(pairs)


class TestFingerprint:
    def test_name_independent(self, corpus):
        c, _ = corpus
        g = c[0].source_graph
        renamed = type(g)(
            name="other",
            node_texts=g.node_texts,
            node_full_texts=g.node_full_texts,
            node_types=g.node_types,
            edges=g.edges,
            positions=g.positions,
            source_language=g.source_language,
        )
        assert graph_fingerprint(g) == graph_fingerprint(renamed)

    def test_distinct_graphs_differ(self, corpus):
        c, j = corpus
        assert graph_fingerprint(c[0].source_graph) != graph_fingerprint(
            j[0].source_graph
        )


class TestTrainerEmbeddings:
    def test_shapes(self, trained, corpus):
        c, _ = corpus
        emb = trained.encode_graphs([s.source_graph for s in c[:3]])
        assert emb.shape == (3, 2 * trained.config.hidden_dim)
        assert emb.dtype == np.float32

    def test_empty(self, trained):
        emb = trained.encode_graphs([])
        assert emb.shape == (0, 2 * trained.config.hidden_dim)

    def test_embed_many_alias(self, trained, corpus):
        c, _ = corpus
        graphs = [s.source_graph for s in c[:3]]
        np.testing.assert_array_equal(
            trained.encode_graphs(graphs), trained.embed_many(graphs)
        )

    def test_batch_size_invariant(self, trained, corpus):
        """Embeddings must not depend on batch composition (eval mode)."""
        _, j = corpus
        graphs = [s.source_graph for s in j[:5]]
        one = trained.encode_graphs(graphs, batch_size=1)
        many = trained.encode_graphs(graphs, batch_size=64)
        np.testing.assert_allclose(one, many, atol=1e-5)

    @pytest.mark.parametrize("which", ["interaction", "concat"])
    def test_score_embeddings_matches_predict(
        self, which, trained, trained_concat, corpus
    ):
        trainer = trained if which == "interaction" else trained_concat
        assert trainer.config.pair_features == which
        c, j = corpus
        pairs = [
            MatchingPair(ci.decompiled_graph, ji.source_graph, 0, "?", "?")
            for ci, ji in zip(c[:4], j[:4])
        ]
        left = trainer.encode_graphs([p.left for p in pairs])
        right = trainer.encode_graphs([p.right for p in pairs])
        np.testing.assert_allclose(
            trainer.score_embeddings(left, right), trainer.predict(pairs), atol=1e-5
        )

    def test_shape_mismatch_rejected(self, trained):
        with pytest.raises(ValueError):
            trained.score_embeddings(np.zeros((2, 32)), np.zeros((3, 32)))

    def test_score_pairs_tiled_chunking_invariant(self, trained, corpus):
        """Tiny row budgets (forcing both-axis chunking) change nothing."""
        from repro.index import score_pairs_tiled

        c, j = corpus
        q = trained.encode_graphs([s.decompiled_graph for s in c[:3]])
        cand = trained.encode_graphs([s.source_graph for s in j[:5]])
        full = score_pairs_tiled(trained, q, cand)
        assert full.shape == (3, 5)
        for budget in (1, 2, 7):
            np.testing.assert_allclose(
                score_pairs_tiled(trained, q, cand, row_budget=budget), full,
                atol=1e-6,
            )


class TestIndexParity:
    @pytest.mark.parametrize("which", ["interaction", "concat"])
    def test_scores_match_pairwise(self, which, trained, trained_concat, corpus):
        trainer = trained if which == "interaction" else trained_concat
        c, j = corpus
        candidates = [s.source_graph for s in j]
        index = EmbeddingIndex(trainer)
        index.add(candidates)
        for sample in c[:3]:
            got = index.scores(sample.decompiled_graph)
            want = _pairwise_reference(trainer, sample.decompiled_graph, candidates)
            np.testing.assert_allclose(got, want, atol=1e-5)

    def test_topk_order_matches_pairwise(self, trained, corpus):
        c, j = corpus
        candidates = [s.source_graph for s in j]
        index = EmbeddingIndex(trained)
        index.add(candidates, metas=[{"id": s.identifier} for s in j])
        query = c[0].decompiled_graph
        want = np.argsort(
            -_pairwise_reference(trained, query, candidates), kind="stable"
        )
        hits = index.topk(query, k=5)
        assert [h.index for h in hits] == [int(i) for i in want[:5]]
        assert hits[0].meta["id"] == j[want[0]].identifier

    def test_requires_trained_model(self):
        with pytest.raises(ValueError):
            EmbeddingIndex(MatchTrainer(cpu_config()))

    @pytest.mark.parametrize("bad_k", [-1, 0, -5, 2.5, True])
    def test_non_positive_k_rejected(self, bad_k, trained, corpus):
        """k=-1 used to silently drop the *top* hit via order[:-1]."""
        c, j = corpus
        index = EmbeddingIndex(trained)
        index.add([j[0].source_graph])
        with pytest.raises(ValueError, match="positive integer"):
            index.topk(c[0].decompiled_graph, k=bad_k)
        with pytest.raises(ValueError, match="positive integer"):
            index.topk_batch([c[0].decompiled_graph], k=bad_k)

    def test_numpy_integer_k_accepted(self, trained, corpus):
        c, j = corpus
        index = EmbeddingIndex(trained)
        index.add([s.source_graph for s in j[:3]])
        assert len(index.topk(c[0].decompiled_graph, k=np.int64(2))) == 2

    def test_k_beyond_index_returns_all(self, trained, corpus):
        c, j = corpus
        index = EmbeddingIndex(trained)
        index.add([s.source_graph for s in j[:3]])
        assert len(index.topk(c[0].decompiled_graph, k=100)) == 3

    def test_empty_index_topk_skips_encoder(self, trained, corpus):
        """Scoring an empty index must not pay a GNN forward for zeros(0)."""
        c, _ = corpus
        index = EmbeddingIndex(trained)
        before = trained.model.encoder_graph_count
        assert index.scores(c[0].decompiled_graph).shape == (0,)
        assert index.topk(c[0].decompiled_graph, k=5) == []
        assert index.topk_batch([c[0].decompiled_graph], k=5) == [[]]
        assert trained.model.encoder_graph_count == before

    def test_query_arg_validation(self, trained, corpus):
        _, j = corpus
        index = EmbeddingIndex(trained)
        index.add([j[0].source_graph])
        with pytest.raises(ValueError):
            index.scores()
        with pytest.raises(ValueError):
            index.scores(j[0].source_graph, embedding=np.zeros(index.dim))
        with pytest.raises(ValueError):
            index.scores(embedding=np.zeros(3))


class TestBatchedQueries:
    """topk_batch / scores_batch: one batched pass, per-query semantics."""

    def test_matches_per_query_loop(self, trained, corpus):
        c, j = corpus
        candidates = [s.source_graph for s in j]
        queries = [s.decompiled_graph for s in c[:4]]
        loop_index = EmbeddingIndex(trained)
        loop_index.add(candidates, metas=[{"id": s.identifier} for s in j])
        batch_index = EmbeddingIndex(trained)
        batch_index.add(candidates, metas=[{"id": s.identifier} for s in j])
        per_query = [loop_index.topk(q, k=5) for q in queries]
        batched = batch_index.topk_batch(queries, k=5)
        assert [[h.index for h in hits] for hits in batched] == [
            [h.index for h in hits] for hits in per_query
        ]
        assert [[h.meta for h in hits] for hits in batched] == [
            [h.meta for h in hits] for hits in per_query
        ]
        for loop_hits, batch_hits in zip(per_query, batched):
            np.testing.assert_allclose(
                [h.score for h in batch_hits], [h.score for h in loop_hits], atol=1e-5
            )

    def test_warm_cache_parity_is_exact(self, trained, corpus):
        """With query embeddings cached, both paths are bit-identical."""
        c, j = corpus
        index = EmbeddingIndex(trained)
        index.add([s.source_graph for s in j])
        queries = [s.decompiled_graph for s in c[:3]]
        batched = index.scores_batch(queries)  # caches the query embeddings
        for row, q in zip(batched, queries):
            np.testing.assert_array_equal(index.scores(q), row)

    def test_embed_queries_one_encoder_invocation(self, trained, corpus):
        c, j = corpus
        index = EmbeddingIndex(trained)
        index.add([s.source_graph for s in j[:3]])
        queries = [s.decompiled_graph for s in c[:4]]
        trained.model.encoder_graph_count = 0
        emb = index.embed_queries(queries)
        assert emb.shape == (4, index.dim)
        assert trained.model.encoder_graph_count == 4  # one batch, no repeats
        index.embed_queries(queries)  # all cached now
        assert trained.model.encoder_graph_count == 4

    def test_duplicate_queries_encoded_once(self, trained, corpus):
        c, j = corpus
        index = EmbeddingIndex(trained)
        index.add([j[0].source_graph])
        q = c[0].decompiled_graph
        trained.model.encoder_graph_count = 0
        emb = index.embed_queries([q, q, q])
        assert trained.model.encoder_graph_count == 1
        np.testing.assert_array_equal(emb[0], emb[1])
        np.testing.assert_array_equal(emb[0], emb[2])

    def test_empty_query_list(self, trained, corpus):
        _, j = corpus
        index = EmbeddingIndex(trained)
        index.add([j[0].source_graph])
        assert index.topk_batch([], k=3) == []
        assert index.scores_batch([]).shape == (0, 1)

    def test_scores_batch_arg_validation(self, trained, corpus):
        c, j = corpus
        index = EmbeddingIndex(trained)
        index.add([j[0].source_graph])
        with pytest.raises(ValueError):
            index.scores_batch()
        with pytest.raises(ValueError):
            index.scores_batch(
                [c[0].decompiled_graph], embeddings=np.zeros((1, index.dim))
            )
        with pytest.raises(ValueError):
            index.scores_batch(embeddings=np.zeros((2, 3)))

    def test_precomputed_embeddings_accepted(self, trained, corpus):
        c, j = corpus
        index = EmbeddingIndex(trained)
        index.add([s.source_graph for s in j[:4]])
        q = index.embed_queries([s.decompiled_graph for s in c[:2]])
        np.testing.assert_array_equal(
            index.scores_batch(embeddings=q),
            index.scores_batch([s.decompiled_graph for s in c[:2]]),
        )


class TestIndexCache:
    def test_duplicate_add_hits_cache(self, trained, corpus):
        _, j = corpus
        graphs = [s.source_graph for s in j[:4]]
        index = EmbeddingIndex(trained)
        index.add(graphs)
        assert index.cache_misses == 4 and index.cache_hits == 0
        before = trained.model.encoder_graph_count
        index.add(graphs)
        assert trained.model.encoder_graph_count == before  # no re-encoding
        assert index.cache_hits == 4
        assert len(index) == 8  # entries still appended

    def test_repeated_query_hits_cache(self, trained, corpus):
        c, j = corpus
        index = EmbeddingIndex(trained)
        index.add([s.source_graph for s in j[:3]])
        query = c[0].decompiled_graph
        first = index.scores(query)
        before = trained.model.encoder_graph_count
        second = index.scores(query)
        assert trained.model.encoder_graph_count == before
        np.testing.assert_array_equal(first, second)

    def test_query_then_add_promotes_without_reencoding(self, trained, corpus):
        _, j = corpus
        index = EmbeddingIndex(trained)
        index.add([j[1].source_graph])  # non-empty: queries hit the encoder
        index.scores(j[0].source_graph)  # seen as a query first
        before = trained.model.encoder_graph_count
        index.add([j[0].source_graph])
        assert trained.model.encoder_graph_count == before

    def test_query_cache_is_bounded(self, trained, corpus):
        c, j = corpus
        index = EmbeddingIndex(trained, query_cache_size=2)
        index.add([j[0].source_graph])
        for sample in c[:4]:
            index.scores(sample.decompiled_graph)
        assert len(index._query_cache) <= 2
        assert len(index) == 1  # corpus entries unaffected

    def test_query_cache_size_zero_disables_caching(self, trained, corpus):
        c, j = corpus
        index = EmbeddingIndex(trained, query_cache_size=0)
        index.add([j[0].source_graph])
        scores = index.scores(c[0].decompiled_graph)
        assert scores.shape == (1,)
        assert len(index._query_cache) == 0

    def test_metas_must_align(self, trained, corpus):
        _, j = corpus
        index = EmbeddingIndex(trained)
        with pytest.raises(ValueError):
            index.add([j[0].source_graph], metas=[{}, {}])


class TestIndexPersistence:
    def test_save_load_round_trip(self, trained, corpus, tmp_path):
        c, j = corpus
        index = EmbeddingIndex(trained)
        index.add(
            [s.source_graph for s in j], metas=[{"id": s.identifier} for s in j]
        )
        query = c[0].decompiled_graph
        want = index.scores(query)
        path = tmp_path / "index.npz"
        index.save(path)
        restored = EmbeddingIndex.load(path, trained)
        assert len(restored) == len(index)
        np.testing.assert_allclose(restored.scores(query), want, atol=1e-6)
        assert [h.meta for h in restored.topk(query, k=2)] == [
            h.meta for h in index.topk(query, k=2)
        ]

    def test_loaded_entries_do_not_reencode(self, trained, corpus, tmp_path):
        c, j = corpus
        index = EmbeddingIndex(trained)
        index.add([s.source_graph for s in j[:3]])
        path = tmp_path / "index.npz"
        index.save(path)
        restored = EmbeddingIndex.load(path, trained)
        before = trained.model.encoder_graph_count
        restored.add([j[0].source_graph])
        assert trained.model.encoder_graph_count == before

    def test_row_count_mismatch_rejected(self, trained, corpus, tmp_path):
        """A truncated embeddings array fails loudly at load, not later."""
        _, j = corpus
        index = EmbeddingIndex(trained)
        index.add([s.source_graph for s in j[:3]])
        path = tmp_path / "index.npz"
        index.save(path)
        with np.load(path) as archive:
            meta = archive["__meta_json__"]
            truncated = archive["embeddings"][:2]
        np.savez_compressed(path, embeddings=truncated, __meta_json__=meta)
        with pytest.raises(ValueError, match="corrupt"):
            EmbeddingIndex.load(path, trained)

    def test_save_appends_npz_suffix(self, trained, corpus, tmp_path):
        _, j = corpus
        index = EmbeddingIndex(trained)
        index.add([j[0].source_graph])
        written = index.save(tmp_path / "myindex")
        assert written.endswith("myindex.npz")
        # load resolves the suffix-less name too
        restored = EmbeddingIndex.load(tmp_path / "myindex", trained)
        assert len(restored) == 1

    def test_tag_round_trips(self, trained, corpus, tmp_path):
        _, j = corpus
        index = EmbeddingIndex(trained)
        index.add([j[0].source_graph])
        index.tag = "corpus-v1"
        path = tmp_path / "index.npz"
        index.save(path)
        assert EmbeddingIndex.load(path, trained).tag == "corpus-v1"

    def test_model_mismatch_rejected(self, trained, trained_concat, corpus, tmp_path):
        _, j = corpus
        index = EmbeddingIndex(trained)
        index.add([j[0].source_graph])
        path = tmp_path / "index.npz"
        index.save(path)
        with pytest.raises(ValueError):
            EmbeddingIndex.load(path, trained_concat)

    def test_same_shape_different_weights_rejected(self, trained, corpus, tmp_path):
        """An index is bound to the exact weights that produced it."""
        _, j = corpus
        index = EmbeddingIndex(trained)
        index.add([j[0].source_graph])
        path = tmp_path / "index.npz"
        index.save(path)
        other = _train(corpus, seed=99)  # same architecture, different weights
        with pytest.raises(ValueError, match="different model"):
            EmbeddingIndex.load(path, other)

    def test_meta_mutation_does_not_corrupt_index(self, trained, corpus):
        c, j = corpus
        index = EmbeddingIndex(trained)
        index.add([j[0].source_graph], metas=[{"id": "x"}])
        hit = index.topk(c[0].decompiled_graph, k=1)[0]
        hit.meta["id"] = "mutated"
        index.metas[0]["id"] = "also mutated"
        assert index.topk(c[0].decompiled_graph, k=1)[0].meta["id"] == "x"

    def test_non_index_archive_rejected(self, trained, tmp_path):
        path = tmp_path / "junk.npz"
        np.savez_compressed(path, a=np.zeros(3))
        with pytest.raises(ValueError):
            EmbeddingIndex.load(path, trained)

    def test_checkpoint_and_index_not_interchangeable(
        self, trained, corpus, tmp_path
    ):
        """Model checkpoints and index archives reject each other cleanly."""
        _, j = corpus
        ckpt = tmp_path / "model.npz"
        trained.save(ckpt)
        with pytest.raises(ValueError):
            EmbeddingIndex.load(ckpt, trained)
        index = EmbeddingIndex(trained)
        index.add([j[0].source_graph])
        idx_path = tmp_path / "index.npz"
        index.save(idx_path)
        with pytest.raises(ValueError):
            MatchTrainer.load(idx_path)


class TestRetrievalFastPath:
    def test_rank_candidates_paths_agree(self, trained, corpus):
        c, j = corpus
        query = (c[0].decompiled_graph, c[0].task)
        cands = retrieval_corpus_from_samples(j, "source")
        fast = rank_candidates(trained, query, cands)
        slow = rank_candidates(trained.predict, query, cands)
        assert fast.ranked_tasks == slow.ranked_tasks
        np.testing.assert_array_equal(fast.relevant, slow.relevant)

    def test_evaluate_retrieval_paths_agree(self, trained, corpus):
        c, j = corpus
        queries = retrieval_corpus_from_samples(c[:3], "binary")
        cands = retrieval_corpus_from_samples(j, "source")
        fast = evaluate_retrieval(trained, queries, cands)
        slow = evaluate_retrieval(trained.predict, queries, cands)
        assert fast == slow

    def test_fast_path_encodes_each_graph_once(self, trained, corpus):
        c, j = corpus
        queries = retrieval_corpus_from_samples(c[:3], "binary")
        cands = retrieval_corpus_from_samples(j, "source")
        trained.model.encoder_graph_count = 0
        evaluate_retrieval(trained, queries, cands)
        assert trained.model.encoder_graph_count == len(queries) + len(cands)


class TestPipelineFastPaths:
    def test_graph_of_source_matches_full_pipeline(self, trained, corpus):
        c, _ = corpus
        pipe = MatcherPipeline(trained)
        text = c[0].source_text
        fast = pipe.graph_of_source(text, "c")
        full = compile_to_views(text, "c").source_graph
        assert fast.node_full_texts == full.node_full_texts
        assert fast.node_types == full.node_types
        for rel in full.edges:
            np.testing.assert_array_equal(fast.edges[rel], full.edges[rel])
            np.testing.assert_array_equal(fast.positions[rel], full.positions[rel])

    def test_rank_sources_matches_pairwise(self, trained, corpus):
        c, j = corpus
        pipe = MatcherPipeline(trained)
        candidates = [(s.source_text, s.language) for s in j[:5]]
        ranking = pipe.rank_sources(c[0].binary_bytes, candidates)
        want = _pairwise_reference(
            trained,
            pipe.graph_of_binary(c[0].binary_bytes),
            [pipe.graph_of_source(t, l) for t, l in candidates],
        )
        assert [i for i, _ in ranking] == [
            int(i) for i in np.argsort(-want, kind="stable")
        ]
        got = np.asarray(sorted(s for _, s in ranking))
        np.testing.assert_allclose(got, np.sort(want), atol=1e-5)

    def test_prebuilt_index_reused(self, trained, corpus):
        c, j = corpus
        pipe = MatcherPipeline(trained)
        candidates = [(s.source_text, s.language) for s in j[:5]]
        index = pipe.source_index(candidates)
        baseline = pipe.rank_sources(c[0].binary_bytes, candidates, index=index)
        before = trained.model.encoder_graph_count
        again = pipe.rank_sources(c[1].binary_bytes, candidates, index=index)
        # Only the new query binary hits the encoder.
        assert trained.model.encoder_graph_count == before + 1
        assert sorted(i for i, _ in baseline) == sorted(i for i, _ in again)
        with pytest.raises(ValueError):
            pipe.rank_sources(c[0].binary_bytes, candidates[:2], index=index)

    def test_foreign_trainer_index_rejected(self, trained, corpus):
        """A prebuilt index is bound to the pipeline's model weights."""
        c, j = corpus
        candidates = [(s.source_text, s.language) for s in j[:3]]
        other = _train(corpus, seed=7)
        foreign = MatcherPipeline(other).source_index(candidates)
        pipe = MatcherPipeline(trained)
        with pytest.raises(ValueError, match="different model"):
            pipe.rank_sources(c[0].binary_bytes, candidates, index=foreign)

    def test_reloaded_trainer_index_reusable(self, trained, corpus, tmp_path):
        """Fingerprint-equal trainers share indexes across save/load.

        The identity check used to reject an index built by a
        saved-then-reloaded copy of the *same* model — exactly the
        cross-process reuse the persistent index exists for.
        """
        c, j = corpus
        candidates = [(s.source_text, s.language) for s in j[:4]]
        trained.save(str(tmp_path / "model.npz"))
        reloaded = MatchTrainer.load(str(tmp_path / "model.npz"))
        index = MatcherPipeline(reloaded).source_index(candidates)
        pipe = MatcherPipeline(trained)
        ranked = pipe.rank_sources(c[0].binary_bytes, candidates, index=index)
        direct = pipe.rank_sources(c[0].binary_bytes, candidates)
        assert [i for i, _ in ranked] == [i for i, _ in direct]
        np.testing.assert_allclose(
            [s for _, s in ranked], [s for _, s in direct], atol=1e-5
        )

    def test_mismatched_candidates_rejected(self, trained, corpus):
        """Same-length but different candidate list must not mis-rank."""
        c, j = corpus
        pipe = MatcherPipeline(trained)
        candidates = [(s.source_text, s.language) for s in j[:4]]
        other = [(s.source_text, s.language) for s in j[4:8]]
        index = pipe.source_index(candidates)
        with pytest.raises(ValueError):
            pipe.rank_sources(c[0].binary_bytes, other, index=index)

    def test_rank_sources_batch_matches_loop(self, trained, corpus):
        c, j = corpus
        pipe = MatcherPipeline(trained)
        candidates = [(s.source_text, s.language) for s in j[:5]]
        index = pipe.source_index(candidates)
        raws = [c[0].binary_bytes, c[1].binary_bytes]
        batched = pipe.rank_sources_batch(raws, candidates, index=index)
        singles = [pipe.rank_sources(raw, candidates, index=index) for raw in raws]
        assert [[i for i, _ in r] for r in batched] == [
            [i for i, _ in r] for r in singles
        ]
        for batch_row, single_row in zip(batched, singles):
            np.testing.assert_allclose(
                [s for _, s in batch_row], [s for _, s in single_row], atol=1e-5
            )

    def test_rank_sources_batch_validates_index(self, trained, corpus):
        c, j = corpus
        pipe = MatcherPipeline(trained)
        candidates = [(s.source_text, s.language) for s in j[:4]]
        index = pipe.source_index(candidates)
        with pytest.raises(ValueError):
            pipe.rank_sources_batch([c[0].binary_bytes], candidates[:2], index=index)

    def test_evaluate_retrieval_with_index(self, trained, corpus):
        """A prebuilt candidate index replaces candidate re-encoding."""
        c, j = corpus
        queries = retrieval_corpus_from_samples(c[:3], "binary")
        cands = retrieval_corpus_from_samples(j, "source")
        index = EmbeddingIndex(trained)
        index.add([g for g, _ in cands])
        trained.model.encoder_graph_count = 0
        via_index = evaluate_retrieval(None, queries, cands, index=index)
        assert trained.model.encoder_graph_count == len(queries)  # queries only
        direct = evaluate_retrieval(trained, queries, cands)
        assert via_index == direct

    def test_evaluate_retrieval_index_size_mismatch(self, trained, corpus):
        c, j = corpus
        queries = retrieval_corpus_from_samples(c[:2], "binary")
        cands = retrieval_corpus_from_samples(j, "source")
        index = EmbeddingIndex(trained)
        index.add([cands[0][0]])
        with pytest.raises(ValueError):
            evaluate_retrieval(None, queries, cands, index=index)
        with pytest.raises(ValueError):
            evaluate_retrieval(None, queries, cands)  # neither scorer nor index

    def test_evaluate_retrieval_foreign_index_with_scorer_rejected(
        self, trained, corpus
    ):
        """score_fn and index from different checkpoints must not mix."""
        c, j = corpus
        queries = retrieval_corpus_from_samples(c[:2], "binary")
        cands = retrieval_corpus_from_samples(j, "source")
        other = _train(corpus, seed=41)
        foreign = EmbeddingIndex(other)
        foreign.add([g for g, _ in cands])
        with pytest.raises(ValueError, match="different model"):
            evaluate_retrieval(trained, queries, cands, index=foreign)

    def test_evaluate_retrieval_reordered_index_rejected(self, trained, corpus):
        """Same size, wrong entry order must not silently mis-attribute."""
        c, j = corpus
        queries = retrieval_corpus_from_samples(c[:2], "binary")
        cands = retrieval_corpus_from_samples(j, "source")
        reordered = EmbeddingIndex(trained)
        reordered.add([g for g, _ in reversed(cands)])
        with pytest.raises(ValueError, match="same order"):
            evaluate_retrieval(None, queries, cands, index=reordered)

    def test_tagless_index_rejected(self, trained, corpus):
        """Hand-built indexes (no candidate tag) are refused, not trusted."""
        from repro.index import EmbeddingIndex

        c, j = corpus
        pipe = MatcherPipeline(trained)
        candidates = [(s.source_text, s.language) for s in j[:3]]
        bare = EmbeddingIndex(trained)
        bare.add([pipe.graph_of_source(t, l) for t, l in candidates])
        with pytest.raises(ValueError, match="source_index"):
            pipe.rank_sources(c[0].binary_bytes, candidates, index=bare)
