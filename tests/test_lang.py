"""Tests for the language substrate: lexer, parsers, renderers, interpreter,
and the cross-language semantic-equivalence property of the generator."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lang import ast
from repro.lang.generator import LANGUAGES, SolutionGenerator
from repro.lang.interp import Interpreter, InterpreterError, interpret, trunc_div, trunc_mod, wrap64
from repro.lang.lexer import LexError, Token, tokenize
from repro.lang.minic import MiniCRenderer, parse_minic
from repro.lang.minicpp import MiniCppRenderer, parse_minicpp
from repro.lang.minijava import MiniJavaRenderer, parse_minijava
from repro.lang.parser_base import ParseError
from repro.lang.tasks import TASK_REGISTRY


class TestLexer:
    def test_simple_tokens(self):
        toks = tokenize("int x = 42;")
        assert [t.kind for t in toks] == ["kw", "id", "op", "num", "op", "eof"]

    def test_two_char_operators(self):
        toks = tokenize("a <= b && c != d")
        ops = [t.value for t in toks if t.kind == "op"]
        assert ops == ["<=", "&&", "!="]

    def test_comments_skipped(self):
        toks = tokenize("x // line\n/* block\nmore */ y")
        ids = [t.value for t in toks if t.kind == "id"]
        assert ids == ["x", "y"]

    def test_preprocessor_skipped(self):
        toks = tokenize("#include <stdio.h>\nint")
        assert toks[0].value == "int"

    def test_string_literal(self):
        toks = tokenize('"%d\\n"')
        assert toks[0].kind == "str"

    def test_line_numbers(self):
        toks = tokenize("a\nb\nc")
        assert [t.line for t in toks[:3]] == [1, 2, 3]

    def test_unterminated_comment_raises(self):
        with pytest.raises(LexError):
            tokenize("/* never closed")

    def test_long_suffix(self):
        toks = tokenize("100L")
        assert toks[0].kind == "num"


class TestMiniCParser:
    def test_function_roundtrip(self):
        src = "int addOne(int x) {\n    return x + 1;\n}\n"
        prog = parse_minic(src)
        assert prog.functions[0].name == "addOne"
        assert isinstance(prog.functions[0].body.statements[0], ast.Return)

    def test_array_param(self):
        prog = parse_minic("int f(int* a, int n) { return a[0]; }")
        assert isinstance(prog.functions[0].params[0].type, ast.ArrayType)

    def test_array_bracket_param(self):
        prog = parse_minic("int f(int a[], int n) { return a[n - 1]; }")
        assert isinstance(prog.functions[0].params[0].type, ast.ArrayType)

    def test_local_array_with_size(self):
        prog = parse_minic("int f() { int a[10]; a[0] = 1; return a[0]; }")
        d = prog.functions[0].body.statements[0]
        assert isinstance(d.init, ast.NewArray)

    def test_brace_initializer(self):
        prog = parse_minic("int f() { int a[] = {1, 2, 3}; return a[1]; }")
        d = prog.functions[0].body.statements[0]
        assert isinstance(d.init, ast.ArrayLit)
        assert len(d.init.elements) == 3

    def test_printf_becomes_print(self):
        prog = parse_minic('int main() { printf("%d\\n", 7); return 0; }')
        assert isinstance(prog.functions[0].body.statements[0], ast.Print)

    def test_for_loop(self):
        prog = parse_minic("int f(int n) { int s = 0; for (int i = 0; i < n; i++) { s += i; } return s; }")
        loop = prog.functions[0].body.statements[1]
        assert isinstance(loop, ast.For)
        # i++ desugars to i = i + 1
        assert isinstance(loop.step, ast.Assign)

    def test_augmented_assignment_desugars(self):
        prog = parse_minic("int f(int x) { x += 5; return x; }")
        a = prog.functions[0].body.statements[0]
        assert isinstance(a.value, ast.BinOp) and a.value.op == "+"

    def test_else_if_chain(self):
        prog = parse_minic(
            "int f(int x) { if (x > 0) { return 1; } else if (x < 0) { return -1; } else { return 0; } }"
        )
        outer = prog.functions[0].body.statements[0]
        assert isinstance(outer.otherwise.statements[0], ast.If)

    def test_static_helper_parsed(self):
        prog = parse_minic("static int helper(int a) { return a; } int main() { return helper(1); }")
        assert [f.name for f in prog.functions] == ["helper", "main"]

    def test_parse_error_reports_line(self):
        with pytest.raises(ParseError, match="line 2"):
            parse_minic("int f() {\nreturn + ; }")

    def test_operator_precedence(self):
        prog = parse_minic("int f() { return 1 + 2 * 3; }")
        expr = prog.functions[0].body.statements[0].value
        assert expr.op == "+"
        assert expr.right.op == "*"

    def test_while_break_continue(self):
        prog = parse_minic(
            "int f(int n) { while (1) { if (n > 5) { break; } n++; continue; } return n; }"
        )
        body = prog.functions[0].body.statements[0].body
        assert any(isinstance(s, ast.Continue) for s in body.statements)


class TestMiniCppParser:
    def test_std_sort_canonicalized(self):
        prog = parse_minicpp(
            "void f(int* a, int n) { std::sort(a, a + n); }"
        )
        stmt = prog.functions[0].body.statements[0]
        assert isinstance(stmt.expr, ast.Call) and stmt.expr.name == "sort"
        assert len(stmt.expr.args) == 2

    def test_unqualified_sort_with_using_namespace(self):
        prog = parse_minicpp(
            "using namespace std;\nvoid f(int* a, int n) { sort(a, a + n); }"
        )
        assert prog.functions[0].body.statements[0].expr.name == "sort"

    def test_std_max(self):
        prog = parse_minicpp("int f(int a, int b) { return std::max(a, b); }")
        expr = prog.functions[0].body.statements[0].value
        assert expr.name == "max"

    def test_cout_becomes_print(self):
        prog = parse_minicpp("int main() { std::cout << 5 << std::endl; return 0; }")
        assert isinstance(prog.functions[0].body.statements[0], ast.Print)

    def test_cout_unqualified(self):
        prog = parse_minicpp("using namespace std;\nint main() { cout << 5 << endl; return 0; }")
        assert isinstance(prog.functions[0].body.statements[0], ast.Print)

    def test_bad_sort_iterators_rejected(self):
        with pytest.raises(ParseError):
            parse_minicpp("void f(int* a, int* b, int n) { std::sort(a, b + n); }")


class TestMiniJavaParser:
    SRC = (
        "import java.util.Arrays;\n"
        "public class Main {\n"
        "    static int f(int[] a) {\n"
        "        return a.length;\n"
        "    }\n"
        "    public static void main(String[] args) {\n"
        "        int[] a = {1, 2, 3};\n"
        "        System.out.println(f(a));\n"
        "    }\n"
        "}\n"
    )

    def test_class_wrapper(self):
        prog = parse_minijava(self.SRC)
        assert [f.name for f in prog.functions] == ["f", "main"]

    def test_length_becomes_len(self):
        prog = parse_minijava(self.SRC)
        expr = prog.functions[0].body.statements[0].value
        assert isinstance(expr, ast.Call) and expr.name == "len"

    def test_main_has_no_params(self):
        prog = parse_minijava(self.SRC)
        assert prog.function("main").params == []

    def test_new_array(self):
        prog = parse_minijava(
            "public class Main { static int g() { int[] b = new int[5]; return b[0]; } }"
        )
        d = prog.functions[0].body.statements[0]
        assert isinstance(d.init, ast.NewArray)

    def test_math_max(self):
        prog = parse_minijava(
            "public class Main { static int g(int a, int b) { return Math.max(a, b); } }"
        )
        assert prog.functions[0].body.statements[0].value.name == "max"

    def test_arrays_sort_full(self):
        prog = parse_minijava(
            "public class Main { static void g(int[] a) { Arrays.sort(a); } }"
        )
        c = prog.functions[0].body.statements[0].expr
        assert c.name == "sort" and c.args[1].name == "len"

    def test_arrays_sort_range(self):
        prog = parse_minijava(
            "public class Main { static void g(int[] a, int n) { Arrays.sort(a, 0, n); } }"
        )
        c = prog.functions[0].body.statements[0].expr
        assert c.name == "sort" and isinstance(c.args[1], ast.Var)

    def test_boolean_type(self):
        prog = parse_minijava(
            "public class Main { static boolean g() { return true; } }"
        )
        assert prog.functions[0].return_type.name == "bool"


class TestInterpreter:
    def test_arith(self):
        prog = parse_minic('int main() { printf("%d\\n", 2 + 3 * 4); return 0; }')
        assert interpret(prog) == [14]

    def test_truncating_division(self):
        prog = parse_minic('int main() { printf("%d\\n", -7 / 2); return 0; }')
        assert interpret(prog) == [-3]

    def test_remainder_sign(self):
        prog = parse_minic('int main() { printf("%d\\n", -7 % 2); return 0; }')
        assert interpret(prog) == [-1]

    def test_while_loop(self):
        src = 'int main() { int i = 0; int s = 0; while (i < 5) { s += i; i++; } printf("%d\\n", s); return 0; }'
        assert interpret(parse_minic(src)) == [10]

    def test_function_call(self):
        src = "int sq(int x) { return x * x; } int main() { printf(\"%d\\n\", sq(9)); return 0; }"
        assert interpret(parse_minic(src)) == [81]

    def test_recursion_via_user_function(self):
        src = (
            "int fact(int n) { if (n <= 1) { return 1; } return n * fact(n - 1); } "
            'int main() { printf("%d\\n", fact(5)); return 0; }'
        )
        assert interpret(parse_minic(src)) == [120]

    def test_array_ops(self):
        src = 'int main() { int a[] = {3, 1, 2}; a[0] = a[1] + a[2]; printf("%d\\n", a[0]); return 0; }'
        assert interpret(parse_minic(src)) == [3]

    def test_out_of_bounds_raises(self):
        src = "int main() { int a[] = {1}; return a[5]; }"
        with pytest.raises(InterpreterError):
            interpret(parse_minic(src))

    def test_undefined_variable_raises(self):
        src = "int main() { return ghost; }"
        with pytest.raises(InterpreterError):
            interpret(parse_minic(src))

    def test_infinite_loop_guard(self):
        src = "int main() { while (1) { } return 0; }"
        with pytest.raises(InterpreterError, match="step budget"):
            Interpreter(parse_minic(src), max_steps=1000).run()

    def test_short_circuit_and(self):
        # a[5] would be out of bounds; && must not evaluate it
        src = "int main() { int a[] = {1}; int n = 1; if (n > 5 && a[5] > 0) { return 1; } return 0; }"
        interpret(parse_minic(src))  # should not raise

    def test_builtin_sort(self):
        src = (
            "public class Main { public static void main(String[] args) { "
            "int[] a = {3, 1, 2}; Arrays.sort(a); System.out.println(a[0]); } }"
        )
        assert interpret(parse_minijava(src)) == [1]

    def test_wrap64(self):
        assert wrap64(2**63) == -(2**63)
        assert wrap64(-(2**63) - 1) == 2**63 - 1

    def test_trunc_div_mod_identity(self):
        for a in (-17, -3, 0, 5, 23):
            for b in (-4, -1, 2, 7):
                assert trunc_div(a, b) * b + trunc_mod(a, b) == a


class TestGeneratorSemantics:
    """The load-bearing property: one (task, variant) is semantically
    identical across all three languages."""

    GEN = SolutionGenerator(seed=1234)

    @pytest.mark.parametrize("task", sorted(TASK_REGISTRY))
    def test_cross_language_equivalence(self, task):
        for variant in range(3):
            outputs = {}
            for lang in LANGUAGES:
                sf = self.GEN.generate(task, variant, lang)
                outputs[lang] = interpret(sf.program)
            assert outputs["c"] == outputs["cpp"] == outputs["java"], (
                f"{task} v{variant}: {outputs}"
            )

    @pytest.mark.parametrize("task", sorted(TASK_REGISTRY))
    def test_variants_parse_in_all_languages(self, task):
        for variant in range(3):
            for lang in LANGUAGES:
                sf = self.GEN.generate(task, variant, lang)
                assert sf.program.function("main") is not None
                assert len(sf.text) > 40

    def test_variants_structurally_differ(self):
        texts = {
            self.GEN.generate("sum_array", k, "c").text for k in range(6)
        }
        assert len(texts) >= 3  # naming/loop-style variation shows up

    def test_determinism(self):
        a = self.GEN.generate("gcd", 0, "java").text
        b = SolutionGenerator(seed=1234).generate("gcd", 0, "java").text
        assert a == b

    def test_different_seeds_differ(self):
        a = SolutionGenerator(seed=1).generate("sum_array", 0, "c").text
        b = SolutionGenerator(seed=2).generate("sum_array", 0, "c").text
        assert a != b

    def test_generate_many_counts(self):
        files = self.GEN.generate_many(tasks=["gcd", "fibonacci"], variants=2)
        assert len(files) == 2 * 2 * 3

    def test_unknown_language_rejected(self):
        with pytest.raises(ValueError):
            self.GEN.generate("gcd", 0, "rust")

    def test_unknown_task_rejected(self):
        with pytest.raises(KeyError):
            self.GEN.generate("quantum_sort", 0, "c")

    @settings(max_examples=15, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        variant=st.integers(min_value=0, max_value=20),
    )
    def test_property_any_seed_equivalent(self, seed, variant):
        gen = SolutionGenerator(seed=seed)
        task = sorted(TASK_REGISTRY)[seed % len(TASK_REGISTRY)]
        outs = [interpret(gen.generate(task, variant, lang).program) for lang in LANGUAGES]
        assert outs[0] == outs[1] == outs[2]
        assert len(outs[0]) >= 1  # every program prints something
