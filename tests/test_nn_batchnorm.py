"""Tests for BatchNorm1d, Tensor.abs, and the interaction pair head."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.nn as nn
from repro.config import cpu_config, scaled
from repro.core.model import GraphBinMatch
from repro.nn.tensor import Tensor

from tests.helpers import check_gradients


class TestBatchNorm1d:
    def test_training_output_is_standardized(self):
        bn = nn.BatchNorm1d(4)
        bn.train()
        x = Tensor(np.random.default_rng(0).normal(3.0, 2.0, (64, 4)).astype(np.float32))
        out = bn(x).data
        np.testing.assert_allclose(out.mean(axis=0), 0.0, atol=1e-4)
        np.testing.assert_allclose(out.std(axis=0), 1.0, atol=1e-2)

    def test_running_stats_move_toward_batch_stats(self):
        bn = nn.BatchNorm1d(2, momentum=0.5)
        bn.train()
        x = Tensor(np.full((8, 2), 10.0, dtype=np.float32))
        bn(x)
        assert np.all(bn.running_mean > 4.0)  # moved half-way toward 10

    def test_eval_uses_running_stats(self):
        bn = nn.BatchNorm1d(2)
        bn.eval()
        x = Tensor(np.array([[1.0, 2.0]], dtype=np.float32))
        out = bn(x).data  # running stats are (0, 1) initially
        np.testing.assert_allclose(out, [[1.0, 2.0]], atol=1e-4)

    def test_eval_is_batch_size_independent(self):
        bn = nn.BatchNorm1d(3)
        bn.train()
        rng = np.random.default_rng(1)
        for _ in range(5):
            bn(Tensor(rng.normal(size=(16, 3)).astype(np.float32)))
        bn.eval()
        x = rng.normal(size=(4, 3)).astype(np.float32)
        full = bn(Tensor(x)).data
        single = np.concatenate([bn(Tensor(x[i : i + 1])).data for i in range(4)])
        np.testing.assert_allclose(full, single, rtol=1e-5)

    def test_single_row_training_batch_falls_back_to_running(self):
        bn = nn.BatchNorm1d(2)
        bn.train()
        out = bn(Tensor(np.array([[5.0, 5.0]], dtype=np.float32))).data
        assert np.all(np.isfinite(out))  # no division by zero variance

    def test_affine_params_receive_gradient(self):
        bn = nn.BatchNorm1d(3)
        bn.train()
        x = Tensor(np.random.default_rng(2).normal(size=(8, 3)).astype(np.float32))
        bn(x).sum().backward()
        assert bn.gamma.grad is not None
        assert bn.beta.grad is not None
        np.testing.assert_allclose(bn.beta.grad, 8.0)  # d(sum)/d(beta) = batch size

    def test_gamma_gradient_matches_finite_difference(self):
        bn = nn.BatchNorm1d(2)
        bn.train()
        x_data = np.random.default_rng(3).normal(size=(6, 2)).astype(np.float32)

        def fn():
            bn.running_mean = np.zeros(2, dtype=np.float32)
            bn.running_var = np.ones(2, dtype=np.float32)
            return (bn(Tensor(x_data)) ** 2).sum()

        check_gradients(fn, [bn.gamma, bn.beta])

    def test_parameters_registered(self):
        bn = nn.BatchNorm1d(4)
        names = {p.name for p in bn.parameters()}
        assert names == {"gamma", "beta"}


class TestTensorAbs:
    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.floats(-10, 10, width=32), min_size=1, max_size=20))
    def test_matches_numpy(self, values):
        x = Tensor(np.asarray(values, dtype=np.float32))
        np.testing.assert_allclose(x.abs().data, np.abs(x.data))

    def test_gradient_is_sign(self):
        x = Tensor(np.array([-2.0, 3.0, -0.5]), requires_grad=True)
        x.abs().sum().backward()
        np.testing.assert_allclose(x.grad, [-1.0, 1.0, -1.0])

    def test_gradient_zero_at_zero(self):
        x = Tensor(np.array([0.0]), requires_grad=True)
        x.abs().sum().backward()
        np.testing.assert_allclose(x.grad, [0.0])


class TestInteractionHead:
    def _model(self, pair_features):
        cfg = scaled(
            cpu_config(),
            embed_dim=8,
            hidden_dim=8,
            num_layers=1,
            pair_features=pair_features,
        )
        return GraphBinMatch(vocab_size=32, config=cfg), cfg

    def test_concat_head_input_dim(self):
        model, cfg = self._model("concat")
        assert model.fc1.in_features == 4 * cfg.hidden_dim

    def test_interaction_head_input_dim(self):
        model, cfg = self._model("interaction")
        assert model.fc1.in_features == 8 * cfg.hidden_dim

    def test_unknown_pair_features_rejected(self):
        with pytest.raises(ValueError):
            self._model("bilinear")

    def test_interaction_scores_differ_from_concat(self):
        ma, _ = self._model("concat")
        mb, _ = self._model("interaction")
        emb = Tensor(np.random.default_rng(0).normal(size=(4, 16)).astype(np.float32))
        ma.eval(), mb.eval()
        sa = ma.score_from_embeddings(emb).data
        sb = mb.score_from_embeddings(emb).data
        assert sa.shape == sb.shape == (2,)
        assert not np.allclose(sa, sb)

    def test_interaction_features_symmetric_under_swap(self):
        """|a-b| and a*b are symmetric; only the concat part breaks symmetry."""
        model, _ = self._model("interaction")
        model.eval()
        rng = np.random.default_rng(1)
        a = rng.normal(size=(1, 16)).astype(np.float32)
        b = rng.normal(size=(1, 16)).astype(np.float32)
        emb_ab = Tensor(np.concatenate([a, b]))
        emb_ba = Tensor(np.concatenate([b, a]))
        s_ab = model.score_from_embeddings(emb_ab).data.reshape(-1)
        s_ba = model.score_from_embeddings(emb_ba).data.reshape(-1)
        # Not asserting equality (concat part is order-sensitive); both must
        # be valid probabilities from the same embedding pair.
        assert 0.0 <= float(s_ab[0]) <= 1.0
        assert 0.0 <= float(s_ba[0]) <= 1.0
