"""Tests for the staged compilation pipeline, serializers, and artifact store."""

import json

import numpy as np
import pytest

from repro.artifacts import ArtifactKey, ArtifactStore, source_text_id
from repro.config import DataConfig, tiny_data_config
from repro.core.pipeline import compile_to_views
from repro.data.corpus import CorpusBuilder, corpus_statistics
from repro.graphs import build_graph
from repro.graphs.serialize import (
    graph_from_arrays,
    graph_to_arrays,
    load_graph,
    save_graph,
)
from repro.index import graph_fingerprint
from repro.ir.lowering import lower_program
from repro.ir.printer import print_module
from repro.ir.serialize import module_from_dict, module_to_dict, type_from_str
from repro.ir.types import I1, I32, I64, VOID, PtrType
from repro.lang.generator import SolutionGenerator
from repro.pipeline import (
    PIPELINE_VERSION,
    STAGES,
    CompilationPipeline,
    StageFailure,
)


@pytest.fixture(scope="module")
def solution():
    return SolutionGenerator(seed=3, independent=True).generate("gcd", 1, "java")


@pytest.fixture(scope="module")
def compiled(solution):
    return CompilationPipeline().compile(solution.text, "java", name=solution.identifier)


class TestStagedPipeline:
    def test_all_stages_complete_in_order(self, compiled):
        assert list(compiled.stages_completed) == list(STAGES)
        assert compiled.complete

    def test_every_stage_timed(self, compiled):
        assert set(compiled.stage_seconds) == set(STAGES)
        assert all(t >= 0.0 for t in compiled.stage_seconds.values())

    def test_pipeline_timer_accumulates(self, solution):
        pipeline = CompilationPipeline()
        pipeline.compile(solution.text, "java")
        pipeline.compile(solution.text, "java")
        assert pipeline.timer.counts["codegen"] == 2

    def test_unsupported_language_rejected_eagerly(self):
        with pytest.raises(ValueError, match="unsupported language"):
            CompilationPipeline().compile("fn main() {}", "rust")
        with pytest.raises(ValueError, match="unsupported language"):
            CompilationPipeline().source_graph("fn main() {}", "rust")

    def test_stage_failure_reports_partial_progress(self, solution):
        pipeline = CompilationPipeline(fail_stage="codegen")
        with pytest.raises(StageFailure) as exc:
            pipeline.compile(solution.text, "java")
        assert exc.value.stage == "codegen"
        assert exc.value.result.stages_completed == ["parse", "lower", "optimize"]
        assert exc.value.result.binary_bytes is None

    def test_matches_compile_to_views(self, solution, compiled):
        views = compile_to_views(solution.text, "java", name=solution.identifier)
        assert graph_fingerprint(views.source_graph) == graph_fingerprint(
            compiled.source_graph
        )
        assert graph_fingerprint(views.decompiled_graph) == graph_fingerprint(
            compiled.decompiled_graph
        )
        assert views.binary_bytes == compiled.binary_bytes

    def test_source_graph_fast_path_parity(self, solution, compiled):
        fast = CompilationPipeline().source_graph(
            solution.text, "java", name=solution.identifier
        )
        assert graph_fingerprint(fast) == graph_fingerprint(compiled.source_graph)

    def test_binary_graph_fast_path_parity(self, compiled):
        graph = CompilationPipeline().binary_graph(
            compiled.binary_bytes, name=compiled.name + ".dec"
        )
        assert graph_fingerprint(graph) == graph_fingerprint(compiled.decompiled_graph)


class TestCorpusPipelineParity:
    """CorpusBuilder and compile_to_views share one pipeline implementation."""

    def test_sample_graphs_match_compile_to_views(self):
        samples = CorpusBuilder(tiny_data_config()).build(["c", "java"])
        for sample in samples[:6]:
            views = compile_to_views(
                sample.source_text, sample.language,
                opt_level=sample.opt_level, compiler=sample.compiler,
                name=sample.identifier,
            )
            assert graph_fingerprint(views.source_graph) == graph_fingerprint(
                sample.source_graph
            )
            assert graph_fingerprint(views.decompiled_graph) == graph_fingerprint(
                sample.decompiled_graph
            )
            assert views.binary_bytes == sample.binary_bytes


class TestStageAccurateStats:
    def test_late_stage_failure_does_not_inflate_counters(self):
        cfg = DataConfig(num_tasks=4, variants=1, seed=0, compile_failure_pct=0)
        builder = CorpusBuilder(cfg, pipeline=CompilationPipeline(fail_stage="decompile"))
        samples = builder.build(["c"])
        stats = corpus_statistics(builder)["c"]
        assert samples == []
        assert stats["sources"] == stats["llvm_ir"] == stats["binaries"] == 4
        assert stats["decompiled"] == 0

    def test_early_stage_failure_counts_nothing_downstream(self):
        cfg = DataConfig(num_tasks=4, variants=1, seed=0, compile_failure_pct=0)
        builder = CorpusBuilder(cfg, pipeline=CompilationPipeline(fail_stage="lower"))
        builder.build(["c"])
        stats = corpus_statistics(builder)["c"]
        assert stats["sources"] == 4
        assert stats["llvm_ir"] == stats["binaries"] == stats["decompiled"] == 0


class TestModuleSerialization:
    def test_type_spelling_roundtrip(self):
        for t in (I1, I32, I64, VOID, PtrType(I32), PtrType(PtrType(I64))):
            assert type_from_str(str(t)) == t
        with pytest.raises(ValueError):
            type_from_str("f64")

    @pytest.mark.parametrize("language", ["c", "cpp", "java"])
    def test_source_module_roundtrip(self, language):
        sf = SolutionGenerator(seed=1, independent=True).generate("gcd", 0, language)
        module = lower_program(sf.program, name=sf.identifier)
        restored = module_from_dict(json.loads(json.dumps(module_to_dict(module))))
        assert print_module(restored) == print_module(module)
        assert graph_fingerprint(build_graph(restored)) == graph_fingerprint(
            build_graph(module)
        )

    def test_decompiled_module_roundtrip(self, compiled):
        restored = module_from_dict(module_to_dict(compiled.decompiled_module))
        assert print_module(restored) == print_module(compiled.decompiled_module)
        assert restored.size() == compiled.decompiled_module.size()

    def test_unknown_format_rejected(self):
        with pytest.raises(ValueError, match="format"):
            module_from_dict({"format": 99, "name": "m", "source_language": "", "functions": []})


class TestGraphSerialization:
    def test_arrays_roundtrip_fingerprint_exact(self, compiled):
        for graph in (compiled.source_graph, compiled.decompiled_graph):
            restored = graph_from_arrays(graph_to_arrays(graph, prefix="g."), prefix="g.")
            assert graph_fingerprint(restored) == graph_fingerprint(graph)
            assert restored.name == graph.name
            assert restored.source_language == graph.source_language
            for rel in graph.edges:
                np.testing.assert_array_equal(restored.edges[rel], graph.edges[rel])
                np.testing.assert_array_equal(restored.positions[rel], graph.positions[rel])

    def test_file_roundtrip(self, compiled, tmp_path):
        path = save_graph(tmp_path / "g", compiled.source_graph)
        assert path.endswith(".npz")
        restored = load_graph(path)
        assert graph_fingerprint(restored) == graph_fingerprint(compiled.source_graph)

    def test_missing_prefix_rejected(self):
        with pytest.raises(ValueError, match="prefix"):
            graph_from_arrays({}, prefix="nope.")


class TestArtifactStore:
    def _key(self, **overrides):
        fields = dict(
            task="gcd", variant=1, language="java", opt_level="Oz",
            compiler="clang", source_id="sha:abc",
        )
        fields.update(overrides)
        return ArtifactKey(**fields)

    def test_digest_covers_every_field(self):
        base = self._key()
        assert base.digest == self._key().digest
        for change in (
            dict(task="fib"), dict(variant=2), dict(language="c"),
            dict(opt_level="O0"), dict(compiler="gcc"), dict(source_id="sha:zzz"),
        ):
            assert self._key(**change).digest != base.digest
        assert ArtifactKey(**{**base.__dict__, "version": "other"}).digest != base.digest

    def test_version_defaults_to_pipeline_fingerprint(self):
        assert self._key().version == PIPELINE_VERSION

    def test_put_get_roundtrip(self, compiled, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        key = self._key(source_id=source_text_id(compiled.source_text))
        assert store.get(key) is None and store.misses == 1
        store.put(key, compiled)
        assert key in store and len(store) == 1
        loaded = store.get(key)
        assert loaded is not None and loaded.from_cache
        assert loaded.source_text == compiled.source_text
        assert loaded.binary_bytes == compiled.binary_bytes
        assert graph_fingerprint(loaded.source_graph) == graph_fingerprint(
            compiled.source_graph
        )
        assert graph_fingerprint(loaded.decompiled_graph) == graph_fingerprint(
            compiled.decompiled_graph
        )
        # Lazy modules materialize to the exact original IR.
        assert print_module(loaded.source_module) == print_module(compiled.source_module)
        assert print_module(loaded.decompiled_module) == print_module(
            compiled.decompiled_module
        )
        assert loaded.decompiled_module.size() == compiled.decompiled_module.size()

    def test_incomplete_result_refused(self, solution, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        with pytest.raises(StageFailure) as exc:
            CompilationPipeline(fail_stage="graph").compile(solution.text, "java")
        with pytest.raises(ValueError, match="incomplete"):
            store.put(self._key(), exc.value.result)

    def test_corrupt_entry_is_a_miss(self, compiled, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        key = self._key()
        path = store.put(key, compiled)
        path.write_bytes(b"not an npz archive")
        assert store.get(key) is None
        # A truncated zip (crash mid-write, disk full) raises BadZipFile
        # inside np.load — still a miss, never an error.
        path.write_bytes(b"PK\x03\x04" + b"\x00" * 8)
        assert store.get(key) is None

    def test_stats_reporting(self, compiled, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        store.put(self._key(), compiled)
        store.get(self._key())
        s = store.stats()
        assert s["entries"] == 1 and s["hits"] == 1 and s["bytes"] > 0


class TestColdWarmParallelBuilds:
    CFG = dict(num_tasks=5, variants=2, seed=0)

    def _fingerprints(self, samples):
        return [
            (
                s.identifier,
                graph_fingerprint(s.source_graph),
                graph_fingerprint(s.decompiled_graph),
                s.binary_bytes,
            )
            for s in samples
        ]

    def test_warm_build_equals_cold_build(self, tmp_path):
        cfg = DataConfig(artifact_dir=str(tmp_path / "store"), **self.CFG)
        cold_builder = CorpusBuilder(cfg)
        cold = cold_builder.build(["c", "java"])
        warm_builder = CorpusBuilder(cfg)
        warm = warm_builder.build(["c", "java"])
        assert self._fingerprints(warm) == self._fingerprints(cold)
        assert corpus_statistics(warm_builder) == corpus_statistics(cold_builder)
        assert warm_builder.store.hits == len(warm)
        assert [s.source_text for s in warm] == [s.source_text for s in cold]
        # Exactly one store probe per compiled sample — no double-counted
        # misses on the cold path, no misses at all on the warm path.
        assert cold_builder.store.misses == len(cold)
        assert warm_builder.store.misses == 0

    def test_store_matches_storeless_build(self, tmp_path):
        stored = CorpusBuilder(
            DataConfig(artifact_dir=str(tmp_path / "store"), **self.CFG)
        ).build(["c"])
        plain = CorpusBuilder(DataConfig(**self.CFG)).build(["c"])
        assert self._fingerprints(stored) == self._fingerprints(plain)

    def test_parallel_build_identical_to_serial(self, tmp_path):
        cfg = DataConfig(artifact_dir=str(tmp_path / "store"), **self.CFG)
        par_builder = CorpusBuilder(cfg)
        par = par_builder.build_parallel(["c", "java"], workers=2)
        ser_builder = CorpusBuilder(DataConfig(**self.CFG))
        ser = ser_builder.build(["c", "java"])
        assert self._fingerprints(par) == self._fingerprints(ser)
        assert corpus_statistics(par_builder) == corpus_statistics(ser_builder)

    def test_parallel_build_without_store_uses_scratch(self):
        builder = CorpusBuilder(DataConfig(**self.CFG))
        par = builder.build_parallel(["c"], workers=2)
        ser = CorpusBuilder(DataConfig(**self.CFG)).build(["c"])
        assert self._fingerprints(par) == self._fingerprints(ser)
        assert builder.store is None  # scratch store cleaned up

    def test_pool_never_oversubscribes_workers(self, tmp_path, monkeypatch):
        """Pool size is clamped to the requested worker count.

        Also checks the strided chunking covers every cold item exactly
        once, so the clamp does not drop work.
        """
        import repro.data.corpus as corpus_mod
        import repro.exec.pool as pool_mod

        created = []
        chunks_seen = []

        class FakePool:
            def run(self, fn, payloads):
                for payload in payloads:
                    chunks_seen.append(list(payload[0][2]))
                return [fn(*p) for p in payloads]

        def fake_get_pool(workers, start_method=None):
            created.append(workers)
            return FakePool()

        monkeypatch.setattr(pool_mod, "get_pool", fake_get_pool)
        monkeypatch.setattr(corpus_mod.multiprocessing, "cpu_count", lambda: 64)
        cfg = DataConfig(artifact_dir=str(tmp_path / "store"), **self.CFG)
        builder = CorpusBuilder(cfg)
        par = builder.build_parallel(["c"], workers=3)
        assert created and all(n <= 3 for n in created)
        compiled = [item for chunk in chunks_seen for item in chunk]
        assert len(compiled) == len(set(compiled))  # no item compiled twice
        ser = CorpusBuilder(DataConfig(**self.CFG)).build(["c"])
        assert self._fingerprints(par) == self._fingerprints(ser)
        # workers=None falls back to cpu_count but still may not exceed
        # the cold-item count (no pools of idle processes).
        created.clear()
        chunks_seen.clear()
        builder2 = CorpusBuilder(
            DataConfig(artifact_dir=str(tmp_path / "store2"), **self.CFG)
        )
        builder2.build_parallel(["c"], workers=None)
        todo = sum(len(c) for c in chunks_seen)
        assert created and all(n <= max(todo, 1) for n in created)

    def test_parallel_rejects_bad_worker_count(self, tmp_path):
        cfg = DataConfig(artifact_dir=str(tmp_path / "store"), **self.CFG)
        with pytest.raises(ValueError, match="workers"):
            CorpusBuilder(cfg).build_parallel(["c"], workers=0)

    def test_opt_level_and_compiler_key_separation(self, tmp_path):
        cfg = DataConfig(artifact_dir=str(tmp_path / "store"), **self.CFG)
        o0 = CorpusBuilder(cfg).build(["c"], opt_level="O0")
        oz_builder = CorpusBuilder(cfg)
        oz = oz_builder.build(["c"], opt_level="Oz")
        # Different opt levels must not collide in the store.
        assert oz_builder.store.hits == 0
        assert [s.opt_level for s in o0] == ["O0"] * len(o0)
        assert [s.opt_level for s in oz] == ["Oz"] * len(oz)


class TestCompileToViewsStore:
    def test_views_cached_across_calls(self, solution, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        first = compile_to_views(solution.text, "java", store=store)
        assert store.misses == 1
        second = compile_to_views(solution.text, "java", store=store)
        assert store.hits == 1
        assert graph_fingerprint(first.source_graph) == graph_fingerprint(
            second.source_graph
        )
        assert first.binary_bytes == second.binary_bytes
