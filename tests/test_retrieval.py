"""Tests for the retrieval evaluator and trainer checkpointing."""

import numpy as np
import pytest

from repro.config import cpu_config, scaled, tiny_data_config
from repro.core.trainer import MatchTrainer
from repro.data.corpus import CorpusBuilder
from repro.data.pairs import build_pairs
from repro.eval.retrieval import (
    RetrievalResult,
    _average_precision,
    evaluate_retrieval,
    rank_candidates,
    retrieval_corpus_from_samples,
)
from repro.graphs.programl import ProgramGraph


def _toy_graph(tag: int) -> ProgramGraph:
    """Single-node graph carrying its tag in the node text."""
    return ProgramGraph(
        name=f"toy{tag}",
        node_texts=[f"op{tag}"],
        node_full_texts=[f"op{tag} i32"],
        node_types=[0],
    )


def _oracle_score(pairs):
    """Score 1 for true matches, 0.1 otherwise (a perfect scorer)."""
    return np.asarray([1.0 if p.label == 1 else 0.1 for p in pairs])


def _anti_score(pairs):
    """A maximally wrong scorer."""
    return np.asarray([0.0 if p.label == 1 else 1.0 for p in pairs])


CANDS = [(_toy_graph(i), f"task{i % 3}") for i in range(9)]
QUERIES = [(_toy_graph(100 + i), f"task{i}") for i in range(3)]


class TestRanking:
    def test_oracle_ranks_relevant_first(self):
        ranked = rank_candidates(_oracle_score, QUERIES[0], CANDS)
        assert ranked.relevant[0]
        assert ranked.first_relevant_rank == 1

    def test_anti_scorer_ranks_relevant_last(self):
        ranked = rank_candidates(_anti_score, QUERIES[0], CANDS)
        assert not ranked.relevant[0]
        assert ranked.first_relevant_rank == 7  # 3 relevant of 9, all at tail

    def test_no_relevant_gives_rank_zero(self):
        query = (_toy_graph(0), "unknown_task")
        ranked = rank_candidates(_oracle_score, query, CANDS)
        assert ranked.first_relevant_rank == 0

    def test_small_batch_size_same_result(self):
        a = rank_candidates(_oracle_score, QUERIES[0], CANDS, batch_size=2)
        b = rank_candidates(_oracle_score, QUERIES[0], CANDS, batch_size=64)
        assert a.ranked_tasks == b.ranked_tasks


class TestEvaluateRetrieval:
    def test_oracle_perfect(self):
        res = evaluate_retrieval(_oracle_score, QUERIES, CANDS)
        assert res.mrr == 1.0
        assert res.hit_at[1] == 1.0
        assert res.mean_average_precision == 1.0
        assert res.num_queries == 3

    def test_anti_scorer_poor(self):
        res = evaluate_retrieval(_anti_score, QUERIES, CANDS)
        assert res.mrr < 0.2
        assert res.hit_at[1] == 0.0

    def test_queries_without_relevant_skipped(self):
        queries = QUERIES + [(_toy_graph(0), "never_seen")]
        res = evaluate_retrieval(_oracle_score, queries, CANDS)
        assert res.num_queries == 3

    def test_all_skipped_is_zero(self):
        res = evaluate_retrieval(_oracle_score, [(_toy_graph(0), "nope")], CANDS)
        assert res == RetrievalResult(0.0, {k: 0.0 for k in (1, 3, 5, 10)}, 0.0, 0)

    def test_row_shape(self):
        res = evaluate_retrieval(_oracle_score, QUERIES, CANDS)
        assert len(res.row()) == 4


class TestAveragePrecision:
    def test_perfect(self):
        assert _average_precision(np.array([True, True, False])) == 1.0

    def test_none(self):
        assert _average_precision(np.array([False, False])) == 0.0

    def test_interleaved(self):
        # relevant at ranks 1 and 3: AP = (1/1 + 2/3)/2
        ap = _average_precision(np.array([True, False, True]))
        np.testing.assert_allclose(ap, (1.0 + 2.0 / 3.0) / 2.0)


@pytest.fixture(scope="module")
def tiny_trained(tmp_path_factory):
    builder = CorpusBuilder(tiny_data_config())
    samples = builder.build(["c", "java"])
    c = [s for s in samples if s.language == "c"]
    j = [s for s in samples if s.language == "java"]
    ds = build_pairs(c, j, "binary", "source", seed=0, max_pairs_per_task=3)
    cfg = scaled(cpu_config(), epochs=2, hidden_dim=16, embed_dim=16, num_layers=1)
    trainer = MatchTrainer(cfg)
    trainer.train(ds)
    return trainer, ds, samples


class TestCorpusHelpers:
    def test_sides(self, tiny_trained):
        _, _, samples = tiny_trained
        src = retrieval_corpus_from_samples(samples, "source")
        binv = retrieval_corpus_from_samples(samples, "binary")
        assert len(src) == len(binv) == len(samples)
        assert src[0][0] is samples[0].source_graph
        assert binv[0][0] is samples[0].decompiled_graph

    def test_bad_side_rejected(self, tiny_trained):
        _, _, samples = tiny_trained
        with pytest.raises(ValueError):
            retrieval_corpus_from_samples(samples, "ir")


class TestTrainedModelRetrieval:
    def test_end_to_end_retrieval_runs(self, tiny_trained):
        trainer, _, samples = tiny_trained
        queries = retrieval_corpus_from_samples(samples[:2], "binary")
        cands = retrieval_corpus_from_samples(samples, "source")
        res = evaluate_retrieval(trainer.predict, queries, cands, ks=(1, 5))
        assert 0.0 <= res.mrr <= 1.0
        assert res.num_queries == 2


class TestCheckpointing:
    def test_save_load_roundtrip(self, tiny_trained, tmp_path):
        trainer, ds, _ = tiny_trained
        path = tmp_path / "model.npz"
        trainer.save(path)
        restored = MatchTrainer.load(path)
        a = trainer.predict(ds.test[:4])
        b = restored.predict(ds.test[:4])
        np.testing.assert_allclose(a, b, rtol=1e-5)

    def test_load_preserves_config(self, tiny_trained, tmp_path):
        trainer, _, _ = tiny_trained
        path = tmp_path / "model.npz"
        trainer.save(path)
        restored = MatchTrainer.load(path)
        assert restored.config == trainer.config
        assert restored.tokenizer.vocab == trainer.tokenizer.vocab

    def test_save_before_train_rejected(self, tmp_path):
        trainer = MatchTrainer(cpu_config())
        with pytest.raises(RuntimeError):
            trainer.save(tmp_path / "x.npz")

    def test_load_missing_meta_rejected(self, tmp_path):
        np.savez_compressed(tmp_path / "junk.npz", a=np.zeros(3))
        with pytest.raises(ValueError):
            MatchTrainer.load(tmp_path / "junk.npz")
