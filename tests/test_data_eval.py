"""Tests for corpus building, pair construction, metrics, and analysis."""

import numpy as np
import pytest

from repro.config import DataConfig, tiny_data_config
from repro.data.corpus import CorpusBuilder, corpus_statistics
from repro.data.pairs import build_pairs, split_tasks
from repro.eval.analysis import node_count_statistics
from repro.eval.metrics import ClassificationMetrics, classification_metrics, confusion
from repro.eval.threshold import best_threshold, sweep_thresholds


@pytest.fixture(scope="module")
def corpus():
    builder = CorpusBuilder(tiny_data_config())
    samples = builder.build(["c", "java"])
    return builder, samples


class TestCorpus:
    def test_samples_have_both_views(self, corpus):
        _, samples = corpus
        s = samples[0]
        assert s.source_graph.num_nodes > 0
        assert s.decompiled_graph.num_nodes > 0
        assert len(s.binary_bytes) > 0

    def test_statistics_shape(self, corpus):
        builder, _ = corpus
        stats = corpus_statistics(builder)
        assert set(stats) == {"c", "java"}
        for lang in stats:
            assert stats[lang]["sources"] >= stats[lang]["llvm_ir"]
            assert stats[lang]["llvm_ir"] == stats[lang]["binaries"]

    def test_compile_failures_modelled(self):
        cfg = DataConfig(num_tasks=8, variants=3, seed=0, compile_failure_pct=30)
        builder = CorpusBuilder(cfg)
        builder.build(["c"])
        stats = corpus_statistics(builder)
        assert stats["c"]["llvm_ir"] < stats["c"]["sources"]

    def test_zero_failure_keeps_all(self):
        cfg = DataConfig(num_tasks=4, variants=2, seed=0, compile_failure_pct=0)
        builder = CorpusBuilder(cfg)
        builder.build(["c"])
        stats = corpus_statistics(builder)
        assert stats["c"]["llvm_ir"] == stats["c"]["sources"]

    def test_decompiled_ir_larger(self, corpus):
        _, samples = corpus
        bigger = sum(
            1 for s in samples if s.decompiled_graph.num_nodes > s.source_graph.num_nodes
        )
        assert bigger / len(samples) > 0.9

    def test_determinism(self):
        cfg = tiny_data_config()
        a = CorpusBuilder(cfg).build(["c"])
        b = CorpusBuilder(cfg).build(["c"])
        assert [s.identifier for s in a] == [s.identifier for s in b]
        assert a[0].binary_bytes == b[0].binary_bytes


class TestPairs:
    def test_split_proportions(self):
        tasks = [f"t{i}" for i in range(10)]
        tr, va, te = split_tasks(tasks, seed=0)
        assert len(tr) == 6 and len(va) == 2 and len(te) == 2
        assert set(tr) | set(va) | set(te) == set(tasks)

    def test_split_deterministic(self):
        tasks = [f"t{i}" for i in range(10)]
        assert split_tasks(tasks, 1) == split_tasks(tasks, 1)
        assert split_tasks(tasks, 1) != split_tasks(tasks, 2)

    def test_balanced_labels(self, corpus):
        _, samples = corpus
        c = [s for s in samples if s.language == "c"]
        j = [s for s in samples if s.language == "java"]
        ds = build_pairs(c, j, "binary", "source", seed=0, max_pairs_per_task=6)
        labels = [p.label for p in ds.train]
        assert labels.count(1) == labels.count(0) > 0

    def test_positive_pairs_same_task(self, corpus):
        _, samples = corpus
        c = [s for s in samples if s.language == "c"]
        j = [s for s in samples if s.language == "java"]
        ds = build_pairs(c, j, "binary", "source", seed=0)
        for p in ds.train + ds.valid + ds.test:
            if p.label == 1:
                assert p.task_left == p.task_right
            else:
                assert p.task_left != p.task_right

    def test_no_task_leakage_between_splits(self, corpus):
        _, samples = corpus
        c = [s for s in samples if s.language == "c"]
        ds = build_pairs(c, c, "binary", "source", seed=0)
        train_tasks = {p.task_left for p in ds.train} | {p.task_right for p in ds.train}
        test_tasks = {p.task_left for p in ds.test if p.label == 1}
        assert not (train_tasks & test_tasks)

    def test_binary_side_uses_decompiled_graph(self, corpus):
        _, samples = corpus
        c = [s for s in samples if s.language == "c"]
        ds = build_pairs(c, c, "binary", "source", seed=0)
        pos = next(p for p in ds.train if p.label == 1)
        # decompiled graphs contain recovered register variables (i64)
        assert any("i64" in t for t in pos.left.node_full_texts)


class TestMetrics:
    def test_confusion_counts(self):
        labels = np.array([1, 1, 0, 0, 1])
        preds = np.array([1, 0, 1, 0, 1])
        assert confusion(labels, preds) == (2, 1, 1, 1)

    def test_perfect_prediction(self):
        m = classification_metrics(np.array([1, 0, 1]), np.array([1, 0, 1]))
        assert m.precision == m.recall == m.f1 == m.accuracy == 1.0

    def test_all_negative_prediction(self):
        m = classification_metrics(np.array([1, 1]), np.array([0, 0]))
        assert m.precision == 0.0 and m.recall == 0.0 and m.f1 == 0.0

    def test_f1_is_harmonic_mean(self):
        m = ClassificationMetrics(tp=3, tn=0, fp=1, fn=3)
        p, r = 3 / 4, 3 / 6
        assert m.f1 == pytest.approx(2 * p * r / (p + r))

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            confusion(np.array([1]), np.array([1, 0]))

    def test_sweep_monotone_recall(self):
        rng = np.random.default_rng(0)
        labels = rng.integers(0, 2, 100)
        scores = np.clip(labels * 0.5 + rng.random(100) * 0.5, 0, 1)
        points = sweep_thresholds(labels, scores)
        recalls = [p.recall for p in points]
        assert all(a >= b - 1e-9 for a, b in zip(recalls, recalls[1:]))

    def test_best_threshold_range(self):
        labels = np.array([1, 1, 0, 0])
        scores = np.array([0.9, 0.8, 0.2, 0.1])
        th = best_threshold(labels, scores)
        assert 0.2 < th <= 0.8


class TestAnalysis:
    def test_node_stats_cells(self, corpus):
        _, samples = corpus
        c = [s for s in samples if s.language == "c"]
        ds = build_pairs(c, c, "binary", "source", seed=0)
        pairs = ds.train
        labels = np.array([p.label for p in pairs])
        preds = labels.copy()  # perfect predictions: only TP and TN cells
        stats = node_count_statistics(pairs, labels, preds)
        assert stats["true_positive"]["count"] == int(labels.sum())
        assert stats["false_positive"]["count"] == 0
        assert stats["true_positive"]["mean_nodes"] > 0
