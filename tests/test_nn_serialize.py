"""Tests for checkpoint serialization (repro.nn.serialize) and the
Module buffer registry it depends on."""

import numpy as np
import pytest

import repro.nn as nn
from repro.nn.module import Module, Parameter
from repro.nn.serialize import config_to_meta, load_state, read_meta, save_state
from repro.nn.tensor import Tensor


class _Net(Module):
    def __init__(self):
        super().__init__()
        self.lin = nn.Linear(3, 2, rng=np.random.default_rng(0))
        self.norm = nn.BatchNorm1d(2)

    def forward(self, x):
        return self.norm(self.lin(x))


class TestStateDictBuffers:
    def test_state_dict_includes_buffers(self):
        net = _Net()
        state = net.state_dict()
        assert "buffer:norm.running_mean" in state
        assert "buffer:norm.running_var" in state

    def test_buffer_reassignment_stays_tracked(self):
        bn = nn.BatchNorm1d(2)
        bn.train()
        bn(Tensor(np.random.default_rng(0).normal(5, 1, (16, 2)).astype(np.float32)))
        state = bn.state_dict()
        assert state["buffer:running_mean"].max() > 0.1  # updated stats captured

    def test_load_restores_buffers(self):
        a, b = _Net(), _Net()
        a.train()
        a(Tensor(np.random.default_rng(1).normal(3, 2, (32, 3)).astype(np.float32)))
        b.load_state_dict(a.state_dict())
        np.testing.assert_allclose(b.norm.running_mean, a.norm.running_mean)
        np.testing.assert_allclose(b.norm.running_var, a.norm.running_var)

    def test_load_rejects_missing_keys(self):
        net = _Net()
        state = net.state_dict()
        del state["lin.weight"]
        with pytest.raises(KeyError):
            _Net().load_state_dict(state)

    def test_load_rejects_wrong_shape(self):
        net = _Net()
        state = net.state_dict()
        state["lin.weight"] = np.zeros((5, 5), dtype=np.float32)
        with pytest.raises(ValueError):
            _Net().load_state_dict(state)


class TestNpzRoundTrip:
    def test_roundtrip_with_meta(self, tmp_path):
        net = _Net()
        path = tmp_path / "ckpt.npz"
        save_state(net, path, meta={"kind": "test", "dims": [3, 2]})
        other = _Net()
        other.lin.weight.data += 1.0  # perturb
        meta = load_state(other, path)
        assert meta == {"kind": "test", "dims": [3, 2]}
        np.testing.assert_allclose(other.lin.weight.data, net.lin.weight.data)

    def test_roundtrip_without_meta(self, tmp_path):
        net = _Net()
        path = tmp_path / "ckpt2.npz"
        save_state(net, path)
        assert read_meta(path) is None
        assert load_state(_Net(), path) is None

    def test_read_meta_only(self, tmp_path):
        net = _Net()
        path = tmp_path / "ckpt3.npz"
        save_state(net, path, meta={"epoch": 7})
        assert read_meta(path)["epoch"] == 7

    def test_extension_appended_on_load(self, tmp_path):
        net = _Net()
        base = tmp_path / "model"
        save_state(net, base, meta={"x": 1})  # numpy appends .npz
        assert read_meta(base)["x"] == 1

    def test_wrong_architecture_never_half_loads(self, tmp_path):
        net = _Net()
        path = tmp_path / "ckpt4.npz"
        save_state(net, path)

        class _Other(Module):
            def __init__(self):
                super().__init__()
                self.w = Parameter(np.zeros(4, dtype=np.float32), name="w")

        with pytest.raises(KeyError):
            load_state(_Other(), path)

    def test_config_to_meta_roundtrips_dataclass(self):
        from repro.config import cpu_config

        meta = config_to_meta(cpu_config())
        assert meta["hidden_dim"] == 48
        assert isinstance(meta, dict)
