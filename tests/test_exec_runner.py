"""Tests for the experiment runner + trained-model store (repro.exec)."""

import numpy as np
import pytest

from repro.config import cpu_config, scaled, tiny_data_config
from repro.core.trainer import MatchTrainer
from repro.eval.experiments import build_crosslang_dataset, run_graphbinmatch
from repro.exec import (
    ExperimentSpec,
    ModelStore,
    dataset_fingerprint,
    experiment_fingerprint,
    run_experiment,
    run_grid,
)


@pytest.fixture(scope="module")
def dataset():
    ds, _ = build_crosslang_dataset(tiny_data_config(seed=5), ["c"], ["java"])
    return ds


@pytest.fixture(scope="module")
def other_dataset():
    ds, _ = build_crosslang_dataset(tiny_data_config(seed=6), ["c"], ["java"])
    return ds


def tiny_config(**overrides):
    return scaled(cpu_config(seed=5), epochs=2, **overrides)


class TestFingerprints:
    def test_dataset_fingerprint_stable(self, dataset):
        assert dataset_fingerprint(dataset) == dataset_fingerprint(dataset)

    def test_dataset_fingerprint_distinguishes_content(self, dataset, other_dataset):
        assert dataset_fingerprint(dataset) != dataset_fingerprint(other_dataset)

    def test_dataset_fingerprint_sees_labels(self, dataset):
        fp = dataset_fingerprint(dataset)
        flipped, _ = build_crosslang_dataset(tiny_data_config(seed=5), ["c"], ["java"])
        flipped.test[0].label = 1 - flipped.test[0].label
        assert dataset_fingerprint(flipped) != fp

    def test_experiment_fingerprint_sees_config(self):
        base = ExperimentSpec("a", tiny_config())
        other = ExperimentSpec("b", tiny_config(learning_rate=1e-4))
        assert experiment_fingerprint(base, "d" * 8) != experiment_fingerprint(
            other, "d" * 8
        )

    def test_name_is_cosmetic(self):
        a = ExperimentSpec("table-iv", tiny_config())
        b = ExperimentSpec("ablation", tiny_config())
        assert experiment_fingerprint(a, "d" * 8) == experiment_fingerprint(b, "d" * 8)

    def test_early_stopping_is_part_of_the_key(self):
        a = ExperimentSpec("a", tiny_config(), early_stopping=True)
        b = ExperimentSpec("a", tiny_config(), early_stopping=False)
        assert experiment_fingerprint(a, "d" * 8) != experiment_fingerprint(b, "d" * 8)


class TestModelStore:
    def test_roundtrip(self, dataset, tmp_path):
        trainer = MatchTrainer(tiny_config())
        trainer.train(dataset)
        store = ModelStore(tmp_path)
        store.put("ab" * 32, trainer, {"name": "roundtrip", "valid_f1": 0.5})
        loaded = ModelStore(tmp_path).get("ab" * 32)
        assert loaded is not None
        np.testing.assert_array_equal(
            loaded.predict(dataset.test), trainer.predict(dataset.test)
        )

    def test_absent_entry_is_a_miss(self, tmp_path):
        store = ModelStore(tmp_path)
        assert store.get("cd" * 32) is None
        assert store.misses == 1 and store.hits == 0

    def test_corrupt_entry_is_a_miss(self, dataset, tmp_path):
        trainer = MatchTrainer(tiny_config())
        trainer.train(dataset)
        store = ModelStore(tmp_path)
        path = store.put("ab" * 32, trainer, {})
        path.write_bytes(b"not an npz")
        assert ModelStore(tmp_path).get("ab" * 32) is None

    def test_fingerprint_mismatch_is_a_miss(self, dataset, tmp_path):
        trainer = MatchTrainer(tiny_config())
        trainer.train(dataset)
        store = ModelStore(tmp_path)
        path = store.path_for("ef" * 32)
        path.parent.mkdir(parents=True, exist_ok=True)
        # Entry stored under a different fingerprint than its metadata says.
        store.put("ab" * 32, trainer, {})
        store.path_for("ab" * 32).rename(path)
        assert ModelStore(tmp_path).get("ef" * 32) is None

    def test_entries_reports_metadata(self, dataset, tmp_path):
        trainer = MatchTrainer(tiny_config())
        trainer.train(dataset)
        store = ModelStore(tmp_path)
        store.put("ab" * 32, trainer, {"name": "listed", "valid_f1": 0.75})
        entries = ModelStore(tmp_path).entries()
        assert len(entries) == 1
        assert entries[0]["name"] == "listed"
        assert entries[0]["fingerprint"] == "ab" * 32
        assert entries[0]["bytes"] > 0


class TestRunExperiment:
    def test_cold_then_warm_identical_rows(self, dataset, tmp_path):
        spec = ExperimentSpec("cold-warm", tiny_config())
        cold = run_experiment(spec, dataset, store=ModelStore(tmp_path))
        assert not cold.from_cache
        assert cold.report is not None
        warm = run_experiment(spec, dataset, store=ModelStore(tmp_path))
        assert warm.from_cache
        assert warm.fingerprint == cold.fingerprint
        assert warm.report_meta["name"] == "cold-warm"
        cold_row = run_graphbinmatch(dataset, spec.config, trainer=cold.trainer).row
        warm_row = run_graphbinmatch(dataset, spec.config, trainer=warm.trainer).row
        assert cold_row == warm_row

    def test_no_store_always_trains(self, dataset):
        spec = ExperimentSpec("storeless", tiny_config())
        run = run_experiment(spec, dataset)
        assert not run.from_cache and run.report is not None

    def test_config_change_misses(self, dataset, tmp_path):
        store = ModelStore(tmp_path)
        run_experiment(ExperimentSpec("a", tiny_config()), dataset, store=store)
        second = run_experiment(
            ExperimentSpec("a", tiny_config(learning_rate=1e-4)), dataset, store=store
        )
        assert not second.from_cache


class TestRunGrid:
    def test_serial_matches_parallel_bitwise(self, dataset, tmp_path):
        jobs = [
            (ExperimentSpec(f"grid-{seed}", tiny_config(seed=seed)), dataset)
            for seed in (1, 2, 3)
        ]
        serial = run_grid(jobs, store=ModelStore(tmp_path / "a"))
        parallel = run_grid(jobs, store=ModelStore(tmp_path / "b"), workers=2)
        assert [r.fingerprint for r in serial] == [r.fingerprint for r in parallel]
        for s_run, p_run in zip(serial, parallel):
            s_state = s_run.trainer.model.state_dict()
            p_state = p_run.trainer.model.state_dict()
            for key in s_state:
                np.testing.assert_array_equal(s_state[key], p_state[key])

    def test_parallel_serves_from_store_afterwards(self, dataset, tmp_path):
        jobs = [
            (ExperimentSpec(f"grid-{seed}", tiny_config(seed=seed)), dataset)
            for seed in (1, 2)
        ]
        store = ModelStore(tmp_path)
        first = run_grid(jobs, store=store, workers=2)
        assert all(r.from_cache for r in first)  # workers filled the store
        again = run_grid(jobs, store=ModelStore(tmp_path))
        assert all(r.from_cache for r in again)

    def test_duplicate_specs_train_once(self, dataset, tmp_path):
        spec = ExperimentSpec("dup", tiny_config())
        store = ModelStore(tmp_path)
        runs = run_grid([(spec, dataset), (spec, dataset)], store=store, workers=2)
        assert len(runs) == 2
        assert runs[0].fingerprint == runs[1].fingerprint
        assert len(store) == 1

    def test_parallel_without_store_uses_scratch(self, dataset):
        jobs = [
            (ExperimentSpec(f"tmp-{seed}", tiny_config(seed=seed)), dataset)
            for seed in (1, 2)
        ]
        runs = run_grid(jobs, workers=2)
        assert len(runs) == 2
        assert all(r.trainer.model is not None for r in runs)

    def test_negative_workers_rejected(self, dataset):
        with pytest.raises(ValueError, match="workers"):
            run_grid([], workers=-1)


class TestStoreTempFiles:
    def test_leftover_writer_temp_is_invisible(self, dataset, tmp_path):
        trainer = MatchTrainer(tiny_config())
        trainer.train(dataset)
        store = ModelStore(tmp_path)
        store.put("ab" * 32, trainer, {"name": "real"})
        # A SIGKILLed writer leaves its dot-prefixed temp behind.
        shard = store.path_for("ab" * 32).parent
        (shard / f".{'cd' * 32}.12345.tmp.npz").write_bytes(b"partial")
        fresh = ModelStore(tmp_path)
        assert len(fresh) == 1
        entries = fresh.entries()
        assert [e["name"] for e in entries] == ["real"]
        assert fresh.size_bytes() == store.path_for("ab" * 32).stat().st_size
