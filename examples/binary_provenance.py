"""Binary provenance: which source file does this binary come from?

The paper's §I motivates matching by retrieval: given a binary (e.g. a
suspicious executable), rank a corpus of candidate *source* files — across
programming languages — by matching score.  This example trains a small
GraphBinMatch, saves/loads a checkpoint (the workflow a security team would
script), and reports ranked-retrieval quality.

Run:  python examples/binary_provenance.py

Set ``REPRO_SMOKE=1`` for the CI-sized run (smaller corpus, fewer epochs).
"""

import os

import numpy as np

from repro.config import DataConfig, cpu_config, scaled
from repro.core.trainer import MatchTrainer
from repro.data.corpus import CorpusBuilder
from repro.eval.experiments import build_crosslang_dataset
from repro.eval.retrieval import evaluate_retrieval, retrieval_corpus_from_samples

SEED = 3
SMOKE = os.environ.get("REPRO_SMOKE") == "1"
TRAIN_TASKS = 6 if SMOKE else 12
CORPUS_TASKS = 6 if SMOKE else 10
EPOCHS = 2 if SMOKE else 10


def main() -> None:
    # 1. Train a compact matcher on cross-language binary<->source pairs.
    data_cfg = DataConfig(
        num_tasks=TRAIN_TASKS, variants=2, seed=SEED, max_pairs_per_task=4
    )
    dataset, _ = build_crosslang_dataset(data_cfg, ["c", "cpp"], ["java"])
    print(f"training pairs: {len(dataset.train)}")
    trainer = MatchTrainer(scaled(cpu_config(seed=SEED), epochs=EPOCHS))
    report = trainer.train(dataset, early_stopping=True)
    print(f"best epoch {report.best_epoch}, valid F1 {report.valid_f1:.2f}")

    # 2. Checkpoint round-trip — the artifact a deployment would ship.
    trainer.save("/tmp/provenance_model.npz")
    matcher = MatchTrainer.load("/tmp/provenance_model.npz")
    print("checkpoint reloaded")

    # 3. Fresh corpus: binaries we "found", sources we index.
    corpus_cfg = DataConfig(num_tasks=CORPUS_TASKS, variants=1, seed=SEED + 1)
    samples = CorpusBuilder(corpus_cfg).build(["c", "java"])
    binaries = retrieval_corpus_from_samples(
        [s for s in samples if s.language == "c"][:6], "binary"
    )
    sources = retrieval_corpus_from_samples(
        [s for s in samples if s.language == "java"], "source"
    )
    print(f"\nranking {len(sources)} Java sources for {len(binaries)} C binaries")

    result = evaluate_retrieval(matcher.predict, binaries, sources, ks=(1, 3, 5))
    print(f"MRR   = {result.mrr:.3f}")
    for k in (1, 3, 5):
        print(f"Hit@{k} = {result.hit_at[k]:.3f}")
    print(f"MAP   = {result.mean_average_precision:.3f}")

    # 4. Show one concrete ranking.
    from repro.eval.retrieval import rank_candidates

    ranked = rank_candidates(matcher.predict, binaries[0], sources)
    print(f"\nquery binary implements: {ranked.query_task}")
    print("top-5 retrieved sources:")
    for i, task in enumerate(ranked.ranked_tasks[:5], 1):
        marker = "<-- match" if task == ranked.query_task else ""
        print(f"  {i}. {task} {marker}")


if __name__ == "__main__":
    main()
