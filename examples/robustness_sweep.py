"""Robustness sweep: how does matching survive binary transformations?

The paper's tables score matching on clean compiler output.  This example
asks the adversarial question a provenance tool actually faces: if the
binary was padded with dead code, register-renamed, instruction-
substituted or re-laid-out, does retrieval still find its source?

It trains a compact matcher, indexes a clean source corpus once (sharded,
persisted), then sweeps transform chains × intensities over the query
binaries — re-embedding only the transformed queries — and prints the
robustness matrix.  A second sweep over the same cache directories shows
the warm path: cached clean embeddings and artifact-store hits make it
several times faster.

    python examples/robustness_sweep.py

Set ``REPRO_SMOKE=1`` for the CI-sized run (same code path, smaller
corpus and fewer epochs).
"""

import os
import tempfile
import time
from pathlib import Path

from repro.artifacts import ArtifactStore
from repro.config import DataConfig, cpu_config, scaled
from repro.core.trainer import MatchTrainer
from repro.eval.experiments import build_crosslang_dataset
from repro.eval.robustness import RobustnessHarness

SMOKE = os.environ.get("REPRO_SMOKE") == "1"
SEED = 11
TRAIN_TASKS = 6 if SMOKE else 12
CORPUS_TASKS = 6 if SMOKE else 14
EPOCHS = 2 if SMOKE else 12
CHAINS = ("deadcode", "regrename", "deadcode+regrename") if SMOKE else (
    "deadcode", "instsub", "blockreorder", "regrename", "pad", "inline",
    "deadcode+regrename+pad",
)
INTENSITIES = (1.0,) if SMOKE else (0.25, 0.5, 1.0)


def main() -> None:
    # 1. Train a compact matcher on clean cross-language pairs.
    data_cfg = DataConfig(
        num_tasks=TRAIN_TASKS, variants=2, seed=SEED, max_pairs_per_task=4
    )
    dataset, _ = build_crosslang_dataset(data_cfg, ["c"], ["java"])
    trainer = MatchTrainer(
        scaled(cpu_config(seed=SEED), epochs=EPOCHS, hidden_dim=16,
               embed_dim=16, num_layers=1)
    )
    report = trainer.train(dataset, early_stopping=True)
    print(f"trained: best epoch {report.best_epoch}, valid F1 {report.valid_f1:.2f}")

    with tempfile.TemporaryDirectory(prefix="repro-robustness-") as tmp:
        store_dir = Path(tmp) / "artifacts"   # compiled variants (clean + transformed)
        index_dir = Path(tmp) / "clean-index"  # sharded clean embeddings

        def harness() -> RobustnessHarness:
            return RobustnessHarness(
                trainer,
                DataConfig(num_tasks=CORPUS_TASKS, variants=1, seed=SEED + 1),
                source_languages=["java"],
                query_language="c",
                store=ArtifactStore(store_dir),
                index_root=index_dir,
                transform_seed=SEED,
            )

        # 2. Cold sweep: compiles the corpus, encodes the clean index,
        #    compiles + embeds every transformed query variant.
        t0 = time.time()
        sweep = harness().evaluate(CHAINS, INTENSITIES)
        cold_s = time.time() - t0
        print(f"\ncold sweep: {len(sweep.cells)} cells in {cold_s:.1f}s")
        print(sweep.render())

        # 3. Warm sweep: same directories, fresh harness — clean
        #    embeddings load from the sharded index, every compilation
        #    hits the artifact store; only query graphs are re-embedded.
        t0 = time.time()
        warm = harness().evaluate(CHAINS, INTENSITIES)
        warm_s = time.time() - t0
        assert warm.matrix() == sweep.matrix(), "sweep must be deterministic"
        print(f"\nwarm sweep: {warm_s:.1f}s ({cold_s / warm_s:.1f}x faster, "
              "identical matrix)")

    # 4. Read the matrix: how much headroom does each transform leave?
    clean_mrr = sweep.clean.to_dict()["mrr"]
    print(f"\nclean MRR {clean_mrr:.3f}; per-chain retention at max intensity:")
    for cell in sweep.cells:
        if cell.chain == "clean" or cell.intensity != max(INTENSITIES):
            continue
        mrr = cell.to_dict()["mrr"]
        retention = mrr / clean_mrr if clean_mrr else float("nan")
        print(f"  {cell.chain:<24} MRR {mrr:.3f} ({retention:.0%} of clean)")


if __name__ == "__main__":
    main()
