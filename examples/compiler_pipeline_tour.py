"""A tour of the substrate: one program through every pipeline stage.

Shows what each reproduction layer produces for a single C++ program:
front-end parse, LLVM-like IR, the -O2 pipeline, machine code, VM
execution, RetDec-style decompilation, and the ProGraML-style graph.

    python examples/compiler_pipeline_tour.py
"""

from repro.binary.codegen import compile_module
from repro.binary.decompiler import decompile_bytes
from repro.binary.vm import run_binary
from repro.binary.isa import BinaryProgram
from repro.graphs.programl import build_graph
from repro.ir.lowering import lower_program
from repro.ir.passes import optimize
from repro.ir.printer import print_module
from repro.lang.minicpp import parse_minicpp

SOURCE = """\
#include <iostream>
#include <algorithm>

int best(int* a, int n) {
    std::sort(a, a + n);
    return std::max(a[n - 1], 0);
}

int main() {
    int xs[] = {9, 4, 7, 1, 8};
    std::cout << best(xs, 5) << std::endl;
    return 0;
}
"""


def main() -> None:
    print("== stage 1: front-end parse ==")
    program = parse_minicpp(SOURCE)
    program.language = "cpp"
    print(f"functions: {[f.name for f in program.functions]}")

    print("\n== stage 2: lower to IR (note the instantiated std::sort body) ==")
    module = lower_program(program, name="tour")
    ir_text = print_module(module)
    print("\n".join(ir_text.splitlines()[:20]), "\n...")
    print(f"IR size: {module.size()} instructions, "
          f"{len(module.defined_functions())} defined functions")

    print("\n== stage 3: optimize at -O2 ==")
    optimize(module, "O2")
    print(f"after O2: {module.size()} instructions")

    print("\n== stage 4: compile to machine code ==")
    binary = compile_module(module, style="clang")
    raw = binary.encode()
    print(f"binary: {len(raw)} bytes, {len(binary.instructions)} instructions, "
          f"symbols {[f.name for f in binary.functions]}")

    print("\n== stage 5: execute on the VM ==")
    output = run_binary(BinaryProgram.decode(raw))
    print(f"program output: {output}  (max element of the array)")

    print("\n== stage 6: decompile (RetDec substitute) ==")
    decompiled = decompile_bytes(raw, "tour.dec")
    print(f"decompiled IR: {decompiled.size()} instructions "
          f"(vs {module.size()} source-side — type-lossy i64 register soup)")

    print("\n== stage 7: ProGraML-style graphs ==")
    src_graph = build_graph(module)
    dec_graph = build_graph(decompiled)
    print(f"source graph:     {src_graph.num_nodes} nodes / {src_graph.num_edges} edges")
    print(f"decompiled graph: {dec_graph.num_nodes} nodes / {dec_graph.num_edges} edges")
    for rel in ("control", "data", "call"):
        print(f"  {rel}: src {src_graph.edge_count(rel)}, dec {dec_graph.edge_count(rel)}")


if __name__ == "__main__":
    main()
