"""Reverse-engineering workflow: retrieve the source for an unknown binary.

The paper's intro scenario: "when we have a binary code fragment, it would
be helpful to retrieve its similar source code".  We train a matcher, then
hand it a *stripped-context* binary (compiled from a C program it never
saw) and a shelf of candidate Java sources; the pipeline ranks candidates.

    python examples/reverse_engineering.py

Set ``REPRO_SMOKE=1`` for the CI-sized run (fewer epochs, same path).
"""

import os

from repro.config import cpu_config, scaled, tiny_data_config
from repro.core.pipeline import MatcherPipeline, compile_to_views
from repro.core.trainer import MatchTrainer
from repro.eval.experiments import build_crosslang_dataset
from repro.lang.generator import SolutionGenerator

EPOCHS = 2 if os.environ.get("REPRO_SMOKE") == "1" else 20


def main() -> None:
    print("== binary → source retrieval ==")
    dataset, _ = build_crosslang_dataset(
        tiny_data_config(), binary_langs=["c", "cpp"], source_langs=["java"]
    )
    trainer = MatchTrainer(scaled(cpu_config(), epochs=EPOCHS))
    trainer.train(dataset)
    pipe = MatcherPipeline(trainer)

    # The "unknown" binary: a fresh C implementation of gcd.
    gen = SolutionGenerator(seed=4242)
    mystery = gen.generate("gcd", 7, "c")
    views = compile_to_views(mystery.text, "c", opt_level="O1")
    print(f"mystery binary: {len(views.binary_bytes)} bytes (from {mystery.identifier})")

    # Candidate shelf: Java solutions to several tasks, gcd among them.
    candidates = []
    for task in ("gcd", "fibonacci", "sum_array", "binary_search", "collatz_steps"):
        sf = gen.generate(task, 3, "java")
        candidates.append((task, sf.text))

    ranked = pipe.rank_sources(views.binary_bytes, [(t, "java") for _, t in candidates])
    print("\nranked candidates (highest match first):")
    for rank, (idx, score) in enumerate(ranked, 1):
        print(f"  {rank}. {candidates[idx][0]:<16} score={score:.3f}")
    top_task = candidates[ranked[0][0]][0]
    print(f"\ntop retrieval: {top_task} (ground truth: gcd)")


if __name__ == "__main__":
    main()
