"""Quickstart: train GraphBinMatch on a small corpus and score a pair.

Runs the paper's whole pipeline end to end on a generated CLCDSA-like
corpus (C/C++ binaries vs Java sources), trains the scaled model, reports
test metrics, and scores one concrete binary-source pair.

    python examples/quickstart.py

Set ``REPRO_SMOKE=1`` for the CI-sized run (fewer epochs, same path).
"""

import os

import numpy as np

from repro.config import cpu_config, scaled, tiny_data_config
from repro.eval.experiments import build_crosslang_dataset, run_graphbinmatch
from repro.utils.timing import timed

EPOCHS = 2 if os.environ.get("REPRO_SMOKE") == "1" else 20


def main() -> None:
    print("== GraphBinMatch quickstart ==")
    with timed("build corpus (generate → compile → decompile → graphs)"):
        dataset, builder = build_crosslang_dataset(
            tiny_data_config(), binary_langs=["c", "cpp"], source_langs=["java"]
        )
    train, valid, test = dataset.sizes()
    print(f"pairs: train={train} valid={valid} test={test}")

    with timed("train + evaluate"):
        result = run_graphbinmatch(dataset, scaled(cpu_config(), epochs=EPOCHS))
    m = result.metrics
    print(
        f"test precision={m.precision:.2f} recall={m.recall:.2f} "
        f"f1={m.f1:.2f} accuracy={m.accuracy:.2f}"
    )

    pos = next(p for p, s in zip(dataset.test, result.scores) if p.label == 1)
    idx = dataset.test.index(pos)
    print(
        f"example positive pair ({pos.task_left}): score={result.scores[idx]:.3f} "
        f"(binary graph {pos.left.num_nodes} nodes, source graph {pos.right.num_nodes} nodes)"
    )


if __name__ == "__main__":
    main()
