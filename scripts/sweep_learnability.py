"""Learnability sweep: can GraphBinMatch separate unseen-task pairs at CPU scale?

Usage: python scripts/sweep_learnability.py <num_tasks> <epochs> <lr> [hidden] [seed]
Prints train-loss tail, valid/test metrics at 0.5 and at the calibrated threshold.
"""

import sys
import time

import numpy as np

from repro.config import DataConfig, cpu_config, scaled
from repro.core.trainer import MatchTrainer
from repro.eval.experiments import build_crosslang_dataset
from repro.eval.metrics import classification_metrics
from repro.eval.threshold import best_threshold


def main() -> None:
    num_tasks = int(sys.argv[1])
    epochs = int(sys.argv[2])
    lr = float(sys.argv[3])
    hidden = int(sys.argv[4]) if len(sys.argv) > 4 else 48
    seed = int(sys.argv[5]) if len(sys.argv) > 5 else 7

    dcfg = DataConfig(num_tasks=num_tasks, variants=2, seed=seed, max_pairs_per_task=4)
    ds, _ = build_crosslang_dataset(dcfg, ["c", "cpp"], ["java"])
    print(f"splits train/valid/test = {ds.sizes()}", flush=True)

    mcfg = scaled(cpu_config(seed=seed), epochs=epochs, learning_rate=lr, hidden_dim=hidden)
    tr = MatchTrainer(mcfg)
    t0 = time.time()
    rep = tr.train(ds)
    dt = time.time() - t0
    print(f"train {dt:.0f}s ({dt/epochs:.1f}s/epoch); loss tail "
          f"{[round(l,3) for l in rep.epoch_losses[-5:]]}", flush=True)

    vs = tr.predict(ds.valid)
    vl = np.asarray([p.label for p in ds.valid])
    ts = tr.predict(ds.test)
    tl = np.asarray([p.label for p in ds.test])
    th = best_threshold(vl, vs)
    m05 = classification_metrics(tl, ts >= 0.5)
    mth = classification_metrics(tl, ts >= th)
    print(f"valid@0.5 {classification_metrics(vl, vs >= 0.5)}")
    print(f"test@0.5  P={m05.precision:.2f} R={m05.recall:.2f} F1={m05.f1:.2f}  {m05}")
    print(f"test@cal(th={th:.2f}) P={mth.precision:.2f} R={mth.recall:.2f} F1={mth.f1:.2f}")


if __name__ == "__main__":
    main()
