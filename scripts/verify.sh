#!/usr/bin/env bash
# Repo verification: tier-1 test suite + an end-to-end smoke.
#
# The smoke exercises the full user path the README quickstart promises:
# train a tiny model, build an embedding index over a source corpus, and
# query it with a compiled binary — through the CLI, not test harnesses.
# It then runs the workload gates (training throughput, robustness,
# concurrent serving) at smoke scale, every example under REPRO_SMOKE=1,
# and the docs link check.
set -euo pipefail
cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

# The suite now starts real socket servers and worker processes; a
# deadlocked server must fail loudly, not hang CI until the job times out.
TIER1_TIMEOUT="${REPRO_VERIFY_TIMEOUT:-1800}"

# Per-test SIGALRM timeout (tests/conftest.py): one hung warm-pool worker
# fails its own test with a live traceback instead of eating the whole
# tier-1 budget.  Generous — the slowest legitimate tests train models.
TEST_TIMEOUT="${REPRO_TEST_TIMEOUT:-300}"

echo "== static lint: compileall + import-cycle + exception-hygiene checks =="
# Catches syntax errors in files no test imports, top-level import
# cycles between repro.* modules (function-local imports are exempt —
# that is the sanctioned escape hatch), and exception handlers that
# would swallow an injected fault silently (bare except, broad catches
# without a re-raise or a justifying boundary comment).
python -m compileall -q src/repro
python scripts/check_import_cycles.py
python scripts/check_exception_hygiene.py

echo "== tier-1: pytest (suite timeout ${TIER1_TIMEOUT}s, per-test ${TEST_TIMEOUT}s) =="
# --durations surfaces the slowest tests so creeping test-time regressions
# are visible in every CI log, not just when the budget finally blows.
REPRO_TEST_TIMEOUT="$TEST_TIMEOUT" \
  timeout --signal=INT "$TIER1_TIMEOUT" python -m pytest -x -q --durations=15

echo "== smoke: train -> index build -> index query =="
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT
python -m repro train --num-tasks 6 --variants 1 --epochs 2 --output "$tmp/model.npz"
python -m repro index build "$tmp/model.npz" --output "$tmp/index.npz" --num-tasks 6 --variants 1
python -m repro index query "$tmp/model.npz" "$tmp/index.npz" --task gcd --language c --top-k 3

echo "== smoke: sharded index build -> query =="
python -m repro index build "$tmp/model.npz" --output "$tmp/sharded" --num-tasks 6 --variants 1 --shard-size 2
python -m repro index query "$tmp/model.npz" "$tmp/sharded" --task gcd --language c --top-k 3

echo "== smoke: repro serve (JSON-lines stdin/stdout) =="
python - "$tmp" <<'EOF'
import base64, json, sys
from repro.core.pipeline import compile_to_views
from repro.lang.generator import SolutionGenerator
tmp = sys.argv[1]
gen = SolutionGenerator(seed=0, independent=True)
binary = gen.generate("gcd", 0, "c")
views = compile_to_views(binary.text, "c", name=binary.identifier)
source = gen.generate("sum_array", 0, "java")
with open(f"{tmp}/requests.jsonl", "w") as fh:
    fh.write(json.dumps({"id": "bin", "k": 3,
        "binary_b64": base64.b64encode(views.binary_bytes).decode()}) + "\n")
    fh.write(json.dumps({"id": "src", "k": 3,
        "source": source.text, "language": "java"}) + "\n")
EOF
python -m repro serve "$tmp/model.npz" "$tmp/sharded" --batch 2 \
  < "$tmp/requests.jsonl" > "$tmp/responses.jsonl"
python - "$tmp" <<'EOF'
import json, sys
lines = [json.loads(l) for l in open(f"{sys.argv[1]}/responses.jsonl")]
assert [l.get("id") for l in lines] == ["bin", "src"], lines
assert all(len(l["hits"]) == 3 for l in lines), lines
print("serve smoke: OK")
EOF

echo "== smoke: repro serve --socket (concurrent unix-socket service) =="
python -m repro serve "$tmp/model.npz" "$tmp/sharded" \
  --socket "unix:$tmp/serve.sock" --workers 1 --max-batch 4 --max-delay-ms 5 \
  2> "$tmp/serve-socket.log" &
serve_pid=$!
python - "$tmp" <<'EOF'
import json, socket, sys, time
tmp = sys.argv[1]
deadline = time.time() + 120
while True:  # wait for the server to bind
    try:
        s = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        s.connect(f"{tmp}/serve.sock")
        break
    except OSError:
        if time.time() > deadline:
            raise SystemExit("socket serve smoke: server never bound")
        time.sleep(0.2)
s.settimeout(120)
with open(f"{tmp}/requests.jsonl", "rb") as fh:
    s.sendall(fh.read())  # both pipelined requests at once
s.sendall(b'{"control": "stats", "id": "st"}\n')
buf = b""
while buf.count(b"\n") < 3:
    chunk = s.recv(65536)
    assert chunk, "server hung up early"
    buf += chunk
lines = [json.loads(l) for l in buf.splitlines()]
assert [l.get("id") for l in lines] == ["bin", "src", "st"], lines
assert all(len(l["hits"]) == 3 for l in lines[:2]), lines
# The snapshot is taken when the control arrives; the reader thread has
# ingested all three lines by then, but query responses may be in flight.
assert lines[2]["stats"]["requests"] == 3, lines
assert lines[2]["stats"]["workers"] == 1, lines
s.close()
print("socket serve smoke: OK")
EOF
kill -INT "$serve_pid"
if ! wait "$serve_pid"; then
  echo "verify: FAIL — socket server did not exit cleanly" >&2
  cat "$tmp/serve-socket.log" >&2
  exit 1
fi

echo "== smoke: corpus build cold -> warm artifact cache =="
python -m repro corpus build --num-tasks 4 --variants 1 --languages c,java --store "$tmp/artifacts"
warm_out="$(python -m repro corpus build --num-tasks 4 --variants 1 --languages c,java --store "$tmp/artifacts")"
echo "$warm_out"
if ! grep -q ", 0 misses" <<<"$warm_out"; then
  echo "verify: FAIL — warm corpus rebuild did not hit the artifact store" >&2
  exit 1
fi

echo "== smoke: experiment run cold -> warm model cache =="
exp_args=(--binary-langs c --source-langs java --num-tasks 6 --variants 1 --epochs 2)
python -m repro experiment run "${exp_args[@]}" --store "$tmp/models"
warm_exp="$(python -m repro experiment run "${exp_args[@]}" --store "$tmp/models")"
echo "$warm_exp"
if ! grep -q "cache hit" <<<"$warm_exp"; then
  echo "verify: FAIL — warm experiment run did not hit the model store" >&2
  exit 1
fi
python -m repro experiment list "$tmp/models"

echo "== smoke: robustness sweep (transform cache + clean-index reuse) =="
rob_out="$(python -m repro robustness "$tmp/model.npz" --num-tasks 6 \
  --transforms deadcode,regrename --intensities 1 \
  --store "$tmp/rob-artifacts" --index "$tmp/rob-index" --json "$tmp/matrix.json")"
echo "$rob_out"
# Warm rerun must hit the artifact store for every compilation.
warm_rob="$(python -m repro robustness "$tmp/model.npz" --num-tasks 6 \
  --transforms deadcode,regrename --intensities 1 \
  --store "$tmp/rob-artifacts" --index "$tmp/rob-index")"
if ! grep -q ", 0 misses" <<<"$warm_rob"; then
  echo "verify: FAIL — warm robustness rerun did not hit the artifact store" >&2
  exit 1
fi
if [ ! -s "$tmp/matrix.json" ]; then
  echo "verify: FAIL — robustness --json wrote no matrix" >&2
  exit 1
fi

echo "== bench: training-throughput gates (smoke scale) =="
# Gates: warm experiment ≥5x with identical rows, parallel grid identical
# to serial, fused optimizer parity + step speedup.  Also refreshes the
# perf record at benchmarks/perf/BENCH_train.json.
REPRO_BENCH_SMOKE=1 python -m pytest benchmarks/bench_train.py -x -q
if [ ! -f benchmarks/perf/BENCH_train.json ]; then
  echo "verify: FAIL — bench_train did not write benchmarks/perf/BENCH_train.json" >&2
  exit 1
fi

echo "== bench: robustness gates (smoke scale) =="
# Gates: every transform bit-deterministic under a fixed seed, clean
# baseline equal to the direct retrieval sweep, warm sweep ≥3x via the
# cached clean embeddings + artifact store.  Writes BENCH_robustness.json.
REPRO_BENCH_SMOKE=1 python -m pytest benchmarks/bench_robustness.py -x -q
if [ ! -f benchmarks/perf/BENCH_robustness.json ]; then
  echo "verify: FAIL — bench_robustness did not write benchmarks/perf/BENCH_robustness.json" >&2
  exit 1
fi

echo "== bench: concurrent serving gates (smoke scale) =="
# Gates: 8 pipelined socket clients ≥3x one closed-loop client, hit lists
# bit-identical to the sequential stdin path, p50/p99 recorded.  Timeout
# so a wedged server/worker fails the gate rather than hanging it.
REPRO_BENCH_SMOKE=1 timeout --signal=INT 900 \
  python -m pytest benchmarks/bench_concurrent_serve.py -x -q
if [ ! -f benchmarks/perf/BENCH_concurrent_serve.json ]; then
  echo "verify: FAIL — bench_concurrent_serve did not write benchmarks/perf/BENCH_concurrent_serve.json" >&2
  exit 1
fi

echo "== bench: fault-tolerance gates (smoke scale) =="
# Gates: every injected fault kind ends in a clean descriptive error, an
# observable miss, or a bit-identical result (never wrong, never hung);
# a build crash-killed mid-commit recovers byte-identical; fsck repairs
# bit-identical; a corrupt shard degrades service instead of downing it;
# a hung worker turns into a retryable deadline error.  Timeout so a
# missed deadline fails the gate rather than wedging it.
REPRO_BENCH_SMOKE=1 timeout --signal=INT 900 \
  python -m pytest benchmarks/bench_faults.py -x -q
if [ ! -f benchmarks/perf/BENCH_faults.json ]; then
  echo "verify: FAIL — bench_faults did not write benchmarks/perf/BENCH_faults.json" >&2
  exit 1
fi

echo "== bench: index-scale gates (smoke scale) =="
# Gates: the ANN recall@10-vs-speedup frontier has a point at or above the
# recall floor that clears the speedup floor, recall is monotone in
# nprobe, and the quantized mmap path's dequantized working set stays a
# small fraction of the flat float32 matrix.  Writes BENCH_index_scale.json.
REPRO_BENCH_SMOKE=1 timeout --signal=INT 900 \
  python -m pytest benchmarks/bench_index_scale.py -x -q
if [ ! -f benchmarks/perf/BENCH_index_scale.json ]; then
  echo "verify: FAIL — bench_index_scale did not write benchmarks/perf/BENCH_index_scale.json" >&2
  exit 1
fi

echo "== bench: dataflow-analysis gates (smoke scale) =="
# Gates: analysis-derived dataflow/callsummary edges bit-identical across
# fresh processes, verify-after-every-pass corpus sweep with zero error
# findings, dataflow-on retrieval no worse than dataflow-off on clean
# queries.  Writes BENCH_dataflow.json.
REPRO_BENCH_SMOKE=1 timeout --signal=INT 900 \
  python -m pytest benchmarks/bench_dataflow.py -x -q
if [ ! -f benchmarks/perf/BENCH_dataflow.json ]; then
  echo "verify: FAIL — bench_dataflow did not write benchmarks/perf/BENCH_dataflow.json" >&2
  exit 1
fi

echo "== examples: every examples/*.py must exit 0 under smoke settings =="
for example in examples/*.py; do
  echo "-- $example"
  REPRO_SMOKE=1 python "$example" > /dev/null
done

echo "== docs: link check (no dangling files or anchors) =="
python scripts/check_doc_links.py

echo "verify: OK"
