#!/usr/bin/env bash
# Repo verification: tier-1 test suite + an end-to-end smoke.
#
# The smoke exercises the full user path the README quickstart promises:
# train a tiny model, build an embedding index over a source corpus, and
# query it with a compiled binary — through the CLI, not test harnesses.
# It then runs the workload gates (training throughput, robustness) at
# smoke scale, every example under REPRO_SMOKE=1, and the docs link check.
set -euo pipefail
cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== tier-1: pytest =="
python -m pytest -x -q

echo "== smoke: train -> index build -> index query =="
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT
python -m repro train --num-tasks 6 --variants 1 --epochs 2 --output "$tmp/model.npz"
python -m repro index build "$tmp/model.npz" --output "$tmp/index.npz" --num-tasks 6 --variants 1
python -m repro index query "$tmp/model.npz" "$tmp/index.npz" --task gcd --language c --top-k 3

echo "== smoke: sharded index build -> query =="
python -m repro index build "$tmp/model.npz" --output "$tmp/sharded" --num-tasks 6 --variants 1 --shard-size 2
python -m repro index query "$tmp/model.npz" "$tmp/sharded" --task gcd --language c --top-k 3

echo "== smoke: repro serve (JSON-lines stdin/stdout) =="
python - "$tmp" <<'EOF'
import base64, json, sys
from repro.core.pipeline import compile_to_views
from repro.lang.generator import SolutionGenerator
tmp = sys.argv[1]
gen = SolutionGenerator(seed=0, independent=True)
binary = gen.generate("gcd", 0, "c")
views = compile_to_views(binary.text, "c", name=binary.identifier)
source = gen.generate("sum_array", 0, "java")
with open(f"{tmp}/requests.jsonl", "w") as fh:
    fh.write(json.dumps({"id": "bin", "k": 3,
        "binary_b64": base64.b64encode(views.binary_bytes).decode()}) + "\n")
    fh.write(json.dumps({"id": "src", "k": 3,
        "source": source.text, "language": "java"}) + "\n")
EOF
python -m repro serve "$tmp/model.npz" "$tmp/sharded" --batch 2 \
  < "$tmp/requests.jsonl" > "$tmp/responses.jsonl"
python - "$tmp" <<'EOF'
import json, sys
lines = [json.loads(l) for l in open(f"{sys.argv[1]}/responses.jsonl")]
assert [l.get("id") for l in lines] == ["bin", "src"], lines
assert all(len(l["hits"]) == 3 for l in lines), lines
print("serve smoke: OK")
EOF

echo "== smoke: corpus build cold -> warm artifact cache =="
python -m repro corpus build --num-tasks 4 --variants 1 --languages c,java --store "$tmp/artifacts"
warm_out="$(python -m repro corpus build --num-tasks 4 --variants 1 --languages c,java --store "$tmp/artifacts")"
echo "$warm_out"
if ! grep -q ", 0 misses" <<<"$warm_out"; then
  echo "verify: FAIL — warm corpus rebuild did not hit the artifact store" >&2
  exit 1
fi

echo "== smoke: experiment run cold -> warm model cache =="
exp_args=(--binary-langs c --source-langs java --num-tasks 6 --variants 1 --epochs 2)
python -m repro experiment run "${exp_args[@]}" --store "$tmp/models"
warm_exp="$(python -m repro experiment run "${exp_args[@]}" --store "$tmp/models")"
echo "$warm_exp"
if ! grep -q "cache hit" <<<"$warm_exp"; then
  echo "verify: FAIL — warm experiment run did not hit the model store" >&2
  exit 1
fi
python -m repro experiment list "$tmp/models"

echo "== smoke: robustness sweep (transform cache + clean-index reuse) =="
rob_out="$(python -m repro robustness "$tmp/model.npz" --num-tasks 6 \
  --transforms deadcode,regrename --intensities 1 \
  --store "$tmp/rob-artifacts" --index "$tmp/rob-index" --json "$tmp/matrix.json")"
echo "$rob_out"
# Warm rerun must hit the artifact store for every compilation.
warm_rob="$(python -m repro robustness "$tmp/model.npz" --num-tasks 6 \
  --transforms deadcode,regrename --intensities 1 \
  --store "$tmp/rob-artifacts" --index "$tmp/rob-index")"
if ! grep -q ", 0 misses" <<<"$warm_rob"; then
  echo "verify: FAIL — warm robustness rerun did not hit the artifact store" >&2
  exit 1
fi
if [ ! -s "$tmp/matrix.json" ]; then
  echo "verify: FAIL — robustness --json wrote no matrix" >&2
  exit 1
fi

echo "== bench: training-throughput gates (smoke scale) =="
# Gates: warm experiment ≥5x with identical rows, parallel grid identical
# to serial, fused optimizer parity + step speedup.  Also refreshes the
# perf record at benchmarks/perf/BENCH_train.json.
REPRO_BENCH_SMOKE=1 python -m pytest benchmarks/bench_train.py -x -q
if [ ! -f benchmarks/perf/BENCH_train.json ]; then
  echo "verify: FAIL — bench_train did not write benchmarks/perf/BENCH_train.json" >&2
  exit 1
fi

echo "== bench: robustness gates (smoke scale) =="
# Gates: every transform bit-deterministic under a fixed seed, clean
# baseline equal to the direct retrieval sweep, warm sweep ≥3x via the
# cached clean embeddings + artifact store.  Writes BENCH_robustness.json.
REPRO_BENCH_SMOKE=1 python -m pytest benchmarks/bench_robustness.py -x -q
if [ ! -f benchmarks/perf/BENCH_robustness.json ]; then
  echo "verify: FAIL — bench_robustness did not write benchmarks/perf/BENCH_robustness.json" >&2
  exit 1
fi

echo "== examples: every examples/*.py must exit 0 under smoke settings =="
for example in examples/*.py; do
  echo "-- $example"
  REPRO_SMOKE=1 python "$example" > /dev/null
done

echo "== docs: link check (no dangling files or anchors) =="
python scripts/check_doc_links.py

echo "verify: OK"
