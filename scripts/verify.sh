#!/usr/bin/env bash
# Repo verification: tier-1 test suite + a ~30s end-to-end smoke.
#
# The smoke exercises the full user path the README quickstart promises:
# train a tiny model, build an embedding index over a source corpus, and
# query it with a compiled binary — through the CLI, not test harnesses.
set -euo pipefail
cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== tier-1: pytest =="
python -m pytest -x -q

echo "== smoke: train -> index build -> index query =="
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT
python -m repro train --num-tasks 6 --variants 1 --epochs 2 --output "$tmp/model.npz"
python -m repro index build "$tmp/model.npz" --output "$tmp/index.npz" --num-tasks 6 --variants 1
python -m repro index query "$tmp/model.npz" "$tmp/index.npz" --task gcd --language c --top-k 3

echo "== smoke: corpus build cold -> warm artifact cache =="
python -m repro corpus build --num-tasks 4 --variants 1 --languages c,java --store "$tmp/artifacts"
warm_out="$(python -m repro corpus build --num-tasks 4 --variants 1 --languages c,java --store "$tmp/artifacts")"
echo "$warm_out"
if ! grep -q ", 0 misses" <<<"$warm_out"; then
  echo "verify: FAIL — warm corpus rebuild did not hit the artifact store" >&2
  exit 1
fi

echo "verify: OK"
