#!/usr/bin/env python
"""Fail on import cycles between modules under ``src/repro``.

Parses every module's *top-level* imports with ``ast`` (no code is
executed) and runs Tarjan's SCC algorithm over the intra-package import
graph. Any strongly connected component with more than one module — or a
module importing itself — is a cycle and fails the check with the cycle
spelled out. Function-local imports are deliberately ignored: deferring
an import inside a function is the sanctioned way to break a genuine
layering exception, and this checker is what keeps the exceptions
deliberate.

Usage: python scripts/check_import_cycles.py [package_root]
(default: src/repro, resolved relative to the repo root).
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
PACKAGE = "repro"


def module_name(path: Path, src_root: Path) -> str:
    rel = path.relative_to(src_root).with_suffix("")
    parts = list(rel.parts)
    if parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


def top_level_imports(path: Path, current: str, modules: set[str]) -> set[str]:
    """Resolved intra-package module dependencies of one file.

    `from X import y` resolves to the submodule ``X.y`` when that is a
    module, and to ``X`` otherwise — so the package-as-namespace idiom
    (`from repro.lang import ast`) depends on ``repro.lang.ast``, not on
    the package ``__init__`` that happens to contain it.
    """
    tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))

    def resolve(name: str) -> str | None:
        if not name.startswith(PACKAGE):
            return None
        while name and name not in modules:
            name = name.rpartition(".")[0]
        return name or None

    found: set[str] = set()
    for node in tree.body:  # body only: function-local imports are exempt
        if isinstance(node, ast.Import):
            for alias in node.names:
                if (target := resolve(alias.name)) is not None:
                    found.add(target)
        elif isinstance(node, ast.ImportFrom):
            if node.level:  # relative import — resolve against `current`
                package = current if path.name == "__init__.py" else current.rpartition(".")[0]
                anchor = package.split(".")[: None if node.level == 1 else 1 - node.level]
                prefix = ".".join(anchor)
                base = f"{prefix}.{node.module}" if node.module else prefix
            elif node.module:
                base = node.module
            else:
                continue
            for alias in node.names:
                target = resolve(f"{base}.{alias.name}")
                if target is None or target == base.rpartition(".")[0]:
                    target = resolve(base)
                if target is not None:
                    found.add(target)
    return found


def build_graph(src_root: Path) -> dict[str, set[str]]:
    modules = {
        module_name(p, src_root): p
        for p in sorted(src_root.rglob("*.py"))
    }
    graph: dict[str, set[str]] = {name: set() for name in modules}
    for name, path in modules.items():
        for target in top_level_imports(path, name, set(modules)):
            if target != name:
                graph[name].add(target)
    return graph


def strongly_connected(graph: dict[str, set[str]]) -> list[list[str]]:
    index: dict[str, int] = {}
    low: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    sccs: list[list[str]] = []
    counter = 0

    def visit(root: str) -> None:
        nonlocal counter
        # Iterative Tarjan: recursion would overflow on deep chains.
        work = [(root, iter(sorted(graph[root])))]
        index[root] = low[root] = counter
        counter += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, edges = work[-1]
            advanced = False
            for nxt in edges:
                if nxt not in index:
                    index[nxt] = low[nxt] = counter
                    counter += 1
                    stack.append(nxt)
                    on_stack.add(nxt)
                    work.append((nxt, iter(sorted(graph[nxt]))))
                    advanced = True
                    break
                if nxt in on_stack:
                    low[node] = min(low[node], index[nxt])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
            if low[node] == index[node]:
                scc = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    scc.append(member)
                    if member == node:
                        break
                sccs.append(sorted(scc))

    for name in sorted(graph):
        if name not in index:
            visit(name)
    return sccs


def main(argv: list[str]) -> int:
    src_root = Path(argv[1]) if len(argv) > 1 else REPO_ROOT / "src" / PACKAGE
    src_root = src_root.resolve()
    if not src_root.is_dir():
        print(f"check_import_cycles: no such package root: {src_root}", file=sys.stderr)
        return 2
    graph = build_graph(src_root.parent)
    cycles = [
        scc for scc in strongly_connected(graph)
        if len(scc) > 1 or (len(scc) == 1 and scc[0] in graph[scc[0]])
    ]
    if cycles:
        print(f"check_import_cycles: {len(cycles)} import cycle(s):", file=sys.stderr)
        for scc in cycles:
            print("  " + " -> ".join(scc + [scc[0]]), file=sys.stderr)
        return 1
    edges = sum(len(v) for v in graph.values())
    print(f"check_import_cycles: OK ({len(graph)} modules, {edges} intra-package edges, no cycles)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
