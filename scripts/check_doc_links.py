#!/usr/bin/env python
"""Check every relative markdown link in README.md and docs/.

The docs set is cross-linked page-to-page and section-to-section; a
renamed heading or moved file silently strands readers.  This checker
fails the build on:

* links to files that do not exist (relative targets, resolved against
  the linking file's directory);
* ``#anchor`` fragments that match no heading in the target file
  (GitHub-style slugs: lowercase, punctuation stripped, spaces to
  hyphens).

External links (http/https/mailto) are out of scope — CI must not fail
on somebody else's outage.

Usage: python scripts/check_doc_links.py [root]
"""

from __future__ import annotations

import functools
import re
import sys
from pathlib import Path

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)
_SLUG_STRIP = re.compile(r"[^\w\s-]", re.UNICODE)


def github_slug(heading: str) -> str:
    """GitHub's anchor slug: lowercase, strip punctuation, spaces → '-'."""
    text = heading.strip().lower()
    text = text.replace("`", "")
    text = _SLUG_STRIP.sub("", text)
    return text.replace(" ", "-")


@functools.lru_cache(maxsize=None)
def anchors_of(path: Path) -> frozenset:
    """Heading slugs of one file, parsed once however many links point at it."""
    return frozenset(
        github_slug(m.group(1)) for m in HEADING_RE.finditer(path.read_text())
    )


def check_file(path: Path, root: Path) -> list:
    errors = []
    for match in LINK_RE.finditer(path.read_text()):
        target = match.group(1)
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        file_part, _, anchor = target.partition("#")
        dest = path if not file_part else (path.parent / file_part).resolve()
        if not dest.exists():
            errors.append(f"{path.relative_to(root)}: broken link -> {target}")
            continue
        if anchor and dest.suffix == ".md" and github_slug(anchor) not in anchors_of(dest):
            errors.append(
                f"{path.relative_to(root)}: dangling anchor -> {target}"
            )
    return errors


def main() -> int:
    root = Path(sys.argv[1] if len(sys.argv) > 1 else ".").resolve()
    files = [root / "README.md"] + sorted((root / "docs").glob("*.md"))
    errors = []
    checked = 0
    for path in files:
        if not path.exists():
            errors.append(f"missing expected file: {path.relative_to(root)}")
            continue
        checked += 1
        errors.extend(check_file(path, root))
    if errors:
        print("doc link check: FAIL", file=sys.stderr)
        for err in errors:
            print(f"  {err}", file=sys.stderr)
        return 1
    print(f"doc link check: OK ({checked} files)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
