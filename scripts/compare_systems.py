"""Run every system on one CLCDSA-style dataset and print the Table III row.

Usage: python scripts/compare_systems.py <num_tasks> <gbm_epochs> [seed]
"""

import sys
import time

import numpy as np

from repro.baselines import B2SFinder, BinPro, XLIRModel
from repro.baselines.xlir import XLIRConfig
from repro.config import DataConfig, cpu_config, scaled
from repro.core.trainer import MatchTrainer
from repro.eval.experiments import (
    build_crosslang_dataset,
    run_feature_baseline,
    run_xlir,
)
from repro.eval.metrics import classification_metrics
from repro.eval.threshold import best_threshold


def main() -> None:
    num_tasks = int(sys.argv[1])
    epochs = int(sys.argv[2])
    seed = int(sys.argv[3]) if len(sys.argv) > 3 else 7

    dcfg = DataConfig(num_tasks=num_tasks, variants=2, seed=seed, max_pairs_per_task=4)
    ds, _ = build_crosslang_dataset(dcfg, ["c", "cpp"], ["java"])
    print(f"splits {ds.sizes()}", flush=True)
    tl = np.asarray([p.label for p in ds.test])

    rows = []
    for name in ("BinPro", "B2SFinder"):
        t0 = time.time()
        res = run_feature_baseline(ds, name)
        rows.append((name, res.metrics, res.threshold, time.time() - t0))
        print(f"{name} done {time.time()-t0:.0f}s -> {res.metrics}", flush=True)

    for enc in ("lstm", "transformer"):
        t0 = time.time()
        res = run_xlir(ds, enc)
        rows.append((f"XLIR({enc})", res.metrics, res.threshold, time.time() - t0))
        print(f"XLIR({enc}) done {time.time()-t0:.0f}s -> {res.metrics}", flush=True)

    mcfg = scaled(cpu_config(seed=seed), epochs=epochs)
    tr = MatchTrainer(mcfg)
    t0 = time.time()
    tr.train(ds)
    vs = tr.predict(ds.valid)
    vl = np.asarray([p.label for p in ds.valid])
    th = best_threshold(vl, vs)
    scores = tr.predict(ds.test)
    m = classification_metrics(tl, scores >= th)
    rows.append(("GraphBinMatch", m, th, time.time() - t0))
    print(f"GraphBinMatch done {time.time()-t0:.0f}s", flush=True)

    print(f"\n{'System':<20} {'P':>5} {'R':>5} {'F1':>5} {'th':>5} {'sec':>6}")
    for name, m, th, sec in rows:
        print(f"{name:<20} {m.precision:>5.2f} {m.recall:>5.2f} {m.f1:>5.2f} "
              f"{th:>5.2f} {sec:>6.0f}")


if __name__ == "__main__":
    main()
