#!/usr/bin/env python
"""Lint the tree's exception handlers for silent-swallow patterns.

A reliability layer is only as good as its worst ``except``: a bare
``except:`` or an ``except Exception: pass`` turns an injected fault (or
a real one) into silent corruption downstream.  This checker fails the
build on:

* bare ``except:`` clauses — anywhere;
* broad catches (``Exception`` / ``BaseException``) whose body is only
  ``pass`` / ``...`` — anywhere;
* broad catches under ``src/`` that neither re-raise nor carry a comment
  justifying the boundary (worker process edges, stage rewrapping, …).
  The comment must sit on the ``except`` line or lead the handler body —
  the reviewer-visible "this swallow is deliberate" marker.

Usage: python scripts/check_exception_hygiene.py [root]
"""

from __future__ import annotations

import ast
import sys
import tokenize
from pathlib import Path

SCAN_DIRS = ("src", "scripts", "benchmarks", "tests")
STRICT_DIR = "src"  # broad catches here must re-raise or be justified
BROAD = {"Exception", "BaseException"}


def comment_lines(path: Path) -> set:
    """Line numbers carrying a ``#`` comment (the justification markers)."""
    lines = set()
    with tokenize.open(path) as fh:
        try:
            for tok in tokenize.generate_tokens(fh.readline):
                if tok.type == tokenize.COMMENT:
                    lines.add(tok.start[0])
        except tokenize.TokenizeError:
            pass  # syntax problems are compileall's job, not ours
    return lines


def is_broad(type_node) -> bool:
    """Does the handler's type expression include Exception/BaseException?"""
    if type_node is None:
        return True
    nodes = type_node.elts if isinstance(type_node, ast.Tuple) else [type_node]
    return any(isinstance(n, ast.Name) and n.id in BROAD for n in nodes)


def swallows_silently(handler: ast.ExceptHandler) -> bool:
    """Body is nothing but ``pass`` / ``...``: the fault just vanishes."""
    for stmt in handler.body:
        if isinstance(stmt, ast.Pass):
            continue
        if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant):
            continue  # `...` or a bare docstring-style literal
        return False
    return True


def reraises(handler: ast.ExceptHandler) -> bool:
    return any(isinstance(n, ast.Raise) for n in ast.walk(handler))


def check_file(path: Path, root: Path, strict: bool) -> list:
    rel = path.relative_to(root)
    tree = ast.parse(path.read_text(), filename=str(path))
    comments = None  # parsed lazily; most files have no broad handlers
    errors = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.ExceptHandler):
            continue
        where = f"{rel}:{node.lineno}"
        if node.type is None:
            errors.append(f"{where}: bare `except:` — name the exceptions")
            continue
        if not is_broad(node.type):
            continue
        if swallows_silently(node):
            errors.append(
                f"{where}: broad catch swallows silently — handle, log, or re-raise"
            )
            continue
        if strict and not reraises(node):
            if comments is None:
                comments = comment_lines(path)
            span = range(node.lineno, node.body[0].lineno + 1)
            if not any(line in comments for line in span):
                errors.append(
                    f"{where}: broad catch neither re-raises nor carries a "
                    "justifying comment at the handler"
                )
    return errors


def main() -> int:
    root = Path(sys.argv[1] if len(sys.argv) > 1 else ".").resolve()
    errors = []
    checked = 0
    for dirname in SCAN_DIRS:
        base = root / dirname
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*.py")):
            checked += 1
            errors.extend(check_file(path, root, strict=dirname == STRICT_DIR))
    if errors:
        print("exception hygiene check: FAIL", file=sys.stderr)
        for err in errors:
            print(f"  {err}", file=sys.stderr)
        return 1
    print(f"exception hygiene check: OK ({checked} files)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
