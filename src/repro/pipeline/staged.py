"""The staged compilation pipeline: one implementation of §III's Table-I chain.

Every consumer of the paper's data pipeline — the corpus builder, the
user-facing :class:`~repro.core.pipeline.MatcherPipeline`, the CLI, the
benchmark harness — used to hand-roll the same six steps.  This module is
now the single owner of that chain, decomposed into named stages:

    parse → lower → optimize → [transform] → codegen → decompile → graph

(``transform`` — the seedable augmentation stage from
:mod:`repro.transform` — only runs when a transform chain is configured;
clean compilations are byte-identical to the pre-transform pipeline.)

Each stage is individually timed (per-compile in
:attr:`CompilationResult.stage_seconds`, cumulatively in the pipeline's
:class:`~repro.utils.timing.Timer`), and a failing stage raises
:class:`StageFailure` carrying the partial result — so callers can report
exactly which artifacts exist instead of assuming all-or-nothing.

When constructed with an artifact ``store`` (see :mod:`repro.artifacts`),
:meth:`CompilationPipeline.compile` consults it before running any stage
and persists complete results after, making repeat compilations across
processes near-free.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.binary.codegen import compile_module
from repro.binary.decompiler import decompile_bytes
from repro.graphs.programl import ProgramGraph, build_graph
from repro.ir.lowering import lower_program
from repro.ir.module import Module
from repro.ir.passes import optimize
from repro.ir.verifier import verify_all
from repro.lang.minic import parse_minic
from repro.lang.minicpp import parse_minicpp
from repro.lang.minijava import parse_minijava
from repro.transform import TransformSpec, chain_id, parse_transform_chain, split_by_level
from repro.utils.timing import Timer

#: Bump when any stage's observable output changes; part of every artifact
#: key, so stale cache entries from an older pipeline never hit.
#: staged-2: the optional ``transform`` stage and transform-qualified keys.
#: staged-3: analysis-derived graph relations (``dataflow``/``callsummary``)
#: and feature-qualified keys (``ArtifactKey.graph_features``).
PIPELINE_VERSION = "staged-3"

STAGE_PARSE = "parse"
STAGE_LOWER = "lower"
STAGE_OPTIMIZE = "optimize"
STAGE_TRANSFORM = "transform"
STAGE_CODEGEN = "codegen"
STAGE_DECOMPILE = "decompile"
STAGE_GRAPH = "graph"
STAGES = (
    STAGE_PARSE,
    STAGE_LOWER,
    STAGE_OPTIMIZE,
    STAGE_CODEGEN,
    STAGE_DECOMPILE,
    STAGE_GRAPH,
)

#: Accepted spellings for a transform chain: a spec string
#: (``"deadcode@0.5~3+regrename"``), an iterable of specs, or None/"" for
#: the clean chain.
TransformChain = Union[str, Sequence[TransformSpec], None]


def normalize_transforms(transforms: TransformChain) -> Tuple[TransformSpec, ...]:
    """Coerce any accepted chain spelling to a validated spec tuple."""
    if transforms is None:
        return ()
    if isinstance(transforms, str):
        return parse_transform_chain(transforms)
    return tuple(
        s if isinstance(s, TransformSpec) else TransformSpec.parse(str(s))
        for s in transforms
    )

FRONTENDS = {"c": parse_minic, "cpp": parse_minicpp, "java": parse_minijava}


@dataclass
class CompilationResult:
    """Everything one trip through the pipeline produced.

    Field presence tracks :attr:`stages_completed`: a result rescued from a
    :class:`StageFailure` only populates the fields its completed stages
    own.  ``from_cache`` marks artifact-store hits, whose only recorded
    span is ``store.load``.
    """

    name: str
    language: str
    opt_level: str
    compiler: str
    source_text: str
    stages_completed: List[str] = field(default_factory=list)
    stage_seconds: Dict[str, float] = field(default_factory=dict)
    from_cache: bool = False
    #: Canonical spec strings of the transforms applied (empty = clean).
    transforms: List[str] = field(default_factory=list)
    program: Optional[object] = None  # lang.ast.Program; not persisted
    source_module: Optional[Module] = None
    source_graph: Optional[ProgramGraph] = None
    binary_module: Optional[Module] = None
    binary_bytes: Optional[bytes] = None
    decompiled_module: Optional[Module] = None
    decompiled_graph: Optional[ProgramGraph] = None

    @property
    def complete(self) -> bool:
        """True when every canonical stage ran.

        Membership, not list equality: transformed compilations record the
        optional ``transform`` stage between ``optimize`` and ``codegen``.
        """
        return set(STAGES) <= set(self.stages_completed)


class StageFailure(RuntimeError):
    """A pipeline stage raised (or was injected to fail).

    ``result`` is the partial :class:`CompilationResult` up to — but not
    including — the failed stage, so callers can count which artifacts
    really exist (the Table-I statistics fix).
    """

    def __init__(self, stage: str, result: CompilationResult, cause: Optional[BaseException] = None):  # noqa: D107
        detail = f": {cause}" if cause is not None else ""
        super().__init__(f"stage {stage!r} failed for {result.name!r}{detail}")
        self.stage = stage
        self.result = result


class CompilationPipeline:
    """Run the staged source→graphs chain, optionally through an artifact store.

    Parameters
    ----------
    store:
        Optional :class:`repro.artifacts.ArtifactStore`.  When set and
        :meth:`compile` is given a ``cache_key``, complete results are
        read from / written to it.
    timer:
        Shared :class:`Timer` accumulating per-stage wall clock across
        every compile this pipeline runs (one is created if omitted).
    fail_stage:
        Deterministic failure injection: every compile raises
        :class:`StageFailure` when it reaches this stage.  Models the
        paper's non-compilable submissions and backs the stage-accounting
        tests; leave ``None`` in normal use.
    transforms:
        Default transform chain (spec string or :class:`TransformSpec`
        sequence) applied by every :meth:`compile`; individual calls
        override it.  IR-level transforms run in the ``transform`` stage
        between ``optimize`` and ``codegen``; binary-level transforms
        rewrite the linked program inside ``codegen`` before encoding.
        The source-side view is never transformed — the robustness
        question is how *binaries* drift from clean sources.
    dataflow_edges:
        Emit the analysis-derived ``dataflow`` and ``callsummary`` graph
        relations (see :mod:`repro.ir.analysis`) in the ``graph`` stage.
        Off by default — the clean three-relation graphs stay
        byte-identical to earlier pipelines.  Cache keys must carry the
        matching :attr:`ArtifactKey.graph_features` qualifier.
    verify_passes:
        Debug flag: run the full IR verifier (structural + dataflow)
        after *every* optimization and transform pass, attributing any
        violation to the pass that introduced it.  ``None`` (default)
        reads the ``REPRO_VERIFY_PASSES`` environment variable.
    """

    version = PIPELINE_VERSION

    def __init__(
        self,
        store=None,
        timer: Optional[Timer] = None,
        fail_stage: Optional[str] = None,
        transforms: TransformChain = None,
        dataflow_edges: bool = False,
        verify_passes: Optional[bool] = None,
    ):  # noqa: D107
        self.store = store
        self.timer = timer or Timer()
        self.fail_stage = fail_stage
        self.transforms = normalize_transforms(transforms)
        self.dataflow_edges = dataflow_edges
        if verify_passes is None:
            verify_passes = os.environ.get("REPRO_VERIFY_PASSES", "") not in ("", "0")
        self.verify_passes = verify_passes

    @property
    def graph_features(self) -> str:
        """The :attr:`ArtifactKey.graph_features` value this pipeline produces."""
        return "dataflow" if self.dataflow_edges else ""

    @staticmethod
    def _check_language(language: str, program) -> None:
        # Raised before any stage runs: a caller naming a language we have
        # no front-end for is an API misuse (ValueError), not a pipeline
        # stage failing on valid input.
        if program is None and language not in FRONTENDS:
            raise ValueError(f"unsupported language {language!r}")

    # ------------------------------------------------------------- stages
    def _run_stage(self, stage: str, result: CompilationResult, fn: Callable[[], None]) -> None:
        if self.fail_stage == stage:
            raise StageFailure(stage, result)
        start = time.perf_counter()
        try:
            with self.timer.span(stage):
                fn()
        except StageFailure:
            raise
        except Exception as exc:  # noqa: BLE001 - rewrapped with stage context
            raise StageFailure(stage, result, exc) from exc
        result.stage_seconds[stage] = time.perf_counter() - start
        result.stages_completed.append(stage)

    def _parse(self, result: CompilationResult) -> None:
        if result.program is None:
            if result.language not in FRONTENDS:
                raise ValueError(f"unsupported language {result.language!r}")
            result.program = FRONTENDS[result.language](result.source_text)
            result.program.language = result.language

    def _lower(self, result: CompilationResult) -> None:
        # Two independent lowerings: ``optimize`` mutates in place, and the
        # source view must stay -O0 (the paper graphs unoptimized front-end
        # IR on the source side).
        result.source_module = lower_program(result.program, name=result.name)
        result.binary_module = lower_program(result.program, name=result.name + ".bin")

    def _optimize(self, result: CompilationResult) -> None:
        optimize(result.binary_module, result.opt_level, verify=self.verify_passes)

    def _transform(self, result: CompilationResult, specs: Sequence[TransformSpec]) -> None:
        # IR-level transforms only touch the *binary-side* module: the
        # source view stays clean, so robustness sweeps measure how far a
        # perturbed binary drifts from the unperturbed source corpus.
        for spec in specs:
            spec.transform.apply_ir(
                result.binary_module, spec.rng(result.name), spec.intensity
            )
            if self.verify_passes:
                verify_all(
                    result.binary_module, context=f"after transform {spec.spec!r}"
                )

    def _codegen(self, result: CompilationResult, specs: Sequence[TransformSpec] = ()) -> None:
        program = compile_module(result.binary_module, style=result.compiler)
        # Binary-level transforms rewrite the linked program before it is
        # encoded — post-link, exactly where an obfuscator would sit.
        for spec in specs:
            spec.transform.apply_binary(program, spec.rng(result.name), spec.intensity)
        result.binary_bytes = program.encode()

    def _decompile(self, result: CompilationResult) -> None:
        result.decompiled_module = decompile_bytes(
            result.binary_bytes, result.name + ".dec"
        )

    def _graph(self, result: CompilationResult) -> None:
        result.source_graph = build_graph(
            result.source_module, name=result.name, dataflow=self.dataflow_edges
        )
        result.decompiled_graph = build_graph(
            result.decompiled_module,
            name=result.name + ".dec",
            dataflow=self.dataflow_edges,
        )

    # ------------------------------------------------------------ running
    def compile(
        self,
        source_text: str,
        language: str,
        name: str = "unit",
        opt_level: str = "Oz",
        compiler: str = "clang",
        *,
        program=None,
        cache_key=None,
        cache_lookup: bool = True,
        transforms: TransformChain = None,
    ) -> CompilationResult:
        """Run every stage (or load the stored result) for one source file.

        ``program`` optionally supplies an already-parsed AST (the corpus
        generator round-trips text through the front-end anyway), making
        the parse stage a recorded no-op.  ``cache_key`` is an
        :class:`repro.artifacts.ArtifactKey`; with a ``store`` configured,
        a hit skips every stage and a completed miss is persisted.
        ``cache_lookup=False`` skips the read (callers that already probed
        the store pass this so misses are not double-counted) while still
        persisting the result.  ``transforms`` overrides the pipeline's
        default chain for this compile (pass ``()`` or ``""`` to force a
        clean compile on a transform-configured pipeline); a ``cache_key``
        must be qualified with the same chain (``ArtifactKey.transforms``)
        — a mismatch raises here, because serving a clean cached artifact
        as a transformed result (or persisting a transformed result under
        the clean key) would silently corrupt the store.
        """
        self._check_language(language, program)
        chain = self.transforms if transforms is None else normalize_transforms(transforms)
        ir_specs, binary_specs = split_by_level(chain)
        if cache_key is not None:
            key_chain = getattr(cache_key, "transforms", None)
            if key_chain is not None and key_chain != chain_id(chain):
                raise ValueError(
                    f"cache_key names transform chain {key_chain!r} but this "
                    f"compile applies {chain_id(chain)!r}; qualify the key "
                    "with the same chain"
                )
            key_features = getattr(cache_key, "graph_features", None)
            if key_features is not None and key_features != self.graph_features:
                raise ValueError(
                    f"cache_key names graph features {key_features!r} but this "
                    f"pipeline emits {self.graph_features!r}; qualify the key "
                    "with the same features"
                )
        if cache_lookup and cache_key is not None and self.store is not None:
            start = time.perf_counter()
            with self.timer.span("store.load"):
                cached = self.store.get(cache_key)
            if cached is not None:
                cached.stage_seconds = {"store.load": time.perf_counter() - start}
                cached.from_cache = True
                return cached
        result = CompilationResult(
            name=name,
            language=language,
            opt_level=opt_level,
            compiler=compiler,
            source_text=source_text,
            program=program,
            # Application order (IR-level first), matching chain_id's
            # canonical form — not necessarily the caller's spelling.
            transforms=[s.spec for s in ir_specs + binary_specs],
        )
        self._run_stage(STAGE_PARSE, result, lambda: self._parse(result))
        self._run_stage(STAGE_LOWER, result, lambda: self._lower(result))
        self._run_stage(STAGE_OPTIMIZE, result, lambda: self._optimize(result))
        if chain:
            self._run_stage(
                STAGE_TRANSFORM, result, lambda: self._transform(result, ir_specs)
            )
        self._run_stage(STAGE_CODEGEN, result, lambda: self._codegen(result, binary_specs))
        self._run_stage(STAGE_DECOMPILE, result, lambda: self._decompile(result))
        self._run_stage(STAGE_GRAPH, result, lambda: self._graph(result))
        if cache_key is not None and self.store is not None and result.complete:
            with self.timer.span("store.save"):
                self.store.put(cache_key, result)
        return result

    # --------------------------------------------------------- fast paths
    def source_graph(self, source_text: str, language: str, name: str = "unit", *, program=None) -> ProgramGraph:
        """Source text → source-IR graph, skipping the whole binary half."""
        self._check_language(language, program)
        result = CompilationResult(
            name=name,
            language=language,
            opt_level="",
            compiler="",
            source_text=source_text,
            program=program,
        )
        self._run_stage(STAGE_PARSE, result, lambda: self._parse(result))

        def lower_source_only() -> None:
            result.source_module = lower_program(result.program, name=name)

        self._run_stage(STAGE_LOWER, result, lower_source_only)

        def graph_source_only() -> None:
            result.source_graph = build_graph(
                result.source_module, name=name, dataflow=self.dataflow_edges
            )

        self._run_stage(STAGE_GRAPH, result, graph_source_only)
        return result.source_graph

    def binary_graph(self, raw: bytes, name: str = "binary") -> ProgramGraph:
        """Binary bytes → decompiled-IR graph (the pipeline's back half)."""
        with self.timer.span(STAGE_DECOMPILE):
            module = decompile_bytes(raw, name)
        with self.timer.span(STAGE_GRAPH):
            return build_graph(module, name=name, dataflow=self.dataflow_edges)
