"""``repro.pipeline`` — the staged compilation pipeline (single source of truth
for the source → IR → binary → decompiled-IR → graph chain)."""

from repro.pipeline.staged import (
    FRONTENDS,
    PIPELINE_VERSION,
    STAGE_CODEGEN,
    STAGE_DECOMPILE,
    STAGE_GRAPH,
    STAGE_LOWER,
    STAGE_OPTIMIZE,
    STAGE_PARSE,
    STAGE_TRANSFORM,
    STAGES,
    CompilationPipeline,
    CompilationResult,
    StageFailure,
    normalize_transforms,
)

__all__ = [
    "CompilationPipeline",
    "CompilationResult",
    "StageFailure",
    "PIPELINE_VERSION",
    "STAGES",
    "STAGE_PARSE",
    "STAGE_LOWER",
    "STAGE_OPTIMIZE",
    "STAGE_TRANSFORM",
    "STAGE_CODEGEN",
    "STAGE_DECOMPILE",
    "STAGE_GRAPH",
    "FRONTENDS",
    "normalize_transforms",
]
