"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``generate``   Render one solution (source text + IR + graph stats).
``train``      Build a CLCDSA-style dataset, train GraphBinMatch, save a
               checkpoint.
``evaluate``   Load a checkpoint and report P/R/F1 on a rebuilt test split.
``retrieve``   Retrieval demo: rank source candidates for binary queries.
``index``      Embedding-index retrieval: ``index build`` encodes a source
               corpus once into an ``.npz`` index; ``index query`` ranks
               the indexed sources for a binary query via the pair head.
``corpus``     Staged compilation pipeline: ``corpus build`` compiles a
               corpus (optionally into a content-addressed artifact store,
               optionally in parallel) and reports Table-I stats plus
               per-stage timing; ``corpus stats`` prints store contents.
``serve``      Long-lived retrieval service: JSON-lines requests (base64
               binary bytes or source text) on stdin, ranked hits as
               JSON-lines on stdout, batching pipelined requests through
               one warm pipeline + index.
``experiment`` Cached training runs: ``experiment run`` fingerprints a
               (config, dataset) training run and loads it from a
               content-addressed model store instead of retraining —
               ``--seeds s1,s2,…`` trains a whole seed grid, ``--workers``
               fans its cold runs over the warm worker pool;
               ``experiment list`` prints a store's entries.
``robustness`` Retrieval robustness under binary transforms: sweep
               transform chains × intensities against a clean candidate
               index and print the robustness matrix.
``analyze``    Static-analysis report for one compiled solution: def-use
               chains, per-block liveness, interprocedural call summaries
               and verifier findings (``--json`` for tooling).
``transforms`` List the registered code transforms.
``tasks``      List the task templates the generator knows.

Everything is deterministic given ``--seed``; commands print the exact
configuration they resolved so runs are reproducible from the log alone.
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from typing import List, Optional

import numpy as np


def _intensity_arg(text: str) -> float:
    """argparse type for one transform intensity: finite, in [0, 1].

    Rejecting NaN / negative / out-of-range values at the CLI boundary —
    ``float("nan")`` parses fine and would otherwise flow into every
    site-count computation as a silent no-op.
    """
    from repro.transform import TransformError, validate_intensity

    try:
        return validate_intensity(text)
    except TransformError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from None


def _intensity_list_arg(text: str) -> List[float]:
    """argparse type for a comma list of intensities."""
    values = [_intensity_arg(part) for part in text.split(",") if part.strip()]
    if not values:
        raise argparse.ArgumentTypeError("need at least one intensity")
    return values


def _chain_list_arg(text: str) -> List[str]:
    """argparse type for a comma list of ``+``-stacked transform chains.

    Each chain element is either a bare transform name (takes the sweep's
    ``--intensities`` / ``--transform-seed``) or a full
    ``name[@intensity][~seed]`` spec (pinned as written).  Validated
    against the registry here, so a typo fails with the registered names
    listed instead of surfacing mid-sweep.
    """
    from repro.transform import TransformError, parse_transform_chain

    chains = [part.strip() for part in text.split(",") if part.strip()]
    if not chains:
        raise argparse.ArgumentTypeError("need at least one transform chain")
    for chain in chains:
        try:
            parse_transform_chain(chain)
        except TransformError as exc:
            raise argparse.ArgumentTypeError(str(exc)) from None
    return chains


def _lang_list_arg(text: str) -> List[str]:
    """argparse type for a comma list of supported languages.

    A typo ('jav') or stray whitespace would otherwise survive to a raw
    KeyError deep inside the corpus generator, mid-sweep.
    """
    from repro.pipeline import FRONTENDS

    langs = [part.strip() for part in text.split(",") if part.strip()]
    if not langs:
        raise argparse.ArgumentTypeError("need at least one language")
    for lang in langs:
        if lang not in FRONTENDS:
            raise argparse.ArgumentTypeError(
                f"unknown language {lang!r}; supported: {sorted(FRONTENDS)}"
            )
    return langs


def build_parser() -> argparse.ArgumentParser:
    """The full argparse tree (exposed for tests and docs)."""
    p = argparse.ArgumentParser(
        prog="repro",
        description="GraphBinMatch reproduction: cross-language binary/source matching",
    )
    sub = p.add_subparsers(dest="command", required=True)

    g = sub.add_parser("generate", help="render one solution and show its pipeline")
    g.add_argument("task", help="task template name (see `repro tasks`)")
    g.add_argument("--language", default="c", choices=("c", "cpp", "java"))
    g.add_argument("--variant", type=int, default=0)
    g.add_argument("--seed", type=int, default=0)
    g.add_argument("--show-ir", action="store_true", help="print the lowered IR")

    t = sub.add_parser("train", help="train GraphBinMatch on a synthetic CLCDSA corpus")
    t.add_argument("--binary-langs", default="c,cpp", help="comma list, binary side")
    t.add_argument("--source-langs", default="java", help="comma list, source side")
    t.add_argument("--num-tasks", type=int, default=24)
    t.add_argument("--variants", type=int, default=2)
    t.add_argument("--epochs", type=int, default=30)
    t.add_argument("--seed", type=int, default=0)
    t.add_argument("--output", default="graphbinmatch.npz", help="checkpoint path")

    e = sub.add_parser("evaluate", help="evaluate a checkpoint on the test split")
    e.add_argument("checkpoint")
    e.add_argument("--binary-langs", default="c,cpp")
    e.add_argument("--source-langs", default="java")
    e.add_argument("--num-tasks", type=int, default=24)
    e.add_argument("--variants", type=int, default=2)
    e.add_argument("--seed", type=int, default=0)
    e.add_argument("--threshold", type=float, default=0.5)

    r = sub.add_parser("retrieve", help="rank source candidates for binary queries")
    r.add_argument("checkpoint")
    r.add_argument("--num-tasks", type=int, default=8)
    r.add_argument("--queries", type=int, default=5)
    r.add_argument("--seed", type=int, default=0)

    ix = sub.add_parser("index", help="build / query a persistent embedding index")
    ixsub = ix.add_subparsers(dest="index_command", required=True)
    ib = ixsub.add_parser("build", help="encode a source corpus into an .npz index")
    ib.add_argument("checkpoint")
    ib.add_argument("--output", default="index.npz", help="index path")
    ib.add_argument("--languages", default="java", help="comma list, source side")
    ib.add_argument("--num-tasks", type=int, default=8)
    ib.add_argument("--variants", type=int, default=1)
    ib.add_argument("--seed", type=int, default=0)
    ib.add_argument("--shard-size", type=int, default=0, metavar="N",
                    help="write a sharded index directory with N entries "
                         "per shard instead of one monolithic .npz")
    ib.add_argument("--codec", default="float32",
                    choices=("float32", "int8", "fp16"),
                    help="shard storage codec; int8/fp16 write raw "
                         "memory-mapped .npy shards (needs --shard-size)")
    ib.add_argument("--cells", type=int, default=0, metavar="K",
                    help="train a K-cell coarse quantizer for mode=ann "
                         "queries (needs --shard-size)")
    iq = ixsub.add_parser("query", help="rank indexed sources for a binary query")
    iq.add_argument("checkpoint")
    iq.add_argument("index", help=".npz index file or sharded index directory")
    iq.add_argument("--task", default="gcd", help="task to compile as the query binary")
    iq.add_argument("--language", default="c", choices=("c", "cpp", "java"))
    iq.add_argument("--variant", type=int, default=0)
    iq.add_argument("--seed", type=int, default=0)
    iq.add_argument("--top-k", type=int, default=5)
    iq.add_argument("--mode", default="exact", choices=("exact", "ann"),
                    help="ann prunes to the quantizer's best cells before "
                         "exact rescoring (index must be built with --cells)")
    iq.add_argument("--nprobe", type=int, default=8, metavar="P",
                    help="cells probed per query in ann mode")

    c = sub.add_parser("corpus", help="build / inspect compiled corpora")
    csub = c.add_subparsers(dest="corpus_command", required=True)
    cb = csub.add_parser("build", help="run the staged pipeline over a corpus")
    cb.add_argument("--languages", default="c,java", help="comma list")
    cb.add_argument("--num-tasks", type=int, default=8)
    cb.add_argument("--variants", type=int, default=2)
    cb.add_argument("--seed", type=int, default=0)
    cb.add_argument("--opt-level", default="Oz",
                    choices=("O0", "O1", "O2", "O3", "Oz"))
    cb.add_argument("--compiler", default="clang", choices=("clang", "gcc"))
    cb.add_argument("--store", default=None, metavar="DIR",
                    help="artifact store root; repeat builds load from it")
    cb.add_argument("--parallel", type=int, default=0, metavar="N",
                    help="compile cold samples with N worker processes")
    cs = csub.add_parser("stats", help="show an artifact store's contents")
    cs.add_argument("store", metavar="DIR", help="artifact store root")

    sv = sub.add_parser(
        "serve", help="serve JSON-lines retrieval requests (stdin or socket)"
    )
    sv.add_argument("checkpoint")
    sv.add_argument("index", help=".npz index file or sharded index directory")
    sv.add_argument("--batch", "--max-batch", dest="batch", type=int, default=8,
                    metavar="N",
                    help="score up to N pipelined requests per batched pass")
    sv.add_argument("--top-k", type=int, default=5,
                    help="default hit-list size (requests override with 'k')")
    sv.add_argument("--store", default=None, metavar="DIR",
                    help="artifact store root shared across requests")
    sv.add_argument("--socket", default=None, metavar="ADDR",
                    help="serve concurrent clients on a socket instead of "
                         "stdin: HOST:PORT (port 0 picks a free one) or "
                         "unix:PATH")
    sv.add_argument("--workers", type=int, default=2, metavar="N",
                    help="worker processes sharing the index (socket mode)")
    sv.add_argument("--max-delay-ms", type=float, default=10.0, metavar="MS",
                    help="micro-batch deadline: a buffered request waits at "
                         "most this long before its batch flushes")
    sv.add_argument("--queue-depth", type=int, default=64, metavar="N",
                    help="admitted-but-unanswered request bound; excess "
                         "load is shed with an 'overloaded' response")
    sv.add_argument("--mode", default="exact", choices=("exact", "ann"),
                    help="ann serves approximate top-k through the index's "
                         "coarse quantizer (built with --cells); exact is "
                         "the bit-parity reference")
    sv.add_argument("--nprobe", type=int, default=8, metavar="P",
                    help="cells probed per query in ann mode")
    sv.add_argument("--deadline-ms", type=float, default=0.0, metavar="MS",
                    help="per-request deadline (socket mode): a batch not "
                         "answered in time fails with a retryable error and "
                         "a hung worker is respawned; 0 disables")

    ex = sub.add_parser("experiment", help="fingerprinted, cached training runs")
    exsub = ex.add_subparsers(dest="experiment_command", required=True)
    xr = exsub.add_parser("run", help="train (or load) one experiment and evaluate it")
    xr.add_argument("--name", default="cli", help="display name stored with the run")
    xr.add_argument("--binary-langs", default="c,cpp", help="comma list, binary side")
    xr.add_argument("--source-langs", default="java", help="comma list, source side")
    xr.add_argument("--num-tasks", type=int, default=12)
    xr.add_argument("--variants", type=int, default=2)
    xr.add_argument("--epochs", type=int, default=12)
    xr.add_argument("--seed", type=int, default=0)
    xr.add_argument("--seeds", default=None, metavar="S1,S2,…",
                    help="comma list of model seeds: trains the whole grid "
                         "(one run per seed) instead of a single --seed run")
    xr.add_argument("--workers", type=int, default=0, metavar="N",
                    help="fan a --seeds grid's cold trainings over N warm "
                         "pool workers (0/1 = serial; results identical)")
    xr.add_argument("--store", default=os.environ.get("REPRO_MODEL_CACHE") or None,
                    metavar="DIR",
                    help="model store root (default: $REPRO_MODEL_CACHE); "
                         "omit to always train")
    xl = exsub.add_parser("list", help="show a model store's experiments")
    xl.add_argument("store", metavar="DIR", help="model store root")

    rb = sub.add_parser(
        "robustness", help="retrieval robustness under binary transforms"
    )
    rb.add_argument("checkpoint")
    rb.add_argument("--transforms", type=_chain_list_arg,
                    default=None, metavar="CHAINS",
                    help="comma list of transform chains; '+' stacks, and "
                         "an element written as name[@intensity][~seed] is "
                         "pinned instead of swept (default: every "
                         "registered transform plus deadcode+regrename)")
    rb.add_argument("--intensities", type=_intensity_list_arg,
                    default=None, metavar="LIST",
                    help="comma list of intensities in [0, 1] "
                         "(default: 0.5,1)")
    rb.add_argument("--source-langs", type=_lang_list_arg, default=["java"],
                    help="comma list, candidate side")
    rb.add_argument("--query-lang", default="c", choices=("c", "cpp", "java"))
    rb.add_argument("--num-tasks", type=int, default=8)
    rb.add_argument("--variants", type=int, default=1)
    rb.add_argument("--seed", type=int, default=0)
    rb.add_argument("--transform-seed", type=int, default=0,
                    help="seed for every transform spec in the sweep")
    rb.add_argument("--opt-level", default="Oz",
                    choices=("O0", "O1", "O2", "O3", "Oz"))
    rb.add_argument("--store", default=None, metavar="DIR",
                    help="artifact store root; transformed variants are "
                         "cached under transform-qualified keys")
    rb.add_argument("--index", default=None, metavar="DIR",
                    help="sharded clean-index directory; reused (cached "
                         "clean embeddings) when it already exists")
    rb.add_argument("--json", default=None, metavar="PATH",
                    help="also write the robustness matrix as JSON")
    rb.add_argument("--mode", default="exact", choices=("exact", "ann"),
                    help="score every cell through the clean index's "
                         "coarse quantizer instead of exactly (needs "
                         "--index for the persisted quantizer)")
    rb.add_argument("--nprobe", type=int, default=8, metavar="P",
                    help="cells probed per query in ann mode")
    rb.add_argument("--cells", type=int, default=0, metavar="K",
                    help="quantizer cells to train when the clean index "
                         "is built here (0 = sqrt of corpus size)")

    an = sub.add_parser(
        "analyze",
        help="static-analysis report for one compiled solution",
        description="Lower + optimize one generated solution, then dump "
        "def-use chains, per-block liveness, interprocedural call summaries "
        "and verifier findings from repro.ir.analysis.",
    )
    an.add_argument("task", help="task template name (see `repro tasks`)")
    an.add_argument("--language", default="c", choices=("c", "cpp", "java"))
    an.add_argument("--variant", type=int, default=0)
    an.add_argument("--seed", type=int, default=0)
    an.add_argument("--opt-level", default="Oz", choices=("O0", "O1", "O2", "O3", "Oz"))
    an.add_argument("--function", default=None, metavar="NAME",
                    help="restrict the per-function sections to one function")
    an.add_argument("--json", action="store_true",
                    help="machine-readable report on stdout")

    fs = sub.add_parser(
        "fsck",
        help="scan a store or index for corruption; quarantine and repair",
        description="Classify every entry of an artifact store, model "
        "store or sharded index as ok / corrupt / orphaned-tmp, checking "
        "recorded sha256 checksums where present.  --quarantine moves "
        "corrupt entries aside and deletes writer residue; --repair "
        "additionally re-derives corrupt artifact-store entries through "
        "the content-addressed pipeline (bit-identical to the lost "
        "entry).  Exits 0 when the target is clean or fully healed.",
    )
    fs.add_argument("path", help="store root or index directory to scan")
    fs.add_argument(
        "--kind",
        default="auto",
        choices=("auto", "artifacts", "models", "index"),
        help="what lives at PATH (default: detect from its contents)",
    )
    fs.add_argument(
        "--quarantine",
        action="store_true",
        help="move corrupt entries to quarantine/ and delete orphaned temps",
    )
    fs.add_argument(
        "--repair",
        action="store_true",
        help="quarantine, then re-derive corrupt artifact entries",
    )
    fs.add_argument("--json", action="store_true", help="full report on stdout")

    sub.add_parser("transforms", help="list registered code transforms")
    sub.add_parser("tasks", help="list available task templates")
    return p


def _data_config(args, max_pairs: int = 4):
    from repro.config import DataConfig

    return DataConfig(
        num_tasks=args.num_tasks,
        variants=args.variants,
        seed=args.seed,
        max_pairs_per_task=max_pairs,
    )


def cmd_generate(args) -> int:
    """Render a solution and walk it through the full pipeline."""
    from repro.core.pipeline import compile_to_views
    from repro.lang.generator import SolutionGenerator

    gen = SolutionGenerator(seed=args.seed, independent=True)
    sf = gen.generate(args.task, args.variant, args.language)
    print(f"// {sf.identifier}")
    print(sf.text)
    views = compile_to_views(sf.text, sf.language, name=sf.identifier)
    print(f"\n# source graph: {views.source_graph.num_nodes} nodes, "
          f"{views.source_graph.num_edges} edges")
    print(f"# binary: {len(views.binary_bytes)} bytes")
    print(f"# decompiled graph: {views.decompiled_graph.num_nodes} nodes, "
          f"{views.decompiled_graph.num_edges} edges")
    if args.show_ir:
        from repro.ir.lowering import lower_program
        from repro.ir.printer import print_module

        print("\n; ---- front-end IR ----")
        print(print_module(lower_program(sf.program, name=sf.identifier)))
    return 0


def cmd_train(args) -> int:
    """Train on a synthetic cross-language corpus and save a checkpoint."""
    from repro.config import cpu_config, scaled
    from repro.core.trainer import MatchTrainer
    from repro.eval.experiments import build_crosslang_dataset

    dataset, _ = build_crosslang_dataset(
        _data_config(args),
        args.binary_langs.split(","),
        args.source_langs.split(","),
    )
    tr, va, te = dataset.sizes()
    print(f"dataset: train={tr} valid={va} test={te}")
    config = scaled(cpu_config(seed=args.seed), epochs=args.epochs)
    trainer = MatchTrainer(config)
    t0 = time.time()
    report = trainer.train(dataset, early_stopping=True)
    print(f"trained {args.epochs} epochs in {time.time() - t0:.0f}s; "
          f"best epoch {report.best_epoch} valid F1 {report.valid_f1:.2f}")
    trainer.save(args.output)
    print(f"checkpoint -> {args.output}")
    return 0


def cmd_evaluate(args) -> int:
    """Evaluate a checkpoint against the (re-derived) test split."""
    from repro.core.trainer import MatchTrainer
    from repro.eval.experiments import build_crosslang_dataset
    from repro.eval.metrics import classification_metrics

    trainer = MatchTrainer.load(args.checkpoint)
    dataset, _ = build_crosslang_dataset(
        _data_config(args),
        args.binary_langs.split(","),
        args.source_langs.split(","),
    )
    scores = trainer.predict(dataset.test)
    labels = np.asarray([p.label for p in dataset.test])
    m = classification_metrics(labels, scores >= args.threshold)
    print(f"test pairs: {len(labels)}  threshold: {args.threshold}")
    print(f"precision={m.precision:.3f} recall={m.recall:.3f} f1={m.f1:.3f} "
          f"accuracy={m.accuracy:.3f}")
    return 0


def cmd_retrieve(args) -> int:
    """Retrieval demo: binary queries against a source corpus."""
    from repro.config import DataConfig
    from repro.core.trainer import MatchTrainer
    from repro.data.corpus import CorpusBuilder
    from repro.eval.retrieval import evaluate_retrieval, retrieval_corpus_from_samples

    trainer = MatchTrainer.load(args.checkpoint)
    cfg = DataConfig(num_tasks=args.num_tasks, variants=1, seed=args.seed)
    samples = CorpusBuilder(cfg).build(["c", "java"])
    queries = retrieval_corpus_from_samples(
        [s for s in samples if s.language == "c"][: args.queries], "binary"
    )
    candidates = retrieval_corpus_from_samples(
        [s for s in samples if s.language == "java"], "source"
    )
    # Passing the trainer itself (not trainer.predict) takes the
    # encode-once fast path: O(Q+C) encoder forwards instead of O(Q×C).
    res = evaluate_retrieval(trainer, queries, candidates)
    print(f"queries: {res.num_queries}  candidates: {len(candidates)}")
    print(f"MRR={res.mrr:.3f}  Hit@1={res.hit_at[1]:.3f}  "
          f"Hit@5={res.hit_at[5]:.3f}  MAP={res.mean_average_precision:.3f}")
    return 0


def cmd_index(args) -> int:
    """Dispatch ``index build`` / ``index query``."""
    return _INDEX_COMMANDS[args.index_command](args)


def cmd_index_build(args) -> int:
    """Encode every source graph of a generated corpus into one index."""
    from repro.config import DataConfig
    from repro.core.trainer import MatchTrainer
    from repro.data.corpus import CorpusBuilder
    from repro.index import EmbeddingIndex, ShardedEmbeddingIndex

    if (args.codec != "float32" or args.cells) and not args.shard_size:
        print(
            "error: --codec/--cells apply to sharded indexes only; "
            "add --shard-size N",
            file=sys.stderr,
        )
        return 2
    trainer = MatchTrainer.load(args.checkpoint)
    cfg = DataConfig(num_tasks=args.num_tasks, variants=args.variants, seed=args.seed)
    samples = CorpusBuilder(cfg).build(args.languages.split(","))
    index = EmbeddingIndex(trainer)
    t0 = time.time()
    index.add(
        [s.source_graph for s in samples],
        metas=[
            {"id": s.identifier, "task": s.task, "language": s.language}
            for s in samples
        ],
    )
    if args.shard_size:
        # Any non-zero value reaches from_index, so a negative size errors
        # loudly instead of silently writing a monolithic file.  overwrite:
        # rebuilds replace the old shard set, like the monolithic path.
        sharded = ShardedEmbeddingIndex.from_index(
            index,
            args.output,
            args.shard_size,
            overwrite=True,
            codec=args.codec,
            cells=args.cells,
            quantizer_seed=args.seed,
        )
        written = (
            f"{args.output} ({sharded.num_shards} shards, codec={args.codec}"
            + (f", {args.cells} cells)" if args.cells else ")")
        )
    else:
        written = index.save(args.output)
    print(f"indexed {len(index)} source graphs in {time.time() - t0:.1f}s "
          f"({index.cache_misses} encoded, {index.cache_hits} cache hits)")
    print(f"index -> {written}")
    return 0


def cmd_index_query(args) -> int:
    """Compile one solution to a binary and rank the indexed sources."""
    from repro.core.pipeline import compile_to_views
    from repro.core.trainer import MatchTrainer
    from repro.index import open_index
    from repro.lang.generator import SolutionGenerator

    trainer = MatchTrainer.load(args.checkpoint)
    index = open_index(args.index, trainer)
    gen = SolutionGenerator(seed=args.seed, independent=True)
    sf = gen.generate(args.task, args.variant, args.language)
    views = compile_to_views(sf.text, sf.language, name=sf.identifier)
    print(f"query: {sf.identifier} ({len(views.binary_bytes)} byte binary, "
          f"{views.decompiled_graph.num_nodes} node decompiled graph)")
    hits = index.topk(
        views.decompiled_graph, k=args.top_k, mode=args.mode, nprobe=args.nprobe
    )
    for rank, hit in enumerate(hits, 1):
        label = hit.meta.get("id", hit.key[:12])
        marker = " *" if hit.meta.get("task") == args.task else ""
        print(f"{rank:>3}. {hit.score:.4f}  {label}{marker}")
    return 0


def cmd_corpus(args) -> int:
    """Dispatch ``corpus build`` / ``corpus stats``."""
    return _CORPUS_COMMANDS[args.corpus_command](args)


def cmd_corpus_build(args) -> int:
    """Run the staged pipeline over a generated corpus and report stats."""
    from repro.artifacts import ArtifactStore
    from repro.config import DataConfig
    from repro.data.corpus import CorpusBuilder, corpus_statistics

    languages = args.languages.split(",")
    cfg = DataConfig(
        num_tasks=args.num_tasks,
        variants=args.variants,
        seed=args.seed,
        opt_level=args.opt_level,
        compiler=args.compiler,
    )
    store = ArtifactStore(args.store) if args.store else None
    builder = CorpusBuilder(cfg, store=store)
    print(
        f"corpus: tasks={args.num_tasks} variants={args.variants} "
        f"languages={','.join(languages)} opt={args.opt_level} "
        f"compiler={args.compiler} seed={args.seed}"
    )
    t0 = time.time()
    if args.parallel > 1:
        samples = builder.build_parallel(languages, workers=args.parallel)
        mode = f"parallel x{args.parallel}"
    else:
        samples = builder.build(languages)
        mode = "serial"
    elapsed = time.time() - t0
    print(f"built {len(samples)} samples in {elapsed:.2f}s ({mode})")
    print("\nTable-I statistics (per language):")
    print(f"{'lang':<6} {'sources':>8} {'llvm_ir':>8} {'binaries':>9} {'decompiled':>11}")
    for lang, st in sorted(corpus_statistics(builder).items()):
        print(
            f"{lang:<6} {st['sources']:>8} {st['llvm_ir']:>8} "
            f"{st['binaries']:>9} {st['decompiled']:>11}"
        )
    if store is not None:
        s = store.stats()
        print(
            f"\nartifact store: {s['hits']} hits, {s['misses']} misses, "
            f"{s['entries']} entries, {s['bytes'] / 1024:.0f} KiB at {s['root']}"
        )
    print("\nper-stage wall clock:")
    print(builder.timer.report())
    return 0


def cmd_corpus_stats(args) -> int:
    """Print an artifact store's footprint."""
    from repro.artifacts import ArtifactStore

    store = ArtifactStore(args.store)
    s = store.stats()
    print(f"artifact store at {s['root']}")
    print(f"entries: {s['entries']}")
    print(f"size:    {s['bytes'] / 1024:.0f} KiB")
    return 0


def cmd_serve(args) -> int:
    """Serve JSON-lines retrieval requests: stdin until EOF, or a socket."""
    from repro.artifacts import ArtifactStore
    from repro.core.trainer import MatchTrainer
    from repro.index import open_index
    from repro.serve import RetrievalServer

    if args.socket is not None:
        return _serve_socket(args)
    trainer = MatchTrainer.load(args.checkpoint)
    index = open_index(args.index, trainer)
    store = ArtifactStore(args.store) if args.store else None
    server = RetrievalServer(
        trainer,
        index,
        batch_size=args.batch,
        default_k=args.top_k,
        store=store,
        mode=args.mode,
        nprobe=args.nprobe,
    )
    # Status goes to stderr: stdout is the JSON-lines response channel.
    shards = getattr(index, "num_shards", None)
    print(
        f"serving {len(index)} entries"
        + (f" across {shards} shards" if shards is not None else "")
        + f" (batch={args.batch}, top-k={args.top_k}, mode={args.mode})",
        file=sys.stderr,
    )
    stats = server.serve(sys.stdin, sys.stdout)
    print(
        f"served {stats.requests} requests in {stats.batches} batches "
        f"({stats.errors} errors)",
        file=sys.stderr,
    )
    return 0


def _serve_socket(args) -> int:
    """Run the concurrent socket service until interrupted.

    ``SIGHUP`` hot-swaps the index (re-reads the manifest at the served
    path) without dropping in-flight queries; so does a
    ``{"control": "reload"}`` request on any connection.
    """
    import signal
    import threading

    from repro.serve import ServerConfig, create_server

    if not os.path.exists(args.checkpoint):
        print(f"serve: no checkpoint at {args.checkpoint}", file=sys.stderr)
        return 1
    addr = args.socket
    config = dict(
        checkpoint=args.checkpoint,
        index_path=args.index,
        workers=args.workers,
        max_batch=args.batch,
        max_delay_ms=args.max_delay_ms,
        queue_depth=args.queue_depth,
        default_k=args.top_k,
        mode=args.mode,
        nprobe=args.nprobe,
        store_root=args.store,
        batch_timeout_s=args.deadline_ms / 1000.0 if args.deadline_ms > 0 else None,
    )
    if addr.startswith("unix:"):
        config["unix_socket"] = addr[len("unix:"):]
    else:
        host, _, port = addr.rpartition(":")
        if not host or not port.isdigit():
            print(f"serve: --socket wants HOST:PORT or unix:PATH, got {addr!r}",
                  file=sys.stderr)
            return 1
        config["host"], config["port"] = host, int(port)
    server = create_server(ServerConfig(**config))
    stop = threading.Event()
    if hasattr(signal, "SIGHUP"):
        signal.signal(signal.SIGHUP, lambda *_: server.reload_index())
    for sig in (signal.SIGINT, signal.SIGTERM):
        signal.signal(sig, lambda *_: stop.set())
    server.start()
    bound = server.address
    shown = bound if isinstance(bound, str) else f"{bound[0]}:{bound[1]}"
    # Status goes to stderr, like stdin mode: parseable by wrapper scripts.
    print(
        f"serving on {shown} (workers={args.workers}, max-batch={args.batch}, "
        f"max-delay={args.max_delay_ms:g}ms, queue-depth={args.queue_depth}, "
        f"top-k={args.top_k}, mode={args.mode})",
        file=sys.stderr,
        flush=True,
    )
    try:
        stop.wait()
    finally:
        server.close()
        snap = server.stats_snapshot()
        print(
            f"served {snap['responses']} responses in {snap['batches']} batches "
            f"({snap['errors']} errors, {snap['shed']} shed, "
            f"{snap['worker_crashes']} worker crashes)",
            file=sys.stderr,
        )
    return 0


def cmd_experiment(args) -> int:
    """Dispatch ``experiment run`` / ``experiment list``."""
    return _EXPERIMENT_COMMANDS[args.experiment_command](args)


def cmd_experiment_run(args) -> int:
    """Train one experiment — or a seed grid — and evaluate each run."""
    from repro.config import cpu_config, scaled
    from repro.eval.experiments import build_crosslang_dataset, run_graphbinmatch
    from repro.exec import ExperimentSpec, ModelStore, run_experiment, run_grid

    dataset, _ = build_crosslang_dataset(
        _data_config(args),
        args.binary_langs.split(","),
        args.source_langs.split(","),
    )
    tr, va, te = dataset.sizes()
    print(f"dataset: train={tr} valid={va} test={te}")
    store = ModelStore(args.store) if args.store else None
    seeds = (
        [int(s) for s in args.seeds.split(",") if s.strip()]
        if args.seeds
        else [args.seed]
    )
    jobs = []
    for seed in seeds:
        config = scaled(cpu_config(seed=seed), epochs=args.epochs)
        name = args.name if len(seeds) == 1 else f"{args.name}-s{seed}"
        jobs.append((ExperimentSpec(name, config), dataset))
    if len(jobs) == 1 and args.workers <= 1:
        runs = [run_experiment(jobs[0][0], dataset, store=store)]
    else:
        runs = run_grid(jobs, store=store, workers=args.workers)
    for run in runs:
        source = "cache hit" if run.from_cache else "trained"
        print(f"experiment {run.fingerprint[:16]}: {source} in {run.seconds:.2f}s"
              + (f" (store: {store.root})" if store else " (no store)"))
        result = run_graphbinmatch(dataset, run.spec.config, trainer=run.trainer)
        m = result.metrics
        print(f"test [{run.spec.name}]: precision={m.precision:.3f} "
              f"recall={m.recall:.3f} f1={m.f1:.3f} "
              f"(threshold {result.threshold:.2f})")
    return 0


def cmd_experiment_list(args) -> int:
    """Print every experiment stored in a model store."""
    from repro.exec import ModelStore

    store = ModelStore(args.store)
    entries = store.entries()
    print(f"model store at {store.root}: {len(entries)} experiments")
    for e in entries:
        fp = e.get("fingerprint", "?")[:16]
        name = e.get("name", "?")
        epochs = e.get("epochs", "?")
        f1 = e.get("valid_f1")
        f1_s = f"{f1:.3f}" if isinstance(f1, (int, float)) else "?"
        secs = e.get("train_seconds")
        secs_s = f"{secs:.1f}s" if isinstance(secs, (int, float)) else "?"
        print(f"{fp}  {name:<20} epochs={epochs:<4} valid_f1={f1_s} "
              f"train={secs_s} {e['bytes'] / 1024:.0f} KiB")
    return 0


def cmd_robustness(args) -> int:
    """Sweep transform chains against a clean index and print the matrix."""
    import json

    from repro.artifacts import ArtifactStore
    from repro.config import DataConfig
    from repro.core.trainer import MatchTrainer
    from repro.eval.robustness import (
        DEFAULT_CHAINS,
        DEFAULT_INTENSITIES,
        RobustnessHarness,
    )

    chains = list(args.transforms) if args.transforms else list(DEFAULT_CHAINS)
    intensities = (
        list(args.intensities) if args.intensities else list(DEFAULT_INTENSITIES)
    )
    trainer = MatchTrainer.load(args.checkpoint)
    cfg = DataConfig(
        num_tasks=args.num_tasks,
        variants=args.variants,
        seed=args.seed,
        opt_level=args.opt_level,
    )
    harness = RobustnessHarness(
        trainer,
        cfg,
        source_languages=args.source_langs,
        query_language=args.query_lang,
        store=ArtifactStore(args.store) if args.store else None,
        index_root=args.index,
        transform_seed=args.transform_seed,
        mode=args.mode,
        nprobe=args.nprobe,
        quantizer_cells=args.cells,
    )
    print(
        f"robustness: tasks={args.num_tasks} variants={args.variants} "
        f"candidates={','.join(args.source_langs)} queries={args.query_lang} "
        f"opt={args.opt_level} seed={args.seed} "
        f"chains={','.join(chains)} "
        f"intensities={','.join(f'{i:g}' for i in intensities)}"
    )
    t0 = time.time()
    report = harness.evaluate(chains, intensities)
    print(f"swept {len(report.cells)} cells in {time.time() - t0:.1f}s\n")
    print(report.render())
    if args.store:
        s = harness.store.stats()
        print(f"\nartifact store: {s['hits']} hits, {s['misses']} misses")
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(report.matrix(), fh, indent=2, sort_keys=True)
        print(f"matrix -> {args.json}")
    return 0


def _analyze_function_report(fn) -> dict:
    """Def-use chains + per-block liveness for one defined function."""
    from repro.ir.analysis import DefUseChains, liveness

    chains = DefUseChains.build(fn)
    analysis, result = liveness(fn)
    # Liveness facts are uid ints / ("arg", i) tokens; spell them the way
    # the printer does so the report reads like the IR dump.
    spelling = {("arg", a.index): a.short() for a in fn.args}
    for instr in fn.instructions():
        spelling[instr.uid] = instr.short()
    defuse = []
    for value in chains.definitions():
        uses = chains.users(value)
        if not uses:
            continue
        defuse.append({
            "def": value.short(),
            "uses": [
                {"user": u.user.short(), "opcode": u.user.opcode, "position": u.position}
                for u in uses
            ],
        })
    blocks = [
        {
            "label": blk.label,
            "live_in": [spelling.get(t, repr(t)) for t in analysis.live_in(result, blk)],
            "live_out": [spelling.get(t, repr(t)) for t in analysis.live_out(result, blk)],
        }
        for blk in fn.blocks
    ]
    return {
        "name": fn.name,
        "num_blocks": len(fn.blocks),
        "cross_block_edges": len(chains.cross_block_pairs()),
        "defuse": defuse,
        "liveness": blocks,
    }


def cmd_analyze(args) -> int:
    """Dump dataflow analyses + verifier findings for one compiled task."""
    import json

    from repro.ir.analysis import CallGraph, analyze_module
    from repro.ir.lowering import lower_program
    from repro.ir.passes.pipeline import optimize
    from repro.lang.generator import SolutionGenerator

    gen = SolutionGenerator(seed=args.seed, independent=True)
    sf = gen.generate(args.task, args.variant, args.language)
    module = lower_program(sf.program, name=sf.identifier)
    optimize(module, args.opt_level)

    functions = [
        fn for fn in module.defined_functions()
        if args.function is None or fn.name == args.function
    ]
    if args.function is not None and not functions:
        have = ", ".join(fn.name for fn in module.defined_functions())
        print(f"error: no defined function {args.function!r}; have: {have}",
              file=sys.stderr)
        return 1

    summaries = CallGraph(module).summaries()
    findings = analyze_module(module)
    report = {
        "module": sf.identifier,
        "opt_level": args.opt_level,
        "functions": [_analyze_function_report(fn) for fn in functions],
        "summaries": {
            name: {
                "defined": s.defined,
                "pure": s.pure,
                "reads_memory": s.reads_memory,
                "writes_memory": s.writes_memory,
                "calls_external": s.calls_external,
                "may_call": sorted(s.may_call),
                "size": s.size,
            }
            for name, s in sorted(summaries.items())
        },
        "findings": [
            {
                "severity": f.severity,
                "kind": f.kind,
                "function": f.function,
                "block": f.block,
                "instruction": f.instruction,
                "message": f.message,
            }
            for f in findings
        ],
    }
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=False))
        return 0

    print(f"# {sf.identifier} @ {args.opt_level}")
    for fr in report["functions"]:
        print(f"\n@{fr['name']}: {fr['num_blocks']} blocks, "
              f"{fr['cross_block_edges']} cross-block def-use edges")
        for entry in fr["defuse"]:
            uses = ", ".join(
                f"{u['user']}({u['opcode']})#{u['position']}" for u in entry["uses"]
            )
            print(f"  {entry['def']} -> {uses}")
        for blk in fr["liveness"]:
            print(f"  {blk['label']}: live-in [{', '.join(blk['live_in'])}] "
                  f"live-out [{', '.join(blk['live_out'])}]")
    print("\n# call summaries")
    for name, s in sorted(summaries.items()):
        print(f"  {s.describe()}")
    print(f"\n# verifier findings: {len(findings)}")
    for f in findings:
        print(f"  {f.render()}")
    return 0


def cmd_transforms(_args) -> int:
    """List registered transforms (name, level, description)."""
    from repro.transform import TRANSFORM_REGISTRY

    for name in sorted(TRANSFORM_REGISTRY):
        t = TRANSFORM_REGISTRY[name]
        print(f"{name:<14} {t.level:<7} {t.description}")
    return 0


def cmd_tasks(_args) -> int:
    """List task templates."""
    from repro.lang.tasks import TASK_REGISTRY

    for name in sorted(TASK_REGISTRY):
        print(f"{name:<22} {TASK_REGISTRY[name].description}")
    return 0


def cmd_fsck(args) -> int:
    """Scan a store/index; exit 0 when clean (or fully healed)."""
    import json

    from repro.fsck import fsck

    try:
        report = fsck(
            args.path,
            kind=args.kind,
            quarantine=args.quarantine,
            repair=args.repair,
        )
    except ValueError as exc:
        print(f"fsck: {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(report, indent=2))
    else:
        print(f"fsck {report['kind']} at {report['path']}")
        for entry in report["entries"]:
            if entry["status"] == "ok":
                continue
            line = f"  {entry['status']:<13} {entry['file']}"
            if entry.get("action"):
                line += f"  [{entry['action']}]"
            if entry.get("detail"):
                line += f"  — {entry['detail']}"
            print(line)
        counts = report["counts"]
        print(
            f"  {counts['ok']} ok, {counts['corrupt']} corrupt, "
            f"{counts['orphaned-tmp']} orphaned-tmp"
            + ("" if report["clean"] else "  (problems remain)")
        )
    return 0 if report["clean"] else 1


_COMMANDS = {
    "generate": cmd_generate,
    "train": cmd_train,
    "evaluate": cmd_evaluate,
    "retrieve": cmd_retrieve,
    "index": cmd_index,
    "corpus": cmd_corpus,
    "serve": cmd_serve,
    "experiment": cmd_experiment,
    "robustness": cmd_robustness,
    "analyze": cmd_analyze,
    "fsck": cmd_fsck,
    "transforms": cmd_transforms,
    "tasks": cmd_tasks,
}

_EXPERIMENT_COMMANDS = {
    "run": cmd_experiment_run,
    "list": cmd_experiment_list,
}

_INDEX_COMMANDS = {
    "build": cmd_index_build,
    "query": cmd_index_query,
}

_CORPUS_COMMANDS = {
    "build": cmd_corpus_build,
    "stats": cmd_corpus_stats,
}


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
