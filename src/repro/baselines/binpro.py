"""BinPro reproduction: static code properties + bipartite matching.

Miyani et al. (2017) extract code properties from binary and source with
static analysis and match them with a bipartite assignment.  Here the
properties are opcode-class histograms, constants, and call fan-out per
*instruction-chunk*; chunks from the two sides are aligned with
``scipy.optimize.linear_sum_assignment`` (the Hungarian algorithm BinPro
uses) and the normalized assignment cost becomes the similarity score.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np
from scipy.optimize import linear_sum_assignment

from repro.data.pairs import MatchingPair
from repro.graphs.programl import NODE_INSTRUCTION, ProgramGraph

_OP_CLASSES = {
    "arith": {"add", "sub", "mul", "sdiv", "srem", "and", "or", "xor", "shl", "ashr"},
    "memory": {"load", "store", "alloca", "gep"},
    "control": {"br", "condbr", "ret", "phi", "unreachable"},
    "compare": {"icmp"},
    "call": {"call"},
}


def _chunk_features(graph: ProgramGraph, chunk: int = 24) -> np.ndarray:
    """Feature vectors for consecutive instruction chunks (pseudo-functions)."""
    opcodes = [
        t for t, ty in zip(graph.node_texts, graph.node_types) if ty == NODE_INSTRUCTION
    ]
    if not opcodes:
        return np.zeros((1, len(_OP_CLASSES)), dtype=np.float64)
    rows = []
    for start in range(0, len(opcodes), chunk):
        window = opcodes[start : start + chunk]
        row = [
            sum(1 for op in window if op in ops) / len(window)
            for ops in _OP_CLASSES.values()
        ]
        rows.append(row)
    return np.asarray(rows, dtype=np.float64)


class BinPro:
    """fit/score interface over chunk-level bipartite matching."""

    def __init__(self, chunk: int = 24):  # noqa: D107
        self.chunk = chunk

    def fit(self, train_pairs: Sequence[MatchingPair]) -> None:
        """BinPro needs no training; kept for interface symmetry."""

    def score(self, pairs: Sequence[MatchingPair]) -> np.ndarray:
        """Similarity in [0, 1] from the normalized assignment cost."""
        out = []
        for p in pairs:
            a = _chunk_features(p.left, self.chunk)
            b = _chunk_features(p.right, self.chunk)
            cost = np.linalg.norm(a[:, None, :] - b[None, :, :], axis=-1)
            rows, cols = linear_sum_assignment(cost)
            matched = cost[rows, cols].mean() if len(rows) else 1.0
            size_ratio = min(len(a), len(b)) / max(len(a), len(b))
            out.append(float(np.exp(-3.0 * matched) * size_ratio))
        return np.asarray(out)
