"""``repro.baselines`` — the comparison systems from the paper's Tables.

* :class:`~repro.baselines.xlir.XLIRModel` — the state-of-the-art neural
  baseline (Gui et al., SANER 2022): token-sequence encoders over
  linearized LLVM-IR, in LSTM and Transformer variants, trained with a
  triplet (ternary) objective in a shared embedding space.
* :class:`~repro.baselines.binpro.BinPro` — static code properties matched
  with a bipartite assignment (Miyani et al. 2017).
* :class:`~repro.baselines.b2sfinder.B2SFinder` — seven traceable features
  with specificity-weighted matching (Yuan et al., ASE 2019).
* :class:`~repro.baselines.licca.LICCA` — source-level syntactic/semantic
  similarity (Vislavski et al., SANER 2018); source-to-source only.
"""

from repro.baselines.b2sfinder import B2SFinder
from repro.baselines.binpro import BinPro
from repro.baselines.licca import LICCA
from repro.baselines.xlir import XLIRModel

__all__ = ["XLIRModel", "BinPro", "B2SFinder", "LICCA"]
