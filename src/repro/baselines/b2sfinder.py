"""B2SFinder reproduction: seven traceable features with weighted matching.

Yuan et al. (ASE 2019) infer seven binary-source-traceable feature classes
and weight matched instances by specificity (rarer features count more).
Our seven features over program graphs: integer constants, branch
structure, loop back-edges, callee names, comparison predicates, array
accesses, and arithmetic mix.  The score is an IDF-weighted Jaccard over
feature instances — the same weighting principle as the original.
"""

from __future__ import annotations

import math
import re
from collections import Counter
from typing import Dict, List, Sequence, Set

import numpy as np

from repro.data.pairs import MatchingPair
from repro.graphs.programl import NODE_CONSTANT, NODE_INSTRUCTION, ProgramGraph

_CALLEE_RE = re.compile(r"@([A-Za-z0-9_.$]+)")


def extract_features(graph: ProgramGraph) -> Set[str]:
    """The seven traceable feature classes as tagged instance strings."""
    feats: Set[str] = set()
    opcode_counts: Counter = Counter()
    for text, full, ty in zip(graph.node_texts, graph.node_full_texts, graph.node_types):
        if ty == NODE_CONSTANT:
            feats.add(f"const:{full.split()[-1]}")  # feature 1: literals
        elif ty == NODE_INSTRUCTION:
            opcode_counts[text] += 1
            if text == "call":
                m = _CALLEE_RE.search(full)
                if m:
                    feats.add(f"callee:{m.group(1)}")  # feature 4: imports/calls
            if text == "icmp":
                pred = full.split("icmp ")[-1].split()[0]
                feats.add(f"cmp:{pred}")  # feature 5: condition kinds
    # feature 2: if/switch structure magnitude (bucketed branch count)
    feats.add(f"branches:{_bucket(opcode_counts['condbr'])}")
    # feature 3: loop structure magnitude (unconditional branches ≈ latches)
    feats.add(f"loops:{_bucket(opcode_counts['br'])}")
    # feature 6: array usage magnitude
    feats.add(f"arrays:{_bucket(opcode_counts['gep'])}")
    # feature 7: arithmetic mix
    for op in ("mul", "sdiv", "srem", "shl"):
        if opcode_counts[op]:
            feats.add(f"arith:{op}")
    return feats


def _bucket(x: int) -> int:
    return int(math.log2(x + 1))


class B2SFinder:
    """Specificity-weighted feature matcher."""

    def __init__(self) -> None:  # noqa: D107
        self._idf: Dict[str, float] = {}

    def fit(self, train_pairs: Sequence[MatchingPair]) -> None:
        """Learn feature specificity (IDF) from the training graphs."""
        docs: List[Set[str]] = []
        for p in train_pairs:
            docs.append(extract_features(p.left))
            docs.append(extract_features(p.right))
        n = max(len(docs), 1)
        counts: Counter = Counter()
        for d in docs:
            counts.update(d)
        self._idf = {f: math.log(1.0 + n / c) for f, c in counts.items()}

    def _weight(self, feature: str) -> float:
        return self._idf.get(feature, math.log(1.0 + 100.0))

    def score(self, pairs: Sequence[MatchingPair]) -> np.ndarray:
        """Weighted-Jaccard similarity per pair."""
        out = []
        for p in pairs:
            fa = extract_features(p.left)
            fb = extract_features(p.right)
            inter = sum(self._weight(f) for f in fa & fb)
            union = sum(self._weight(f) for f in fa | fb)
            out.append(inter / union if union else 0.0)
        return np.asarray(out)
