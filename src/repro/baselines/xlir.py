"""XLIR reproduction: transformer/LSTM encoders over linearized LLVM-IR.

Following Gui et al. (SANER 2022): the IR is treated as a *token sequence*
(this is exactly the structural blindness GraphBinMatch's graphs fix), both
sides are encoded into a common space, and training minimizes a triplet
loss.  At inference, similarity is ``exp(-||a - b||²)``, a score in (0, 1]
thresholded like the other systems.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

import repro.nn as nn
from repro.data.pairs import MatchingPair
from repro.graphs.programl import NODE_INSTRUCTION, ProgramGraph
from repro.nn.functional import pad_sequences
from repro.nn.tensor import Tensor, no_grad
from repro.tokenize.tokenizer import IRTokenizer
from repro.utils.rng import derive_rng


def linearize(graph: ProgramGraph) -> str:
    """Recover the linear IR token stream from a program graph."""
    lines = [
        full
        for full, t in zip(graph.node_full_texts, graph.node_types)
        if t == NODE_INSTRUCTION
    ]
    return "\n".join(lines)


@dataclass
class XLIRConfig:
    """Scaled hyper-parameters for the XLIR reproduction."""

    encoder: str = "transformer"  # or "lstm"
    embed_dim: int = 32
    hidden_dim: int = 48
    num_layers: int = 2
    heads: int = 2
    max_tokens: int = 128
    max_vocab: int = 512
    # The triplet objective has a zero-gradient collapse point where every
    # embedding is identical (loss == margin).  At CPU scale the mean-pooled
    # encoder starts near it; lr 5e-3 escapes within a few epochs, smaller
    # rates can sit at loss == margin indefinitely.
    learning_rate: float = 5e-3
    epochs: int = 30
    batch_size: int = 8
    margin: float = 0.5
    seed: int = 0


class _SequenceEncoder(nn.Module):
    """Shared encoder: embedding + (LSTM | Transformer) + masked mean pool."""

    def __init__(self, vocab_size: int, cfg: XLIRConfig):  # noqa: D107
        super().__init__()
        rng = derive_rng(cfg.seed, "xlir", cfg.encoder)
        self.cfg = cfg
        self.embedding = nn.Embedding(vocab_size, cfg.embed_dim, padding_idx=0, rng=rng)
        if cfg.encoder == "lstm":
            self.body = nn.LSTM(cfg.embed_dim, cfg.hidden_dim, rng=rng)
            self.proj = nn.Linear(cfg.hidden_dim, cfg.hidden_dim, rng=rng)
        elif cfg.encoder == "transformer":
            self.body = nn.TransformerEncoder(
                cfg.embed_dim, cfg.heads, cfg.num_layers, max_len=cfg.max_tokens, rng=rng
            )
            self.proj = nn.Linear(cfg.embed_dim, cfg.hidden_dim, rng=rng)
        else:
            raise ValueError(f"unknown encoder {cfg.encoder!r}")

    def forward(self, token_ids: np.ndarray) -> Tensor:
        """Encode ``(B, T)`` ids into ``(B, H)`` L2-normalized embeddings."""
        mask = (token_ids != 0).astype(np.float32)
        x = self.embedding(token_ids)
        if self.cfg.encoder == "lstm":
            all_h, _ = self.body(x, mask)
        else:
            all_h = self.body(x, mask)
        m = Tensor(mask[:, :, None])
        summed = (all_h * m).sum(axis=1)
        counts = Tensor(np.maximum(mask.sum(axis=1, keepdims=True), 1.0))
        pooled = summed / counts
        out = self.proj(pooled).tanh()
        norm = (out * out).sum(axis=-1, keepdims=True).sqrt() + 1e-8
        return out / norm


class XLIRModel:
    """Train/score interface matching the other systems."""

    def __init__(self, config: Optional[XLIRConfig] = None):  # noqa: D107
        self.cfg = config or XLIRConfig()
        self.tokenizer: Optional[IRTokenizer] = None
        self.encoder: Optional[_SequenceEncoder] = None

    # ------------------------------------------------------------ tokens
    def _encode_texts(self, graphs: Sequence[ProgramGraph]) -> np.ndarray:
        seqs = [np.asarray(self.tokenizer.encode(linearize(g))) for g in graphs]
        return pad_sequences(seqs, self.cfg.max_tokens, pad_value=0)

    # ------------------------------------------------------------- train
    def fit(self, train_pairs: Sequence[MatchingPair]) -> List[float]:
        """Triplet training on the positive pairs with sampled negatives."""
        cfg = self.cfg
        self.tokenizer = IRTokenizer(max_vocab=cfg.max_vocab).train(
            [linearize(p.left) for p in train_pairs]
            + [linearize(p.right) for p in train_pairs]
        )
        self.encoder = _SequenceEncoder(self.tokenizer.vocab_size, cfg)
        positives = [p for p in train_pairs if p.label == 1]
        all_rights = [p.right for p in train_pairs]
        right_tasks = [p.task_right for p in train_pairs]
        rng = derive_rng(cfg.seed, "xlir-train")
        optimizer = nn.Adam(self.encoder.parameters(), lr=cfg.learning_rate)
        losses: List[float] = []
        for _ in range(cfg.epochs):
            order = rng.permutation(len(positives))
            epoch_losses = []
            for start in range(0, len(positives), cfg.batch_size):
                chunk = [positives[i] for i in order[start : start + cfg.batch_size]]
                if not chunk:
                    continue
                anchors = [p.left for p in chunk]
                pos = [p.right for p in chunk]
                negs = []
                for p in chunk:
                    while True:
                        j = int(rng.integers(len(all_rights)))
                        if right_tasks[j] != p.task_left:
                            negs.append(all_rights[j])
                            break
                ids = self._encode_texts(anchors + pos + negs)
                emb = self.encoder(ids)
                n = len(chunk)
                a = emb[np.arange(0, n)]
                p_e = emb[np.arange(n, 2 * n)]
                n_e = emb[np.arange(2 * n, 3 * n)]
                loss = nn.triplet_margin_loss(a, p_e, n_e, margin=cfg.margin)
                optimizer.zero_grad()
                loss.backward()
                optimizer.step()
                epoch_losses.append(loss.item())
            losses.append(float(np.mean(epoch_losses)) if epoch_losses else 0.0)
        return losses

    # ------------------------------------------------------------- score
    def score(self, pairs: Sequence[MatchingPair], batch_size: int = 32) -> np.ndarray:
        """Similarity ``exp(-d²)`` in (0, 1] per pair."""
        if self.encoder is None:
            raise RuntimeError("fit() first")
        self.encoder.eval()
        scores: List[np.ndarray] = []
        with no_grad():
            for start in range(0, len(pairs), batch_size):
                chunk = pairs[start : start + batch_size]
                ids_l = self._encode_texts([p.left for p in chunk])
                ids_r = self._encode_texts([p.right for p in chunk])
                el = self.encoder(ids_l).data
                er = self.encoder(ids_r).data
                d2 = ((el - er) ** 2).sum(axis=-1)
                scores.append(np.exp(-d2))
        return np.concatenate(scores) if scores else np.zeros(0)
