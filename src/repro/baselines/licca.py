"""LICCA reproduction: source-level cross-language clone detection.

Vislavski et al. (SANER 2018) map source in different languages to a
unified representation and compare syntactic/semantic characteristics.
Our unified representation is the source IR graph's instruction stream;
similarity combines a cosine over opcode n-gram histograms (syntax) with a
size-agreement factor (structure), which captures Type I–III clones but —
like the original — degrades on Type IV, keeping it below the neural
systems.
"""

from __future__ import annotations

from collections import Counter
from typing import List, Sequence

import numpy as np

from repro.data.pairs import MatchingPair
from repro.graphs.programl import NODE_INSTRUCTION, ProgramGraph


def _ngram_histogram(graph: ProgramGraph, n: int = 2) -> Counter:
    ops = [
        t for t, ty in zip(graph.node_texts, graph.node_types) if ty == NODE_INSTRUCTION
    ]
    grams: Counter = Counter()
    for i in range(len(ops)):
        grams[ops[i]] += 1
        if i + n <= len(ops):
            grams[tuple(ops[i : i + n])] += 1
    return grams


def _cosine(a: Counter, b: Counter) -> float:
    keys = set(a) | set(b)
    if not keys:
        return 0.0
    va = np.asarray([a.get(k, 0) for k in keys], dtype=np.float64)
    vb = np.asarray([b.get(k, 0) for k in keys], dtype=np.float64)
    denom = np.linalg.norm(va) * np.linalg.norm(vb)
    return float(va @ vb / denom) if denom else 0.0


class LICCA:
    """fit/score interface for the source-to-source baseline."""

    def fit(self, train_pairs: Sequence[MatchingPair]) -> None:
        """LICCA is rule-based; nothing to fit."""

    def score(self, pairs: Sequence[MatchingPair]) -> np.ndarray:
        """Cosine(bigram histograms) × size agreement, in [0, 1]."""
        out: List[float] = []
        for p in pairs:
            syntactic = _cosine(_ngram_histogram(p.left), _ngram_histogram(p.right))
            na, nb = p.left.num_nodes, p.right.num_nodes
            size_factor = min(na, nb) / max(na, nb) if max(na, nb) else 0.0
            out.append(syntactic * (0.5 + 0.5 * size_factor))
        return np.asarray(out)
