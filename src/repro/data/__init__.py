"""``repro.data`` — corpus builders: the CLCDSA / POJ-104 substitutes."""

from repro.data.corpus import CodeSample, CorpusBuilder, corpus_statistics
from repro.data.pairs import MatchingPair, PairDataset, build_pairs, split_tasks

__all__ = [
    "CodeSample",
    "CorpusBuilder",
    "corpus_statistics",
    "MatchingPair",
    "PairDataset",
    "build_pairs",
    "split_tasks",
]
