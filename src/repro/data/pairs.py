"""Pair construction and splits for the matching tasks.

Follows §II and §IV-B: solutions to the same task are positive pairs,
solutions to different tasks negative; positives and negatives are
balanced; the corpus splits 6:2:2.  Splitting is by *task*, so test-time
pairs involve problems never seen in training — the generalization the
matching formulation demands.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.data.corpus import CodeSample
from repro.graphs.programl import ProgramGraph
from repro.utils.rng import derive_rng


@dataclass
class MatchingPair:
    """A (left graph, right graph, label) example.

    ``left`` is the binary-side graph (decompiled IR) and ``right`` the
    source-side graph for binary↔source tasks; for source↔source both are
    source graphs.
    """

    left: ProgramGraph
    right: ProgramGraph
    label: int
    task_left: str
    task_right: str


@dataclass
class PairDataset:
    """Train/valid/test pair lists."""

    train: List[MatchingPair]
    valid: List[MatchingPair]
    test: List[MatchingPair]

    def sizes(self) -> Tuple[int, int, int]:
        """(train, valid, test) sizes."""
        return (len(self.train), len(self.valid), len(self.test))


def split_tasks(tasks: Sequence[str], seed: int) -> Tuple[List[str], List[str], List[str]]:
    """Deterministic 6:2:2 split of task names."""
    rng = derive_rng(seed, "task-split")
    order = list(rng.permutation(len(tasks)))
    shuffled = [tasks[i] for i in order]
    n = len(shuffled)
    n_train = max(int(round(n * 0.6)), 1)
    n_valid = max(int(round(n * 0.2)), 1)
    train = shuffled[:n_train]
    valid = shuffled[n_train : n_train + n_valid]
    test = shuffled[n_train + n_valid :]
    if not test:  # tiny corpora: borrow from train
        test = [train.pop()]
    if not valid:
        valid = [train.pop()]
    return train, valid, test


def _graph_of(sample: CodeSample, side: str) -> ProgramGraph:
    return sample.decompiled_graph if side == "binary" else sample.source_graph


def build_pairs(
    left_samples: Sequence[CodeSample],
    right_samples: Sequence[CodeSample],
    left_side: str,
    right_side: str,
    seed: int,
    max_pairs_per_task: int = 12,
    eval_neg_ratio: float = 1.0,
) -> PairDataset:
    """Positive/negative pairs with a 6:2:2 task split.

    ``left_side``/``right_side`` select which view of each sample is used:
    ``"binary"`` (decompiled IR graph) or ``"source"`` (front-end IR graph).
    E.g. Table III's "C/C++ binary vs Java source" passes C/C++ samples as
    ``left`` with side ``binary`` and Java samples as ``right`` with side
    ``source``.

    The train split is always balanced (§II).  ``eval_neg_ratio`` sets the
    negative:positive ratio of the valid/test splits; ratios above 1 model
    the retrieval-flavoured deployments the paper motivates, where
    non-matches dominate, and keep the degenerate all-positive predictor's
    F1 floor low.
    """
    tasks = sorted({s.task for s in left_samples} | {s.task for s in right_samples})
    train_t, valid_t, test_t = split_tasks(tasks, seed)
    by_task_left: Dict[str, List[CodeSample]] = {}
    by_task_right: Dict[str, List[CodeSample]] = {}
    for s in left_samples:
        by_task_left.setdefault(s.task, []).append(s)
    for s in right_samples:
        by_task_right.setdefault(s.task, []).append(s)

    def make_split(split_tasks_list: List[str], split_name: str) -> List[MatchingPair]:
        rng = derive_rng(seed, "pairs", split_name)
        positives: List[MatchingPair] = []
        for task in split_tasks_list:
            lefts = by_task_left.get(task, [])
            rights = by_task_right.get(task, [])
            combos = [
                (l, r)
                for l in lefts
                for r in rights
                if not (l.language == r.language and l.variant == r.variant)
            ]
            if not combos:
                combos = [(l, r) for l in lefts for r in rights]
            if len(combos) > max_pairs_per_task:
                idx = rng.choice(len(combos), size=max_pairs_per_task, replace=False)
                combos = [combos[i] for i in idx]
            for l, r in combos:
                positives.append(
                    MatchingPair(
                        _graph_of(l, left_side), _graph_of(r, right_side), 1, task, task
                    )
                )
        # negatives: different-task pairs (balanced for train, ratio'd for eval)
        ratio = 1.0 if split_name == "train" else eval_neg_ratio
        target_negatives = int(round(len(positives) * ratio))
        negatives: List[MatchingPair] = []
        eligible_tasks = [t for t in split_tasks_list if by_task_left.get(t) and by_task_right.get(t)]
        if len(eligible_tasks) >= 2:
            # Half of the training negatives are *hard*: the right side is
            # the size-closest different-task graph rather than a uniform
            # draw.  Graph size is the cheapest separating cue; matching it
            # away forces the model to separate lookalike algorithms by
            # content, which is where its test-time false positives live.
            hard_quota = target_negatives // 2 if split_name == "train" else 0
            right_pool = [
                (t, s) for t in eligible_tasks for s in by_task_right[t]
            ]
            right_sizes = np.asarray(
                [_graph_of(s, right_side).num_nodes for _, s in right_pool]
            )
            while len(negatives) < target_negatives:
                ti = int(rng.integers(len(eligible_tasks)))
                lt = eligible_tasks[ti]
                l = by_task_left[lt][int(rng.integers(len(by_task_left[lt])))]
                if len(negatives) < hard_quota:
                    lsize = _graph_of(l, left_side).num_nodes
                    order = np.argsort(np.abs(right_sizes - lsize), kind="stable")
                    cands = [int(k) for k in order[:8] if right_pool[int(k)][0] != lt]
                    if not cands:
                        continue
                    rt, r = right_pool[cands[int(rng.integers(len(cands)))]]
                else:
                    tj = int(rng.integers(len(eligible_tasks)))
                    if eligible_tasks[tj] == lt:
                        continue
                    rt = eligible_tasks[tj]
                    r = by_task_right[rt][int(rng.integers(len(by_task_right[rt])))]
                negatives.append(
                    MatchingPair(
                        _graph_of(l, left_side), _graph_of(r, right_side), 0, lt, rt
                    )
                )
        pairs = positives + negatives
        order = rng.permutation(len(pairs))
        return [pairs[i] for i in order]

    return PairDataset(
        train=make_split(train_t, "train"),
        valid=make_split(valid_t, "valid"),
        test=make_split(test_t, "test"),
    )
