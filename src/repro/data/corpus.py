"""Corpus builder: source files → source IR graphs + decompiled-binary graphs.

Runs the paper's full data pipeline for every generated solution:

  source text → front-end parse → IR (``#LLVM-IR``) → optimize →
  compile to binary (``#Binary Files``) → RetDec-substitute decompile
  (``#Decompiled LLVM-IR``) → ProGraML-substitute graphs.

A deterministic per-file "compile failure" models the paper's discarded
non-compilable submissions (Table I shows #IR < #Sources for every
language); failed files are counted but excluded downstream.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.binary.codegen import compile_module
from repro.binary.decompiler import decompile_bytes
from repro.config import DataConfig
from repro.graphs.programl import ProgramGraph, build_graph
from repro.ir.lowering import lower_program
from repro.ir.module import Module
from repro.ir.passes import optimize
from repro.lang.generator import SolutionGenerator, SourceFile
from repro.lang.tasks import TASK_REGISTRY


@dataclass
class CodeSample:
    """One corpus entry: a solution with both source-IR and binary views."""

    task: str
    variant: int
    language: str
    source_text: str
    source_module: Module = field(repr=False)
    source_graph: ProgramGraph = field(repr=False)
    binary_bytes: bytes = field(repr=False)
    decompiled_module: Module = field(repr=False)
    decompiled_graph: ProgramGraph = field(repr=False)
    opt_level: str = "Oz"
    compiler: str = "clang"

    @property
    def identifier(self) -> str:
        """Stable id like ``gcd/v2.java``."""
        return f"{self.task}/v{self.variant}.{self.language}"


def _compiles(seed: int, identifier: str, failure_pct: int) -> bool:
    digest = hashlib.sha256(f"{seed}:{identifier}".encode()).digest()
    return digest[0] % 100 >= failure_pct


class CorpusBuilder:
    """Builds :class:`CodeSample` corpora from the solution generator."""

    def __init__(self, config: DataConfig):  # noqa: D107
        self.config = config
        self.generator = SolutionGenerator(
            seed=config.seed, independent=config.independent_solutions
        )
        self.stats: Dict[str, Dict[str, int]] = {}

    def tasks(self) -> List[str]:
        """The task names this corpus covers."""
        return sorted(TASK_REGISTRY)[: self.config.num_tasks]

    def build(
        self,
        languages: Sequence[str],
        opt_level: Optional[str] = None,
        compiler: Optional[str] = None,
    ) -> List[CodeSample]:
        """Generate, compile, decompile and graph every solution."""
        opt_level = opt_level or self.config.opt_level
        compiler = compiler or self.config.compiler
        samples: List[CodeSample] = []
        self.stats = {
            lang: {"sources": 0, "llvm_ir": 0, "binaries": 0, "decompiled": 0}
            for lang in languages
        }
        for task in self.tasks():
            for variant in range(self.config.variants):
                for lang in languages:
                    sf = self.generator.generate(task, variant, lang)
                    st = self.stats[lang]
                    st["sources"] += 1
                    if not _compiles(
                        self.config.seed, sf.identifier, self.config.compile_failure_pct
                    ):
                        continue
                    sample = self._process(sf, opt_level, compiler)
                    st["llvm_ir"] += 1
                    st["binaries"] += 1
                    st["decompiled"] += 1
                    samples.append(sample)
        return samples

    def _process(self, sf: SourceFile, opt_level: str, compiler: str) -> CodeSample:
        source_module = lower_program(sf.program, name=sf.identifier)
        source_graph = build_graph(source_module, name=sf.identifier)
        binary_module = lower_program(sf.program, name=sf.identifier + ".bin")
        optimize(binary_module, opt_level)
        program = compile_module(binary_module, style=compiler)
        raw = program.encode()
        decompiled = decompile_bytes(raw, module_name=sf.identifier + ".dec")
        decompiled_graph = build_graph(decompiled, name=sf.identifier + ".dec")
        return CodeSample(
            task=sf.task,
            variant=sf.variant,
            language=sf.language,
            source_text=sf.text,
            source_module=source_module,
            source_graph=source_graph,
            binary_bytes=raw,
            decompiled_module=decompiled,
            decompiled_graph=decompiled_graph,
            opt_level=opt_level,
            compiler=compiler,
        )


def corpus_statistics(builder: CorpusBuilder) -> Dict[str, Dict[str, int]]:
    """Table-I-style statistics recorded during the last :meth:`build`."""
    return builder.stats
