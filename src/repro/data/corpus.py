"""Corpus builder: source files → source IR graphs + decompiled-binary graphs.

Runs the paper's full data pipeline for every generated solution through
the shared :class:`~repro.pipeline.CompilationPipeline`:

  source text → front-end parse → IR (``#LLVM-IR``) → optimize →
  compile to binary (``#Binary Files``) → RetDec-substitute decompile
  (``#Decompiled LLVM-IR``) → ProGraML-substitute graphs.

A deterministic per-file "compile failure" models the paper's discarded
non-compilable submissions (Table I shows #IR < #Sources for every
language); failed files are counted but excluded downstream.  Table-I
statistics are stage-accurate: a sample only increments the counters for
the stages its pipeline run actually completed.

With an :class:`~repro.artifacts.ArtifactStore` attached (directly or via
``DataConfig.artifact_dir``), already-compiled samples load from disk —
skipping generation, parsing, optimization, codegen and decompilation
entirely — and :meth:`CorpusBuilder.build_parallel` fans the cold
compiles out over the process-wide warm worker pool
(:func:`repro.exec.pool.get_pool`) while keeping sample order (and
sample bytes) identical to the serial path.
"""

from __future__ import annotations

import hashlib
import multiprocessing
import shutil
import tempfile
from dataclasses import dataclass, field
from functools import lru_cache
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

import repro.lang
from repro.artifacts import ArtifactKey, ArtifactStore
from repro.config import DataConfig
from repro.graphs.programl import ProgramGraph
from repro.ir.module import Module
from repro.lang.generator import SolutionGenerator
from repro.lang.tasks import TASK_REGISTRY
from repro.pipeline import (
    STAGE_CODEGEN,
    STAGE_DECOMPILE,
    STAGE_LOWER,
    CompilationPipeline,
    CompilationResult,
    StageFailure,
)


@dataclass
class CodeSample:
    """One corpus entry: a solution with both source-IR and binary views."""

    task: str
    variant: int
    language: str
    source_text: str
    source_module: Module = field(repr=False)
    source_graph: ProgramGraph = field(repr=False)
    binary_bytes: bytes = field(repr=False)
    decompiled_module: Module = field(repr=False)
    decompiled_graph: ProgramGraph = field(repr=False)
    opt_level: str = "Oz"
    compiler: str = "clang"

    @property
    def identifier(self) -> str:
        """Stable id like ``gcd/v2.java``."""
        return f"{self.task}/v{self.variant}.{self.language}"


def _compiles(seed: int, identifier: str, failure_pct: int) -> bool:
    digest = hashlib.sha256(f"{seed}:{identifier}".encode()).digest()
    return digest[0] % 100 >= failure_pct


@lru_cache(maxsize=1)
def _generator_fingerprint() -> str:
    """Content hash of the source-generation code (``repro.lang``).

    Part of every corpus artifact key: generation is not a pipeline stage,
    so ``PIPELINE_VERSION`` cannot invalidate cached entries when a task
    template or renderer changes — this does.
    """
    lang_dir = Path(repro.lang.__file__).resolve().parent
    h = hashlib.sha256()
    for path in sorted(lang_dir.glob("*.py")):
        h.update(path.name.encode())
        h.update(path.read_bytes())
    return h.hexdigest()[:16]


# Counter → pipeline stage that has to finish for it to count.  ``sources``
# is unconditional; the rest used to be incremented in lockstep after the
# whole chain returned, which over-counted whenever a late stage failed.
_STAGE_COUNTERS = (
    ("llvm_ir", STAGE_LOWER),
    ("binaries", STAGE_CODEGEN),
    ("decompiled", STAGE_DECOMPILE),
)


class CorpusBuilder:
    """Builds :class:`CodeSample` corpora from the solution generator.

    Parameters
    ----------
    config:
        Corpus coordinates (tasks, variants, seed, default opt/compiler).
    store:
        Optional artifact store; defaults to one rooted at
        ``config.artifact_dir`` when that is set.
    pipeline:
        Optional pre-built :class:`CompilationPipeline` (tests inject
        failure modes through this); defaults to one wired to ``store``.
    """

    def __init__(
        self,
        config: DataConfig,
        store: Optional[ArtifactStore] = None,
        pipeline: Optional[CompilationPipeline] = None,
    ):  # noqa: D107
        self.config = config
        self.generator = SolutionGenerator(
            seed=config.seed, independent=config.independent_solutions
        )
        if store is None and config.artifact_dir:
            store = ArtifactStore(config.artifact_dir)
        self.store = store
        self.pipeline = pipeline or CompilationPipeline(
            store=store, dataflow_edges=config.dataflow_edges
        )
        self.timer = self.pipeline.timer
        self.stats: Dict[str, Dict[str, int]] = {}

    def tasks(self) -> List[str]:
        """The task names this corpus covers."""
        return sorted(TASK_REGISTRY)[: self.config.num_tasks]

    # ------------------------------------------------------------ keying
    def _source_id(self) -> str:
        # The generator is deterministic in (seed, independent, task,
        # variant, language); identifying the source by its generation spec
        # lets warm builds skip rendering + parsing entirely.  The code
        # fingerprint covers the generator implementation itself (task
        # templates, renderers, front-ends), so editing any of them
        # invalidates old entries instead of silently serving stale text.
        return (
            f"gen:{self.config.seed}:{int(self.config.independent_solutions)}"
            f":{_generator_fingerprint()}"
        )

    def artifact_key(
        self,
        task: str,
        variant: int,
        language: str,
        opt_level: str,
        compiler: str,
        transforms: str = "",
    ) -> ArtifactKey:
        """The store key for one corpus sample.

        ``transforms`` names the transform-chain variant (see
        :mod:`repro.transform`); the default ``""`` keys the clean
        compilation the builder itself performs.  The robustness harness
        uses non-empty chains to persist transformed variants of the same
        corpus coordinates alongside the clean entries.
        """
        return ArtifactKey(
            task=task,
            variant=variant,
            language=language,
            opt_level=opt_level,
            compiler=compiler,
            source_id=self._source_id(),
            transforms=transforms,
            graph_features=self.pipeline.graph_features,
        )

    def _items(self, languages: Sequence[str]) -> List[Tuple[str, int, str]]:
        """Deterministic build order: task-major, then variant, then language."""
        return [
            (task, variant, lang)
            for task in self.tasks()
            for variant in range(self.config.variants)
            for lang in languages
        ]

    # ---------------------------------------------------------- building
    def build(
        self,
        languages: Sequence[str],
        opt_level: Optional[str] = None,
        compiler: Optional[str] = None,
    ) -> List[CodeSample]:
        """Generate, compile, decompile and graph every solution."""
        opt_level = opt_level or self.config.opt_level
        compiler = compiler or self.config.compiler
        samples: List[CodeSample] = []
        self.stats = {
            lang: {"sources": 0, "llvm_ir": 0, "binaries": 0, "decompiled": 0}
            for lang in languages
        }
        for task, variant, lang in self._items(languages):
            self.stats[lang]["sources"] += 1
            identifier = f"{task}/v{variant}.{lang}"
            if not _compiles(
                self.config.seed, identifier, self.config.compile_failure_pct
            ):
                continue
            sample = self._build_one(task, variant, lang, opt_level, compiler)
            if sample is not None:
                samples.append(sample)
        return samples

    def _build_one(
        self, task: str, variant: int, lang: str, opt_level: str, compiler: str
    ) -> Optional[CodeSample]:
        """One sample through the shared pipeline (store-first); None on failure."""
        identifier = f"{task}/v{variant}.{lang}"
        key = (
            self.artifact_key(task, variant, lang, opt_level, compiler)
            if self.store is not None
            else None
        )
        if key is not None:
            with self.timer.span("store.load"):
                cached = self.store.get(key)
            if cached is not None:
                self._count_stages(lang, cached.stages_completed)
                return self._sample_from_result(task, variant, lang, cached)
            # Miss (absent or unreadable entry): recompile, overwriting it.
        sf = self.generator.generate(task, variant, lang)
        try:
            result = self.pipeline.compile(
                sf.text,
                lang,
                name=identifier,
                opt_level=opt_level,
                compiler=compiler,
                program=sf.program,
                cache_key=key,
                # This probe already happened above; don't count it twice.
                cache_lookup=False,
            )
        except StageFailure as failure:
            self._count_stages(lang, failure.result.stages_completed)
            return None
        self._count_stages(lang, result.stages_completed)
        return self._sample_from_result(task, variant, lang, result)

    def _count_stages(self, lang: str, stages_completed: Sequence[str]) -> None:
        completed = set(stages_completed)
        counters = self.stats.setdefault(
            lang, {"sources": 0, "llvm_ir": 0, "binaries": 0, "decompiled": 0}
        )
        for counter, stage in _STAGE_COUNTERS:
            if stage in completed:
                counters[counter] += 1

    def _sample_from_result(
        self, task: str, variant: int, lang: str, result: CompilationResult
    ) -> CodeSample:
        return CodeSample(
            task=task,
            variant=variant,
            language=lang,
            source_text=result.source_text,
            source_module=result.source_module,
            source_graph=result.source_graph,
            binary_bytes=result.binary_bytes,
            decompiled_module=result.decompiled_module,
            decompiled_graph=result.decompiled_graph,
            opt_level=result.opt_level,
            compiler=result.compiler,
        )

    # ---------------------------------------------------------- parallel
    def build_parallel(
        self,
        languages: Sequence[str],
        opt_level: Optional[str] = None,
        compiler: Optional[str] = None,
        workers: Optional[int] = None,
    ) -> List[CodeSample]:
        """Like :meth:`build`, with cold compiles fanned out over processes.

        Workers populate the (shared, atomically-written) artifact store;
        the parent then assembles the corpus with a plain warm
        :meth:`build`, so ordering, statistics and sample bytes are
        *identical* to the serial path.  Without a configured store a
        temporary one is used for the duration of the call.
        """
        opt_level = opt_level or self.config.opt_level
        compiler = compiler or self.config.compiler
        workers = workers if workers is not None else multiprocessing.cpu_count()
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        scratch: Optional[str] = None
        original_store, original_pipeline = self.store, self.pipeline
        if self.store is None:
            scratch = tempfile.mkdtemp(prefix="repro-artifacts-")
            self.store = ArtifactStore(scratch)
            self.pipeline = CompilationPipeline(
                store=self.store,
                timer=self.timer,
                dataflow_edges=self.config.dataflow_edges,
            )
        try:
            todo = [
                item
                for item in self._items(languages)
                if _compiles(
                    self.config.seed,
                    f"{item[0]}/v{item[1]}.{item[2]}",
                    self.config.compile_failure_pct,
                )
                and self.artifact_key(*item, opt_level, compiler) not in self.store
            ]
            if todo and workers > 1:
                # Function-local import: repro.exec imports repro.data.pairs
                # (via the runner), which imports this module — the pool is
                # only needed on the parallel path anyway.
                from repro.exec.pool import get_pool

                # Strided chunks over min(workers, len(todo)) are all
                # non-empty, so the pool never exceeds the requested
                # worker count and never holds idle processes.  The pool
                # itself is the process-wide warm one: repeated builds
                # (bench loops, multi-language corpora) reuse resident
                # workers instead of paying a fork+import per call.
                fan_out = min(workers, len(todo))
                payloads = [
                    ((self.config, str(self.store.root), todo[i::fan_out], opt_level, compiler),)
                    for i in range(fan_out)
                ]
                get_pool(fan_out).run(_compile_chunk, payloads)
            elif todo:
                _compile_chunk(
                    (self.config, str(self.store.root), todo, opt_level, compiler)
                )
            return self.build(languages, opt_level, compiler)
        finally:
            self.store, self.pipeline = original_store, original_pipeline
            if scratch is not None:
                shutil.rmtree(scratch, ignore_errors=True)


def _compile_chunk(payload) -> int:
    """Worker entry point: compile a slice of corpus items into the store."""
    config, store_root, items, opt_level, compiler = payload
    builder = CorpusBuilder(config, store=ArtifactStore(store_root))
    built = 0
    for task, variant, lang in items:
        if builder._build_one(task, variant, lang, opt_level, compiler) is not None:
            built += 1
    return built


def corpus_statistics(builder: CorpusBuilder) -> Dict[str, Dict[str, int]]:
    """Table-I-style statistics recorded during the last :meth:`build`."""
    return builder.stats
