"""Trainable tokenizer for LLVM-IR instruction text.

Mirrors what the paper uses its HuggingFace GPT tokenizer for: map each
node's instruction string to a sequence of integer ids with

* SSA variables (``%3``, ``%nums``) normalized to a ``[VAR]`` token,
* a frequency-capped vocabulary (paper: max 2048 entries),
* ``[PAD]``/``[UNK]`` specials,
* truncation length = mean sequence length rounded **up to the next power
  of two** (the paper's rule), applied with padding at encode time.
"""

from __future__ import annotations

import re
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

PAD = "[PAD]"
UNK = "[UNK]"
VAR = "[VAR]"

_VAR_RE = re.compile(r"%[A-Za-z0-9_.]+")
_LABEL_RE = re.compile(r"label %[A-Za-z0-9_.]+")
_SPLIT_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_.]*|\d+|\[VAR\]|\[LBL\]|[^\sA-Za-z0-9_]")


def normalize_ir_text(text: str) -> str:
    """Replace SSA names and labels with placeholder tokens."""
    text = _LABEL_RE.sub("[LBL]", text)
    return _VAR_RE.sub(VAR, text)


def _word_tokens(text: str) -> List[str]:
    return _SPLIT_RE.findall(normalize_ir_text(text))


class IRTokenizer:
    """Frequency-capped word tokenizer over IR instruction strings."""

    #: Cross-call memo bound: IR instruction shapes are few in practice,
    #: but a hostile/endless stream must not grow the cache without bound.
    _CACHE_LIMIT = 1 << 16

    def __init__(self, max_vocab: int = 2048):  # noqa: D107
        self.max_vocab = max_vocab
        self.vocab: Dict[str, int] = {PAD: 0, UNK: 1, VAR: 2}
        self.truncation_length: int = 16
        self._trained = False
        self._encode_cache: Dict[str, List[int]] = {}

    # ---------------------------------------------------------- training
    def train(self, texts: Iterable[str]) -> "IRTokenizer":
        """Build the vocabulary and the power-of-two truncation length."""
        counts: Dict[str, int] = {}
        lengths: List[int] = []
        for text in texts:
            toks = _word_tokens(text)
            lengths.append(len(toks))
            for t in toks:
                counts.setdefault(t, 0)
                counts[t] += 1
        ranked = sorted(counts.items(), key=lambda kv: (-kv[1], kv[0]))
        for word, _ in ranked:
            if len(self.vocab) >= self.max_vocab:
                break
            if word not in self.vocab:
                self.vocab[word] = len(self.vocab)
        mean_len = float(np.mean(lengths)) if lengths else 8.0
        self.truncation_length = _next_power_of_two(max(int(np.ceil(mean_len)), 2))
        self._trained = True
        self._encode_cache.clear()  # ids depend on the (new) vocabulary
        return self

    # ---------------------------------------------------------- encoding
    def encode(self, text: str) -> List[int]:
        """Token ids for one string (no padding).

        Results are memoized per distinct string — the vocabulary is
        frozen outside :meth:`train`, and a long-lived serving process
        sees the same instruction shapes over and over.  Callers must not
        mutate the returned list.
        """
        ids = self._encode_cache.get(text)
        if ids is None:
            unk = self.vocab[UNK]
            ids = [self.vocab.get(t, unk) for t in _word_tokens(text)]
            if len(self._encode_cache) >= self._CACHE_LIMIT:
                self._encode_cache.clear()
            self._encode_cache[text] = ids
        return ids

    def encode_unique(
        self, texts: Sequence[str], length: Optional[int] = None
    ) -> "Tuple[np.ndarray, np.ndarray]":
        """Deduplicated encode: ``(unique (U, L) id matrix, (N,) inverse)``.

        IR node strings repeat heavily — a handful of instruction shapes
        cover most nodes, and batching many graphs multiplies the repeats
        (a 32-graph batch is typically ~85% duplicates) — so each distinct
        string is tokenized once; ``matrix[inverse]`` reconstructs the
        per-text rows.  Consumers that can work on unique rows directly
        (:meth:`GraphBinMatch.node_features`) skip the fan-out entirely.
        """
        length = length or self.truncation_length
        index_of: Dict[str, int] = {}
        uniques: List[str] = []
        # Collect inverse positions in a plain list: per-element numpy
        # assignment is ~10x slower than list.append on this hot path.
        positions: List[int] = []
        append = positions.append
        get = index_of.get
        for text in texts:
            j = get(text)
            if j is None:
                j = index_of[text] = len(uniques)
                uniques.append(text)
            append(j)
        inverse = np.asarray(positions, dtype=np.int64)
        mat = np.zeros((len(uniques), length), dtype=np.int64)  # 0 == PAD
        for j, text in enumerate(uniques):
            ids = self.encode(text)[:length]
            mat[j, : len(ids)] = ids
        return mat, inverse

    def encode_batch(
        self, texts: Sequence[str], length: Optional[int] = None
    ) -> np.ndarray:
        """Encode many strings to a padded/truncated ``(N, L)`` id matrix."""
        mat, inverse = self.encode_unique(texts, length)
        return mat[inverse]

    @property
    def vocab_size(self) -> int:
        """Current vocabulary size (≤ max_vocab)."""
        return len(self.vocab)

    def state(self) -> dict:
        """Serializable tokenizer state."""
        return {
            "vocab": dict(self.vocab),
            "truncation_length": self.truncation_length,
            "max_vocab": self.max_vocab,
        }

    @classmethod
    def from_state(cls, state: dict) -> "IRTokenizer":
        """Restore from :meth:`state`."""
        tok = cls(max_vocab=state["max_vocab"])
        tok.vocab = dict(state["vocab"])
        tok.truncation_length = state["truncation_length"]
        tok._trained = True
        return tok


def _next_power_of_two(x: int) -> int:
    p = 1
    while p < x:
        p *= 2
    return p
