"""``repro.tokenize`` — the HuggingFace-tokenizer substitute."""

from repro.tokenize.tokenizer import PAD, UNK, VAR, IRTokenizer, normalize_ir_text

__all__ = ["IRTokenizer", "normalize_ir_text", "PAD", "UNK", "VAR"]
