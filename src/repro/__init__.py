"""GraphBinMatch reproduction: graph-based similarity learning for
cross-language binary and source code matching.

A full-stack, from-scratch reproduction of TehraniJamsaz, Chen & Jannesari
(arXiv:2304.04658): mini-language front-ends, an LLVM-like SSA IR with
O0-Oz pass pipelines, a virtual ISA with two compiler back-ends, a
RetDec-style decompiler, ProGraML-style program graphs, a NumPy autograd
GNN stack, the GraphBinMatch model, and the XLIR/BinPro/B2SFinder/LICCA
baselines.

Quickstart::

    from repro.config import cpu_config, tiny_data_config
    from repro.eval.experiments import build_crosslang_dataset, run_graphbinmatch

    dataset, _ = build_crosslang_dataset(tiny_data_config(), ["c", "cpp"], ["java"])
    result = run_graphbinmatch(dataset, cpu_config())
    print(result.metrics.f1)
"""

from repro.config import (
    DataConfig,
    ModelConfig,
    bench_data_config,
    cpu_config,
    paper_config,
    tiny_data_config,
)

__version__ = "1.0.0"

__all__ = [
    "ModelConfig",
    "DataConfig",
    "paper_config",
    "cpu_config",
    "bench_data_config",
    "tiny_data_config",
    "__version__",
]
