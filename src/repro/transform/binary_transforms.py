"""Binary-level transforms: rewrite the linked program after codegen.

These run at the end of the pipeline's ``codegen`` stage, between
:func:`repro.binary.codegen.compile_module` and object encoding.  They
operate on the decoded :class:`~repro.binary.isa.BinaryProgram`, the same
representation the decompiler consumes — so the perturbation hits exactly
what a real post-link obfuscator would: register allocation and code
layout, not the compiler's IR.

Safety relies on two ISA facts (see :mod:`repro.binary.vm`):

* branch targets are *function-local* instruction offsets, so appending
  pad code at the end of a function moves no target;
* the VM's calling convention pins argument registers (``r0..r(n-1)``
  for both internal ``CALL`` and external ``CALLX``) and the return
  register ``r0`` — every other register is private to straight-line
  spill code and may be renamed globally.
"""

from __future__ import annotations

import math
from typing import Dict, List, Set

from repro.binary.isa import BinaryProgram, MachineInstr
from repro.transform.base import Transform, register_transform, site_count

#: Opcodes whose ``rd`` / ``rs`` field names a register (13 = frame alias,
#: which renaming must never touch; ``CALLX.rs`` is an arity, not a
#: register, and branch/call ``imm`` fields are offsets/indices).
_ALU = ("ADD", "SUB", "MUL", "DIV", "REM", "AND", "OR", "XOR", "SHL", "SAR")
_RD_IS_REG = {"MOVI", "MOV", "CMP", "LD", "ST", "LEA", "SALLOC", *_ALU}
_RS_IS_REG = {"MOV", "CMP", "LD", "ST", "SALLOC", *_ALU}


def _pinned_registers(program: BinaryProgram) -> Set[int]:
    """Registers the calling convention fixes: arg regs and the return reg.

    The VM passes internal-call arguments in ``r0..r(num_args-1)`` and
    external-call arguments in ``r0..r(arity-1)``; ``r0`` also carries
    return values.  Renaming any of those breaks execution, so they are
    pinned program-wide.
    """
    pinned = {0}
    for fn in program.functions:
        pinned.update(range(fn.num_args))
    for ins in program.instructions:
        if ins.op == "CALLX":
            pinned.update(range(ins.rs))
    return pinned


class RegRenameTransform(Transform):
    """Globally permute the non-pinned general registers.

    ``intensity`` scales how many of the renameable registers join the
    permutation (a single cycle over the chosen subset, so every chosen
    register really moves).  The decompiler recovers one variable per
    register, so renaming redirects its load/store traffic through
    different recovered variables — same semantics, different graph.
    """

    name = "regrename"
    level = "binary"
    description = "permute non-ABI registers program-wide"

    def apply_binary(self, program: BinaryProgram, rng, intensity: float) -> int:
        domain = sorted(set(range(12)) - _pinned_registers(program))
        take = site_count(len(domain), intensity)
        if take < 2:  # a 1-cycle is the identity — nothing would move
            return 0
        chosen = [int(r) for r in rng.choice(domain, size=take, replace=False)]
        mapping: Dict[int, int] = {
            r: chosen[(i + 1) % len(chosen)] for i, r in enumerate(chosen)
        }
        touched = 0
        for ins in program.instructions:
            renamed = False
            if ins.op in _RD_IS_REG and ins.rd in mapping:
                ins.rd = mapping[ins.rd]
                renamed = True
            if ins.op in _RS_IS_REG and ins.rs in mapping:
                ins.rs = mapping[ins.rs]
                renamed = True
            touched += int(renamed)
        return touched


class PadTransform(Transform):
    """Append never-executed junk instructions to each function.

    The pad sits after the function's final ``RET``/``JMP``, so control
    flow cannot reach it — but the decompiler's leader analysis dutifully
    lifts it as extra unreachable blocks, inflating the decompiled graph
    exactly like section padding confuses real lifters.  Function start
    offsets (and nothing else) are rewritten to account for the shifts;
    branch targets are function-local and need no fixup.
    """

    name = "pad"
    level = "binary"
    description = "append dead instruction padding to every function"

    _OPS = ("MOVI", "MOV", "ADD", "XOR", "CMP")

    def apply_binary(self, program: BinaryProgram, rng, intensity: float) -> int:
        if intensity <= 0.0 or not program.functions:
            return 0
        new_code: List[MachineInstr] = []
        padded = 0
        # Functions are laid out contiguously in start order; rebuild the
        # flat instruction list with each function's pad appended in place.
        for fn in sorted(program.functions, key=lambda f: f.start):
            body = program.instructions[fn.start : fn.start + fn.length]
            fn.start = len(new_code)
            n_pad = int(math.ceil(intensity * max(2, fn.length // 4)))
            pad = [self._junk(rng) for _ in range(n_pad)]
            fn.length += n_pad
            new_code.extend(body)
            new_code.extend(pad)
            padded += n_pad
        program.instructions = new_code
        return padded

    def _junk(self, rng) -> MachineInstr:
        op = self._OPS[int(rng.integers(0, len(self._OPS)))]
        rd = int(rng.integers(0, 12))
        rs = int(rng.integers(0, 12))
        imm = int(rng.integers(-(1 << 16), 1 << 16)) if op == "MOVI" else 0
        return MachineInstr(op, rd=rd, rs=rs, imm=imm)


register_transform(RegRenameTransform())
register_transform(PadTransform())
