"""IR-level transforms: rewrite the optimized module before codegen.

These run in the pipeline's ``transform`` stage, after ``optimize`` and
before ``codegen`` — deliberately *after* the optimizer, so the passes
(DCE in particular) cannot undo the perturbation.  Every transform is
semantics-preserving for the VM: injected code is dead, substituted
instructions compute the same value, reordered blocks keep their explicit
terminators, and inlining is the same pass the -O pipelines already run.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.ir.module import Constant, Instruction, Module, Value
from repro.ir.passes.inline import inline_functions
from repro.transform.base import Transform, register_transform, site_count

_IMM_MAX = 2**31 - 1


class InlineTransform(Transform):
    """Aggressive function inlining beyond what the -O pipeline did.

    Reuses :func:`repro.ir.passes.inline.inline_functions` with an
    intensity-scaled size threshold: intensity 0 is a no-op (threshold 0,
    the registry-wide contract), intensity 1 inlines callees up to 200
    instructions — well past the -O3 budget.  Deterministic with no
    randomness, so the seed is unused.
    """

    name = "inline"
    level = "ir"
    description = "inline callees up to an intensity-scaled size threshold"

    def apply_ir(self, module: Module, rng, intensity: float) -> int:
        threshold = int(round(intensity * 200))
        if threshold <= 0:
            return 0
        return inline_functions(module, max_callee_size=threshold)


class DeadCodeTransform(Transform):
    """Inject unused, side-effect-free instruction chains into blocks.

    Each selected block gains a three-instruction arithmetic chain (add →
    xor → mul of random constants) before its terminator.  The chain has
    no uses, so program output is unchanged — but the spill-everything
    backend still materializes every value, growing the binary and the
    decompiled graph the way real dead-code padding does.
    """

    name = "deadcode"
    level = "ir"
    description = "inject unused arithmetic chains before block terminators"

    def apply_ir(self, module: Module, rng, intensity: float) -> int:
        injected = 0
        for fn in module.defined_functions():
            blocks = [b for b in fn.blocks if b.terminator is not None]
            take = site_count(len(blocks), intensity)
            if not take:
                continue
            chosen = rng.choice(len(blocks), size=take, replace=False)
            for bi in sorted(int(i) for i in chosen):
                blk = blocks[bi]
                c1 = Constant(int(rng.integers(1, 1 << 20)))
                c2 = Constant(int(rng.integers(1, 1 << 20)))
                c3 = Constant(int(rng.integers(1, 1 << 10)))
                head = Instruction("add", [c1, c2], c1.type)
                mid = Instruction("xor", [head, c3], c1.type)
                tail = Instruction("mul", [mid, mid], c1.type)
                pos = len(blk.instructions) - 1  # before the terminator
                for off, instr in enumerate((head, mid, tail)):
                    instr.parent = blk
                    blk.instructions.insert(pos + off, instr)
                injected += 1
        return injected


def _flip_pred(pred: str) -> str:
    return {"eq": "eq", "ne": "ne", "slt": "sgt", "sle": "sge",
            "sgt": "slt", "sge": "sle"}[pred]


class InstSubTransform(Transform):
    """Substitute instructions with arithmetic equivalents.

    Rewrites (chosen per-site by the seeded RNG, ``intensity`` = fraction
    of eligible sites):

    * ``add a, C``  → ``sub a, -C``   (and symmetrically for ``sub``)
    * ``mul a, 2^k`` → ``shl a, k``
    * ``icmp p a, b`` → ``icmp p' b, a`` with the predicate mirrored

    All are value-identical under the VM's wrapping 64-bit arithmetic.
    """

    name = "instsub"
    level = "ir"
    description = "replace instructions with arithmetic equivalents"

    def apply_ir(self, module: Module, rng, intensity: float) -> int:
        sites: List[Tuple[Instruction, str]] = []
        for fn in module.defined_functions():
            for instr in fn.instructions():
                kind = self._classify(instr)
                if kind is not None:
                    sites.append((instr, kind))
        take = site_count(len(sites), intensity)
        if not take:
            return 0
        chosen = rng.choice(len(sites), size=take, replace=False)
        for si in sorted(int(i) for i in chosen):
            instr, kind = sites[si]
            self._rewrite(instr, kind)
        return take

    @staticmethod
    def _classify(instr: Instruction) -> "str | None":
        if instr.opcode in ("add", "sub") and len(instr.operands) == 2:
            rhs = instr.operands[1]
            if isinstance(rhs, Constant) and abs(rhs.value) < _IMM_MAX:
                return "negate-const"
        if instr.opcode == "mul" and len(instr.operands) == 2:
            rhs = instr.operands[1]
            if (
                isinstance(rhs, Constant)
                and rhs.value > 1
                and rhs.value & (rhs.value - 1) == 0
            ):
                return "mul-to-shl"
        if instr.opcode == "icmp":
            return "icmp-mirror"
        return None

    @staticmethod
    def _rewrite(instr: Instruction, kind: str) -> None:
        if kind == "negate-const":
            rhs = instr.operands[1]
            instr.opcode = "sub" if instr.opcode == "add" else "add"
            instr.operands[1] = Constant(-rhs.value, rhs.type)
        elif kind == "mul-to-shl":
            rhs = instr.operands[1]
            instr.opcode = "shl"
            instr.operands[1] = Constant(rhs.value.bit_length() - 1, rhs.type)
        elif kind == "icmp-mirror":
            instr.operands = [instr.operands[1], instr.operands[0]]
            instr.extra["pred"] = _flip_pred(instr.extra["pred"])


class BlockReorderTransform(Transform):
    """Permute non-entry basic blocks within each function.

    The backend emits blocks in list order with explicit terminators and
    patches every branch target, so layout is free to change; the
    decompiler's leader analysis then recovers a differently-shaped CFG.
    ``intensity`` scales the number of random swaps applied to the
    non-entry tail.
    """

    name = "blockreorder"
    level = "ir"
    description = "shuffle non-entry basic-block layout"

    def apply_ir(self, module: Module, rng, intensity: float) -> int:
        swapped = 0
        for fn in module.defined_functions():
            tail = fn.blocks[1:]
            if len(tail) < 2:
                continue
            swaps = site_count(len(tail) - 1, intensity)
            for _ in range(swaps):
                i, j = (int(x) for x in rng.choice(len(tail), size=2, replace=False))
                tail[i], tail[j] = tail[j], tail[i]
                swapped += 1
            fn.blocks[1:] = tail
        return swapped


register_transform(InlineTransform())
register_transform(DeadCodeTransform())
register_transform(InstSubTransform())
register_transform(BlockReorderTransform())
