"""Transform registry and spec grammar for the augmentation subsystem.

The robustness workload (see :mod:`repro.eval.robustness`) needs to ask
one question many times: *how does matching degrade when the binary is
produced by a transformed compilation?*  Every transform here is

* **deterministic** — a :class:`TransformSpec` fixes (name, intensity,
  seed) and two applications of the same spec to the same input produce
  byte-identical output, in any process (the artifact store depends on
  this: transformed variants are content-addressed by their spec);
* **seedable** — all randomness flows through one
  :func:`repro.utils.rng.derive_rng` stream derived from the spec seed,
  the transform name and the unit name;
* **intensity-scaled** — ``intensity`` ∈ [0, 1] picks how much of the
  eligible surface is rewritten (0 = no-op, 1 = every eligible site).

Transforms come in two levels.  ``"ir"`` transforms rewrite the optimized
binary-side :class:`~repro.ir.module.Module` before codegen (the
``transform`` pipeline stage); ``"binary"`` transforms rewrite the linked
:class:`~repro.binary.isa.BinaryProgram` after codegen, before encoding.
Both change the bytes the decompiler sees, and therefore the decompiled
graph the matcher scores — while the VM-observable behaviour of the
binary is preserved (``tests/test_transforms.py`` executes clean and
transformed binaries and asserts identical output).

Spec grammar (used by the CLI, the artifact key and the robustness CLI):

    name[@intensity][~seed]          one transform
    spec+spec+...                    a stacked chain

Chains apply left to right *within a level*, but IR-level transforms
always run before binary-level ones — they precede codegen by
construction — so ``pad+deadcode`` and ``deadcode+pad`` are the same
compilation.  :func:`chain_id` renders the canonical form (IR specs
first, written order preserved within each level), which is why the two
spellings share one artifact key.  :func:`parse_transform_chain` parses
and validates; e.g. ``deadcode@0.5~3+regrename@1~3``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.utils.rng import derive_rng


class TransformError(ValueError):
    """Raised on unknown transform names or malformed specs."""


def validate_intensity(value) -> float:
    """Validate an intensity knob: a finite float in [0, 1].

    NaN would silently disable every ``rng.choice`` size computation and
    negative values would flip ``ceil`` counts — both produce a "transform"
    that quietly does nothing while the artifact key claims otherwise, so
    the boundary rejects them loudly.
    """
    try:
        out = float(value)
    except (TypeError, ValueError):
        raise TransformError(f"intensity must be a number, got {value!r}") from None
    if math.isnan(out) or math.isinf(out):
        raise TransformError(f"intensity must be finite, got {value!r}")
    if out < 0.0 or out > 1.0:
        raise TransformError(f"intensity must be in [0, 1], got {out!r}")
    return out


@dataclass(frozen=True)
class TransformSpec:
    """One fully-determined transform application: (name, intensity, seed)."""

    name: str
    intensity: float = 1.0
    seed: int = 0

    def __post_init__(self):  # noqa: D105
        get_transform(self.name)  # unknown names fail here, not at apply time
        validated = validate_intensity(self.intensity)
        # Round-trip through the %g rendering :attr:`spec` uses, so the
        # canonical string and the behaviour always agree — without this,
        # two intensities differing below 6 significant digits would share
        # one artifact key while producing different artifacts.
        object.__setattr__(self, "intensity", float(f"{validated:g}"))
        object.__setattr__(self, "seed", int(self.seed))

    @property
    def spec(self) -> str:
        """Canonical string form (``name@intensity~seed``)."""
        return f"{self.name}@{self.intensity:g}~{self.seed}"

    @property
    def transform(self) -> "Transform":
        """The registered :class:`Transform` this spec names."""
        return get_transform(self.name)

    def rng(self, *names: object):
        """The spec's deterministic RNG stream, salted by ``names``.

        Callers pass the unit name (e.g. the module name), so the same
        spec perturbs different programs differently while staying
        reproducible across processes.
        """
        return derive_rng(self.seed, "transform", self.name, *names)

    @classmethod
    def parse(cls, text: str) -> "TransformSpec":
        """Parse one ``name[@intensity][~seed]`` spec string."""
        body = text.strip()
        if not body:
            raise TransformError("empty transform spec")
        seed = 0
        if "~" in body:
            body, seed_s = body.rsplit("~", 1)
            try:
                seed = int(seed_s)
            except ValueError:
                raise TransformError(
                    f"bad transform seed {seed_s!r} in {text!r}"
                ) from None
        intensity: object = 1.0
        if "@" in body:
            body, intensity = body.split("@", 1)
        return cls(name=body.strip(), intensity=validate_intensity(intensity), seed=seed)


def parse_transform_chain(text: str) -> Tuple[TransformSpec, ...]:
    """Parse a ``+``-stacked chain of specs; ``""`` means the clean chain."""
    if not text or not text.strip():
        return ()
    return tuple(TransformSpec.parse(part) for part in text.split("+"))


def chain_id(specs: Sequence[TransformSpec]) -> str:
    """Canonical string for a chain (the artifact-key spelling).

    Specs are stable-partitioned IR-level first — the order the pipeline
    actually applies them — so two spellings of the same compilation
    (``pad+deadcode`` vs ``deadcode+pad``) address one store entry
    instead of keying byte-identical duplicates.
    """
    ir, binary = split_by_level(specs)
    return "+".join(s.spec for s in ir + binary)


def site_count(eligible: int, intensity: float) -> int:
    """How many of ``eligible`` sites an intensity rewrites (ceil scaling).

    The one intensity→count rule every transform shares: 0 rewrites
    nothing, 1 rewrites every eligible site, fractions round up so any
    non-zero intensity touches at least one site when any is eligible.
    """
    if eligible <= 0 or intensity <= 0.0:
        return 0
    return min(eligible, int(math.ceil(intensity * eligible)))


class Transform:
    """One registered transformation.

    Subclasses set ``name``/``level``/``description`` and override the
    ``apply_*`` hook matching their level.  Both hooks mutate in place;
    they must be deterministic functions of (input, rng, intensity).
    """

    name: str = ""
    level: str = "ir"  # "ir" (pre-codegen Module) or "binary" (BinaryProgram)
    description: str = ""

    def apply_ir(self, module, rng, intensity: float) -> int:
        """Rewrite an IR module; returns the number of sites changed."""
        raise NotImplementedError(f"{self.name} is not an IR-level transform")

    def apply_binary(self, program, rng, intensity: float) -> int:
        """Rewrite a linked binary program; returns sites changed."""
        raise NotImplementedError(f"{self.name} is not a binary-level transform")


TRANSFORM_REGISTRY: Dict[str, Transform] = {}


def register_transform(transform: Transform) -> Transform:
    """Add a transform to the registry (duplicate names are a bug)."""
    if not transform.name:
        raise TransformError("transform has no name")
    if transform.name in TRANSFORM_REGISTRY:
        raise TransformError(f"duplicate transform {transform.name!r}")
    TRANSFORM_REGISTRY[transform.name] = transform
    return transform


def get_transform(name: str) -> Transform:
    """Look up a registered transform; unknown names raise loudly."""
    try:
        return TRANSFORM_REGISTRY[name]
    except KeyError:
        raise TransformError(
            f"unknown transform {name!r}; registered: {sorted(TRANSFORM_REGISTRY)}"
        ) from None


def split_by_level(
    specs: Sequence[TransformSpec],
) -> Tuple[List[TransformSpec], List[TransformSpec]]:
    """Partition a chain into (IR-level, binary-level) sublists, in order."""
    ir = [s for s in specs if s.transform.level == "ir"]
    binary = [s for s in specs if s.transform.level == "binary"]
    return ir, binary
