"""``repro.transform`` — deterministic, seedable code-transformation registry.

The augmentation subsystem behind the robustness workload: IR- and
binary-level rewrites (inlining, dead-code injection, instruction
substitution, block reordering, register renaming, padding) that compose
with the staged :class:`~repro.pipeline.CompilationPipeline` and persist
through the artifact store under transform-qualified keys.
"""

from repro.transform.base import (
    TRANSFORM_REGISTRY,
    Transform,
    TransformError,
    TransformSpec,
    chain_id,
    get_transform,
    parse_transform_chain,
    register_transform,
    split_by_level,
    validate_intensity,
)

# Importing the implementation modules populates the registry.
from repro.transform import binary_transforms, ir_transforms  # noqa: F401  isort: skip

__all__ = [
    "TRANSFORM_REGISTRY",
    "Transform",
    "TransformError",
    "TransformSpec",
    "chain_id",
    "get_transform",
    "parse_transform_chain",
    "register_transform",
    "split_by_level",
    "validate_intensity",
]
