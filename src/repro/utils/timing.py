"""Lightweight timing helpers used by the benchmark harness.

The hpc-parallel guides' first rule is *no optimization without measuring*;
these helpers give every pipeline stage a cheap, always-on wall-clock probe
without pulling in a profiler dependency.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Callable, Dict, Iterator


class Timer:
    """Accumulates named wall-clock spans.

    >>> t = Timer()
    >>> with t.span("lowering"):
    ...     pass
    >>> "lowering" in t.totals
    True
    """

    def __init__(self) -> None:  # noqa: D107
        self.totals: Dict[str, float] = {}
        self.counts: Dict[str, int] = {}

    @contextmanager
    def span(self, name: str) -> Iterator[None]:
        """Context manager that adds the elapsed time to bucket ``name``."""
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self.totals[name] = self.totals.get(name, 0.0) + elapsed
            self.counts[name] = self.counts.get(name, 0) + 1

    def report(self) -> str:
        """Render the accumulated spans as an aligned text block."""
        if not self.totals:
            return "(no spans recorded)"
        width = max(len(k) for k in self.totals)
        lines = []
        for name in sorted(self.totals, key=self.totals.get, reverse=True):
            lines.append(
                f"{name:<{width}}  {self.totals[name]:9.4f}s  x{self.counts[name]}"
            )
        return "\n".join(lines)


@contextmanager
def timed(label: str, sink: Callable[[str], None] = print) -> Iterator[None]:
    """Print the wall-clock duration of a block: ``with timed("train"): ...``."""
    start = time.perf_counter()
    try:
        yield
    finally:
        sink(f"[{label}] {time.perf_counter() - start:.3f}s")
