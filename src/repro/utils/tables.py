"""Plain-text table rendering for experiment reports.

Each benchmark prints the same rows the paper's corresponding table reports;
``Table`` keeps that output aligned and machine-greppable.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence


def format_float(value: float, digits: int = 2) -> str:
    """Format a metric the way the paper prints it (two decimals, no sign)."""
    if value != value:  # NaN
        return "-"
    return f"{value:.{digits}f}"


class Table:
    """Aligned text table with a title, e.g. reproducing "Table III"."""

    def __init__(self, title: str, columns: Sequence[str]):  # noqa: D107
        self.title = title
        self.columns = list(columns)
        self.rows: List[List[str]] = []

    def add_row(self, *cells: object) -> None:
        """Append a row; cells are stringified, floats via :func:`format_float`."""
        if len(cells) != len(self.columns):
            raise ValueError(
                f"row has {len(cells)} cells, table has {len(self.columns)} columns"
            )
        rendered = []
        for cell in cells:
            if isinstance(cell, float):
                rendered.append(format_float(cell))
            else:
                rendered.append(str(cell))
        self.rows.append(rendered)

    def render(self) -> str:
        """Render the table as aligned monospace text."""
        widths = [len(c) for c in self.columns]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        sep = "-+-".join("-" * w for w in widths)
        header = " | ".join(c.ljust(w) for c, w in zip(self.columns, widths))
        body = [
            " | ".join(cell.ljust(w) for cell, w in zip(row, widths))
            for row in self.rows
        ]
        return "\n".join([f"== {self.title} ==", header, sep, *body])

    def __str__(self) -> str:
        return self.render()


def render_rows(rows: Iterable[Sequence[object]]) -> str:
    """Quick helper: render anonymous rows without a header."""
    return "\n".join("  ".join(str(c) for c in row) for row in rows)
