"""Shared utilities: deterministic RNG, timing, and table rendering."""

from repro.utils.rng import SeedSequence, derive_rng, global_rng, set_global_seed
from repro.utils.tables import Table, format_float
from repro.utils.timing import Timer, timed

__all__ = [
    "SeedSequence",
    "derive_rng",
    "global_rng",
    "set_global_seed",
    "Table",
    "format_float",
    "Timer",
    "timed",
]
