"""Filesystem integrity helpers shared by the on-disk stores.

The artifact store, model store and sharded index all follow the same
durability protocol — write to a uniquely-named temp file in the final
directory, fsync-free ``os.replace`` commit, sha256 recorded for
verify-on-read — and all inherit the same failure residue: a writer
killed between write and rename leaves its temp file behind forever.
These helpers are the shared vocabulary: content hashing for the
checksum layer and an age-gated orphan sweep every store runs on open.
"""

from __future__ import annotations

import hashlib
import os
import time
from pathlib import Path
from typing import Sequence, Union

PathLike = Union[str, Path]

#: Temp-file name patterns every store's writers produce (``mkstemp``
#: suffix ``.tmp``, and the dotted ``.<name>.<pid>.tmp[.npz]`` scheme).
TMP_PATTERNS = ("*.tmp", "*.tmp.npz")

#: Default age before an orphaned temp file is eligible for sweeping.
#: Real writes hold a temp file for milliseconds; an hour-old one can
#: only belong to a dead writer.
TMP_SWEEP_AGE_SECONDS = 3600.0


def env_verify_reads() -> bool:
    """True when ``REPRO_VERIFY_READS`` asks every store to verify on read.

    One switch for the whole process (and, via inherited environment, for
    spawned build/serve workers): any value other than empty/``0`` is on.
    """
    return os.environ.get("REPRO_VERIFY_READS", "") not in ("", "0")


def sha256_file(path: PathLike, chunk_bytes: int = 1 << 20) -> str:
    """Hex sha256 of a file's bytes, read in bounded chunks."""
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        while True:
            chunk = handle.read(chunk_bytes)
            if not chunk:
                return digest.hexdigest()
            digest.update(chunk)


def find_orphan_tmps(
    root: PathLike,
    max_age_seconds: float = TMP_SWEEP_AGE_SECONDS,
    patterns: Sequence[str] = TMP_PATTERNS,
) -> list:
    """Temp files under ``root`` older than ``max_age_seconds``.

    Age-gated so a live writer's in-flight temp (held for milliseconds)
    is never a candidate; ``max_age_seconds <= 0`` matches every temp
    (what ``repro fsck`` uses to report fresh residue without deleting
    it).  Files that vanish mid-scan (a concurrent writer committing or
    cleaning up) are skipped, not errors.
    """
    now = time.time()
    out = []
    seen = set()
    for pattern in patterns:
        for path in Path(root).rglob(pattern):
            if path in seen:
                continue
            seen.add(path)
            try:
                age = now - path.stat().st_mtime
            except OSError:  # racing writer committed/cleaned it up
                continue
            if age >= max_age_seconds:
                out.append(path)
    return sorted(out)


def sweep_orphan_tmps(
    root: PathLike,
    max_age_seconds: float = TMP_SWEEP_AGE_SECONDS,
    patterns: Sequence[str] = TMP_PATTERNS,
) -> int:
    """Delete aged-out orphan temp files under ``root``; returns the count.

    Every store calls this on open so crashed writers cannot accumulate
    garbage forever (torn ``os.replace`` deliberately leaves its temp
    behind — this is the matching reclaim path).
    """
    swept = 0
    for path in find_orphan_tmps(root, max_age_seconds, patterns):
        try:
            path.unlink()
        except OSError:  # racing sweeper or writer; the file is gone either way
            continue
        swept += 1
    return swept
