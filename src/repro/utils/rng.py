"""Deterministic random-number management.

Every stochastic component in the reproduction (dataset generation, weight
initialization, dropout, pair sampling) draws from a ``numpy.random.Generator``
derived from a named seed sequence.  Experiments are therefore reproducible
bit-for-bit for a fixed root seed, which the paper's evaluation protocol
implicitly assumes (fixed train/valid/test splits).
"""

from __future__ import annotations

import hashlib

import numpy as np

_GLOBAL_SEED = 0x5EED


def set_global_seed(seed: int) -> None:
    """Set the process-wide root seed used by :func:`global_rng`."""
    global _GLOBAL_SEED
    _GLOBAL_SEED = int(seed)


def _hash_name(name: str) -> int:
    """Map an arbitrary string to a stable 64-bit integer."""
    digest = hashlib.sha256(name.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little")


def derive_rng(seed: int, *names: object) -> np.random.Generator:
    """Return a generator derived deterministically from ``seed`` and ``names``.

    ``names`` may mix strings and integers; the same arguments always produce
    the same stream, and distinct arguments produce statistically independent
    streams (via ``numpy``'s ``SeedSequence`` spawning).
    """
    entropy = [int(seed) & 0xFFFFFFFFFFFFFFFF]
    for name in names:
        if isinstance(name, (int, np.integer)):
            entropy.append(int(name) & 0xFFFFFFFFFFFFFFFF)
        else:
            entropy.append(_hash_name(str(name)))
    return np.random.default_rng(np.random.SeedSequence(entropy))


def global_rng(*names: object) -> np.random.Generator:
    """Derive a generator from the process-wide seed (see :func:`set_global_seed`)."""
    return derive_rng(_GLOBAL_SEED, *names)


class SeedSequence:
    """A forkable, named seed tree.

    ``SeedSequence(42).child("dataset").child("task", 3).rng()`` is stable
    across runs and platforms.  Used to give each subsystem (front-end,
    codegen, trainer, ...) an independent reproducible stream.
    """

    def __init__(self, seed: int, path: tuple = ()):  # noqa: D107
        self.seed = int(seed)
        self.path = tuple(path)

    def child(self, *names: object) -> "SeedSequence":
        """Return a sub-sequence extended by ``names``."""
        return SeedSequence(self.seed, self.path + tuple(names))

    def rng(self) -> np.random.Generator:
        """Materialize a numpy generator for this node of the seed tree."""
        return derive_rng(self.seed, *self.path)

    def integer(self, high: int = 2**31 - 1) -> int:
        """Draw a single deterministic integer in ``[0, high)``."""
        return int(self.rng().integers(0, high))

    def __repr__(self) -> str:
        return f"SeedSequence(seed={self.seed}, path={self.path!r})"
