"""POSIX shared-memory blocks with explicit, leak-checkable lifetimes.

Thin wrapper over :class:`multiprocessing.shared_memory.SharedMemory`
fixing the two behaviors that make the stdlib class awkward for a
parent-owns / workers-attach pool:

* **Naming** — every segment is named ``repro-shm-<hex>``, so hygiene
  tests (and a worried operator) can scan ``/dev/shm`` for leftovers with
  one glob instead of guessing which ``psm_*`` entries are ours.
* **Resource tracking** — every attacher here is a ``multiprocessing``
  child sharing the parent's ``resource_tracker`` process, so the
  stdlib's attach-time registration lands in the same tracker set the
  creator already occupies: a harmless no-op, and the tracker doubles as
  a crash backstop (a killed parent's tracker unlinks the segment at
  shutdown).  Never unregister an attach from a child — the shared
  tracker would drop the *owner's* claim with it.

The owner calls :meth:`unlink` (idempotent) when the segment's consumers
are done; :func:`leaked_segments` is the test-facing audit.
"""

from __future__ import annotations

import os
from typing import List, Optional

#: Every segment this module creates starts with this (see /dev/shm).
SHM_PREFIX = "repro-shm-"

#: Where Linux exposes POSIX shared memory as files (for audits only —
#: the blocks themselves go through the shared_memory API).
SHM_DIR = "/dev/shm"


class SharedBlock:
    """One owned or attached shared-memory segment.

    Create with :meth:`create` (owner) or :meth:`attach` (worker); the
    payload is :attr:`buf`, a writable memoryview of ``nbytes`` bytes.
    ``close()`` drops this process's mapping; ``unlink()`` (owner only,
    but safe anywhere) removes the segment system-wide.
    """

    def __init__(self, shm, nbytes: int, owner: bool):  # noqa: D107
        self._shm = shm
        self.nbytes = int(nbytes)
        self.owner = bool(owner)
        self._unlinked = False

    # ------------------------------------------------------------ lifecycle
    @classmethod
    def create(cls, nbytes: int) -> "SharedBlock":
        """Allocate a fresh ``repro-shm-*`` segment of ``nbytes`` bytes."""
        from multiprocessing import shared_memory

        if nbytes <= 0:
            raise ValueError(f"shared block size must be > 0, got {nbytes}")
        while True:
            name = SHM_PREFIX + os.urandom(8).hex()
            try:
                shm = shared_memory.SharedMemory(name=name, create=True, size=nbytes)
            except FileExistsError:
                continue  # astronomically unlikely; draw another name
            return cls(shm, nbytes, owner=True)

    @classmethod
    def from_bytes(cls, payload: bytes) -> "SharedBlock":
        """Allocate a segment holding ``payload`` (sized exactly to it)."""
        block = cls.create(len(payload))
        block.buf[: len(payload)] = payload
        return block

    @classmethod
    def attach(cls, name: str, nbytes: int) -> "SharedBlock":
        """Map an existing segment created by the owning (parent) process.

        Attachers are ``multiprocessing`` children of the owner, so the
        stdlib's attach-time tracker registration is a no-op on the shared
        resource tracker (the name is already in its set) — and must stay
        that way: unregistering here would drop the owner's claim too.
        """
        from multiprocessing import shared_memory

        return cls(shared_memory.SharedMemory(name=name), nbytes, owner=False)

    # ------------------------------------------------------------- payload
    @property
    def name(self) -> str:
        """The segment name (what :meth:`attach` needs)."""
        return self._shm.name

    @property
    def buf(self) -> memoryview:
        """Writable view of the first ``nbytes`` bytes.

        The kernel may round the mapping up to a page multiple; slicing to
        the recorded payload size keeps ``bytes(block.buf)`` exact.
        """
        return self._shm.buf[: self.nbytes]

    def close(self) -> None:
        """Drop this process's mapping (the segment itself survives)."""
        self._shm.close()

    def unlink(self) -> None:
        """Remove the segment system-wide (idempotent; owner's duty)."""
        if self._unlinked:
            return
        self._unlinked = True
        try:
            self._shm.unlink()
        except FileNotFoundError:
            pass  # boundary: already gone (crash backstop beat us to it)


def leaked_segments(prefix: str = SHM_PREFIX) -> List[str]:
    """Names of live ``/dev/shm`` segments matching ``prefix`` (for tests)."""
    try:
        entries = os.listdir(SHM_DIR)
    except OSError:
        return []  # boundary: no /dev/shm (non-Linux) — nothing to audit
    return sorted(e for e in entries if e.startswith(prefix))


def unlink_stale(prefix: str = SHM_PREFIX) -> Optional[int]:
    """Best-effort unlink of every matching segment (test teardown helper)."""
    from multiprocessing import shared_memory

    removed = 0
    for name in leaked_segments(prefix):
        try:
            seg = shared_memory.SharedMemory(name=name)
            seg.close()
            seg.unlink()
            removed += 1
        except OSError:
            continue  # boundary: someone else unlinked it first
    return removed
