"""``repro.binary`` — code generation, object format, VM, and decompiler.

The binary half of the paper's pipeline: IR modules are compiled by
:func:`~repro.binary.codegen.compile_module` (clang-like or gcc-like
backend), serialized/loaded via :class:`~repro.binary.isa.BinaryProgram`,
executed by :class:`~repro.binary.vm.VirtualMachine` (test oracle), and
lifted back to IR by :func:`~repro.binary.decompiler.decompile` (the
RetDec substitute).
"""

from repro.binary.codegen import CodegenError, compile_module
from repro.binary.decompiler import DecompileError, decompile, decompile_bytes
from repro.binary.isa import BinaryFunction, BinaryProgram, MachineInstr
from repro.binary.vm import VirtualMachine, VMError, run_binary

__all__ = [
    "compile_module",
    "CodegenError",
    "decompile",
    "decompile_bytes",
    "DecompileError",
    "BinaryProgram",
    "BinaryFunction",
    "MachineInstr",
    "VirtualMachine",
    "VMError",
    "run_binary",
]
