"""The virtual instruction-set architecture targeted by the code generators.

A RISC-ish 64-bit machine: 12 general registers, a stack pointer, a flags
register set by ``CMP``.  Every instruction encodes to exactly 8 bytes
(opcode, rd, rs, pad, imm32), so binaries are trivially disassemblable —
the decompiler's job is CFG/type recovery, not variable-length decoding.

Calling convention: arguments in r0..r5, return value in r0.  ``CALL``
targets an internal function index; ``CALLX`` an external-symbol index.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import List

NUM_REGS = 12  # r0..r11
WORD = 8  # bytes per machine word

# opcode table
OPCODES = [
    "HALT",  # stop the machine
    "MOVI",  # rd <- imm32
    "MOV",  # rd <- rs
    "ADD",  # rd <- rd + rs
    "SUB",
    "MUL",
    "DIV",  # signed, truncating
    "REM",
    "AND",
    "OR",
    "XOR",
    "SHL",
    "SAR",
    "CMP",  # flags <- compare(rd, rs)
    "BEQ",  # branch to imm (code offset, in instructions) when flag
    "BNE",
    "BLT",
    "BLE",
    "BGT",
    "BGE",
    "JMP",  # unconditional branch to imm
    "CALL",  # call internal function #imm
    "CALLX",  # call external symbol #imm (arity in rs)
    "RET",
    "LD",  # rd <- mem[rs + imm]  (imm in words)
    "ST",  # mem[rd + imm] <- rs
    "LEA",  # rd <- sp + imm      (stack-slot address, imm in words)
    "ENTER",  # allocate imm words of frame
    "LEAVE",  # release the frame
    "SALLOC",  # rd <- allocate rs words on the stack (dynamic arrays)
]
OPCODE_INDEX = {name: i for i, name in enumerate(OPCODES)}


@dataclass
class MachineInstr:
    """One decoded instruction."""

    op: str
    rd: int = 0
    rs: int = 0
    imm: int = 0

    def encode(self) -> bytes:
        """Pack to the fixed 8-byte format."""
        return struct.pack(
            "<BBBbi", OPCODE_INDEX[self.op], self.rd, self.rs, 0, self.imm
        )

    @staticmethod
    def decode(raw: bytes) -> "MachineInstr":
        """Unpack from 8 bytes."""
        opcode, rd, rs, _, imm = struct.unpack("<BBBbi", raw)
        if opcode >= len(OPCODES):
            raise ValueError(f"bad opcode byte {opcode}")
        return MachineInstr(OPCODES[opcode], rd, rs, imm)

    def __str__(self) -> str:
        return f"{self.op.lower():6s} rd={self.rd} rs={self.rs} imm={self.imm}"


@dataclass
class BinaryFunction:
    """A function inside a binary: symbol name plus its instruction range."""

    name: str
    start: int  # index into the flat instruction list
    length: int
    num_args: int


@dataclass
class BinaryProgram:
    """A fully linked executable for the virtual machine."""

    instructions: List[MachineInstr]
    functions: List[BinaryFunction]
    externals: List[str]
    entry: str = "main"
    compiler: str = "clang"  # which backend produced it

    def function(self, name: str) -> BinaryFunction:
        """Look up a function symbol."""
        for f in self.functions:
            if f.name == name:
                return f
        raise KeyError(f"no symbol {name!r}")

    def encode(self) -> bytes:
        """Serialize to an object-file byte string."""
        header = struct.pack("<4sI", b"RVMB", len(self.instructions))
        parts = [header]
        parts.append(struct.pack("<I", len(self.functions)))
        for f in self.functions:
            name_b = f.name.encode()
            parts.append(struct.pack("<HIII", len(name_b), f.start, f.length, f.num_args))
            parts.append(name_b)
        parts.append(struct.pack("<I", len(self.externals)))
        for name in self.externals:
            nb = name.encode()
            parts.append(struct.pack("<H", len(nb)))
            parts.append(nb)
        ent = self.entry.encode()
        parts.append(struct.pack("<H", len(ent)))
        parts.append(ent)
        comp = self.compiler.encode()
        parts.append(struct.pack("<H", len(comp)))
        parts.append(comp)
        for instr in self.instructions:
            parts.append(instr.encode())
        return b"".join(parts)

    @staticmethod
    def decode(raw: bytes) -> "BinaryProgram":
        """Parse an object file back into a program."""
        magic, n_instr = struct.unpack_from("<4sI", raw, 0)
        if magic != b"RVMB":
            raise ValueError("not a RVMB binary")
        off = 8
        (n_funcs,) = struct.unpack_from("<I", raw, off)
        off += 4
        functions = []
        for _ in range(n_funcs):
            name_len, start, length, num_args = struct.unpack_from("<HIII", raw, off)
            off += 14
            name = raw[off : off + name_len].decode()
            off += name_len
            functions.append(BinaryFunction(name, start, length, num_args))
        (n_ext,) = struct.unpack_from("<I", raw, off)
        off += 4
        externals = []
        for _ in range(n_ext):
            (nl,) = struct.unpack_from("<H", raw, off)
            off += 2
            externals.append(raw[off : off + nl].decode())
            off += nl
        (el,) = struct.unpack_from("<H", raw, off)
        off += 2
        entry = raw[off : off + el].decode()
        off += el
        (cl,) = struct.unpack_from("<H", raw, off)
        off += 2
        compiler = raw[off : off + cl].decode()
        off += cl
        instructions = []
        for _ in range(n_instr):
            instructions.append(MachineInstr.decode(raw[off : off + 8]))
            off += 8
        return BinaryProgram(instructions, functions, externals, entry, compiler)

    def size_bytes(self) -> int:
        """Encoded size, used by the RQ3 binary-size statistics."""
        return len(self.encode())
