"""Virtual machine: executes :class:`~repro.binary.isa.BinaryProgram`.

The execution oracle for compiled binaries — tests assert that VM output
matches the AST and IR interpreters for every program and optimization
level.  Memory is word-addressed: stack words live at low addresses, heap
allocations (Java arrays) at ``HEAP_BASE`` upward with a hidden length
header, mirroring a JVM-ish object layout.

Register 13 in LD/ST/LEA denotes the frame base (sp-relative addressing).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.binary.isa import WORD, BinaryFunction, BinaryProgram, MachineInstr

HEAP_BASE = 1 << 20
STACK_WORDS = 1 << 16

_PRINT_EXTERNALS = {
    "print_i32",
    "printf",
    "_ZNSolsEi",
    "java.io.PrintStream.println",
}


class VMError(RuntimeError):
    """Raised on traps: bad memory, unknown externals, step exhaustion."""


def _wrap64(x: int) -> int:
    x &= (1 << 64) - 1
    return x - (1 << 64) if x >= (1 << 63) else x


class VirtualMachine:
    """Fetch/decode/execute loop over a loaded binary."""

    def __init__(self, program: BinaryProgram, max_steps: int = 20_000_000):  # noqa: D107
        self.program = program
        self.max_steps = max_steps
        self.output: List[int] = []
        self.stack = [0] * STACK_WORDS
        self.heap: List[int] = []
        self.regs = [0] * 14  # r0..r11, (12 unused), 13 = frame base alias
        self.flag_cmp = 0  # sign of (rd - rs) from the last CMP
        self.sp = 1  # word 0 is a null guard
        self._steps = 0

    # ------------------------------------------------------------ memory
    def _read(self, addr: int) -> int:
        if addr >= HEAP_BASE:
            off = addr - HEAP_BASE
            if not (0 <= off < len(self.heap)):
                raise VMError(f"heap read out of range: {addr}")
            return self.heap[off]
        if not (1 <= addr < self.sp):
            raise VMError(f"stack read out of range: {addr} (sp={self.sp})")
        return self.stack[addr]

    def _write(self, addr: int, value: int) -> None:
        if addr >= HEAP_BASE:
            off = addr - HEAP_BASE
            if not (0 <= off < len(self.heap)):
                raise VMError(f"heap write out of range: {addr}")
            self.heap[off] = value
            return
        if not (1 <= addr < self.sp):
            raise VMError(f"stack write out of range: {addr} (sp={self.sp})")
        self.stack[addr] = value

    def _heap_alloc(self, words: int) -> int:
        """Allocate a heap block with a length header; returns data address."""
        if words < 0:
            raise VMError("NegativeArraySizeException")
        header = len(self.heap)
        self.heap.append(words)
        self.heap.extend([0] * words)
        return HEAP_BASE + header + 1

    # --------------------------------------------------------- externals
    def _call_external(self, name: str, args: List[int]) -> int:
        if name in _PRINT_EXTERNALS:
            self.output.append(int(args[0]))
            return 0
        if name == "java.newarray":
            return self._heap_alloc(args[0])
        if name == "java.arraylength":
            addr = args[0]
            if addr < HEAP_BASE:
                raise VMError("arraylength of non-heap pointer")
            return self.heap[addr - HEAP_BASE - 1]
        if name == "java.util.Arrays.sort":
            addr, lo, hi = args
            base = addr - HEAP_BASE
            self.heap[base + lo : base + hi] = sorted(self.heap[base + lo : base + hi])
            return 0
        if name == "java.lang.Math.max":
            return max(args)
        if name == "java.lang.Math.min":
            return min(args)
        if name == "java.lang.Math.abs":
            return abs(args[0])
        if name == "java.throw.ArrayIndexOutOfBounds":
            raise VMError("ArrayIndexOutOfBoundsException")
        raise VMError(f"unknown external {name!r}")

    # ----------------------------------------------------------- running
    def run(self, entry: Optional[str] = None) -> List[int]:
        """Execute from the entry symbol; returns printed integers."""
        self.output = []
        entry_fn = self.program.function(entry or self.program.entry)
        self._exec_function(entry_fn, [])
        return self.output

    def _exec_function(self, fn: BinaryFunction, args: List[int]) -> int:
        code = self.program.instructions
        for i, a in enumerate(args):
            self.regs[i] = a
        pc = fn.start
        frame_base = 0
        frame_saved_sp = self.sp
        while True:
            self._steps += 1
            if self._steps > self.max_steps:
                raise VMError("step budget exceeded")
            if pc >= len(code):
                raise VMError("pc ran off the end of the code")
            ins = code[pc]
            op = ins.op
            if op == "ENTER":
                frame_base = self.sp
                self.sp += ins.imm
                if self.sp >= STACK_WORDS:
                    raise VMError("stack overflow")
                pc += 1
            elif op == "LEAVE":
                self.sp = frame_saved_sp
                pc += 1
            elif op == "RET":
                return self.regs[0]
            elif op == "HALT":
                raise VMError("halt (unreachable executed)")
            elif op == "MOVI":
                self.regs[ins.rd] = ins.imm
                pc += 1
            elif op == "MOV":
                self.regs[ins.rd] = self.regs[ins.rs]
                pc += 1
            elif op == "LEA":
                self.regs[ins.rd] = frame_base + ins.imm
                pc += 1
            elif op == "SALLOC":
                words = self.regs[ins.rs]
                if words < 0:
                    raise VMError("negative stack allocation")
                self.regs[ins.rd] = self.sp
                self.sp += words
                if self.sp >= STACK_WORDS:
                    raise VMError("stack overflow")
                pc += 1
            elif op == "LD":
                base = frame_base if ins.rs == 13 else self.regs[ins.rs]
                self.regs[ins.rd] = self._read(base + ins.imm)
                pc += 1
            elif op == "ST":
                base = frame_base if ins.rd == 13 else self.regs[ins.rd]
                self._write(base + ins.imm, self.regs[ins.rs])
                pc += 1
            elif op in ("ADD", "SUB", "MUL", "DIV", "REM", "AND", "OR", "XOR", "SHL", "SAR"):
                a = self.regs[ins.rd]
                b = self.regs[ins.rs]
                if op == "ADD":
                    r = a + b
                elif op == "SUB":
                    r = a - b
                elif op == "MUL":
                    r = a * b
                elif op == "DIV":
                    if b == 0:
                        raise VMError("integer division by zero")
                    q = abs(a) // abs(b)
                    r = -q if (a < 0) != (b < 0) else q
                elif op == "REM":
                    if b == 0:
                        raise VMError("integer remainder by zero")
                    q = abs(a) // abs(b)
                    q = -q if (a < 0) != (b < 0) else q
                    r = a - q * b
                elif op == "AND":
                    r = a & b
                elif op == "OR":
                    r = a | b
                elif op == "XOR":
                    r = a ^ b
                elif op == "SHL":
                    r = a << (b % 64)
                else:
                    r = a >> (b % 64)
                self.regs[ins.rd] = _wrap64(r)
                pc += 1
            elif op == "CMP":
                diff = self.regs[ins.rd] - self.regs[ins.rs]
                self.flag_cmp = (diff > 0) - (diff < 0)
                pc += 1
            elif op in ("BEQ", "BNE", "BLT", "BLE", "BGT", "BGE"):
                taken = {
                    "BEQ": self.flag_cmp == 0,
                    "BNE": self.flag_cmp != 0,
                    "BLT": self.flag_cmp < 0,
                    "BLE": self.flag_cmp <= 0,
                    "BGT": self.flag_cmp > 0,
                    "BGE": self.flag_cmp >= 0,
                }[op]
                pc = fn.start + ins.imm if taken else pc + 1
            elif op == "JMP":
                pc = fn.start + ins.imm
            elif op == "CALL":
                callee = self.program.functions[ins.imm]
                saved = self.regs[:]
                result = self._exec_function(callee, self.regs[: callee.num_args])
                self.regs = saved
                self.regs[0] = result
                pc += 1
            elif op == "CALLX":
                name = self.program.externals[ins.imm]
                result = self._call_external(name, self.regs[: ins.rs])
                self.regs[0] = result if result is not None else 0
                pc += 1
            else:  # pragma: no cover
                raise VMError(f"unhandled opcode {op}")


def run_binary(program: BinaryProgram, entry: Optional[str] = None) -> List[int]:
    """Convenience wrapper: execute and return printed integers."""
    return VirtualMachine(program).run(entry)
