"""Binary → IR lifter: the RetDec substitute.

Given an encoded :class:`~repro.binary.isa.BinaryProgram`, the decompiler
disassembles it, recovers the CFG (branch-target leader analysis), and lifts
each machine instruction back to IR.  The output reproduces the two
artefacts the paper attributes to real decompilers:

1. **Type imprecision** — every recovered value is ``i64``; array shapes
   are gone; register traffic appears as load/store round-trips through
   recovered register variables, plus ``inttoptr``/``ptrtoint`` casts.
2. **Speculative control-flow reconstruction** — conditions are re-derived
   from CMP/Bcc pairs, compare-materialization patterns become extra
   diamonds, and the block structure differs from the front-end IR even
   for the same source.

Decompiled IR is *structural* output for graph construction (like RetDec's,
it is not guaranteed to re-execute); semantic fidelity of the binary itself
is verified by the VM instead.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.binary.isa import BinaryFunction, BinaryProgram, MachineInstr
from repro.ir.builder import IRBuilder
from repro.ir.module import BasicBlock, Constant, Function, Instruction, Module, Value
from repro.ir.types import I1, I64, VOID, PtrType

_BRANCHES = {"BEQ": "eq", "BNE": "ne", "BLT": "slt", "BLE": "sle", "BGT": "sgt", "BGE": "sge"}
_ALU = {
    "ADD": "add",
    "SUB": "sub",
    "MUL": "mul",
    "DIV": "sdiv",
    "REM": "srem",
    "AND": "and",
    "OR": "or",
    "XOR": "xor",
    "SHL": "shl",
    "SAR": "ashr",
}


class DecompileError(ValueError):
    """Raised on malformed binaries."""


def _find_leaders(code: List[MachineInstr]) -> List[int]:
    """Block leaders: offset 0, branch targets, fall-throughs of branches."""
    leaders: Set[int] = {0}
    for i, ins in enumerate(code):
        if ins.op in _BRANCHES or ins.op == "JMP":
            leaders.add(ins.imm)
            if i + 1 < len(code):
                leaders.add(i + 1)
        elif ins.op in ("RET", "HALT"):
            if i + 1 < len(code):
                leaders.add(i + 1)
    return sorted(x for x in leaders if 0 <= x < len(code))


class _FunctionLifter:
    """Lift one binary function into an IR function."""

    def __init__(self, program: BinaryProgram, bf: BinaryFunction, fn: Function):  # noqa: D107
        self.program = program
        self.bf = bf
        self.fn = fn
        self.code = program.instructions[bf.start : bf.start + bf.length]
        self.builder = IRBuilder()
        self.reg_slots: List[Value] = []
        self.frame: Optional[Value] = None
        self.blocks_by_leader: Dict[int, BasicBlock] = {}

    def lift(self) -> None:
        """Build the recovered CFG and lift every instruction."""
        b = self.builder
        entry = self.fn.new_block("dec_entry")
        b.position(entry)

        # Recovered register variables (all i64 — type recovery is lossy).
        for r in range(12):
            slot = b.alloca(I64, name=f"r{r}")
            self.reg_slots.append(slot)
        # Recovered stack frame: one flat i64 array.
        frame_words = 1
        for ins in self.code:
            if ins.op == "ENTER":
                frame_words = max(frame_words, ins.imm + 1)
        self.frame = b.alloca(I64, count=Constant(frame_words, I64))
        # Arguments arrive in r0..r5: spill them like the prologue did.
        for i in range(self.bf.num_args):
            arg = self.fn.args[i]
            ext = b.sext(arg, I64)
            b.store(ext, self.reg_slots[i])

        leaders = _find_leaders(self.code)
        for lead in leaders:
            self.blocks_by_leader[lead] = self.fn.new_block(f"dec_bb{lead}")
        b.br(self.blocks_by_leader[leaders[0]])

        for li, lead in enumerate(leaders):
            end = leaders[li + 1] if li + 1 < len(leaders) else len(self.code)
            self._lift_block(lead, end)

    # ------------------------------------------------------------ helpers
    def _read_reg(self, r: int) -> Value:
        return self.builder.load(self.reg_slots[r])

    def _write_reg(self, r: int, value: Value) -> None:
        self.builder.store(value, self.reg_slots[r])

    def _addr(self, base_reg: int, imm: int) -> Value:
        """Recover an address expression for LD/ST."""
        b = self.builder
        if base_reg == 13:  # frame-relative
            return b.gep(self.frame, Constant(imm, I64))
        base = self._read_reg(base_reg)
        if imm:
            base = b.add(base, Constant(imm, I64))
        # Speculative pointer recovery: integer reinterpreted as pointer.
        return b._emit(Instruction("inttoptr", [base], PtrType(I64)))

    def _lift_block(self, start: int, end: int) -> None:
        b = self.builder
        blk = self.blocks_by_leader[start]
        b.position(blk)
        last_cmp: Optional[Tuple[Value, Value]] = None
        i = start
        terminated = False
        while i < end:
            ins = self.code[i]
            op = ins.op
            if op == "ENTER" or op == "LEAVE":
                pass
            elif op == "MOVI":
                self._write_reg(ins.rd, Constant(ins.imm, I64))
            elif op == "MOV":
                self._write_reg(ins.rd, self._read_reg(ins.rs))
            elif op == "LEA":
                ptr = b.gep(self.frame, Constant(ins.imm, I64))
                as_int = b._emit(Instruction("ptrtoint", [ptr], I64))
                self._write_reg(ins.rd, as_int)
            elif op == "SALLOC":
                count = self._read_reg(ins.rs)
                buf = b.call("__alloca", [count], I64)
                self._write_reg(ins.rd, buf)
            elif op == "LD":
                ptr = self._addr(ins.rs, ins.imm)
                self._write_reg(ins.rd, b.load(ptr))
            elif op == "ST":
                val = self._read_reg(ins.rs)
                ptr = self._addr(ins.rd, ins.imm)
                b.store(val, ptr)
            elif op in _ALU:
                lhs = self._read_reg(ins.rd)
                rhs = self._read_reg(ins.rs)
                self._write_reg(ins.rd, b.binary(_ALU[op], lhs, rhs))
            elif op == "CMP":
                last_cmp = (self._read_reg(ins.rd), self._read_reg(ins.rs))
            elif op in _BRANCHES:
                if last_cmp is None:
                    # Decompiler speculation: compare a recovered flag var.
                    flag = self._read_reg(0)
                    cond = b.icmp(_BRANCHES[op], flag, Constant(0, I64))
                else:
                    cond = b.icmp(_BRANCHES[op], last_cmp[0], last_cmp[1])
                taken = self._target(ins.imm)
                fallthrough = self._target(i + 1)
                b.condbr(cond, taken, fallthrough)
                terminated = True
                break
            elif op == "JMP":
                b.br(self._target(ins.imm))
                terminated = True
                break
            elif op == "RET":
                b.ret(self._read_reg(0))
                terminated = True
                break
            elif op == "HALT":
                b.unreachable()
                terminated = True
                break
            elif op == "CALL":
                callee = self.program.functions[ins.imm]
                args = [self._read_reg(r) for r in range(callee.num_args)]
                result = b.call(callee.name, args, I64)
                self._write_reg(0, result)
            elif op == "CALLX":
                name = self.program.externals[ins.imm]
                args = [self._read_reg(r) for r in range(ins.rs)]
                result = b.call(name, args, I64)
                self._write_reg(0, result)
            else:  # pragma: no cover
                raise DecompileError(f"cannot lift {op}")
            i += 1
        if not terminated:
            # fall through into the next recovered block
            if i in self.blocks_by_leader:
                b.br(self.blocks_by_leader[i])
            else:
                b.ret(Constant(0, I64))

    def _target(self, offset: int) -> BasicBlock:
        if offset not in self.blocks_by_leader:
            raise DecompileError(f"branch to non-leader offset {offset}")
        return self.blocks_by_leader[offset]


def decompile(program: BinaryProgram, module_name: str = "decompiled") -> Module:
    """Lift a whole binary back to an IR module.

    External symbols become declarations (all-i64 signatures — recovered
    types, not the originals).
    """
    module = Module(module_name, source_language="decompiled")
    for ext in program.externals:
        module.add(
            Function(
                ext,
                [I64] * 3,  # recovered arity is imprecise; RetDec guesses too
                ["a0", "a1", "a2"],
                I64,
                is_declaration=True,
            )
        )
    if any(ins.op == "SALLOC" for ins in program.instructions):
        module.add(Function("__alloca", [I64], ["n"], I64, is_declaration=True))
    for bf in program.functions:
        fn = Function(
            bf.name,
            [I64] * bf.num_args,
            [f"arg{i}" for i in range(bf.num_args)],
            I64,
        )
        module.add(fn)
        _FunctionLifter(program, bf, fn).lift()
    return module


def decompile_bytes(raw: bytes, module_name: str = "decompiled") -> Module:
    """Parse an object file and decompile it."""
    return decompile(BinaryProgram.decode(raw), module_name)
