"""IR → machine-code generation (the compiler back-end).

A classic spill-everything backend: every SSA value gets a stack slot,
each IR instruction loads its operands into scratch registers, computes,
and stores the result back.  Phi nodes are eliminated with the standard
two-phase edge-copy scheme (temps first, then phi slots, so parallel
copies cannot clobber each other).

Two styles model the paper's two compilers:

* ``clang`` — the plain spill-everything code above.
* ``gcc`` — the same, plus redundant reload-after-store, register
  shuffling, and frame canaries.  The paper measured gcc-compiled binaries
  decompiling to ~70% larger IR than clang's; the redundancy knob
  reproduces that asymmetry (RQ3).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.binary.isa import BinaryFunction, BinaryProgram, MachineInstr
from repro.ir.module import Argument, BasicBlock, Constant, Function, Instruction, Module, Value
from repro.ir.types import VOID

_PRED_TO_BRANCH = {
    "eq": "BEQ",
    "ne": "BNE",
    "slt": "BLT",
    "sle": "BLE",
    "sgt": "BGT",
    "sge": "BGE",
}

_BINOP_TO_OP = {
    "add": "ADD",
    "sub": "SUB",
    "mul": "MUL",
    "sdiv": "DIV",
    "srem": "REM",
    "and": "AND",
    "or": "OR",
    "xor": "XOR",
    "shl": "SHL",
    "ashr": "SAR",
}


class CodegenError(ValueError):
    """Raised on IR the backend cannot lower."""


class _FunctionCodegen:
    """Per-function emission state."""

    def __init__(self, fn: Function, externals: Dict[str, int], internal_index: Dict[str, int], gcc_style: bool):  # noqa: D107
        self.fn = fn
        self.externals = externals
        self.internal_index = internal_index
        self.gcc = gcc_style
        self.code: List[MachineInstr] = []
        self.slots: Dict[int, int] = {}
        self.temp_slots: Dict[int, int] = {}
        self.frame_words = 0
        self.block_offsets: Dict[BasicBlock, int] = {}
        self.fixups: List[Tuple[int, BasicBlock]] = []  # (code idx, target block)

    # ------------------------------------------------------------- frame
    def _new_slot(self, words: int = 1) -> int:
        slot = self.frame_words
        self.frame_words += words
        return slot

    def _slot_of(self, value: Value) -> int:
        key = id(value)
        if key not in self.slots:
            self.slots[key] = self._new_slot()
        return self.slots[key]

    def _temp_of(self, value: Value) -> int:
        key = id(value)
        if key not in self.temp_slots:
            self.temp_slots[key] = self._new_slot()
        return self.temp_slots[key]

    # ------------------------------------------------------------ emit
    def emit(self, op: str, rd: int = 0, rs: int = 0, imm: int = 0) -> int:
        """Append one instruction; returns its index."""
        self.code.append(MachineInstr(op, rd, rs, imm))
        return len(self.code) - 1

    def _load_operand(self, value: Value, reg: int) -> None:
        """Materialize an operand into a register."""
        if isinstance(value, Constant):
            if not (-(2**31) <= value.value < 2**31):
                raise CodegenError(f"constant {value.value} exceeds imm32")
            self.emit("MOVI", rd=reg, imm=value.value)
        else:
            self.emit("LD", rd=reg, rs=13, imm=self._slot_of(value))
            if self.gcc:
                # gcc-style register shuffle: move through a scratch reg
                self.emit("MOV", rd=11, rs=reg)
                self.emit("MOV", rd=reg, rs=11)

    def _store_result(self, value: Value, reg: int) -> None:
        self.emit("ST", rd=13, rs=reg, imm=self._slot_of(value))
        if self.gcc:
            # gcc-style redundant reload after every store
            self.emit("LD", rd=10, rs=13, imm=self._slot_of(value))

    # ------------------------------------------------------------- body
    def generate(self) -> None:
        """Emit the whole function body."""
        # Pre-size the frame: parameters first.
        enter_idx = self.emit("ENTER", imm=0)  # patched at the end
        if self.gcc:
            # frame canary
            self.emit("MOVI", rd=9, imm=0x5A5A)
            canary_slot = self._new_slot()
            self.emit("ST", rd=13, rs=9, imm=canary_slot)
        for i, arg in enumerate(self.fn.args):
            if i > 5:
                raise CodegenError("more than 6 arguments unsupported")
            self.emit("ST", rd=13, rs=i, imm=self._slot_of(arg))

        for blk in self.fn.blocks:
            self.block_offsets[blk] = len(self.code)
            for instr in blk.instructions:
                if instr.is_terminator:
                    self._emit_phi_copies(blk)
                    self._emit_terminator(instr)
                else:
                    self._emit_instruction(instr)

        for idx, target in self.fixups:
            self.code[idx].imm = self.block_offsets[target]
        self.code[enter_idx].imm = self.frame_words

    def _emit_phi_copies(self, blk: BasicBlock) -> None:
        """Two-phase parallel copies for successor phis."""
        term = blk.terminator
        succ_phis = [
            (succ, phi)
            for succ in term.blocks
            for phi in succ.phis()
        ]
        staged = []
        for succ, phi in succ_phis:
            for val, pred in zip(phi.operands, phi.blocks):
                if pred is blk:
                    self._load_operand(val, 1)
                    self.emit("ST", rd=13, rs=1, imm=self._temp_of(phi))
                    staged.append(phi)
                    break
        for phi in staged:
            self.emit("LD", rd=1, rs=13, imm=self._temp_of(phi))
            self.emit("ST", rd=13, rs=1, imm=self._slot_of(phi))

    def _emit_terminator(self, instr: Instruction) -> None:
        op = instr.opcode
        if op == "br":
            idx = self.emit("JMP")
            self.fixups.append((idx, instr.blocks[0]))
        elif op == "condbr":
            self._load_operand(instr.operands[0], 1)
            self.emit("MOVI", rd=2, imm=0)
            self.emit("CMP", rd=1, rs=2)
            t_idx = self.emit("BNE")
            self.fixups.append((t_idx, instr.blocks[0]))
            f_idx = self.emit("JMP")
            self.fixups.append((f_idx, instr.blocks[1]))
        elif op == "ret":
            if instr.operands:
                self._load_operand(instr.operands[0], 0)
            self.emit("LEAVE")
            self.emit("RET")
        elif op == "unreachable":
            self.emit("HALT")
        else:  # pragma: no cover
            raise CodegenError(f"unknown terminator {op}")

    def _emit_instruction(self, instr: Instruction) -> None:
        op = instr.opcode
        if op == "phi":
            return  # handled on the incoming edges
        if op == "alloca":
            if instr.operands:
                count = instr.operands[0]
                if isinstance(count, Constant):
                    buf = self._new_slot(max(count.value, 1))
                    self.emit("LEA", rd=1, imm=buf)
                else:
                    self._load_operand(count, 1)
                    self.emit("SALLOC", rd=1, rs=1)
                    self._store_result(instr, 1)
                    return
            else:
                buf = self._new_slot()
                self.emit("LEA", rd=1, imm=buf)
            self._store_result(instr, 1)
            return
        if op == "load":
            self._load_operand(instr.operands[0], 1)
            self.emit("LD", rd=2, rs=1, imm=0)
            self._store_result(instr, 2)
            return
        if op == "store":
            self._load_operand(instr.operands[0], 1)
            self._load_operand(instr.operands[1], 2)
            self.emit("ST", rd=2, rs=1, imm=0)
            return
        if op == "gep":
            self._load_operand(instr.operands[0], 1)
            self._load_operand(instr.operands[1], 2)
            self.emit("ADD", rd=1, rs=2)
            self._store_result(instr, 1)
            return
        if op in _BINOP_TO_OP:
            self._load_operand(instr.operands[0], 1)
            self._load_operand(instr.operands[1], 2)
            self.emit(_BINOP_TO_OP[op], rd=1, rs=2)
            self._store_result(instr, 1)
            return
        if op == "icmp":
            self._load_operand(instr.operands[0], 1)
            self._load_operand(instr.operands[1], 2)
            self.emit("CMP", rd=1, rs=2)
            self.emit("MOVI", rd=3, imm=1)
            skip = self.emit(_PRED_TO_BRANCH[instr.extra["pred"]])
            self.emit("MOVI", rd=3, imm=0)
            self.code[skip].imm = len(self.code)
            self._store_result(instr, 3)
            return
        if op in ("zext", "sext", "trunc"):
            self._load_operand(instr.operands[0], 1)
            self._store_result(instr, 1)
            return
        if op == "call":
            callee = instr.extra["callee"]
            # Stage arguments in temps, then load into the arg registers.
            arg_temps = []
            for arg in instr.operands:
                self._load_operand(arg, 1)
                t = self._new_slot()
                self.emit("ST", rd=13, rs=1, imm=t)
                arg_temps.append(t)
            for i, t in enumerate(arg_temps):
                self.emit("LD", rd=i, rs=13, imm=t)
            if callee in self.internal_index:
                self.emit("CALL", imm=self.internal_index[callee])
            else:
                ext = self.externals.setdefault(callee, len(self.externals))
                self.emit("CALLX", rs=len(arg_temps), imm=ext)
            if instr.type != VOID:
                self._store_result(instr, 0)
            return
        raise CodegenError(f"cannot lower opcode {op!r}")


def compile_module(module: Module, style: str = "clang") -> BinaryProgram:
    """Compile every defined function; externals become symbol imports."""
    if style not in ("clang", "gcc"):
        raise CodegenError(f"unknown backend style {style!r}")
    defined = module.defined_functions()
    internal_index = {f.name: i for i, f in enumerate(defined)}
    externals: Dict[str, int] = {}
    all_code: List[MachineInstr] = []
    functions: List[BinaryFunction] = []
    for fn in defined:
        cg = _FunctionCodegen(fn, externals, internal_index, gcc_style=(style == "gcc"))
        cg.generate()
        functions.append(
            BinaryFunction(fn.name, len(all_code), len(cg.code), len(fn.args))
        )
        all_code.extend(cg.code)
    ext_list = [name for name, _ in sorted(externals.items(), key=lambda kv: kv[1])]
    return BinaryProgram(all_code, functions, ext_list, entry="main", compiler=style)
