"""``repro.artifacts`` — content-addressed persistence for pipeline outputs."""

from repro.artifacts.store import ArtifactKey, ArtifactStore, source_text_id

__all__ = ["ArtifactKey", "ArtifactStore", "source_text_id"]
