"""Content-addressed on-disk store for compilation artifacts.

Corpus builds and benchmark sweeps re-run the identical deterministic
pipeline for the same (task, variant, language, opt level, compiler)
coordinates in every process — the compilation cost dominates cold corpus
construction.  The store persists everything a completed
:class:`~repro.pipeline.CompilationResult` carries downstream — source
text, both IR modules (via :mod:`repro.ir.serialize`), binary bytes, and
both program graphs (via :mod:`repro.graphs.serialize`) — in one
pickle-free ``.npz`` per entry, addressed by a SHA-256 digest over the
:class:`ArtifactKey` fields *including the pipeline version fingerprint*:
change any stage and every old entry silently misses instead of serving
stale graphs.

Entries are written atomically (temp file + ``os.replace``), so parallel
corpus builders can share one store without locks; unreadable or
mismatched entries are treated as misses, never as errors — but never
*silent* misses: read failures are counted separately from plain absence
(``read_errors``), so an injected or organic IO fault is observable.

Store format v2 adds two durability features (v1 entries keep opening
unchanged): every entry's metadata records a sha256 over its array
payload (``payload_sha256``, checked when ``verify_reads`` is on — see
:mod:`docs/reliability`), and every ``put`` appends the entry's key to a
``keys.jsonl`` journal at the store root.  The journal is what makes
``repro fsck --repair`` possible: content addresses are one-way, so
without it a corrupt entry's coordinates — needed to re-derive the
artifact through the pipeline — would be unrecoverable.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import zipfile
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Dict, Mapping, Optional, Union

import numpy as np

from repro import faults
from repro.graphs.serialize import graph_from_arrays, graph_to_arrays
from repro.ir.serialize import LazyModule, module_to_dict
from repro.pipeline.staged import PIPELINE_VERSION, CompilationResult
from repro.transform import chain_id, parse_transform_chain
from repro.utils.fsio import (
    TMP_SWEEP_AGE_SECONDS,
    env_verify_reads as _env_verify_reads,
    sweep_orphan_tmps,
)

PathLike = Union[str, Path]

_META_KEY = "__meta_json__"

#: Entry metadata schema: 2 added ``payload_sha256`` + the key journal.
STORE_FORMAT_VERSION = 2

JOURNAL_NAME = "keys.jsonl"

#: Everything a failed entry read can raise: IO faults (incl. injected
#: ones — :class:`repro.faults.InjectedFault` is an ``OSError``),
#: truncated/invalid zip containers, bad JSON or schema drift inside the
#: payload.  Deliberately NOT a bare ``Exception``: a genuinely novel
#: failure should surface, not be absorbed as a cache miss.
READ_ERRORS = (
    OSError,
    EOFError,
    ValueError,  # includes json.JSONDecodeError and numpy parse errors
    KeyError,
    IndexError,
    TypeError,
    zipfile.BadZipFile,
)


def payload_sha256(arrays: Mapping[str, np.ndarray]) -> str:
    """Content hash over an entry's arrays (name + dtype + shape + bytes).

    The metadata blob is excluded — the hash lives *inside* it — so the
    digest covers exactly the payload a reader reconstructs results from.
    Array order does not matter (names are hashed sorted).
    """
    digest = hashlib.sha256()
    for name in sorted(arrays):
        if name == _META_KEY:
            continue
        arr = np.ascontiguousarray(arrays[name])
        digest.update(name.encode("utf-8"))
        digest.update(arr.dtype.str.encode("ascii"))
        digest.update(repr(tuple(arr.shape)).encode("ascii"))
        digest.update(arr.tobytes())
    return digest.hexdigest()


def _json_payload(data: dict) -> np.ndarray:
    return np.frombuffer(json.dumps(data).encode("utf-8"), dtype=np.uint8)


def source_text_id(text: str) -> str:
    """Key field for ad-hoc compiles: a content hash of the source text."""
    return "sha:" + hashlib.sha256(text.encode("utf-8")).hexdigest()[:32]


@dataclass(frozen=True)
class ArtifactKey:
    """The coordinates that fully determine one pipeline run.

    ``source_id`` identifies the source *content* — either a text hash
    (:func:`source_text_id`) or the corpus generator's ``gen:<seed>:...``
    spec, whose determinism makes the text derivable.  ``transforms``
    names the transform-chain variant that produced the artifact (the
    canonical :func:`repro.transform.chain_id` string; ``""`` is the
    clean compilation) — it is parsed and canonicalized on construction,
    so an unknown transform name or malformed intensity raises
    :class:`repro.transform.TransformError` here instead of silently
    keying an orphan cache entry nobody can ever hit again.
    ``graph_features`` names the graph-schema variant: ``""`` for the
    three structural relations, ``"dataflow"`` when the pipeline emitted
    the analysis-derived relations — graphs with different edge schemas
    must never share an entry.  ``version`` pins the pipeline
    implementation; every field participates in the digest.
    """

    task: str
    variant: int
    language: str
    opt_level: str
    compiler: str
    source_id: str
    version: str = PIPELINE_VERSION
    transforms: str = ""
    graph_features: str = ""

    def __post_init__(self):  # noqa: D105
        # Validate AND canonicalize: "deadcode" and "deadcode@1~0" are the
        # same variant and must address the same entry.
        object.__setattr__(
            self, "transforms", chain_id(parse_transform_chain(self.transforms))
        )
        if self.graph_features not in ("", "dataflow"):
            raise ValueError(
                f"unknown graph_features {self.graph_features!r}; "
                "expected '' or 'dataflow'"
            )

    @property
    def digest(self) -> str:
        """Content address: SHA-256 over every key field."""
        payload = "\x1f".join(
            [
                self.task,
                str(self.variant),
                self.language,
                self.opt_level,
                self.compiler,
                self.source_id,
                self.version,
                self.transforms,
                self.graph_features,
            ]
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()


class ArtifactStore:
    """Directory of content-addressed compilation artifacts.

    ``get``/``put`` speak :class:`CompilationResult`; ``hits``/``misses``
    count lookups for reporting (the ``corpus`` CLI and the corpus-build
    bench print them).
    """

    def __init__(
        self,
        root: PathLike,
        verify_reads: bool = False,
        sweep_age_seconds: float = TMP_SWEEP_AGE_SECONDS,
    ):
        """Open (creating if needed) the store at ``root``.

        ``verify_reads`` recomputes each entry's ``payload_sha256`` on
        ``get`` and treats mismatches as read errors (also switchable
        store-wide via ``REPRO_VERIFY_READS=1``).  Opening sweeps temp
        files older than ``sweep_age_seconds`` left by crashed writers.
        """
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.verify_reads = verify_reads or _env_verify_reads()
        self.hits = 0
        self.misses = 0
        self.read_errors = 0
        self.swept_tmps = sweep_orphan_tmps(self.root, sweep_age_seconds)

    # ------------------------------------------------------------- layout
    def path_for(self, key: ArtifactKey) -> Path:
        """Entry path: two-hex-char shard directory + full digest."""
        digest = key.digest
        return self.root / digest[:2] / (digest + ".npz")

    def __contains__(self, key: ArtifactKey) -> bool:
        """True when an entry exists on disk (no validation, no counters)."""
        return self.path_for(key).exists()

    def __len__(self) -> int:
        """Number of stored entries."""
        return sum(1 for _ in self.root.glob("*/*.npz"))

    def size_bytes(self) -> int:
        """Total on-disk size of all entries."""
        return sum(p.stat().st_size for p in self.root.glob("*/*.npz"))

    # -------------------------------------------------------------- write
    def put(self, key: ArtifactKey, result: CompilationResult) -> Path:
        """Persist a complete result; atomic, safe under concurrent writers."""
        if not result.complete:
            raise ValueError(
                f"refusing to store incomplete result for {result.name!r} "
                f"(stages: {result.stages_completed})"
            )
        meta = {
            "key": asdict(key),
            "name": result.name,
            "language": result.language,
            "opt_level": result.opt_level,
            "compiler": result.compiler,
            "source_text": result.source_text,
            "stages_completed": list(result.stages_completed),
            "transforms": list(result.transforms),
            # (name, source_language) pairs so lazy modules can exist
            # without parsing their payloads.
            "source_module_head": [
                result.source_module.name,
                result.source_module.source_language,
            ],
            "decompiled_module_head": [
                result.decompiled_module.name,
                result.decompiled_module.source_language,
            ],
        }
        arrays = {
            "binary": np.frombuffer(result.binary_bytes, dtype=np.uint8),
            # Module payloads live outside the hot meta JSON: warm loads
            # construct LazyModules and never parse these unless asked.
            "source_module": _json_payload(module_to_dict(result.source_module)),
            "decompiled_module": _json_payload(module_to_dict(result.decompiled_module)),
        }
        arrays.update(graph_to_arrays(result.source_graph, prefix="sg."))
        arrays.update(graph_to_arrays(result.decompiled_graph, prefix="dg."))
        meta["store_format"] = STORE_FORMAT_VERSION
        meta["payload_sha256"] = payload_sha256(arrays)
        arrays[_META_KEY] = np.frombuffer(
            json.dumps(meta).encode("utf-8"), dtype=np.uint8
        )
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=str(path.parent), suffix=".tmp")
        try:
            faults.hit("artifacts.put.write")
            with os.fdopen(fd, "wb") as handle:
                # Uncompressed on purpose: entries are small and the store's
                # whole point is load speed; zip-deflate made warm loads the
                # bottleneck.
                np.savez(handle, **arrays)
            faults.replace(tmp, path, "artifacts.put")
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise
        self._journal_append(key)
        return path

    # ------------------------------------------------------------ journal
    @property
    def journal_path(self) -> Path:
        """The append-only digest → key journal (``keys.jsonl``)."""
        return self.root / JOURNAL_NAME

    def _journal_append(self, key: ArtifactKey) -> None:
        # One O_APPEND write per line: atomic enough for concurrent
        # builders on POSIX (lines are far below PIPE_BUF); duplicate
        # lines are fine — readers keep the last occurrence per digest.
        line = json.dumps({"digest": key.digest, "key": asdict(key)}) + "\n"
        fd = os.open(
            str(self.journal_path), os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644
        )
        try:
            os.write(fd, line.encode("utf-8"))
        finally:
            os.close(fd)

    def journal_keys(self) -> Dict[str, ArtifactKey]:
        """Digest → :class:`ArtifactKey` for every journaled entry.

        Unparseable lines (a torn concurrent append, hand-editing) are
        skipped: the journal is a best-effort repair aid, not a source of
        truth — the entries themselves are.  Keys whose spec no longer
        parses under the current code (e.g. a retired transform name) are
        skipped the same way.
        """
        out: Dict[str, ArtifactKey] = {}
        try:
            lines = self.journal_path.read_text().splitlines()
        except FileNotFoundError:
            return out
        for line in lines:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
                out[record["digest"]] = ArtifactKey(**record["key"])
            except READ_ERRORS:
                continue
        return out

    # --------------------------------------------------------------- read
    def get(self, key: ArtifactKey) -> Optional[CompilationResult]:
        """Load an entry, or ``None`` on any miss (absent, corrupt, stale).

        Misses stay misses by contract — the caller recompiles — but an
        entry that *exists* and fails to read (IO error, truncated zip,
        checksum mismatch under ``verify_reads``) additionally bumps
        ``read_errors`` so corruption is never silently absorbed.
        """
        path = self.path_for(key)
        try:
            faults.hit("artifacts.get.read")
            with np.load(str(path)) as archive:
                meta = json.loads(
                    bytes(np.asarray(archive[_META_KEY]).tobytes()).decode("utf-8")
                )
                if meta.get("key") != asdict(key):
                    self.misses += 1
                    return None
                if self.verify_reads and meta.get("payload_sha256") is not None:
                    actual = payload_sha256(
                        {name: archive[name] for name in archive.files}
                    )
                    if actual != meta["payload_sha256"]:
                        raise ValueError(
                            f"checksum mismatch in {path.name}: entry records "
                            f"{meta['payload_sha256'][:12]}…, payload hashes "
                            f"to {actual[:12]}…"
                        )
                src_head = meta["source_module_head"]
                dec_head = meta["decompiled_module_head"]
                result = CompilationResult(
                    name=meta["name"],
                    language=meta["language"],
                    opt_level=meta["opt_level"],
                    compiler=meta["compiler"],
                    source_text=meta["source_text"],
                    stages_completed=list(meta["stages_completed"]),
                    transforms=list(meta.get("transforms", [])),
                    source_module=LazyModule(
                        src_head[0], src_head[1],
                        np.asarray(archive["source_module"]).tobytes(),
                    ),
                    decompiled_module=LazyModule(
                        dec_head[0], dec_head[1],
                        np.asarray(archive["decompiled_module"]).tobytes(),
                    ),
                    binary_bytes=bytes(np.asarray(archive["binary"], dtype=np.uint8).tobytes()),
                    source_graph=graph_from_arrays(archive, prefix="sg."),
                    decompiled_graph=graph_from_arrays(archive, prefix="dg."),
                    from_cache=True,
                )
        except FileNotFoundError:
            # Plain absence: the ordinary cold-cache miss.
            self.misses += 1
            return None
        except READ_ERRORS:
            # The entry exists but cannot be read back (truncated zip, bad
            # JSON, schema drift, IO fault, checksum mismatch): still a
            # miss by contract — the build recompiles — but counted so
            # faults are observable, never silently swallowed.
            self.read_errors += 1
            self.misses += 1
            return None
        self.hits += 1
        return result

    # ---------------------------------------------------------- reporting
    def stats(self) -> dict:
        """Counters + on-disk footprint for status displays."""
        return {
            "root": str(self.root),
            "entries": len(self),
            "bytes": self.size_bytes(),
            "hits": self.hits,
            "misses": self.misses,
            "read_errors": self.read_errors,
            "swept_tmps": self.swept_tmps,
        }
