"""Content-addressed on-disk store for compilation artifacts.

Corpus builds and benchmark sweeps re-run the identical deterministic
pipeline for the same (task, variant, language, opt level, compiler)
coordinates in every process — the compilation cost dominates cold corpus
construction.  The store persists everything a completed
:class:`~repro.pipeline.CompilationResult` carries downstream — source
text, both IR modules (via :mod:`repro.ir.serialize`), binary bytes, and
both program graphs (via :mod:`repro.graphs.serialize`) — in one
pickle-free ``.npz`` per entry, addressed by a SHA-256 digest over the
:class:`ArtifactKey` fields *including the pipeline version fingerprint*:
change any stage and every old entry silently misses instead of serving
stale graphs.

Entries are written atomically (temp file + ``os.replace``), so parallel
corpus builders can share one store without locks; unreadable or
mismatched entries are treated as misses, never as errors.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Optional, Union

import numpy as np

from repro.graphs.serialize import graph_from_arrays, graph_to_arrays
from repro.ir.serialize import LazyModule, module_to_dict
from repro.pipeline.staged import PIPELINE_VERSION, CompilationResult
from repro.transform import chain_id, parse_transform_chain

PathLike = Union[str, Path]

_META_KEY = "__meta_json__"


def _json_payload(data: dict) -> np.ndarray:
    return np.frombuffer(json.dumps(data).encode("utf-8"), dtype=np.uint8)


def source_text_id(text: str) -> str:
    """Key field for ad-hoc compiles: a content hash of the source text."""
    return "sha:" + hashlib.sha256(text.encode("utf-8")).hexdigest()[:32]


@dataclass(frozen=True)
class ArtifactKey:
    """The coordinates that fully determine one pipeline run.

    ``source_id`` identifies the source *content* — either a text hash
    (:func:`source_text_id`) or the corpus generator's ``gen:<seed>:...``
    spec, whose determinism makes the text derivable.  ``transforms``
    names the transform-chain variant that produced the artifact (the
    canonical :func:`repro.transform.chain_id` string; ``""`` is the
    clean compilation) — it is parsed and canonicalized on construction,
    so an unknown transform name or malformed intensity raises
    :class:`repro.transform.TransformError` here instead of silently
    keying an orphan cache entry nobody can ever hit again.
    ``graph_features`` names the graph-schema variant: ``""`` for the
    three structural relations, ``"dataflow"`` when the pipeline emitted
    the analysis-derived relations — graphs with different edge schemas
    must never share an entry.  ``version`` pins the pipeline
    implementation; every field participates in the digest.
    """

    task: str
    variant: int
    language: str
    opt_level: str
    compiler: str
    source_id: str
    version: str = PIPELINE_VERSION
    transforms: str = ""
    graph_features: str = ""

    def __post_init__(self):  # noqa: D105
        # Validate AND canonicalize: "deadcode" and "deadcode@1~0" are the
        # same variant and must address the same entry.
        object.__setattr__(
            self, "transforms", chain_id(parse_transform_chain(self.transforms))
        )
        if self.graph_features not in ("", "dataflow"):
            raise ValueError(
                f"unknown graph_features {self.graph_features!r}; "
                "expected '' or 'dataflow'"
            )

    @property
    def digest(self) -> str:
        """Content address: SHA-256 over every key field."""
        payload = "\x1f".join(
            [
                self.task,
                str(self.variant),
                self.language,
                self.opt_level,
                self.compiler,
                self.source_id,
                self.version,
                self.transforms,
                self.graph_features,
            ]
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()


class ArtifactStore:
    """Directory of content-addressed compilation artifacts.

    ``get``/``put`` speak :class:`CompilationResult`; ``hits``/``misses``
    count lookups for reporting (the ``corpus`` CLI and the corpus-build
    bench print them).
    """

    def __init__(self, root: PathLike):  # noqa: D107
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------- layout
    def path_for(self, key: ArtifactKey) -> Path:
        """Entry path: two-hex-char shard directory + full digest."""
        digest = key.digest
        return self.root / digest[:2] / (digest + ".npz")

    def __contains__(self, key: ArtifactKey) -> bool:
        """True when an entry exists on disk (no validation, no counters)."""
        return self.path_for(key).exists()

    def __len__(self) -> int:
        """Number of stored entries."""
        return sum(1 for _ in self.root.glob("*/*.npz"))

    def size_bytes(self) -> int:
        """Total on-disk size of all entries."""
        return sum(p.stat().st_size for p in self.root.glob("*/*.npz"))

    # -------------------------------------------------------------- write
    def put(self, key: ArtifactKey, result: CompilationResult) -> Path:
        """Persist a complete result; atomic, safe under concurrent writers."""
        if not result.complete:
            raise ValueError(
                f"refusing to store incomplete result for {result.name!r} "
                f"(stages: {result.stages_completed})"
            )
        meta = {
            "key": asdict(key),
            "name": result.name,
            "language": result.language,
            "opt_level": result.opt_level,
            "compiler": result.compiler,
            "source_text": result.source_text,
            "stages_completed": list(result.stages_completed),
            "transforms": list(result.transforms),
            # (name, source_language) pairs so lazy modules can exist
            # without parsing their payloads.
            "source_module_head": [
                result.source_module.name,
                result.source_module.source_language,
            ],
            "decompiled_module_head": [
                result.decompiled_module.name,
                result.decompiled_module.source_language,
            ],
        }
        arrays = {
            _META_KEY: np.frombuffer(json.dumps(meta).encode("utf-8"), dtype=np.uint8),
            "binary": np.frombuffer(result.binary_bytes, dtype=np.uint8),
            # Module payloads live outside the hot meta JSON: warm loads
            # construct LazyModules and never parse these unless asked.
            "source_module": _json_payload(module_to_dict(result.source_module)),
            "decompiled_module": _json_payload(module_to_dict(result.decompiled_module)),
        }
        arrays.update(graph_to_arrays(result.source_graph, prefix="sg."))
        arrays.update(graph_to_arrays(result.decompiled_graph, prefix="dg."))
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=str(path.parent), suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                # Uncompressed on purpose: entries are small and the store's
                # whole point is load speed; zip-deflate made warm loads the
                # bottleneck.
                np.savez(handle, **arrays)
            os.replace(tmp, path)
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise
        return path

    # --------------------------------------------------------------- read
    def get(self, key: ArtifactKey) -> Optional[CompilationResult]:
        """Load an entry, or ``None`` on any miss (absent, corrupt, stale)."""
        path = self.path_for(key)
        try:
            with np.load(str(path)) as archive:
                meta = json.loads(
                    bytes(np.asarray(archive[_META_KEY]).tobytes()).decode("utf-8")
                )
                if meta.get("key") != asdict(key):
                    self.misses += 1
                    return None
                src_head = meta["source_module_head"]
                dec_head = meta["decompiled_module_head"]
                result = CompilationResult(
                    name=meta["name"],
                    language=meta["language"],
                    opt_level=meta["opt_level"],
                    compiler=meta["compiler"],
                    source_text=meta["source_text"],
                    stages_completed=list(meta["stages_completed"]),
                    transforms=list(meta.get("transforms", [])),
                    source_module=LazyModule(
                        src_head[0], src_head[1],
                        np.asarray(archive["source_module"]).tobytes(),
                    ),
                    decompiled_module=LazyModule(
                        dec_head[0], dec_head[1],
                        np.asarray(archive["decompiled_module"]).tobytes(),
                    ),
                    binary_bytes=bytes(np.asarray(archive["binary"], dtype=np.uint8).tobytes()),
                    source_graph=graph_from_arrays(archive, prefix="sg."),
                    decompiled_graph=graph_from_arrays(archive, prefix="dg."),
                    from_cache=True,
                )
        except Exception:  # noqa: BLE001 - cache read: any unreadable entry
            # (absent file, truncated zip, bad JSON, schema drift) is a
            # miss by contract, never an error surfaced to the build.
            self.misses += 1
            return None
        self.hits += 1
        return result

    # ---------------------------------------------------------- reporting
    def stats(self) -> dict:
        """Counters + on-disk footprint for status displays."""
        return {
            "root": str(self.root),
            "entries": len(self),
            "bytes": self.size_bytes(),
            "hits": self.hits,
            "misses": self.misses,
        }
