"""``repro.eval`` — metrics, threshold sweeps, experiment runners."""

from repro.eval.metrics import ClassificationMetrics, classification_metrics, confusion
from repro.eval.threshold import sweep_thresholds
from repro.eval.analysis import node_count_statistics

__all__ = [
    "ClassificationMetrics",
    "classification_metrics",
    "confusion",
    "sweep_thresholds",
    "node_count_statistics",
]
