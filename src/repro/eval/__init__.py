"""``repro.eval`` — metrics, threshold sweeps, experiment runners.

The robustness harness lives in :mod:`repro.eval.robustness` and is
imported directly (not re-exported here): it pulls in the pipeline,
artifact-store, index and transform subsystems, which lightweight
consumers of the metrics modules must not pay for.
"""

from repro.eval.metrics import ClassificationMetrics, classification_metrics, confusion
from repro.eval.threshold import sweep_thresholds
from repro.eval.analysis import node_count_statistics

__all__ = [
    "ClassificationMetrics",
    "classification_metrics",
    "confusion",
    "sweep_thresholds",
    "node_count_statistics",
]
