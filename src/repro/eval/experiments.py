"""Experiment runners — one entry point per paper table/figure.

These are the functions the benchmark harness calls; each builds a corpus,
constructs pairs, trains the system(s) and returns the metric rows the
corresponding table in the paper reports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.baselines import B2SFinder, BinPro, LICCA, XLIRModel
from repro.baselines.xlir import XLIRConfig
from repro.config import DataConfig, ModelConfig
from repro.core.trainer import MatchTrainer
from repro.data.corpus import CorpusBuilder
from repro.data.pairs import MatchingPair, PairDataset, build_pairs
from repro.eval.metrics import ClassificationMetrics, classification_metrics
from repro.eval.threshold import best_threshold


@dataclass
class ExperimentResult:
    """Metrics plus raw scores for downstream analysis."""

    system: str
    metrics: ClassificationMetrics
    scores: np.ndarray
    labels: np.ndarray
    threshold: float = 0.5

    @property
    def row(self) -> Tuple[float, float, float]:
        """(precision, recall, f1) — the columns every table prints."""
        m = self.metrics
        return (m.precision, m.recall, m.f1)


# ---------------------------------------------------------------- corpora
def build_crosslang_dataset(
    data_cfg: DataConfig,
    binary_langs: Sequence[str],
    source_langs: Sequence[str],
) -> Tuple[PairDataset, CorpusBuilder]:
    """CLCDSA-style cross-language binary↔source pairs."""
    builder = CorpusBuilder(data_cfg)
    langs = sorted(set(binary_langs) | set(source_langs))
    samples = builder.build(langs)
    left = [s for s in samples if s.language in binary_langs]
    right = [s for s in samples if s.language in source_langs]
    dataset = build_pairs(
        left, right, "binary", "source", data_cfg.seed,
        max_pairs_per_task=data_cfg.max_pairs_per_task,
        eval_neg_ratio=data_cfg.eval_neg_ratio,
    )
    return dataset, builder


def build_source_source_dataset(
    data_cfg: DataConfig,
    left_langs: Sequence[str],
    right_langs: Sequence[str],
) -> Tuple[PairDataset, CorpusBuilder]:
    """CLCDSA-style cross-language source↔source pairs (Table VI)."""
    builder = CorpusBuilder(data_cfg)
    langs = sorted(set(left_langs) | set(right_langs))
    samples = builder.build(langs)
    left = [s for s in samples if s.language in left_langs]
    right = [s for s in samples if s.language in right_langs]
    dataset = build_pairs(
        left, right, "source", "source", data_cfg.seed,
        max_pairs_per_task=data_cfg.max_pairs_per_task,
        eval_neg_ratio=data_cfg.eval_neg_ratio,
    )
    return dataset, builder


def build_single_language_dataset(
    data_cfg: DataConfig,
    opt_level: str = "O0",
    compiler: str = "clang",
) -> Tuple[PairDataset, CorpusBuilder]:
    """POJ-104-style same-language (C++) binary↔source pairs (Tables IV/V)."""
    builder = CorpusBuilder(data_cfg)
    samples = builder.build(["cpp"], opt_level=opt_level, compiler=compiler)
    dataset = build_pairs(
        samples, samples, "binary", "source", data_cfg.seed,
        max_pairs_per_task=data_cfg.max_pairs_per_task,
        eval_neg_ratio=data_cfg.eval_neg_ratio,
    )
    return dataset, builder


# ---------------------------------------------------------------- systems
def run_graphbinmatch(
    dataset: PairDataset,
    config: ModelConfig,
    threshold: float = 0.5,
    calibrate: bool = True,
    early_stopping: bool = True,
    trainer: Optional[MatchTrainer] = None,
) -> ExperimentResult:
    """Train GraphBinMatch and evaluate on the test split.

    Every system in the harness picks its decision threshold on the
    validation split (§V-A: "let GraphBinMatch decide the best threshold
    based on the given metric"), because at CPU scale no system's raw
    scores are absolutely calibrated to the paper's 0.5 cut.  Pass
    ``calibrate=False`` for the fixed-threshold protocol, and a pre-trained
    ``trainer`` to evaluate without retraining.
    """
    if trainer is None:
        trainer = MatchTrainer(config)
        trainer.train(dataset, early_stopping=early_stopping)
    if calibrate:
        valid_scores = trainer.predict(dataset.valid)
        valid_labels = np.asarray([p.label for p in dataset.valid])
        if len(valid_labels):
            threshold = best_threshold(valid_labels, valid_scores)
    scores = trainer.predict(dataset.test)
    labels = np.asarray([p.label for p in dataset.test])
    metrics = classification_metrics(labels, scores >= threshold)
    return ExperimentResult("GraphBinMatch", metrics, scores, labels, threshold)


def run_xlir(
    dataset: PairDataset,
    encoder: str,
    config: Optional[XLIRConfig] = None,
    calibrate: bool = True,
) -> ExperimentResult:
    """Train an XLIR variant (threshold calibrated on valid, like all systems)."""
    cfg = config or XLIRConfig()
    cfg = XLIRConfig(**{**cfg.__dict__, "encoder": encoder})
    model = XLIRModel(cfg)
    model.fit(dataset.train)
    th = 0.5
    if calibrate:
        valid_scores = model.score(dataset.valid)
        valid_labels = np.asarray([p.label for p in dataset.valid])
        if len(valid_labels):
            th = best_threshold(valid_labels, valid_scores)
    scores = model.score(dataset.test)
    labels = np.asarray([p.label for p in dataset.test])
    metrics = classification_metrics(labels, scores >= th)
    return ExperimentResult(f"XLIR({encoder})", metrics, scores, labels, th)


def run_feature_baseline(
    dataset: PairDataset, name: str, calibrate: bool = True
) -> ExperimentResult:
    """Run BinPro / B2SFinder / LICCA (threshold calibrated on valid).

    Their raw similarity scores are not probability-calibrated (at a fixed
    0.5 cut they predict nothing at all), so like every other system they
    get a validation-picked threshold.
    """
    systems = {"BinPro": BinPro, "B2SFinder": B2SFinder, "LICCA": LICCA}
    model = systems[name]()
    model.fit(dataset.train)
    th = 0.5
    if calibrate:
        valid_scores = model.score(dataset.valid)
        valid_labels = np.asarray([p.label for p in dataset.valid])
        if len(valid_labels):
            th = best_threshold(valid_labels, valid_scores)
    scores = model.score(dataset.test)
    labels = np.asarray([p.label for p in dataset.test])
    metrics = classification_metrics(labels, scores >= th)
    return ExperimentResult(name, metrics, scores, labels, th)
