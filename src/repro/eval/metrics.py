"""Precision / recall / F1 / accuracy — §IV-E, equations (2)-(4)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np


@dataclass
class ClassificationMetrics:
    """The four counts plus the derived scores the paper reports."""

    tp: int
    tn: int
    fp: int
    fn: int

    @property
    def precision(self) -> float:
        """TP / (TP + FP); 0 when nothing was predicted positive."""
        denom = self.tp + self.fp
        return self.tp / denom if denom else 0.0

    @property
    def recall(self) -> float:
        """TP / (TP + FN); 0 when there are no positives."""
        denom = self.tp + self.fn
        return self.tp / denom if denom else 0.0

    @property
    def f1(self) -> float:
        """Harmonic mean of precision and recall."""
        p, r = self.precision, self.recall
        return 2 * p * r / (p + r) if (p + r) else 0.0

    @property
    def accuracy(self) -> float:
        """(TP + TN) / total."""
        total = self.tp + self.tn + self.fp + self.fn
        return (self.tp + self.tn) / total if total else 0.0


def confusion(labels: np.ndarray, predictions: np.ndarray) -> Tuple[int, int, int, int]:
    """(tp, tn, fp, fn) from 0/1 arrays."""
    labels = np.asarray(labels).astype(bool)
    predictions = np.asarray(predictions).astype(bool)
    if labels.shape != predictions.shape:
        raise ValueError("labels and predictions must have the same shape")
    tp = int(np.sum(labels & predictions))
    tn = int(np.sum(~labels & ~predictions))
    fp = int(np.sum(~labels & predictions))
    fn = int(np.sum(labels & ~predictions))
    return tp, tn, fp, fn


def classification_metrics(labels: np.ndarray, predictions: np.ndarray) -> ClassificationMetrics:
    """Build :class:`ClassificationMetrics` from 0/1 arrays."""
    tp, tn, fp, fn = confusion(labels, predictions)
    return ClassificationMetrics(tp=tp, tn=tn, fp=fp, fn=fn)
