"""Retrieval-style evaluation: rank source candidates for a binary query.

The paper motivates matching through retrieval use cases — find the source
file for a binary fragment (reverse engineering) or the binary for a
vulnerable source file (§I).  This module turns any pairwise scorer into a
ranked-retrieval evaluator with the standard metrics: MRR, top-k accuracy
(Hit@k) and mean average precision.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence, Tuple

import numpy as np

from repro.data.pairs import MatchingPair
from repro.graphs.programl import ProgramGraph


@dataclass
class RetrievalResult:
    """Aggregate retrieval metrics over a query set."""

    mrr: float
    hit_at: Dict[int, float]
    mean_average_precision: float
    num_queries: int

    def row(self) -> Tuple[float, float, float, float]:
        """(MRR, Hit@1, Hit@5, MAP) — the usual report columns."""
        return (
            self.mrr,
            self.hit_at.get(1, 0.0),
            self.hit_at.get(5, 0.0),
            self.mean_average_precision,
        )


@dataclass
class RankedQuery:
    """One query's ranking: candidate order and relevance flags."""

    query_task: str
    ranked_tasks: List[str]
    relevant: np.ndarray  # bool per ranked position

    @property
    def first_relevant_rank(self) -> int:
        """1-based rank of the first relevant candidate (0 = none found)."""
        hits = np.flatnonzero(self.relevant)
        return int(hits[0]) + 1 if hits.size else 0


ScoreFn = Callable[[Sequence[MatchingPair]], np.ndarray]


def rank_candidates(
    score_fn: ScoreFn,
    query: Tuple[ProgramGraph, str],
    candidates: Sequence[Tuple[ProgramGraph, str]],
    batch_size: int = 64,
) -> RankedQuery:
    """Score a query graph against every candidate and sort descending.

    ``query`` and each candidate are ``(graph, task_name)``; relevance is
    task equality (the dataset's matching definition, §II).
    """
    qg, q_task = query
    pairs = [
        MatchingPair(qg, cg, int(q_task == c_task), q_task, c_task)
        for cg, c_task in candidates
    ]
    scores = np.concatenate(
        [
            np.atleast_1d(score_fn(pairs[i : i + batch_size]))
            for i in range(0, len(pairs), batch_size)
        ]
    )
    order = np.argsort(-scores, kind="stable")
    ranked_tasks = [candidates[i][1] for i in order]
    relevant = np.asarray([q_task == candidates[i][1] for i in order], dtype=bool)
    return RankedQuery(q_task, ranked_tasks, relevant)


def evaluate_retrieval(
    score_fn: ScoreFn,
    queries: Sequence[Tuple[ProgramGraph, str]],
    candidates: Sequence[Tuple[ProgramGraph, str]],
    ks: Sequence[int] = (1, 3, 5, 10),
    batch_size: int = 64,
) -> RetrievalResult:
    """Full retrieval sweep: every query ranked against all candidates.

    Queries whose task has no relevant candidate are skipped (their metrics
    are undefined); if all are skipped the result is all-zero.
    """
    rrs: List[float] = []
    hits: Dict[int, List[float]] = {k: [] for k in ks}
    aps: List[float] = []
    for query in queries:
        has_relevant = any(c_task == query[1] for _, c_task in candidates)
        if not has_relevant:
            continue
        ranked = rank_candidates(score_fn, query, candidates, batch_size)
        first = ranked.first_relevant_rank
        rrs.append(1.0 / first if first else 0.0)
        for k in ks:
            hits[k].append(1.0 if first and first <= k else 0.0)
        aps.append(_average_precision(ranked.relevant))
    n = len(rrs)
    if n == 0:
        return RetrievalResult(0.0, {k: 0.0 for k in ks}, 0.0, 0)
    return RetrievalResult(
        mrr=float(np.mean(rrs)),
        hit_at={k: float(np.mean(v)) for k, v in hits.items()},
        mean_average_precision=float(np.mean(aps)),
        num_queries=n,
    )


def _average_precision(relevant: np.ndarray) -> float:
    """AP over one ranking (precision at each relevant position)."""
    hits = np.flatnonzero(relevant)
    if hits.size == 0:
        return 0.0
    precisions = (np.arange(hits.size) + 1.0) / (hits + 1.0)
    return float(precisions.mean())


def retrieval_corpus_from_samples(
    samples: Sequence,
    side: str,
) -> List[Tuple[ProgramGraph, str]]:
    """Build a (graph, task) list from :class:`CodeSample` objects.

    ``side`` selects the view: ``"binary"`` (decompiled graph) or
    ``"source"`` (front-end graph).
    """
    if side not in ("binary", "source"):
        raise ValueError(f"unknown side {side!r}")
    return [
        (s.decompiled_graph if side == "binary" else s.source_graph, s.task)
        for s in samples
    ]
