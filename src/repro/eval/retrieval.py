"""Retrieval-style evaluation: rank source candidates for a binary query.

The paper motivates matching through retrieval use cases — find the source
file for a binary fragment (reverse engineering) or the binary for a
vulnerable source file (§I).  This module turns any pairwise scorer into a
ranked-retrieval evaluator with the standard metrics: MRR, top-k accuracy
(Hit@k) and mean average precision.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

try:  # Protocol: py3.8+; keep a fallback for exotic interpreters
    from typing import Protocol
except ImportError:  # pragma: no cover
    Protocol = object  # type: ignore[assignment]

import numpy as np

from repro.data.pairs import MatchingPair
from repro.graphs.programl import ProgramGraph


@dataclass
class RetrievalResult:
    """Aggregate retrieval metrics over a query set."""

    mrr: float
    hit_at: Dict[int, float]
    mean_average_precision: float
    num_queries: int

    def row(self) -> Tuple[float, float, float, float]:
        """(MRR, Hit@1, Hit@5, MAP) — the usual report columns."""
        return (
            self.mrr,
            self.hit_at.get(1, 0.0),
            self.hit_at.get(5, 0.0),
            self.mean_average_precision,
        )


@dataclass
class RankedQuery:
    """One query's ranking: candidate order and relevance flags."""

    query_task: str
    ranked_tasks: List[str]
    relevant: np.ndarray  # bool per ranked position

    @property
    def first_relevant_rank(self) -> int:
        """1-based rank of the first relevant candidate (0 = none found)."""
        hits = np.flatnonzero(self.relevant)
        return int(hits[0]) + 1 if hits.size else 0


ScoreFn = Callable[[Sequence[MatchingPair]], np.ndarray]


class EmbeddingScorer(Protocol):
    """The encode-once protocol: what the retrieval fast path needs.

    :class:`~repro.core.trainer.MatchTrainer` is the canonical
    implementation — pass the trainer itself (not its ``predict`` method,
    which is a plain :data:`ScoreFn` and takes the O(Q×C) fallback).
    """

    def encode_graphs(
        self, graphs: Sequence[ProgramGraph], batch_size: int = 32
    ) -> np.ndarray:  # noqa: D102 — protocol signature
        ...

    def score_embeddings(self, left: np.ndarray, right: np.ndarray) -> np.ndarray:  # noqa: D102
        ...


Scorer = Union[ScoreFn, EmbeddingScorer]


def _exposes_embeddings(scorer) -> bool:
    """True when ``scorer`` supports the encode-once protocol.

    Any object with ``encode_graphs`` + ``score_embeddings`` qualifies —
    :class:`~repro.core.trainer.MatchTrainer` is the canonical one.  Plain
    callables (the historical ``ScoreFn``) take the pairwise fallback.
    """
    return hasattr(scorer, "encode_graphs") and hasattr(scorer, "score_embeddings")


def _ranked(
    q_task: str,
    candidates: Sequence[Tuple[ProgramGraph, str]],
    scores: np.ndarray,
) -> RankedQuery:
    order = np.argsort(-scores, kind="stable")
    ranked_tasks = [candidates[i][1] for i in order]
    relevant = np.asarray([q_task == candidates[i][1] for i in order], dtype=bool)
    return RankedQuery(q_task, ranked_tasks, relevant)


def _pairwise_scores(
    score_fn: ScoreFn,
    query: Tuple[ProgramGraph, str],
    candidates: Sequence[Tuple[ProgramGraph, str]],
    batch_size: int,
) -> np.ndarray:
    qg, q_task = query
    pairs = [
        MatchingPair(qg, cg, int(q_task == c_task), q_task, c_task)
        for cg, c_task in candidates
    ]
    return np.concatenate(
        [
            np.atleast_1d(score_fn(pairs[i : i + batch_size]))
            for i in range(0, len(pairs), batch_size)
        ]
    )


def rank_candidates(
    score_fn: Scorer,
    query: Tuple[ProgramGraph, str],
    candidates: Sequence[Tuple[ProgramGraph, str]],
    batch_size: int = 64,
) -> RankedQuery:
    """Score a query graph against every candidate and sort descending.

    ``query`` and each candidate are ``(graph, task_name)``; relevance is
    task equality (the dataset's matching definition, §II).  An
    embedding-capable scorer (see :func:`_exposes_embeddings`) encodes the
    query and each candidate once and runs only the pair head per pair.
    """
    qg, q_task = query
    if _exposes_embeddings(score_fn):
        from repro.index.embedding_index import score_pairs_tiled

        q = score_fn.encode_graphs([qg], batch_size)
        cand = score_fn.encode_graphs([g for g, _ in candidates], batch_size)
        scores = score_pairs_tiled(score_fn, q, cand)[0]
    else:
        scores = _pairwise_scores(score_fn, query, candidates, batch_size)
    return _ranked(q_task, candidates, scores)


def evaluate_retrieval(
    score_fn: Optional[Scorer],
    queries: Sequence[Tuple[ProgramGraph, str]],
    candidates: Sequence[Tuple[ProgramGraph, str]],
    ks: Sequence[int] = (1, 3, 5, 10),
    batch_size: int = 64,
    index=None,
    candidate_keys: Optional[Sequence[str]] = None,
    mode: str = "exact",
    nprobe: int = 8,
) -> RetrievalResult:
    """Full retrieval sweep: every query ranked against all candidates.

    Queries whose task has no relevant candidate are skipped (their metrics
    are undefined); if all are skipped the result is all-zero.

    When the scorer exposes embeddings (``encode_graphs`` +
    ``score_embeddings`` — pass the :class:`MatchTrainer` itself, not its
    ``predict`` method) the sweep takes the fast path: the candidate corpus
    and the query set are each encoded once, then all Q×C scores come from
    the vectorized pair head over the tiled embedding matrices — O(Q+C)
    encoder forwards instead of O(Q×C).  Callable scorers keep the original
    per-pair path, so oracle/baseline score functions still work.

    ``index`` optionally supplies a prebuilt
    :class:`~repro.index.EmbeddingIndex` or
    :class:`~repro.index.ShardedEmbeddingIndex` whose entry *i* is
    ``candidates[i]``; candidate embeddings then come straight from the
    index (zero candidate encoder passes) and the query set is scored in
    one batched pass.  ``score_fn`` may be None in that case.
    ``candidate_keys`` optionally supplies the candidates' precomputed
    :func:`~repro.index.embedding_index.graph_fingerprint` list (entry
    *i* for ``candidates[i]``) so repeated sweeps over one corpus — the
    robustness harness scores the same candidates once per matrix cell —
    skip re-hashing every candidate graph per call; the index check below
    still runs against whatever keys are supplied.

    ``mode="ann"`` (index-backed sweeps only) ranks through the index's
    coarse quantizer, probing ``nprobe`` cells per query: unprobed
    candidates score ``-inf`` and therefore rank behind every probed one
    (stable order among themselves), which is exactly the pruning the
    recall gates in ``benchmarks/bench_index_scale.py`` measure.
    """
    if mode not in ("exact", "ann"):
        raise ValueError(f"mode must be 'exact' or 'ann', got {mode!r}")
    if mode == "ann" and index is None:
        raise ValueError("mode='ann' needs index= (a quantizer-trained sharded index)")
    cand_tasks = {c_task for _, c_task in candidates}
    kept = [q for q in queries if q[1] in cand_tasks]
    if index is not None:
        if len(index) != len(candidates):
            raise ValueError(
                f"index has {len(index)} entries for {len(candidates)} candidates"
            )
        # Entry i must BE candidates[i]: index keys are content hashes of
        # the indexed graphs, so a reordered / foreign index is caught here
        # instead of silently mis-attributing scores to candidates.
        from repro.index.embedding_index import graph_fingerprint, model_fingerprint

        if candidate_keys is None:
            candidate_keys = [graph_fingerprint(g) for g, _ in candidates]
        if index.keys != list(candidate_keys):
            raise ValueError(
                "index entries do not match the candidate graphs (same "
                "graphs in the same order required); rebuild the index "
                "from this candidate list"
            )
        # Scoring runs entirely through the index's model, so a scorer
        # passed alongside must verifiably be the same checkpoint — a
        # trainer is fingerprint-checked, while a plain callable (bound
        # predict method, oracle fn) cannot be verified and is rejected
        # rather than silently ignored.
        if score_fn is not None and score_fn is not index.trainer:
            if not (hasattr(score_fn, "model") and hasattr(score_fn, "tokenizer")):
                raise ValueError(
                    "a callable scorer cannot be checked against index=; "
                    "pass the trainer itself or score_fn=None"
                )
            if model_fingerprint(score_fn) != model_fingerprint(index.trainer):
                raise ValueError(
                    "index was built by a different model than the scorer "
                    "(weight/tokenizer fingerprint mismatch)"
                )
        if mode == "ann":
            hit_lists = index.topk_batch(
                [g for g, _ in kept],
                k=None,
                batch_size=batch_size,
                mode="ann",
                nprobe=nprobe,
            )
            all_scores = np.full(
                (len(kept), len(candidates)), -np.inf, dtype=np.float32
            )
            for row, hit_list in zip(all_scores, hit_lists):
                for hit in hit_list:
                    row[hit.index] = hit.score
        else:
            all_scores = index.scores_batch(
                [g for g, _ in kept], batch_size=batch_size
            )
        rankings = [
            _ranked(q_task, candidates, row)
            for (_, q_task), row in zip(kept, all_scores)
        ]
    elif score_fn is None:
        raise ValueError("pass a scorer, an index, or both")
    elif _exposes_embeddings(score_fn) and kept and candidates:
        from repro.index.embedding_index import score_pairs_tiled

        cand_emb = score_fn.encode_graphs([g for g, _ in candidates], batch_size)
        query_emb = score_fn.encode_graphs([g for g, _ in kept], batch_size)
        all_scores = score_pairs_tiled(score_fn, query_emb, cand_emb)
        rankings = [
            _ranked(q_task, candidates, row)
            for (_, q_task), row in zip(kept, all_scores)
        ]
    else:
        rankings = [rank_candidates(score_fn, q, candidates, batch_size) for q in kept]
    rrs: List[float] = []
    hits: Dict[int, List[float]] = {k: [] for k in ks}
    aps: List[float] = []
    for ranked in rankings:
        first = ranked.first_relevant_rank
        rrs.append(1.0 / first if first else 0.0)
        for k in ks:
            hits[k].append(1.0 if first and first <= k else 0.0)
        aps.append(_average_precision(ranked.relevant))
    n = len(rrs)
    if n == 0:
        return RetrievalResult(0.0, {k: 0.0 for k in ks}, 0.0, 0)
    return RetrievalResult(
        mrr=float(np.mean(rrs)),
        hit_at={k: float(np.mean(v)) for k, v in hits.items()},
        mean_average_precision=float(np.mean(aps)),
        num_queries=n,
    )


def _average_precision(relevant: np.ndarray) -> float:
    """AP over one ranking (precision at each relevant position)."""
    hits = np.flatnonzero(relevant)
    if hits.size == 0:
        return 0.0
    precisions = (np.arange(hits.size) + 1.0) / (hits + 1.0)
    return float(precisions.mean())


def retrieval_corpus_from_samples(
    samples: Sequence,
    side: str,
) -> List[Tuple[ProgramGraph, str]]:
    """Build a (graph, task) list from :class:`CodeSample` objects.

    ``side`` selects the view: ``"binary"`` (decompiled graph) or
    ``"source"`` (front-end graph).
    """
    if side not in ("binary", "source"):
        raise ValueError(f"unknown side {side!r}")
    return [
        (s.decompiled_graph if side == "binary" else s.source_graph, s.task)
        for s in samples
    ]
