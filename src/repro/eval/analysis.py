"""Failure analysis: node-count statistics per confusion cell (Table VII)."""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np

from repro.data.pairs import MatchingPair


def node_count_statistics(
    pairs: Sequence[MatchingPair],
    labels: np.ndarray,
    predictions: np.ndarray,
) -> Dict[str, Dict[str, float]]:
    """Mean/median *difference in node counts* per confusion cell.

    The paper observed FP pairs have a far larger node-count gap than TP
    pairs (median ~50% larger); this reproduces that table.  Also records
    mean/median of total nodes per cell.
    """
    labels = np.asarray(labels).astype(bool)
    predictions = np.asarray(predictions).astype(bool)
    cells = {
        "true_positive": labels & predictions,
        "false_positive": ~labels & predictions,
        "true_negative": ~labels & ~predictions,
        "false_negative": labels & ~predictions,
    }
    diffs = np.asarray([abs(p.left.num_nodes - p.right.num_nodes) for p in pairs])
    totals = np.asarray([p.left.num_nodes + p.right.num_nodes for p in pairs])
    out: Dict[str, Dict[str, float]] = {}
    for name, mask in cells.items():
        if mask.any():
            out[name] = {
                "count": int(mask.sum()),
                "mean_nodes": float(np.mean(totals[mask])),
                "median_nodes": float(np.median(totals[mask])),
                "mean_diff": float(np.mean(diffs[mask])),
                "median_diff": float(np.median(diffs[mask])),
            }
        else:
            out[name] = {
                "count": 0,
                "mean_nodes": float("nan"),
                "median_nodes": float("nan"),
                "mean_diff": float("nan"),
                "median_diff": float("nan"),
            }
    return out
