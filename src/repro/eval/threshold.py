"""Decision-threshold sweep (Figure 3 of the paper)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.eval.metrics import classification_metrics


@dataclass
class ThresholdPoint:
    """Metrics at one decision threshold."""

    threshold: float
    precision: float
    recall: float
    f1: float
    accuracy: float


def sweep_thresholds(
    labels: np.ndarray, scores: np.ndarray, thresholds=None
) -> List[ThresholdPoint]:
    """Precision/recall/F1/accuracy across thresholds (default 0.05..0.95)."""
    if thresholds is None:
        thresholds = np.round(np.arange(0.05, 0.96, 0.05), 2)
    points = []
    for th in thresholds:
        m = classification_metrics(labels, np.asarray(scores) >= th)
        points.append(
            ThresholdPoint(
                threshold=float(th),
                precision=m.precision,
                recall=m.recall,
                f1=m.f1,
                accuracy=m.accuracy,
            )
        )
    return points


def _candidate_thresholds(scores: np.ndarray) -> np.ndarray:
    """Score midpoints plus a coarse grid.

    A fixed grid alone misses the optimum when a model's scores compress
    into a narrow band (a sigmoid head at CPU scale pushes most mass toward
    the ends); midpoints between consecutive distinct scores cover every
    achievable confusion matrix, like an ROC sweep.
    """
    grid = np.round(np.arange(0.05, 0.96, 0.05), 2)
    uniq = np.unique(np.asarray(scores, dtype=np.float64))
    if uniq.size >= 2:
        mids = (uniq[1:] + uniq[:-1]) / 2.0
        return np.unique(np.concatenate([grid, mids]))
    return grid


def best_threshold(labels: np.ndarray, scores: np.ndarray, metric: str = "f1") -> float:
    """Threshold maximizing the requested metric (paper §V-A)."""
    points = sweep_thresholds(labels, scores, _candidate_thresholds(scores))
    return max(points, key=lambda p: getattr(p, metric)).threshold
