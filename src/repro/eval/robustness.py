"""Robustness evaluation: retrieval quality under binary transformations.

The paper's tables measure matching on *clean* compiler output.  Real
provenance and similarity tooling faces adversarial inputs: binaries that
were inlined differently, padded with dead code, instruction-substituted,
register-renamed or laid out in a different block order.  This harness
answers the table the paper does not have — a **robustness matrix** of
retrieval quality (MRR / Hit@k / MAP) per transform chain per intensity.

The evaluation is engineered around the same encode-once economics as the
serving layer:

* the **clean candidate corpus is embedded exactly once** into a
  :class:`~repro.index.ShardedEmbeddingIndex` persisted at ``index_root``
  — warm runs ``open()`` it and never re-encode a candidate;
* transformed query binaries are compiled through the staged pipeline
  with transform-qualified :class:`~repro.artifacts.ArtifactKey` entries,
  so warm runs load every variant from the artifact store instead of
  recompiling;
* only the transformed **query graphs** are re-embedded per cell — the
  O(Q) side of the O(Q + C) split.

``benchmarks/bench_robustness.py`` gates all three properties (plus
transform determinism) and records the matrix in
``benchmarks/perf/BENCH_robustness.json``; the CLI front-end is
``python -m repro robustness``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.artifacts import ArtifactStore
from repro.config import DataConfig
from repro.data.corpus import CodeSample, CorpusBuilder
from repro.eval.retrieval import RetrievalResult, evaluate_retrieval
from repro.graphs.programl import ProgramGraph
from repro.index import EmbeddingIndex, ShardedEmbeddingIndex, graph_fingerprint
from repro.index.sharded import MANIFEST_NAME
from repro.transform import TransformSpec, chain_id
from repro.utils.tables import Table

#: Chain names the CLI and bench sweep by default: every registered
#: transform alone, plus one representative stacked chain.
DEFAULT_CHAINS = (
    "deadcode",
    "instsub",
    "blockreorder",
    "regrename",
    "pad",
    "inline",
    "deadcode+regrename",
)

DEFAULT_INTENSITIES = (0.5, 1.0)

CLEAN = "clean"


def chain_specs(chain: str, intensity: float, seed: int) -> Tuple[TransformSpec, ...]:
    """Instantiate a ``+``-joined chain at one sweep intensity.

    Plain names (``"deadcode+regrename"``) take the sweep's ``intensity``
    and ``seed`` — the usual case, keeping the matrix two-dimensional.
    Spec-grammar decorations pin their own knob independently: ``@`` pins
    the intensity (``"deadcode@0.25"`` ignores the sweep intensity), ``~``
    pins the seed (``"deadcode~9"`` ignores the sweep seed but still
    sweeps intensity).  Unknown names and malformed specs raise
    :class:`~repro.transform.TransformError` here, before any compilation.
    """
    specs = []
    for part in chain.split("+"):
        part = part.strip()
        if not part:
            continue
        parsed = TransformSpec.parse(part)
        specs.append(
            TransformSpec(
                parsed.name,
                parsed.intensity if "@" in part else intensity,
                parsed.seed if "~" in part else seed,
            )
        )
    return tuple(specs)


@dataclass
class RobustnessCell:
    """One matrix cell: a transform chain at one intensity.

    ``spec`` records the canonical chain id actually compiled (empty for
    the clean baseline) — the ground truth when chain elements pin their
    own intensity/seed and the sweep labels alone would mislead.
    """

    chain: str  # display name ("clean" or e.g. "deadcode+regrename")
    intensity: float
    result: RetrievalResult
    spec: str = ""

    def to_dict(self) -> dict:
        """JSON-ready metrics (what the perf record persists).

        One ``hit<k>`` entry per rank the sweep actually computed — a
        rank not in ``ks`` is absent, never reported as a 0.0 that would
        read as catastrophic retrieval failure.
        """
        out = {
            "mrr": self.result.mrr,
            "map": self.result.mean_average_precision,
            "num_queries": self.result.num_queries,
        }
        for k in sorted(self.result.hit_at):
            out[f"hit{k}"] = self.result.hit_at[k]
        return out


@dataclass
class RobustnessReport:
    """The full sweep: clean baseline plus every (chain, intensity) cell."""

    cells: List[RobustnessCell] = field(default_factory=list)
    num_candidates: int = 0
    num_queries: int = 0

    @property
    def clean(self) -> RobustnessCell:
        """The untransformed baseline cell."""
        for cell in self.cells:
            if cell.chain == CLEAN:
                return cell
        raise ValueError("report has no clean baseline cell")

    def matrix(self) -> Dict[str, Dict[str, dict]]:
        """``{chain: {intensity: metrics}}`` — the Table-style matrix.

        Each metrics dict carries the canonical ``spec`` actually
        compiled, so pinned chain elements are unambiguous in the JSON.
        """
        out: Dict[str, Dict[str, dict]] = {}
        for cell in self.cells:
            d = cell.to_dict()
            if cell.spec:
                d["spec"] = cell.spec
            out.setdefault(cell.chain, {})[f"{cell.intensity:g}"] = d
        return out

    def render(self) -> str:
        """Human-readable robustness table, rows in sweep order (clean first)."""
        table = Table(
            f"Retrieval robustness: {self.num_queries} transformed queries "
            f"x {self.num_candidates} clean candidates",
            ["Transform", "Intensity", "MRR", "Hit@1", "Hit@5", "MAP"],
        )
        for cell in self.cells:
            hit_at = cell.result.hit_at

            def shown(k: int) -> object:
                return round(hit_at[k], 3) if k in hit_at else "-"

            table.add_row(
                cell.chain,
                f"{cell.intensity:g}",
                round(cell.result.mrr, 3),
                shown(1),
                shown(5),
                round(cell.result.mean_average_precision, 3),
            )
        return table.render()


class RobustnessHarness:
    """Sweep transform chains against a clean retrieval corpus.

    Parameters
    ----------
    trainer:
        A trained :class:`~repro.core.trainer.MatchTrainer`.
    config:
        Corpus coordinates (:class:`~repro.config.DataConfig`); the same
        generator determinism contract as every other workload.
    source_languages / query_language:
        Candidate corpus languages (source graphs, indexed clean) and the
        query-side language (compiled to binaries, transformed,
        decompiled, embedded per cell).
    store:
        Optional :class:`~repro.artifacts.ArtifactStore` shared by the
        clean corpus build *and* every transformed variant; warm runs
        recompile nothing.
    index_root:
        Optional directory for the persisted sharded clean index.  When
        it already holds an index for this model, it is opened instead of
        rebuilt — zero candidate encoder passes on warm runs.
    transform_seed:
        Seed handed to every :class:`~repro.transform.TransformSpec` the
        sweep instantiates.
    max_queries:
        Cap on the query set (0 = all query-language samples).
    mode / nprobe / quantizer_cells:
        ``mode="ann"`` scores every cell through the clean index's coarse
        quantizer (probing ``nprobe`` cells per query) instead of the
        exact sweep — requires ``index_root`` (the quantizer lives in the
        persisted manifest).  ``quantizer_cells`` sets how many k-means
        cells to train when the index is built here (0 = ``sqrt(C)``,
        clamped to the corpus).
    """

    def __init__(
        self,
        trainer,
        config: DataConfig,
        source_languages: Sequence[str] = ("java",),
        query_language: str = "c",
        store: Optional[ArtifactStore] = None,
        index_root=None,
        shard_size: int = 16,
        transform_seed: int = 0,
        max_queries: int = 0,
        mode: str = "exact",
        nprobe: int = 8,
        quantizer_cells: int = 0,
    ):  # noqa: D107
        if trainer.model is None:
            raise ValueError("trainer has no trained model")
        if mode not in ("exact", "ann"):
            raise ValueError(f"mode must be 'exact' or 'ann', got {mode!r}")
        if mode == "ann" and index_root is None:
            raise ValueError(
                "mode='ann' needs index_root= (the coarse quantizer is "
                "persisted in the sharded index manifest)"
            )
        self.trainer = trainer
        self.config = config
        self.source_languages = list(source_languages)
        self.query_language = query_language
        self.store = store
        self.index_root = Path(index_root) if index_root is not None else None
        self.shard_size = shard_size
        self.transform_seed = transform_seed
        self.max_queries = max_queries
        self.mode = mode
        self.nprobe = nprobe
        self.quantizer_cells = quantizer_cells
        self.builder = CorpusBuilder(config, store=store)
        # One pipeline for clean corpus builds and transformed-query
        # compiles alike: shared store, shared timer.
        self.pipeline = self.builder.pipeline
        self._candidates: Optional[List[Tuple[ProgramGraph, str]]] = None
        self._candidate_keys: Optional[List[str]] = None
        self._query_samples: Optional[List[CodeSample]] = None
        self._index = None

    # ------------------------------------------------------------- corpus
    def _build_corpus(self) -> None:
        languages = list(self.source_languages)
        if self.query_language not in languages:
            languages.append(self.query_language)
        samples = self.builder.build(languages)
        self._candidates = [
            (s.source_graph, s.task)
            for s in samples
            if s.language in self.source_languages
        ]
        queries = [s for s in samples if s.language == self.query_language]
        if self.max_queries:
            queries = queries[: self.max_queries]
        self._query_samples = queries

    @property
    def candidates(self) -> List[Tuple[ProgramGraph, str]]:
        """Clean candidate ``(source graph, task)`` pairs, build order."""
        if self._candidates is None:
            self._build_corpus()
        return self._candidates

    @property
    def candidate_keys(self) -> List[str]:
        """Candidate graph fingerprints, hashed once for the whole sweep.

        Every matrix cell re-validates the clean index against the
        candidate corpus; hashing C graphs once here instead of once per
        cell keeps that check O(C) total rather than O(cells × C).
        """
        if self._candidate_keys is None:
            self._candidate_keys = [
                graph_fingerprint(g) for g, _ in self.candidates
            ]
        return self._candidate_keys

    @property
    def query_samples(self) -> List[CodeSample]:
        """Clean query-language samples (the transform substrate)."""
        if self._query_samples is None:
            self._build_corpus()
        return self._query_samples

    def clean_queries(self) -> List[Tuple[ProgramGraph, str]]:
        """Untransformed query ``(decompiled graph, task)`` pairs."""
        return [(s.decompiled_graph, s.task) for s in self.query_samples]

    # -------------------------------------------------------------- index
    def clean_index(self):
        """The clean candidate index: open the persisted one, else build.

        With an ``index_root``, the built index is sharded to disk so the
        next harness (or process) reuses the cached clean embeddings; the
        model fingerprint in the manifest guards against serving another
        checkpoint's embeddings.
        """
        if self._index is not None:
            return self._index
        if self.index_root is not None and (self.index_root / MANIFEST_NAME).exists():
            self._index = ShardedEmbeddingIndex.open(self.index_root, self.trainer)
            self._ensure_quantizer()
            return self._index
        index = EmbeddingIndex(self.trainer)
        index.add(
            [g for g, _ in self.candidates],
            metas=[{"task": task} for _, task in self.candidates],
        )
        if self.index_root is not None:
            ShardedEmbeddingIndex.from_index(
                index, self.index_root, self.shard_size, overwrite=True
            )
            self._index = ShardedEmbeddingIndex.open(self.index_root, self.trainer)
            self._ensure_quantizer()
        else:
            self._index = index
        return self._index

    def _ensure_quantizer(self) -> None:
        """In ann mode, make sure the opened index carries a quantizer.

        A persisted index built by an exact-mode run lacks one; training
        it here (and rewriting the manifest) upgrades the cache in place,
        so warm exact runs and later ann runs share one clean index.
        """
        if self.mode != "ann" or self._index.quantizer is not None:
            return
        cells = self.quantizer_cells
        if cells <= 0:
            cells = max(1, int(round(len(self._index) ** 0.5)))
        self._index.train_quantizer(min(cells, len(self._index)))

    # ------------------------------------------------------------ queries
    def transformed_queries(
        self, chain: str, intensity: float
    ) -> List[Tuple[ProgramGraph, str]]:
        """Compile every query sample under a transform chain.

        Each variant is keyed in the artifact store by its canonical
        chain id, so re-runs (and other processes) load the transformed
        compilation instead of redoing it.
        """
        specs = chain_specs(chain, intensity, self.transform_seed)
        canonical = chain_id(specs)
        out: List[Tuple[ProgramGraph, str]] = []
        for s in self.query_samples:
            key = None
            if self.store is not None:
                key = self.builder.artifact_key(
                    s.task, s.variant, s.language, s.opt_level, s.compiler,
                    transforms=canonical,
                )
            result = self.pipeline.compile(
                s.source_text,
                s.language,
                name=s.identifier,
                opt_level=s.opt_level,
                compiler=s.compiler,
                cache_key=key,
                transforms=specs,
            )
            out.append((result.decompiled_graph, s.task))
        return out

    # -------------------------------------------------------------- sweep
    def evaluate(
        self,
        chains: Sequence[str] = DEFAULT_CHAINS,
        intensities: Sequence[float] = DEFAULT_INTENSITIES,
        ks: Sequence[int] = (1, 3, 5, 10),
    ) -> RobustnessReport:
        """Run the full sweep: clean baseline plus every chain × intensity.

        Every cell scores through the one clean index —
        :func:`~repro.eval.retrieval.evaluate_retrieval`'s ``index=`` path
        verifies entry-by-entry that the index really is this candidate
        corpus under this model, so cached embeddings can never silently
        drift from the graphs they claim to represent.

        Chains whose elements pin their own intensity (``"deadcode@0.25"``)
        resolve to the same canonical spec at every sweep intensity; only
        the first occurrence is evaluated, so the matrix never repeats (or
        mislabels) a byte-identical cell.
        """
        index = self.clean_index()
        report = RobustnessReport(
            num_candidates=len(self.candidates),
            num_queries=len(self.query_samples),
        )
        clean = evaluate_retrieval(
            None, self.clean_queries(), self.candidates, ks=ks, index=index,
            candidate_keys=self.candidate_keys,
            mode=self.mode, nprobe=self.nprobe,
        )
        report.cells.append(RobustnessCell(CLEAN, 0.0, clean))
        seen = set()
        for chain in chains:
            for intensity in intensities:
                canonical = chain_id(
                    chain_specs(chain, intensity, self.transform_seed)
                )
                if canonical in seen:
                    continue
                seen.add(canonical)
                queries = self.transformed_queries(chain, intensity)
                result = evaluate_retrieval(
                    None, queries, self.candidates, ks=ks, index=index,
                    candidate_keys=self.candidate_keys,
                    mode=self.mode, nprobe=self.nprobe,
                )
                report.cells.append(
                    RobustnessCell(chain, float(intensity), result, spec=canonical)
                )
        return report
