"""Coarse quantizer: deterministic k-means over candidate embeddings.

The scalable index (``ShardedEmbeddingIndex``) prunes a query's candidate
set *before* the exact pair-head rescoring pass: every corpus entry is
assigned to one of ``num_cells`` k-means cells at build time, and a query
only scores the entries living in its ``nprobe`` most promising cells.
This module owns the cell geometry:

* :meth:`CoarseQuantizer.fit` — Lloyd's algorithm with a k-means++-style
  seeding, pure numpy, fully deterministic for a given ``(seed, data)``
  (every random draw comes from one :func:`~repro.utils.rng.derive_rng`
  stream; empty cells are reseeded to the currently-farthest points in a
  fixed order, not resampled);
* :meth:`assign` — exact nearest-centroid cell ids for a matrix of rows,
  computed block-wise so the distance matrix never materializes at
  corpus scale;
* :meth:`to_manifest` / :meth:`from_manifest` — JSON round trip through
  the index manifest.  Centroids travel as float64 lists, which represent
  every float32 value exactly, so a reopened index probes bit-identical
  cells.

The quantizer is deliberately metric-agnostic: it partitions embedding
space by L2, while *query-time* cell ranking is done by the caller with
the learned pair head (see ``ShardedEmbeddingIndex._ann_candidates``) so
the pruning order agrees with the scorer that produces the final ranking.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.utils.rng import derive_rng

# Assignment works on row blocks so the (rows, cells) distance matrix is
# bounded regardless of corpus size.
_ASSIGN_BLOCK_ROWS = 8192


def _nearest(
    x: np.ndarray, centroids: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Per-row ``(argmin cell, squared L2 distance)`` against ``centroids``."""
    assign = np.empty(x.shape[0], dtype=np.int32)
    dist = np.empty(x.shape[0], dtype=np.float64)
    c64 = centroids.astype(np.float64)
    c_sq = np.einsum("kd,kd->k", c64, c64)
    for start in range(0, x.shape[0], _ASSIGN_BLOCK_ROWS):
        block = x[start : start + _ASSIGN_BLOCK_ROWS].astype(np.float64)
        d2 = np.einsum("nd,nd->n", block, block)[:, None]
        d2 = d2 - 2.0 * (block @ c64.T) + c_sq[None, :]
        best = np.argmin(d2, axis=1)
        rows = np.arange(block.shape[0])
        assign[start : start + block.shape[0]] = best.astype(np.int32)
        dist[start : start + block.shape[0]] = np.maximum(d2[rows, best], 0.0)
    return assign, dist


class CoarseQuantizer:
    """A fitted set of k-means centroids partitioning embedding space."""

    def __init__(self, centroids: np.ndarray):  # noqa: D107
        centroids = np.atleast_2d(np.asarray(centroids, dtype=np.float32))
        if centroids.shape[0] < 1:
            raise ValueError("a quantizer needs at least one centroid")
        self.centroids = centroids

    @property
    def num_cells(self) -> int:
        """How many cells the quantizer partitions space into."""
        return self.centroids.shape[0]

    @property
    def dim(self) -> int:
        """Embedding dimensionality the centroids live in."""
        return self.centroids.shape[1]

    # -------------------------------------------------------------- fitting
    @classmethod
    def fit(
        cls,
        embeddings: np.ndarray,
        num_cells: int,
        seed: int = 0,
        iters: int = 8,
    ) -> "CoarseQuantizer":
        """Fit ``num_cells`` centroids to ``embeddings`` deterministically.

        ``num_cells`` is clamped to the number of training rows.  The same
        ``(embeddings, num_cells, seed, iters)`` always produces the same
        centroids, bit for bit — the property every recall-vs-exact gate
        in the benches relies on.
        """
        x = np.atleast_2d(np.asarray(embeddings, dtype=np.float32))
        n = x.shape[0]
        if n == 0:
            raise ValueError("cannot fit a quantizer on zero embeddings")
        if num_cells < 1:
            raise ValueError(f"num_cells must be >= 1, got {num_cells}")
        if iters < 1:
            raise ValueError(f"iters must be >= 1, got {iters}")
        k = min(int(num_cells), n)
        rng = derive_rng(seed, "coarse-quantizer", n, k)
        centroids = np.empty((k, x.shape[1]), dtype=np.float32)
        # k-means++-style seeding: first centroid uniform, later ones drawn
        # proportionally to squared distance from the chosen set.
        centroids[0] = x[int(rng.integers(n))]
        _, d2 = _nearest(x, centroids[:1])
        for j in range(1, k):
            total = float(d2.sum())
            if total <= 0.0:
                # All remaining mass sits on already-chosen points
                # (duplicate-heavy data): fall back to a uniform draw.
                choice = int(rng.integers(n))
            else:
                choice = int(rng.choice(n, p=d2 / total))
            centroids[j] = x[choice]
            _, dj = _nearest(x, centroids[j : j + 1])
            d2 = np.minimum(d2, dj)
        for _ in range(iters):
            assign, dist = _nearest(x, centroids)
            counts = np.bincount(assign, minlength=k)
            sums = np.zeros((k, x.shape[1]), dtype=np.float64)
            np.add.at(sums, assign, x.astype(np.float64))
            updated = centroids.copy()
            nonempty = counts > 0
            updated[nonempty] = (
                sums[nonempty] / counts[nonempty, None]
            ).astype(np.float32)
            # Reseed empty cells from the farthest points, in a fixed
            # order, so k distinct training rows always yield k distinct,
            # non-empty cells.
            empty = np.flatnonzero(~nonempty)
            if empty.size:
                farthest = np.argsort(-dist, kind="stable")
                updated[empty] = x[farthest[: empty.size]]
            if np.array_equal(updated, centroids):
                break
            centroids = updated
        return cls(centroids)

    # ------------------------------------------------------------- queries
    def assign(self, embeddings: np.ndarray) -> np.ndarray:
        """Nearest-centroid cell id for every row, ``(N,) int32``."""
        x = np.atleast_2d(np.asarray(embeddings, dtype=np.float32))
        if x.shape[0] == 0:
            return np.zeros(0, dtype=np.int32)
        if x.shape[1] != self.dim:
            raise ValueError(f"rows have dim {x.shape[1]}, quantizer has {self.dim}")
        assign, _ = _nearest(x, self.centroids)
        return assign

    def nearest_cells(self, query: np.ndarray, nprobe: int) -> np.ndarray:
        """The ``nprobe`` cells nearest to each query row by L2, ``(Q, P)``.

        A geometric fallback; the index's ANN path ranks cells with the
        pair head instead, so retrieval pruning agrees with the scorer.
        """
        if nprobe < 1:
            raise ValueError(f"nprobe must be >= 1, got {nprobe}")
        q = np.atleast_2d(np.asarray(query, dtype=np.float32)).astype(np.float64)
        c64 = self.centroids.astype(np.float64)
        d2 = (
            np.einsum("qd,qd->q", q, q)[:, None]
            - 2.0 * (q @ c64.T)
            + np.einsum("kd,kd->k", c64, c64)[None, :]
        )
        order = np.argsort(d2, axis=1, kind="stable")
        return order[:, : min(nprobe, self.num_cells)].astype(np.int32)

    # ------------------------------------------------------- serialization
    def to_manifest(self) -> dict:
        """JSON-safe manifest payload; float64 lists round-trip exactly."""
        return {
            "num_cells": self.num_cells,
            "dim": self.dim,
            "centroids": [[float(v) for v in row] for row in self.centroids],
        }

    @classmethod
    def from_manifest(cls, payload: dict) -> "CoarseQuantizer":
        """Rebuild a quantizer persisted by :meth:`to_manifest`."""
        centroids = np.asarray(payload["centroids"], dtype=np.float32)
        if centroids.ndim != 2 or centroids.shape != (
            payload["num_cells"],
            payload["dim"],
        ):
            raise ValueError(
                "manifest quantizer is corrupt: centroid shape "
                f"{centroids.shape} does not match recorded "
                f"({payload.get('num_cells')}, {payload.get('dim')})"
            )
        return cls(centroids)
