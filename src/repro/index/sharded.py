"""Sharded embedding index: a corpus split across lazily-loaded ``.npz`` shards.

:class:`~repro.index.embedding_index.EmbeddingIndex` keeps one monolithic
archive fully resident, which is the right shape for a benchmark run and
the wrong one for a long-lived retrieval service: corpora grow
incrementally (new shards, merged indexes from other machines) and a
process should not pay to materialize embeddings it never scores.

:class:`ShardedEmbeddingIndex` is a directory::

    index_dir/
      manifest.json     # schema + model fingerprint + per-shard entry counts
      shard-0000.npz    # each shard is a plain EmbeddingIndex archive
      shard-0001.npz
      ...

* the manifest is fingerprint-validated against the trainer exactly like a
  monolithic archive (same weight/tokenizer hash, same dim/pair_features
  checks), and every shard re-checks its own recorded fingerprint against
  the manifest when it is first touched;
* shards load lazily — :meth:`open` reads only the manifest, and a query
  materializes just the shards it scores (all of them for a whole-corpus
  query, a subset via ``shards=``);
* :meth:`add_shard` appends a new shard (from graphs, or from a prebuilt
  :class:`EmbeddingIndex`) and :meth:`merge` absorbs another sharded
  index's shards, both without rewriting existing shard files;
* scoring concatenates shard matrices in shard order and runs the exact
  same tiled pair-head pass as the monolithic index, so an index sharded
  with :meth:`from_index` returns **bit-identical** scores and rankings.

Entry positions are global: ``Hit.index`` counts across shards in manifest
order, matching the monolithic index the shards came from.
"""

from __future__ import annotations

import json
import os
import shutil
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.graphs.programl import ProgramGraph
from repro.index.embedding_index import (
    _META_KEY,
    EmbeddingIndex,
    Hit,
    graph_fingerprint,
    model_fingerprint,
    normalize_query_batch,
    ranked_hits,
    score_pairs_tiled,
    validate_k,
)

PathLike = Union[str, Path]

MANIFEST_NAME = "manifest.json"
_FORMAT = "sharded-embedding-index-v1"


_SHARD_GLOB = "shard-*.npz"


def _shard_name(position: int) -> str:
    return f"shard-{position:04d}.npz"


class _Shard:
    """One resident shard: aligned keys, metas and embedding rows."""

    __slots__ = ("keys", "metas", "embeddings")

    def __init__(self, keys: List[str], metas: List[dict], embeddings: np.ndarray):
        self.keys = keys
        self.metas = metas
        self.embeddings = embeddings


class ShardedEmbeddingIndex:
    """Multi-shard, lazily-loaded variant of :class:`EmbeddingIndex`."""

    def __init__(self, trainer, root: PathLike, manifest: dict):  # noqa: D107
        if trainer.model is None:
            raise ValueError("trainer has no trained model")
        self.trainer = trainer
        self.root = Path(root)
        self.dim = 2 * trainer.config.hidden_dim
        self._manifest = manifest
        self._shards: List[Optional[_Shard]] = [None] * len(manifest["shards"])
        # Whole-corpus gather cache (matrix, keys, metas) — rebuilt after
        # add_shard/merge so queries pay the flattening once, not per call.
        self._flat: Optional[Tuple[np.ndarray, List[str], List[dict]]] = None
        # Query embeddings are cached exactly like the monolithic index's:
        # an entry-less EmbeddingIndex is that cache (embed_query /
        # embed_queries, bounded LRU, duplicate batching) verbatim.
        self._encoder = EmbeddingIndex(trainer)

    # ------------------------------------------------------- construction
    @classmethod
    def create(
        cls,
        trainer,
        root: PathLike,
        tag: Optional[str] = None,
        overwrite: bool = False,
    ) -> "ShardedEmbeddingIndex":
        """Start an empty sharded index at ``root`` (created if missing).

        An existing sharded index at ``root`` is an error unless
        ``overwrite`` is set, in which case its manifest and shard files
        (and nothing else) are removed first.
        """
        root = Path(root)
        root.mkdir(parents=True, exist_ok=True)
        if (root / MANIFEST_NAME).exists():
            if not overwrite:
                raise ValueError(f"{root} already holds a sharded index")
            for shard in root.glob(_SHARD_GLOB):
                shard.unlink()
            (root / MANIFEST_NAME).unlink()
        index = cls(
            trainer,
            root,
            {
                "format": _FORMAT,
                "dim": 2 * trainer.config.hidden_dim,
                "pair_features": trainer.config.pair_features,
                "model_sha": model_fingerprint(trainer),
                "tag": tag,
                "shards": [],
            },
        )
        index._write_manifest()
        return index

    @classmethod
    def open(cls, root: PathLike, trainer) -> "ShardedEmbeddingIndex":
        """Open an existing sharded index, validating it against ``trainer``.

        Only the manifest is read; shard arrays stay on disk until a query
        touches them.
        """
        root = Path(root)
        manifest_path = root / MANIFEST_NAME
        if not manifest_path.exists():
            raise ValueError(f"{root} is not a sharded index (no {MANIFEST_NAME})")
        manifest = json.loads(manifest_path.read_text())
        if manifest.get("format") != _FORMAT:
            raise ValueError(f"{manifest_path} is not a sharded index manifest")
        index = cls(trainer, root, manifest)
        if (
            manifest["dim"] != index.dim
            or manifest["pair_features"] != trainer.config.pair_features
        ):
            raise ValueError(
                f"index built for dim={manifest['dim']}/"
                f"pair_features={manifest['pair_features']!r}, trainer has "
                f"dim={index.dim}/pair_features={trainer.config.pair_features!r}"
            )
        if manifest["model_sha"] != model_fingerprint(trainer):
            raise ValueError(
                f"{root} was built by a different model (weight/tokenizer "
                "fingerprint mismatch); rebuild the index with this checkpoint"
            )
        return index

    @classmethod
    def from_index(
        cls,
        index: EmbeddingIndex,
        root: PathLike,
        shard_entries: int,
        tag: Optional[str] = None,
        overwrite: bool = False,
    ) -> "ShardedEmbeddingIndex":
        """Shard a monolithic index into ``shard_entries``-sized pieces.

        Embeddings are copied, never re-encoded, so the sharded index
        scores bit-identically to ``index``.  ``overwrite`` replaces an
        existing sharded index at ``root`` (see :meth:`create`).
        """
        if shard_entries < 1:
            raise ValueError(f"shard_entries must be >= 1, got {shard_entries}")
        sharded = cls.create(
            index.trainer,
            root,
            tag=tag if tag is not None else index.tag,
            overwrite=overwrite,
        )
        keys, metas, matrix = index._keys, index._metas, index.embeddings
        for start in range(0, len(keys), shard_entries):
            stop = start + shard_entries
            piece = EmbeddingIndex(index.trainer)
            piece.add_precomputed(keys[start:stop], matrix[start:stop], metas[start:stop])
            sharded.add_shard(index=piece)
        return sharded

    # ------------------------------------------------------------- sizing
    def __len__(self) -> int:
        """Total entries across all shards (manifest counts, no loading)."""
        return sum(s["entries"] for s in self._manifest["shards"])

    @property
    def num_shards(self) -> int:
        """How many shards the manifest records."""
        return len(self._manifest["shards"])

    @property
    def resident_shards(self) -> int:
        """How many shards are currently materialized in memory."""
        return sum(1 for s in self._shards if s is not None)

    @property
    def tag(self) -> Optional[str]:
        """Caller-set corpus identity, persisted in the manifest."""
        return self._manifest.get("tag")

    def set_tag(self, tag: Optional[str]) -> None:
        """Update the persisted tag."""
        self._manifest["tag"] = tag
        self._write_manifest()

    # ------------------------------------------------------------ loading
    def _write_manifest(self) -> None:
        tmp = self.root / (MANIFEST_NAME + ".tmp")
        tmp.write_text(json.dumps(self._manifest, indent=2, sort_keys=True))
        os.replace(tmp, self.root / MANIFEST_NAME)

    def _load_shard(self, position: int) -> _Shard:
        entry = self._manifest["shards"][position]
        path = self.root / entry["file"]
        with np.load(path) as archive:
            if _META_KEY not in archive.files or "embeddings" not in archive.files:
                raise ValueError(f"{path} is not an EmbeddingIndex archive")
            meta = json.loads(bytes(archive[_META_KEY].tobytes()).decode("utf-8"))
            embeddings = archive["embeddings"].astype(np.float32)
        if meta.get("model_sha") != self._manifest["model_sha"]:
            raise ValueError(
                f"{path} was built by a different model than this index's "
                "manifest records; the shard set is inconsistent"
            )
        if embeddings.shape != (entry["entries"], self._manifest["dim"]):
            raise ValueError(
                f"{path} is corrupt: {embeddings.shape} embeddings for "
                f"{entry['entries']} manifest entries of dim {self._manifest['dim']}"
            )
        return _Shard(list(meta["keys"]), [dict(m) for m in meta["metas"]], embeddings)

    def _ensure(self, position: int) -> _Shard:
        if self._shards[position] is None:
            self._shards[position] = self._load_shard(position)
        return self._shards[position]

    def _resolve_shards(self, shards: Optional[Sequence[int]]) -> List[int]:
        if shards is None:
            return list(range(self.num_shards))
        out = []
        for s in shards:
            if not 0 <= s < self.num_shards:
                raise ValueError(f"no shard {s} (index has {self.num_shards})")
            out.append(int(s))
        return out

    def _gather(
        self, shards: Optional[Sequence[int]]
    ) -> Tuple[np.ndarray, List[str], List[dict]]:
        """Concatenated (embeddings, keys, metas) over the selected shards.

        The whole-corpus case (``shards=None`` — the serving hot path) is
        cached until the shard set changes.
        """
        if shards is None and self._flat is not None:
            return self._flat
        loaded = [self._ensure(p) for p in self._resolve_shards(shards)]
        if not loaded:
            matrix = np.zeros((0, self.dim), dtype=np.float32)
        else:
            matrix = np.concatenate([s.embeddings for s in loaded], axis=0)
        keys = [k for s in loaded for k in s.keys]
        gathered = (matrix, keys, [m for s in loaded for m in s.metas])
        if shards is None:
            # The flat matrix becomes the one canonical copy: re-point each
            # shard's rows at views into it (freeing the per-shard arrays)
            # and seed the query-encoder cache so queries identical to
            # indexed entries skip the encoder, like the monolithic index.
            offset = 0
            for shard in loaded:
                n = shard.embeddings.shape[0]
                shard.embeddings = matrix[offset : offset + n]
                offset += n
            self._encoder.seed_embedding_cache(keys, matrix)
            self._flat = gathered
        return gathered

    # ------------------------------------------------------------ growing
    def add_shard(
        self,
        graphs: Optional[Sequence[ProgramGraph]] = None,
        metas: Optional[Sequence[dict]] = None,
        *,
        index: Optional[EmbeddingIndex] = None,
        batch_size: int = 32,
    ) -> str:
        """Append one shard and return its file name.

        Pass either ``graphs`` (encoded here, through the shared query
        cache so duplicates of already-seen graphs skip the encoder) or a
        prebuilt ``index`` whose embeddings are written as-is.
        """
        if (graphs is None) == (index is None):
            raise ValueError("pass exactly one of graphs / index")
        if graphs is not None:
            if len(graphs) == 0:
                raise ValueError("a shard needs at least one entry")
            if metas is None:
                metas = [{} for _ in graphs]
            if len(metas) != len(graphs):
                raise ValueError("metas must match graphs 1:1")
            keys = [graph_fingerprint(g) for g in graphs]
            rows = self._encoder.embed_queries(list(graphs), batch_size)
            index = EmbeddingIndex(self.trainer)
            index.add_precomputed(keys, rows, list(metas))
        elif metas is not None:
            raise ValueError("metas only applies to the graphs form")
        if len(index) == 0:
            raise ValueError("a shard needs at least one entry")
        if index.trainer is not self.trainer and (
            model_fingerprint(index.trainer) != self._manifest["model_sha"]
        ):
            raise ValueError(
                "shard was built by a different model (weight/tokenizer "
                "fingerprint mismatch)"
            )
        if index.dim != self.dim:
            raise ValueError(f"shard has dim {index.dim}, index has {self.dim}")
        name = _shard_name(self.num_shards)
        index.save(self.root / name)
        self._manifest["shards"].append({"file": name, "entries": len(index)})
        self._write_manifest()
        resident = _Shard(
            list(index._keys), [dict(m) for m in index._metas], index.embeddings.copy()
        )
        self._shards.append(resident)
        self._encoder.seed_embedding_cache(resident.keys, resident.embeddings)
        self._flat = None
        return name

    def merge(self, other: "ShardedEmbeddingIndex") -> None:
        """Absorb every shard of ``other`` (copied, renumbered) into self."""
        if other is self or other.root.resolve() == self.root.resolve():
            raise ValueError("cannot merge a sharded index into itself")
        if other._manifest["model_sha"] != self._manifest["model_sha"]:
            raise ValueError(
                "cannot merge: indexes were built by different models "
                "(weight/tokenizer fingerprint mismatch)"
            )
        if other._manifest["dim"] != self._manifest["dim"] or (
            other._manifest["pair_features"] != self._manifest["pair_features"]
        ):
            raise ValueError("cannot merge: embedding shapes differ")
        for position, entry in enumerate(list(other._manifest["shards"])):
            name = _shard_name(self.num_shards)
            shutil.copyfile(other.root / entry["file"], self.root / name)
            self._manifest["shards"].append({"file": name, "entries": entry["entries"]})
            self._shards.append(other._shards[position])
        self._write_manifest()
        self._flat = None

    # ------------------------------------------------------------ queries
    @property
    def embeddings(self) -> np.ndarray:
        """All entry embeddings ``(C, 2H)`` in global order (loads all)."""
        return self._gather(None)[0]

    @property
    def keys(self) -> List[str]:
        """All entry keys in global order (loads all shards)."""
        return self._gather(None)[1]

    @property
    def metas(self) -> List[dict]:
        """Per-entry metadata copies in global order (loads all shards)."""
        return [dict(m) for m in self._gather(None)[2]]

    def _scored_batch(
        self,
        graphs: Optional[Sequence[ProgramGraph]],
        embeddings: Optional[np.ndarray],
        batch_size: int,
        shards: Optional[Sequence[int]],
    ) -> Tuple[np.ndarray, List[str], List[dict]]:
        """One gather + one scoring pass: ``((Q, C) scores, keys, metas)``.

        The single implementation behind :meth:`scores`,
        :meth:`scores_batch`, :meth:`topk` and :meth:`topk_batch`, so the
        shard concatenation and metadata flattening happen once per call.
        """
        q, num_q = normalize_query_batch(graphs, embeddings, self.dim)
        if len(self) == 0:
            return np.zeros((num_q, 0), dtype=np.float32), [], []
        matrix, keys, metas = self._gather(shards)
        if num_q == 0 or matrix.shape[0] == 0:
            return (
                np.zeros((num_q, matrix.shape[0]), dtype=np.float32),
                keys,
                metas,
            )
        if q is None:
            q = self._encoder.embed_queries(graphs, batch_size)
        return score_pairs_tiled(self.trainer, q, matrix), keys, metas

    def scores(
        self,
        graph: Optional[ProgramGraph] = None,
        *,
        embedding: Optional[np.ndarray] = None,
        shards: Optional[Sequence[int]] = None,
    ) -> np.ndarray:
        """Pair-head scores against every (selected-shard) entry."""
        if embedding is not None:
            embedding = np.asarray(embedding, dtype=np.float32).reshape(1, -1)
        scores, _, _ = self._scored_batch(
            None if graph is None else [graph], embedding, 32, shards
        )
        return scores[0]

    def scores_batch(
        self,
        graphs: Optional[Sequence[ProgramGraph]] = None,
        *,
        embeddings: Optional[np.ndarray] = None,
        batch_size: int = 32,
        shards: Optional[Sequence[int]] = None,
    ) -> np.ndarray:
        """All pair-head scores ``(Q, C)``, one batched encode + one pass."""
        scores, _, _ = self._scored_batch(graphs, embeddings, batch_size, shards)
        return scores

    def topk(
        self,
        graph: Optional[ProgramGraph] = None,
        k: Optional[int] = None,
        *,
        embedding: Optional[np.ndarray] = None,
        shards: Optional[Sequence[int]] = None,
    ) -> List[Hit]:
        """Top-k entries by descending score (all entries when k is None).

        ``Hit.index`` is the position within the scored entry set: global
        when ``shards`` is None, shard-subset-relative otherwise.
        """
        validate_k(k)
        if embedding is not None:
            embedding = np.asarray(embedding, dtype=np.float32).reshape(1, -1)
        scores, keys, metas = self._scored_batch(
            None if graph is None else [graph], embedding, 32, shards
        )
        return ranked_hits(scores[0], keys, metas, k)

    def topk_batch(
        self,
        graphs: Optional[Sequence[ProgramGraph]] = None,
        k: Optional[int] = None,
        *,
        embeddings: Optional[np.ndarray] = None,
        batch_size: int = 32,
        shards: Optional[Sequence[int]] = None,
    ) -> List[List[Hit]]:
        """Per-query top-k hit lists for Q queries in one batched pass."""
        validate_k(k)
        scores, keys, metas = self._scored_batch(
            graphs, embeddings, batch_size, shards
        )
        return [ranked_hits(row, keys, metas, k) for row in scores]


def open_index(path: PathLike, trainer):
    """Open either index flavor: a sharded directory or a monolithic ``.npz``.

    The CLI's loader: ``repro serve`` and ``repro index query`` accept
    both, dispatching on what is actually on disk.
    """
    p = Path(path)
    if p.is_dir() or (p / MANIFEST_NAME).exists():
        return ShardedEmbeddingIndex.open(p, trainer)
    return EmbeddingIndex.load(path, trainer)
