"""Sharded embedding index: a corpus split across lazily-loaded shards.

:class:`~repro.index.embedding_index.EmbeddingIndex` keeps one monolithic
archive fully resident, which is the right shape for a benchmark run and
the wrong one for a long-lived retrieval service: corpora grow
incrementally (new shards, merged indexes from other machines) and a
process should not pay to materialize embeddings it never scores.

:class:`ShardedEmbeddingIndex` is a directory::

    index_dir/
      manifest.json          # schema + model fingerprint + codec + quantizer
      shard-0000.npz         # float32 codec: plain EmbeddingIndex archives
      shard-0001.npz
      ...
    index_dir/               # quantized codecs (int8 / fp16)
      manifest.json
      shard-0000.npy         # raw array, opened with np.load(mmap_mode="r")
      shard-0000.meta.json   # keys, metas, model fingerprint, int8 scale
      shard-0000.cells.npy   # coarse-quantizer cell ids (when trained)
      ...

Two scoring regimes share the directory layout:

* **exact** (the reference) — every entry is scored by the pair head.
  The float32 codec keeps the original flat-matrix hot path, so an index
  sharded with :meth:`from_index` returns **bit-identical** scores and
  rankings to the monolithic index it came from.  Quantized codecs score
  block-by-block straight off the memory map, fanned out across shards on
  a thread pool, so resident memory is bounded by the scoring blocks —
  not the corpus.
* **ann** — a :class:`~repro.index.quantizer.CoarseQuantizer` persisted
  in the manifest assigns every entry to a cell; a query ranks the cell
  centroids with the *pair head* (so pruning agrees with the scorer),
  rescores only the entries in its ``nprobe`` best cells, and merges the
  per-shard partial top-k lists with a heap.  Recall against the exact
  path is gated by ``benchmarks/bench_index_scale.py``.

Format history: v1 manifests (``sharded-embedding-index-v1``, float32
``.npz`` shards only) are still readable; ``INDEX_FORMAT_VERSION`` 2 adds
the ``codec`` and ``quantizer`` manifest fields and the raw-``.npy``
quantized shard layout; version 3 records a sha256 per shard file (and
per sidecar / cells file) in each manifest entry, checked on load when
``verify_reads`` is on.  Older manifests open unchanged and keep
recording their origin version — checksum fields they lack simply go
unverified, and mutations add the fields entry by entry.

Entry positions are global: ``Hit.index`` counts across shards in manifest
order, matching the monolithic index the shards came from.  An index
opened with ``degraded=True`` quarantines shards whose load raises
:class:`ShardCorruption` instead of failing the query: surviving shards
keep answering, :meth:`coverage` reports the remaining corpus fraction,
and ``Hit.index`` then counts positions within the *surviving* entry set.
"""

from __future__ import annotations

import heapq
import json
import numbers
import os
import shutil
import threading
import zipfile
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro import faults
from repro.graphs.programl import ProgramGraph
from repro.index.embedding_index import (
    _META_KEY,
    EmbeddingIndex,
    Hit,
    graph_fingerprint,
    model_fingerprint,
    normalize_query_batch,
    ranked_hits,
    score_pairs_tiled,
    validate_k,
)
from repro.index.quantizer import CoarseQuantizer
from repro.nn.tensor import no_grad
from repro.utils.fsio import (
    TMP_SWEEP_AGE_SECONDS,
    env_verify_reads as _env_verify_reads,
    sha256_file,
    sweep_orphan_tmps,
)
from repro.utils.rng import derive_rng

PathLike = Union[str, Path]

MANIFEST_NAME = "manifest.json"
INDEX_FORMAT_VERSION = 3
_FORMAT_V1 = "sharded-embedding-index-v1"
_FORMAT_V2 = "sharded-embedding-index-v2"
_FORMAT = "sharded-embedding-index-v3"


class ShardCorruption(ValueError):
    """A shard (or its sidecar/cells file) is unreadable or inconsistent.

    Subclasses ``ValueError`` so strict callers keep their contract;
    degraded-mode indexes catch exactly this to quarantine the shard
    instead of failing the query.  Configuration mismatches (wrong model,
    wrong dim) deliberately stay plain ``ValueError`` — degrading around
    an operator error would mask it.
    """

#: Shard storage codecs: how embedding rows live on disk.
CODECS = ("float32", "int8", "fp16")

_SHARD_GLOB = "shard-*"

#: Rows dequantized per scoring block on the streamed exact path.
_SCORE_BLOCK_ROWS = 4096


def _shard_name(position: int, codec: str = "float32") -> str:
    ext = "npz" if codec == "float32" else "npy"
    return f"shard-{position:04d}.{ext}"


def _meta_name(position: int) -> str:
    return f"shard-{position:04d}.meta.json"


def _cells_name(position: int) -> str:
    return f"shard-{position:04d}.cells.npy"


def _quantize(matrix: np.ndarray, codec: str) -> Tuple[np.ndarray, Optional[np.ndarray]]:
    """Encode float32 rows for storage; returns ``(raw, int8 scale or None)``."""
    matrix = np.atleast_2d(np.asarray(matrix, dtype=np.float32))
    if codec == "fp16":
        return matrix.astype(np.float16), None
    if codec != "int8":
        raise ValueError(f"unknown codec {codec!r} (expected one of {CODECS})")
    # Symmetric per-dimension scale: the widest magnitude in each column
    # maps to ±127, zero-only columns get scale 1 so dequantization is a
    # plain multiply with no special cases.
    if matrix.shape[0]:
        scale = (np.abs(matrix).max(axis=0) / 127.0).astype(np.float32)
    else:
        scale = np.zeros(matrix.shape[1], dtype=np.float32)
    scale[scale == 0.0] = 1.0
    raw = np.clip(np.rint(matrix / scale), -127, 127).astype(np.int8)
    return raw, scale


def _dequantize(raw: np.ndarray, codec: str, scale: Optional[np.ndarray]) -> np.ndarray:
    """Decode stored rows back to a float32 ndarray (materializes mmap pages)."""
    if codec == "float32":
        return np.asarray(raw)
    if codec == "int8":
        return raw.astype(np.float32) * scale
    return np.asarray(raw, dtype=np.float32)


class _Shard:
    """One resident shard: aligned keys, metas and (possibly raw) rows."""

    __slots__ = ("keys", "metas", "embeddings", "codec", "scale", "cells")

    def __init__(
        self,
        keys: List[str],
        metas: List[dict],
        embeddings: np.ndarray,
        codec: str = "float32",
        scale: Optional[np.ndarray] = None,
        cells: Optional[np.ndarray] = None,
    ):
        self.keys = keys
        self.metas = metas
        self.embeddings = embeddings  # float32 matrix, or raw int8/fp16 (mmap)
        self.codec = codec
        self.scale = scale
        self.cells = cells

    @property
    def n(self) -> int:
        return len(self.keys)

    def dense(self) -> np.ndarray:
        """All rows as float32 (dequantizes the whole shard)."""
        return _dequantize(self.embeddings, self.codec, self.scale)

    def block(self, start: int, stop: int) -> np.ndarray:
        """Rows ``[start, stop)`` as float32."""
        return _dequantize(self.embeddings[start:stop], self.codec, self.scale)

    def rows(self, idx: np.ndarray) -> np.ndarray:
        """The selected rows as float32 (fancy indexing copies)."""
        return _dequantize(self.embeddings[idx], self.codec, self.scale)


class ShardedEmbeddingIndex:
    """Multi-shard, lazily-loaded variant of :class:`EmbeddingIndex`."""

    def __init__(
        self,
        trainer,
        root: PathLike,
        manifest: dict,
        degraded: bool = False,
        verify_reads: bool = False,
    ):
        """Wrap an already-parsed manifest (use :meth:`create`/:meth:`open`).

        ``degraded`` opts in to quarantine-and-continue behavior for
        corrupt shards and a corrupt quantizer payload (strict mode — the
        default — raises exactly as before).  ``verify_reads`` checks
        each file's manifest sha256 as its shard loads (also switchable
        via ``REPRO_VERIFY_READS=1``).
        """
        if trainer.model is None:
            raise ValueError("trainer has no trained model")
        self.trainer = trainer
        self.root = Path(root)
        self.dim = 2 * trainer.config.hidden_dim
        self._manifest = manifest
        self.degraded = degraded
        self.verify_reads = verify_reads or _env_verify_reads()
        # position → reason, for shards quarantined at load time (degraded
        # mode only).  Quarantine is in-memory: the on-disk quarantine /
        # repair workflow belongs to `repro fsck`.
        self.quarantined: Dict[int, str] = {}
        self.quantizer_error: Optional[str] = None
        self.codec = manifest.get("codec", "float32")
        if self.codec not in CODECS:
            raise ValueError(
                f"manifest codec {self.codec!r} is not one of {CODECS}"
            )
        payload = manifest.get("quantizer")
        try:
            self.quantizer: Optional[CoarseQuantizer] = (
                CoarseQuantizer.from_manifest(payload) if payload else None
            )
            if self.quantizer is not None and self.quantizer.dim != self.dim:
                raise ValueError(
                    f"manifest quantizer has dim {self.quantizer.dim}, "
                    f"index has {self.dim}"
                )
        except (ValueError, KeyError, TypeError) as exc:
            if not degraded:
                raise
            # A *corrupt* quantizer payload must not take down exact
            # retrieval: record why ANN is unavailable and fall back.
            # (An index that never trained a quantizer has payload=None
            # and keeps quantizer_error=None — that stays a config error
            # for callers requesting mode="ann".)
            self.quantizer = None
            self.quantizer_error = str(exc)
        self._shards: List[Optional[_Shard]] = [None] * len(manifest["shards"])
        # Whole-corpus gather cache (matrix, keys, metas) — rebuilt after
        # add_shard/merge so queries pay the flattening once, not per call.
        # Float32 codec only: quantized codecs never flatten the corpus.
        self._flat: Optional[Tuple[np.ndarray, List[str], List[dict]]] = None
        self._meta_flat: Optional[Tuple[List[str], List[dict]]] = None
        self._load_lock = threading.Lock()
        # Shard fan-out: exact streaming and ANN probing dispatch per-shard
        # work on a thread pool (numpy releases the GIL in the pair head's
        # matmuls).  Overridable per instance or via REPRO_INDEX_THREADS.
        env_threads = os.environ.get("REPRO_INDEX_THREADS")
        self.fanout_threads = (
            max(1, int(env_threads)) if env_threads else min(8, os.cpu_count() or 1)
        )
        self.score_block_rows = _SCORE_BLOCK_ROWS
        # Working-set accounting for the streamed paths: the peak number of
        # concurrently-held dequantized bytes, and the largest single block.
        # bench_index_scale asserts these stay far below the flat matrix.
        self._dequant_lock = threading.Lock()
        self._dequant_now = 0
        self.last_peak_dequant_bytes = 0
        self.last_peak_block_bytes = 0
        # Query embeddings are cached exactly like the monolithic index's:
        # an entry-less EmbeddingIndex is that cache (embed_query /
        # embed_queries, bounded LRU, duplicate batching) verbatim.
        self._encoder = EmbeddingIndex(trainer)

    # ------------------------------------------------------- construction
    @classmethod
    def create(
        cls,
        trainer,
        root: PathLike,
        tag: Optional[str] = None,
        overwrite: bool = False,
        codec: str = "float32",
    ) -> "ShardedEmbeddingIndex":
        """Start an empty sharded index at ``root`` (created if missing).

        ``codec`` fixes the storage format for every shard: ``float32``
        (the exact, bit-parity ``.npz`` layout), or ``int8`` / ``fp16``
        (raw memory-mapped ``.npy`` shards).  An existing sharded index at
        ``root`` is an error unless ``overwrite`` is set, in which case
        its manifest and shard files (and nothing else) are removed first.
        """
        if codec not in CODECS:
            raise ValueError(f"unknown codec {codec!r} (expected one of {CODECS})")
        root = Path(root)
        root.mkdir(parents=True, exist_ok=True)
        if (root / MANIFEST_NAME).exists():
            if not overwrite:
                raise ValueError(f"{root} already holds a sharded index")
            for shard in root.glob(_SHARD_GLOB):
                shard.unlink()
            (root / MANIFEST_NAME).unlink()
        index = cls(
            trainer,
            root,
            {
                "format": _FORMAT,
                "format_version": INDEX_FORMAT_VERSION,
                "codec": codec,
                "quantizer": None,
                "dim": 2 * trainer.config.hidden_dim,
                "pair_features": trainer.config.pair_features,
                "model_sha": model_fingerprint(trainer),
                "tag": tag,
                "shards": [],
            },
        )
        index._write_manifest()
        return index

    @classmethod
    def open(
        cls,
        root: PathLike,
        trainer,
        degraded: bool = False,
        verify_reads: bool = False,
    ) -> "ShardedEmbeddingIndex":
        """Open an existing sharded index, validating it against ``trainer``.

        Only the manifest is read; shard arrays stay on disk until a query
        touches them (quantized shards are memory-mapped even then).
        Legacy v1/v2 manifests open unchanged (v1 as ``codec="float32"``
        with no quantizer; both without checksum fields); the file on
        disk is not rewritten unless the index is mutated.  Opening also
        sweeps aged-out orphan temp files left by crashed writers.  See
        ``__init__`` for ``degraded`` / ``verify_reads``.
        """
        root = Path(root)
        manifest_path = root / MANIFEST_NAME
        if not manifest_path.exists():
            raise ValueError(f"{root} is not a sharded index (no {MANIFEST_NAME})")
        sweep_orphan_tmps(root, TMP_SWEEP_AGE_SECONDS)
        manifest = json.loads(manifest_path.read_text())
        fmt = manifest.get("format")
        if fmt == _FORMAT_V1:
            manifest.setdefault("format_version", 1)
            manifest.setdefault("codec", "float32")
            manifest.setdefault("quantizer", None)
        elif fmt not in (_FORMAT_V2, _FORMAT):
            raise ValueError(
                f"{manifest_path} is not a sharded index manifest this build "
                f"reads (format {fmt!r}; supported: {_FORMAT_V1}, "
                f"{_FORMAT_V2}, {_FORMAT})"
            )
        index = cls(trainer, root, manifest, degraded=degraded, verify_reads=verify_reads)
        if (
            manifest["dim"] != index.dim
            or manifest["pair_features"] != trainer.config.pair_features
        ):
            raise ValueError(
                f"index built for dim={manifest['dim']}/"
                f"pair_features={manifest['pair_features']!r}, trainer has "
                f"dim={index.dim}/pair_features={trainer.config.pair_features!r}"
            )
        if manifest["model_sha"] != model_fingerprint(trainer):
            raise ValueError(
                f"{root} was built by a different model (weight/tokenizer "
                "fingerprint mismatch); rebuild the index with this checkpoint"
            )
        return index

    @classmethod
    def from_index(
        cls,
        index: EmbeddingIndex,
        root: PathLike,
        shard_entries: int,
        tag: Optional[str] = None,
        overwrite: bool = False,
        codec: str = "float32",
        cells: int = 0,
        quantizer_seed: int = 0,
    ) -> "ShardedEmbeddingIndex":
        """Shard a monolithic index into ``shard_entries``-sized pieces.

        With the default float32 codec, embeddings are copied, never
        re-encoded, so the sharded index scores bit-identically to
        ``index``.  Quantized codecs (``int8``/``fp16``) trade that bit
        parity for memory-mapped storage.  ``cells > 0`` additionally
        trains a coarse quantizer over the corpus (see
        :meth:`train_quantizer`), enabling ``mode="ann"`` queries.
        ``overwrite`` replaces an existing sharded index at ``root``
        (see :meth:`create`).
        """
        if shard_entries < 1:
            raise ValueError(f"shard_entries must be >= 1, got {shard_entries}")
        sharded = cls.create(
            index.trainer,
            root,
            tag=tag if tag is not None else index.tag,
            overwrite=overwrite,
            codec=codec,
        )
        keys, metas, matrix = index._keys, index._metas, index.embeddings
        for start in range(0, len(keys), shard_entries):
            stop = start + shard_entries
            piece = EmbeddingIndex(index.trainer)
            piece.add_precomputed(keys[start:stop], matrix[start:stop], metas[start:stop])
            sharded.add_shard(index=piece)
        if cells > 0:
            sharded.train_quantizer(cells, seed=quantizer_seed)
        return sharded

    # ------------------------------------------------------------- sizing
    def __len__(self) -> int:
        """Total entries across all shards (manifest counts, no loading)."""
        return sum(s["entries"] for s in self._manifest["shards"])

    @property
    def num_shards(self) -> int:
        """How many shards the manifest records."""
        return len(self._manifest["shards"])

    @property
    def resident_shards(self) -> int:
        """How many shards are currently materialized in memory."""
        return sum(1 for s in self._shards if s is not None)

    @property
    def tag(self) -> Optional[str]:
        """Caller-set corpus identity, persisted in the manifest."""
        return self._manifest.get("tag")

    def set_tag(self, tag: Optional[str]) -> None:
        """Update the persisted tag."""
        self._manifest["tag"] = tag
        self._write_manifest()

    # ------------------------------------------------------------ loading
    def _write_manifest(self) -> None:
        # Per-pid temp name: two concurrent mutators each rename their own
        # file (last replace wins) instead of clobbering a shared
        # `manifest.json.tmp` mid-commit; try/finally reclaims the temp on
        # any failure.  The format/format_version fields keep recording the
        # manifest's origin (legacy manifests are not force-upgraded);
        # checksum fields are added per entry as entries are written, and
        # verification is driven by field presence, not format version.
        tmp = self.root / f".{MANIFEST_NAME}.{os.getpid()}.tmp"
        try:
            faults.hit("index.manifest.write")
            tmp.write_text(json.dumps(self._manifest, indent=2, sort_keys=True))
            faults.replace(tmp, self.root / MANIFEST_NAME, "index.manifest")
        finally:
            tmp.unlink(missing_ok=True)

    def _save_array(self, name: str, arr: np.ndarray) -> str:
        """Atomically write one ``.npy``; returns the committed sha256."""
        tmp = self.root / f".{name}.{os.getpid()}.tmp"
        try:
            faults.hit("index.array.write")
            with open(tmp, "wb") as fh:
                np.save(fh, np.ascontiguousarray(arr))
            digest = sha256_file(tmp)
            faults.replace(tmp, self.root / name, "index.array")
        finally:
            tmp.unlink(missing_ok=True)
        return digest

    def _save_json(self, name: str, payload: dict, site: str) -> str:
        """Atomically write one JSON sidecar; returns the committed sha256."""
        tmp = self.root / f".{name}.{os.getpid()}.tmp"
        try:
            tmp.write_text(json.dumps(payload))
            digest = sha256_file(tmp)
            faults.replace(tmp, self.root / name, site)
        finally:
            tmp.unlink(missing_ok=True)
        return digest

    def _verify_file(self, entry: dict, field: str, path: Path) -> None:
        """Check one shard file against its manifest checksum (when present)."""
        recorded = entry.get(field)
        if not self.verify_reads or not recorded:
            return
        try:
            actual = sha256_file(path)
        except OSError as exc:
            raise ShardCorruption(f"{path} is unreadable ({exc})") from exc
        if actual != recorded:
            raise ShardCorruption(
                f"checksum mismatch for {path.name}: manifest records "
                f"{recorded[:12]}…, file hashes to {actual[:12]}…"
            )

    def _load_shard(self, position: int) -> _Shard:
        entry = self._manifest["shards"][position]
        path = self.root / entry["file"]
        scale = None
        faults.hit("index.shard.read")
        self._verify_file(entry, "sha256", path)
        if self.codec == "float32":
            try:
                with np.load(path) as archive:
                    if _META_KEY not in archive.files or "embeddings" not in archive.files:
                        raise ShardCorruption(
                            f"{path} is not an EmbeddingIndex archive"
                        )
                    meta = json.loads(
                        bytes(archive[_META_KEY].tobytes()).decode("utf-8")
                    )
                    embeddings = archive["embeddings"].astype(np.float32, copy=False)
            except (OSError, EOFError, ValueError, KeyError, zipfile.BadZipFile) as exc:
                if isinstance(exc, ShardCorruption):
                    raise
                raise ShardCorruption(
                    f"{path} is corrupt, truncated or missing ({exc}); "
                    "rebuild the shard or run `repro fsck`"
                ) from exc
        else:
            # Raw quantized rows stay on disk: np.load returns a read-only
            # memory map, and scoring dequantizes bounded blocks of it.
            try:
                embeddings = np.load(path, mmap_mode="r", allow_pickle=False)
            except (OSError, EOFError, ValueError) as exc:
                raise ShardCorruption(
                    f"{path} is corrupt or truncated ({exc}); rebuild the shard"
                ) from exc
            meta_path = self.root / entry["meta"]
            self._verify_file(entry, "meta_sha256", meta_path)
            try:
                meta = json.loads(meta_path.read_text())
            except (OSError, ValueError) as exc:
                raise ShardCorruption(
                    f"{meta_path} is corrupt or missing ({exc}); the shard "
                    "sidecar and array must travel together"
                ) from exc
            want_dtype = np.int8 if self.codec == "int8" else np.float16
            if embeddings.dtype != want_dtype:
                raise ShardCorruption(
                    f"{path} is corrupt: dtype {embeddings.dtype} for "
                    f"codec {self.codec!r} (expected {np.dtype(want_dtype)})"
                )
            if self.codec == "int8":
                scale = np.asarray(meta.get("scale"), dtype=np.float32)
                if scale.shape != (self._manifest["dim"],):
                    raise ShardCorruption(
                        f"{meta_path} is corrupt: int8 scale has shape "
                        f"{scale.shape}, expected ({self._manifest['dim']},)"
                    )
        if meta.get("model_sha") != self._manifest["model_sha"]:
            raise ValueError(
                f"{path} was built by a different model than this index's "
                "manifest records; the shard set is inconsistent"
            )
        if embeddings.shape != (entry["entries"], self._manifest["dim"]):
            raise ShardCorruption(
                f"{path} is corrupt: {embeddings.shape} embeddings for "
                f"{entry['entries']} manifest entries of dim {self._manifest['dim']}"
            )
        cells = None
        if entry.get("cells"):
            cells_path = self.root / entry["cells"]
            self._verify_file(entry, "cells_sha256", cells_path)
            try:
                cells = np.load(cells_path, allow_pickle=False)
            except (OSError, EOFError, ValueError) as exc:
                raise ShardCorruption(
                    f"{cells_path} is corrupt or truncated ({exc}); re-run "
                    "train_quantizer() to regenerate cell assignments"
                ) from exc
            if cells.shape != (entry["entries"],):
                raise ShardCorruption(
                    f"{cells_path} is corrupt: {cells.shape} cell ids for "
                    f"{entry['entries']} manifest entries"
                )
            cells = np.asarray(cells).astype(np.int32, copy=False)
        return _Shard(
            list(meta["keys"]),
            [dict(m) for m in meta["metas"]],
            embeddings,
            codec=self.codec,
            scale=scale,
            cells=cells,
        )

    def _ensure(self, position: int) -> _Shard:
        # Double-checked under a lock: the fan-out threads may race to
        # materialize the same shard.
        shard = self._shards[position]
        if shard is None:
            with self._load_lock:
                shard = self._shards[position]
                if shard is None:
                    shard = self._load_shard(position)
                    self._shards[position] = shard
        return shard

    # --------------------------------------------------------- quarantine
    def quarantine_shard(self, position: int, reason: str) -> None:
        """Take one shard out of service (in-memory; the files stay put).

        Queries from here on score the surviving shards only; the cached
        flat gathers are invalidated so they rebuild without the
        quarantined rows.  ``repro fsck`` is the on-disk counterpart.
        """
        if not 0 <= position < self.num_shards:
            raise ValueError(f"no shard {position} (index has {self.num_shards})")
        self.quarantined[position] = reason
        self._shards[position] = None
        self._flat = None
        self._meta_flat = None

    def coverage(self) -> float:
        """Fraction of manifest entries still in service (1.0 when healthy)."""
        total = sum(s["entries"] for s in self._manifest["shards"])
        if total == 0:
            return 1.0
        lost = sum(
            self._manifest["shards"][p]["entries"] for p in self.quarantined
        )
        return 1.0 - lost / total

    def _ensure_active(self, positions: Sequence[int]) -> Tuple[List[int], List[_Shard]]:
        """Load the given shards, quarantining corrupt ones in degraded mode.

        Strict mode (the default) propagates :class:`ShardCorruption`
        exactly as before; degraded mode records the casualty and answers
        from what survives.  Already-quarantined positions are skipped.
        """
        out_positions: List[int] = []
        out_shards: List[_Shard] = []
        for position in positions:
            if position in self.quarantined:
                continue
            try:
                shard = self._ensure(position)
            except ShardCorruption as exc:
                if not self.degraded:
                    raise
                self.quarantine_shard(position, str(exc))
                continue
            out_positions.append(position)
            out_shards.append(shard)
        return out_positions, out_shards

    def _resolve_shards(self, shards: Optional[Sequence[int]]) -> List[int]:
        if shards is None:
            return list(range(self.num_shards))
        out: List[int] = []
        seen = set()
        for s in shards:
            if not 0 <= s < self.num_shards:
                raise ValueError(f"no shard {s} (index has {self.num_shards})")
            s = int(s)
            if s in seen:
                raise ValueError(
                    f"duplicate shard {s} in shards=; each shard may be "
                    "selected at most once (duplicates would duplicate "
                    "candidate rows and top-k hits)"
                )
            seen.add(s)
            out.append(s)
        return out

    def _gather(
        self, shards: Optional[Sequence[int]]
    ) -> Tuple[np.ndarray, List[str], List[dict]]:
        """Concatenated (embeddings, keys, metas) over the selected shards.

        Float32 codec only — the exact hot path whose flat matmul keeps
        bit parity with the monolithic index.  The whole-corpus case
        (``shards=None`` — the serving hot path) is cached until the
        shard set changes.
        """
        if shards is None and self._flat is not None:
            return self._flat
        _, loaded = self._ensure_active(self._resolve_shards(shards))
        if not loaded:
            matrix = np.zeros((0, self.dim), dtype=np.float32)
        else:
            matrix = np.concatenate([s.embeddings for s in loaded], axis=0)
        keys = [k for s in loaded for k in s.keys]
        gathered = (matrix, keys, [m for s in loaded for m in s.metas])
        if shards is None:
            # The flat matrix becomes the one canonical copy: re-point each
            # shard's rows at views into it (freeing the per-shard arrays)
            # and seed the query-encoder cache so queries identical to
            # indexed entries skip the encoder, like the monolithic index.
            offset = 0
            for shard in loaded:
                n = shard.embeddings.shape[0]
                shard.embeddings = matrix[offset : offset + n]
                offset += n
            self._encoder.seed_embedding_cache(keys, matrix)
            self._flat = gathered
        return gathered

    def _meta_gather(
        self, shards: Optional[Sequence[int]]
    ) -> Tuple[List[str], List[dict], List[int]]:
        """Concatenated (keys, metas) plus resolved positions — no dequant."""
        positions = self._resolve_shards(shards)
        if shards is None and self._meta_flat is not None:
            keys, metas = self._meta_flat
            return keys, metas, [p for p in positions if p not in self.quarantined]
        positions, loaded = self._ensure_active(positions)
        keys = [k for s in loaded for k in s.keys]
        metas = [m for s in loaded for m in s.metas]
        if shards is None:
            self._meta_flat = (keys, metas)
        return keys, metas, positions

    # ------------------------------------------------------------ growing
    def add_shard(
        self,
        graphs: Optional[Sequence[ProgramGraph]] = None,
        metas: Optional[Sequence[dict]] = None,
        *,
        index: Optional[EmbeddingIndex] = None,
        batch_size: int = 32,
    ) -> str:
        """Append one shard and return its file name.

        Pass either ``graphs`` (encoded here, through the shared query
        cache so duplicates of already-seen graphs skip the encoder) or a
        prebuilt ``index`` whose embeddings are written in this index's
        codec.  If a coarse quantizer is trained, the new shard's cell
        assignments are computed and persisted alongside it.
        """
        if (graphs is None) == (index is None):
            raise ValueError("pass exactly one of graphs / index")
        if graphs is not None:
            if len(graphs) == 0:
                raise ValueError("a shard needs at least one entry")
            if metas is None:
                metas = [{} for _ in graphs]
            if len(metas) != len(graphs):
                raise ValueError("metas must match graphs 1:1")
            keys = [graph_fingerprint(g) for g in graphs]
            rows = self._encoder.embed_queries(list(graphs), batch_size)
            index = EmbeddingIndex(self.trainer)
            index.add_precomputed(keys, rows, list(metas))
        elif metas is not None:
            raise ValueError("metas only applies to the graphs form")
        if len(index) == 0:
            raise ValueError("a shard needs at least one entry")
        if index.trainer is not self.trainer and (
            model_fingerprint(index.trainer) != self._manifest["model_sha"]
        ):
            raise ValueError(
                "shard was built by a different model (weight/tokenizer "
                "fingerprint mismatch)"
            )
        if index.dim != self.dim:
            raise ValueError(f"shard has dim {index.dim}, index has {self.dim}")
        position = self.num_shards
        name = _shard_name(position, self.codec)
        entry: Dict[str, object] = {"file": name, "entries": len(index)}
        shard_keys = list(index._keys)
        shard_metas = [dict(m) for m in index._metas]
        scale = None
        if self.codec == "float32":
            # Per-pid temp + replace: EmbeddingIndex.save writes in place,
            # which would leave a torn shard if this process died mid-write
            # (and lets concurrent builders clobber each other's file).
            tmp = self.root / f".{name}.{os.getpid()}.tmp.npz"
            try:
                faults.hit("index.array.write")
                index.save(tmp)
                entry["sha256"] = sha256_file(tmp)
                faults.replace(tmp, self.root / name, "index.array")
            finally:
                tmp.unlink(missing_ok=True)
            store = index.embeddings.copy()
        else:
            store, scale = _quantize(index.embeddings, self.codec)
            entry["sha256"] = self._save_array(name, store)
            meta_name = _meta_name(position)
            sidecar = {
                "keys": shard_keys,
                "metas": shard_metas,
                "model_sha": self._manifest["model_sha"],
            }
            if scale is not None:
                sidecar["scale"] = [float(v) for v in scale]
            entry["meta_sha256"] = self._save_json(meta_name, sidecar, "index.sidecar")
            entry["meta"] = meta_name
        resident = _Shard(shard_keys, shard_metas, store, codec=self.codec, scale=scale)
        if self.quantizer is not None:
            cells = self.quantizer.assign(resident.dense())
            cells_name = _cells_name(position)
            entry["cells_sha256"] = self._save_array(cells_name, cells)
            entry["cells"] = cells_name
            resident.cells = cells
        self._manifest["shards"].append(entry)
        self._write_manifest()
        self._shards.append(resident)
        if self.codec == "float32":
            # Quantized rows are lossy: seeding the query-encoder cache
            # with them would poison query-side exactness, so only the
            # float32 codec registers entry embeddings as known queries.
            self._encoder.seed_embedding_cache(resident.keys, resident.embeddings)
        self._flat = None
        self._meta_flat = None
        return name

    def merge(self, other: "ShardedEmbeddingIndex") -> None:
        """Absorb every shard of ``other`` (copied, renumbered) into self.

        Both indexes must use the same codec.  When self has a trained
        quantizer, the absorbed entries are assigned to *self's* cells
        (other's assignments, if any, belong to different centroids).
        """
        if other is self or other.root.resolve() == self.root.resolve():
            raise ValueError("cannot merge a sharded index into itself")
        if other._manifest["model_sha"] != self._manifest["model_sha"]:
            raise ValueError(
                "cannot merge: indexes were built by different models "
                "(weight/tokenizer fingerprint mismatch)"
            )
        if other._manifest["dim"] != self._manifest["dim"] or (
            other._manifest["pair_features"] != self._manifest["pair_features"]
        ):
            raise ValueError("cannot merge: embedding shapes differ")
        if other.codec != self.codec:
            raise ValueError(
                f"cannot merge: codecs differ ({other.codec!r} into {self.codec!r})"
            )
        for position, entry in enumerate(list(other._manifest["shards"])):
            new_position = self.num_shards
            name = _shard_name(new_position, self.codec)
            shutil.copyfile(other.root / entry["file"], self.root / name)
            new_entry: Dict[str, object] = {"file": name, "entries": entry["entries"]}
            # Hash what actually landed on this disk: copying with the
            # source's recorded checksum would bless a corrupt copy (and
            # pre-v3 sources recorded none).
            new_entry["sha256"] = sha256_file(self.root / name)
            if self.codec != "float32":
                meta_name = _meta_name(new_position)
                shutil.copyfile(other.root / entry["meta"], self.root / meta_name)
                new_entry["meta"] = meta_name
                new_entry["meta_sha256"] = sha256_file(self.root / meta_name)
            resident = other._shards[position]
            if self.quantizer is not None:
                source = resident if resident is not None else other._ensure(position)
                cells = self.quantizer.assign(source.dense())
                cells_name = _cells_name(new_position)
                new_entry["cells_sha256"] = self._save_array(cells_name, cells)
                new_entry["cells"] = cells_name
                resident = _Shard(
                    source.keys,
                    source.metas,
                    source.embeddings,
                    codec=self.codec,
                    scale=source.scale,
                    cells=cells,
                )
            self._manifest["shards"].append(new_entry)
            self._shards.append(resident)
        self._write_manifest()
        self._flat = None
        self._meta_flat = None

    # ---------------------------------------------------------- quantizer
    def train_quantizer(
        self,
        num_cells: int,
        seed: int = 0,
        iters: int = 8,
        max_train_rows: int = 16384,
    ) -> CoarseQuantizer:
        """Fit a coarse quantizer over the corpus and persist it.

        Centroids are fitted on at most ``max_train_rows`` rows — a
        seeded uniform subsample at corpus scale, never a stride: strided
        sampling silently drops whole clusters whenever the corpus layout
        is periodic (round-robin ingestion, interleaved sources), which
        guts recall for every query landing in an unsampled cluster.
        Then **every** entry is assigned exactly; per-shard cell ids are
        written next to the shard files and the centroids go into the
        manifest, so a reopened index probes bit-identical cells.
        Enables ``mode="ann"`` on :meth:`topk` / :meth:`topk_batch`.
        """
        total = len(self)
        if total == 0:
            raise ValueError("cannot train a quantizer on an empty index")
        if max_train_rows < 1:
            raise ValueError(f"max_train_rows must be >= 1, got {max_train_rows}")
        positions = list(range(self.num_shards))
        loaded = [self._ensure(p) for p in positions]
        if total > max_train_rows:
            rng = derive_rng(seed, "quantizer-train-sample", total, max_train_rows)
            chosen = np.sort(rng.choice(total, size=max_train_rows, replace=False))
        else:
            chosen = np.arange(total)
        sample: List[np.ndarray] = []
        offset = 0
        for shard in loaded:
            lo, hi = np.searchsorted(chosen, (offset, offset + shard.n))
            keep = chosen[lo:hi] - offset
            if keep.size:
                sample.append(shard.rows(keep))
            offset += shard.n
        quantizer = CoarseQuantizer.fit(
            np.concatenate(sample, axis=0), num_cells, seed=seed, iters=iters
        )
        for position, shard in zip(positions, loaded):
            cells = quantizer.assign(shard.dense())
            cells_name = _cells_name(position)
            digest = self._save_array(cells_name, cells)
            self._manifest["shards"][position]["cells"] = cells_name
            self._manifest["shards"][position]["cells_sha256"] = digest
            shard.cells = cells
        payload = quantizer.to_manifest()
        payload["seed"] = int(seed)
        payload["iters"] = int(iters)
        self._manifest["quantizer"] = payload
        self.quantizer = quantizer
        self._write_manifest()
        return quantizer

    # ------------------------------------------------------------ queries
    @property
    def embeddings(self) -> np.ndarray:
        """All entry embeddings ``(C, 2H)`` in global order.

        Float32 codec: the cached flat matrix (loads all shards).
        Quantized codecs: a fresh dequantized copy — a debugging /
        validation accessor, deliberately uncached so the scoring paths
        never depend on a corpus-sized float32 matrix existing.
        """
        if self.codec == "float32":
            return self._gather(None)[0]
        loaded = [self._ensure(p) for p in range(self.num_shards)]
        if not loaded:
            return np.zeros((0, self.dim), dtype=np.float32)
        return np.concatenate([s.dense() for s in loaded], axis=0)

    @property
    def keys(self) -> List[str]:
        """All entry keys in global order (loads shard metadata)."""
        if self.codec == "float32":
            return self._gather(None)[1]
        return self._meta_gather(None)[0]

    @property
    def metas(self) -> List[dict]:
        """Per-entry metadata copies in global order (loads shard metadata)."""
        if self.codec == "float32":
            return [dict(m) for m in self._gather(None)[2]]
        return [dict(m) for m in self._meta_gather(None)[1]]

    # ----------------------------------------------------------- fan-out
    def _run_fanout(self, fn, count: int) -> None:
        """Run ``fn(i)`` for each shard slot, threaded when it pays.

        The dispatching thread holds ``no_grad()`` around the pool:
        the grad flag is a module global, so the workers' nested
        ``no_grad`` blocks save and restore an already-False flag — safe
        under any interleaving — and the flag is only restored after
        every worker has joined.
        """
        if count == 0:
            return
        workers = min(self.fanout_threads, count)
        if workers <= 1:
            for i in range(count):
                fn(i)
            return
        with no_grad():
            with ThreadPoolExecutor(
                max_workers=workers, thread_name_prefix="index-fanout"
            ) as pool:
                futures = [pool.submit(fn, i) for i in range(count)]
                for future in futures:
                    future.result()

    def _dequant_reset(self) -> None:
        with self._dequant_lock:
            self._dequant_now = 0
            self.last_peak_dequant_bytes = 0
            self.last_peak_block_bytes = 0

    def _dequant_start(self, nbytes: int) -> None:
        with self._dequant_lock:
            self._dequant_now += nbytes
            self.last_peak_dequant_bytes = max(
                self.last_peak_dequant_bytes, self._dequant_now
            )
            self.last_peak_block_bytes = max(self.last_peak_block_bytes, nbytes)

    def _dequant_end(self, nbytes: int) -> None:
        with self._dequant_lock:
            self._dequant_now -= nbytes

    def _stream_scores(self, q: np.ndarray, positions: List[int]) -> np.ndarray:
        """Exact ``(Q, C)`` scores off quantized shards, block-streamed.

        Each shard dequantizes bounded row blocks straight off its memory
        map and writes its column slice of the output; shards run on the
        fan-out pool.  Resident float32 footprint: one block per worker
        thread (tracked by the ``last_peak_*`` counters), never the corpus.
        """
        loaded = [self._ensure(p) for p in positions]
        total = sum(s.n for s in loaded)
        out = np.empty((q.shape[0], total), dtype=np.float32)
        bases = np.cumsum([0] + [s.n for s in loaded])

        def score_shard(i: int) -> None:
            shard, base = loaded[i], int(bases[i])
            for start in range(0, shard.n, self.score_block_rows):
                stop = min(start + self.score_block_rows, shard.n)
                block = shard.block(start, stop)
                self._dequant_start(block.nbytes)
                try:
                    out[:, base + start : base + stop] = score_pairs_tiled(
                        self.trainer, q, block
                    )
                finally:
                    self._dequant_end(block.nbytes)

        self._run_fanout(score_shard, len(loaded))
        return out

    def _scored_batch(
        self,
        graphs: Optional[Sequence[ProgramGraph]],
        embeddings: Optional[np.ndarray],
        batch_size: int,
        shards: Optional[Sequence[int]],
    ) -> Tuple[np.ndarray, List[str], List[dict]]:
        """One gather + one scoring pass: ``((Q, C) scores, keys, metas)``.

        The single implementation behind :meth:`scores`,
        :meth:`scores_batch`, :meth:`topk` and :meth:`topk_batch`, so the
        shard concatenation and metadata flattening happen once per call.
        Float32 keeps the flat-matrix pass (bit parity with the monolithic
        index); quantized codecs stream blocks off the memory maps.
        """
        q, num_q = normalize_query_batch(graphs, embeddings, self.dim)
        if len(self) == 0:
            return np.zeros((num_q, 0), dtype=np.float32), [], []
        if self.codec == "float32":
            matrix, keys, metas = self._gather(shards)
            if num_q == 0 or matrix.shape[0] == 0:
                return (
                    np.zeros((num_q, matrix.shape[0]), dtype=np.float32),
                    keys,
                    metas,
                )
            if q is None:
                q = self._encoder.embed_queries(graphs, batch_size)
            return score_pairs_tiled(self.trainer, q, matrix), keys, metas
        keys, metas, positions = self._meta_gather(shards)
        if num_q == 0 or not keys:
            return np.zeros((num_q, len(keys)), dtype=np.float32), keys, metas
        if q is None:
            q = self._encoder.embed_queries(graphs, batch_size)
        self._dequant_reset()
        return self._stream_scores(q, positions), keys, metas

    def scores(
        self,
        graph: Optional[ProgramGraph] = None,
        *,
        embedding: Optional[np.ndarray] = None,
        shards: Optional[Sequence[int]] = None,
    ) -> np.ndarray:
        """Pair-head scores against every (selected-shard) entry."""
        if embedding is not None:
            embedding = np.asarray(embedding, dtype=np.float32).reshape(1, -1)
        scores, _, _ = self._scored_batch(
            None if graph is None else [graph], embedding, 32, shards
        )
        return scores[0]

    def scores_batch(
        self,
        graphs: Optional[Sequence[ProgramGraph]] = None,
        *,
        embeddings: Optional[np.ndarray] = None,
        batch_size: int = 32,
        shards: Optional[Sequence[int]] = None,
    ) -> np.ndarray:
        """All pair-head scores ``(Q, C)``, one batched encode + one pass."""
        scores, _, _ = self._scored_batch(graphs, embeddings, batch_size, shards)
        return scores

    # ---------------------------------------------------------- ANN path
    def _ann_topk_batch(
        self,
        graphs: Optional[Sequence[ProgramGraph]],
        embeddings: Optional[np.ndarray],
        k: Optional[int],
        batch_size: int,
        nprobe: int,
    ) -> List[List[Hit]]:
        """Probe the best ``nprobe`` cells per query, rescore exactly, merge.

        Cells are ranked by the *pair-head score of their centroids* — the
        same scorer that produces the final ranking — not raw L2, so
        pruning agrees with retrieval.  Per-shard partial top-k lists are
        merged with a heap under the same ``(score desc, key asc,
        position asc)`` tie-break :func:`ranked_hits` uses; with
        ``nprobe >= num_cells`` the hit set therefore equals the exact
        path's over the same stored rows, and the ordering agrees wherever
        the scores do.  (The pair head's matmuls may round the same row
        differently under different scoring-batch shapes — last-bit float
        jitter — so per-hit scores are *allclose* to the exact path's, not
        bit-identical, when shard layout changes the batch shapes.)
        """
        if self.quantizer is None:
            raise ValueError(
                "mode='ann' needs a trained coarse quantizer; call "
                "train_quantizer() or build with `repro index build --cells N`"
            )
        if not isinstance(nprobe, numbers.Integral) or isinstance(nprobe, bool) or nprobe < 1:
            raise ValueError(f"nprobe must be a positive integer, got {nprobe!r}")
        q, num_q = normalize_query_batch(graphs, embeddings, self.dim)
        if num_q == 0:
            return []
        if len(self) == 0:
            return [[] for _ in range(num_q)]
        if q is None:
            q = self._encoder.embed_queries(graphs, batch_size)
        self._dequant_reset()
        quantizer = self.quantizer
        cell_scores = score_pairs_tiled(self.trainer, q, quantizer.centroids)
        probe_order = np.argsort(-cell_scores, axis=1, kind="stable")
        probes = probe_order[:, : min(int(nprobe), quantizer.num_cells)]
        masks = np.zeros((num_q, quantizer.num_cells), dtype=bool)
        masks[np.arange(num_q)[:, None], probes] = True
        positions, loaded = self._ensure_active(range(self.num_shards))
        for position, shard in zip(positions, loaded):
            if shard.cells is None:
                raise ValueError(
                    f"shard {position} has no cell assignments; re-run "
                    "train_quantizer() so every shard is assigned"
                )
        bases = np.cumsum([0] + [s.n for s in loaded])
        # candidates[qi][shard slot] — tuples ordered (neg score, key,
        # global index, meta): tuple comparison IS the tie-break, and the
        # unique global index shields the unorderable meta dict.
        candidates: List[List[list]] = [
            [[] for _ in positions] for _ in range(num_q)
        ]

        def probe_shard(i: int) -> None:
            shard, base = loaded[i], int(bases[i])
            hit_cells = masks[:, shard.cells]  # (Q, n) bool lookup
            for qi in range(num_q):
                selected = np.flatnonzero(hit_cells[qi])
                if selected.size == 0:
                    continue
                rows = shard.rows(selected)
                self._dequant_start(rows.nbytes)
                try:
                    scored = score_pairs_tiled(
                        self.trainer, q[qi : qi + 1], rows
                    )[0]
                finally:
                    self._dequant_end(rows.nbytes)
                if k is not None and scored.size > k:
                    # Keep every candidate tied with the k-th best score so
                    # the merge can still apply the key tie-break exactly.
                    kth = -np.partition(-scored, k - 1)[k - 1]
                    keep = np.flatnonzero(scored >= kth)
                    selected, scored = selected[keep], scored[keep]
                candidates[qi][i] = [
                    (
                        -float(score),
                        shard.keys[int(j)],
                        int(base + j),
                        shard.metas[int(j)],
                    )
                    for j, score in zip(selected, scored)
                ]

        self._run_fanout(probe_shard, len(positions))
        results: List[List[Hit]] = []
        for qi in range(num_q):
            merged = [item for per_shard in candidates[qi] for item in per_shard]
            best = sorted(merged) if k is None else heapq.nsmallest(k, merged)
            results.append(
                [
                    Hit(index, -neg_score, dict(meta), key)
                    for neg_score, key, index, meta in best
                ]
            )
        return results

    def topk(
        self,
        graph: Optional[ProgramGraph] = None,
        k: Optional[int] = None,
        *,
        embedding: Optional[np.ndarray] = None,
        shards: Optional[Sequence[int]] = None,
        mode: str = "exact",
        nprobe: int = 8,
    ) -> List[Hit]:
        """Top-k entries by descending score (all entries when k is None).

        ``mode="exact"`` (default) scores every entry; ``mode="ann"``
        prunes to the ``nprobe`` best coarse-quantizer cells first (needs
        a trained quantizer; incompatible with ``shards=``).  ``Hit.index``
        is the position within the scored entry set: global when
        ``shards`` is None, shard-subset-relative otherwise.
        """
        validate_k(k)
        if mode not in ("exact", "ann"):
            raise ValueError(f"mode must be 'exact' or 'ann', got {mode!r}")
        if embedding is not None:
            embedding = np.asarray(embedding, dtype=np.float32).reshape(1, -1)
        if mode == "ann":
            if shards is not None:
                raise ValueError(
                    "mode='ann' always scores against the whole corpus; "
                    "drop shards= or use mode='exact'"
                )
            return self._ann_topk_batch(
                None if graph is None else [graph], embedding, k, 32, nprobe
            )[0]
        scores, keys, metas = self._scored_batch(
            None if graph is None else [graph], embedding, 32, shards
        )
        return ranked_hits(scores[0], keys, metas, k)

    def topk_batch(
        self,
        graphs: Optional[Sequence[ProgramGraph]] = None,
        k: Optional[int] = None,
        *,
        embeddings: Optional[np.ndarray] = None,
        batch_size: int = 32,
        shards: Optional[Sequence[int]] = None,
        mode: str = "exact",
        nprobe: int = 8,
    ) -> List[List[Hit]]:
        """Per-query top-k hit lists for Q queries in one batched pass.

        See :meth:`topk` for the ``mode`` / ``nprobe`` contract.
        """
        validate_k(k)
        if mode not in ("exact", "ann"):
            raise ValueError(f"mode must be 'exact' or 'ann', got {mode!r}")
        if mode == "ann":
            if shards is not None:
                raise ValueError(
                    "mode='ann' always scores against the whole corpus; "
                    "drop shards= or use mode='exact'"
                )
            return self._ann_topk_batch(graphs, embeddings, k, batch_size, nprobe)
        scores, keys, metas = self._scored_batch(
            graphs, embeddings, batch_size, shards
        )
        return [ranked_hits(row, keys, metas, k) for row in scores]


def open_index(path: PathLike, trainer, degraded: bool = False, verify_reads: bool = False):
    """Open either index flavor: a sharded directory or a monolithic ``.npz``.

    The CLI's loader: ``repro serve`` and ``repro index query`` accept
    both, dispatching on what is actually on disk.  ``degraded`` /
    ``verify_reads`` apply to the sharded flavor (a monolithic archive
    has no shards to quarantine — it either loads or raises).
    """
    p = Path(path)
    if p.is_dir() or (p / MANIFEST_NAME).exists():
        return ShardedEmbeddingIndex.open(
            p, trainer, degraded=degraded, verify_reads=verify_reads
        )
    return EmbeddingIndex.load(path, trainer)
