"""Encode-once / score-many retrieval over GraphBinMatch embeddings."""

from repro.index.embedding_index import (
    EmbeddingIndex,
    Hit,
    graph_fingerprint,
    model_fingerprint,
    ranked_hits,
    score_pairs_tiled,
    validate_k,
)
from repro.index.quantizer import CoarseQuantizer
from repro.index.sharded import (
    CODECS,
    INDEX_FORMAT_VERSION,
    ShardedEmbeddingIndex,
    open_index,
)

__all__ = [
    "CODECS",
    "CoarseQuantizer",
    "EmbeddingIndex",
    "Hit",
    "INDEX_FORMAT_VERSION",
    "ShardedEmbeddingIndex",
    "graph_fingerprint",
    "model_fingerprint",
    "open_index",
    "ranked_hits",
    "score_pairs_tiled",
    "validate_k",
]
