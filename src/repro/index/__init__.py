"""Encode-once / score-many retrieval over GraphBinMatch embeddings."""

from repro.index.embedding_index import (
    EmbeddingIndex,
    Hit,
    graph_fingerprint,
    model_fingerprint,
    score_pairs_tiled,
)

__all__ = [
    "EmbeddingIndex",
    "Hit",
    "graph_fingerprint",
    "model_fingerprint",
    "score_pairs_tiled",
]
