"""The embedding index: corpus-scale retrieval without re-encoding.

The paper's retrieval workflows (find the source for a binary fragment,
find the binary for a vulnerable source, §I) score one query against many
candidates.  GraphBinMatch is siamese — ``encode_graphs`` embeds each side
independently and the pair head only consumes the two embeddings — yet the
naive loop re-runs the full GNN encoder for every (query, candidate) pair:
O(Q×C) encoder forwards for Q queries over C candidates.

:class:`EmbeddingIndex` restructures that into encode-once / score-many:

* every corpus graph is embedded **exactly once** through
  :meth:`MatchTrainer.encode_graphs`, keyed by a content hash of the graph
  so duplicate adds (and repeated queries) are cache hits, not forwards;
* a query runs one encoder forward, then the lightweight pair head —
  ``score_from_embeddings`` vectorized over the tiled query×candidate
  embedding matrix, covering both ``pair_features`` modes — against the
  whole corpus in a single call: O(Q + C) encoder forwards total;
* the index persists to ``.npz`` (embeddings + JSON metadata, no pickle),
  so a corpus is embedded once per checkpoint, not once per process.

Exactness: embeddings are produced in eval mode (BatchNorm running
statistics, no dropout), so index scores match pairwise ``predict`` scores
to float tolerance — see ``tests/test_index.py`` and
``benchmarks/bench_retrieval_scaling.py``.
"""

from __future__ import annotations

import hashlib
import json
import numbers
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from repro.graphs.programl import ProgramGraph

PathLike = Union[str, Path]

_META_KEY = "__meta_json__"


def model_fingerprint(trainer) -> str:
    """Content hash of the trainer's weights and tokenizer state.

    Embeddings are only meaningful against the exact model that produced
    them; two checkpoints with the same architecture but different weights
    would silently mis-score.  Saved indexes record this and loading
    verifies it.
    """
    h = hashlib.sha256()
    for name, arr in sorted(trainer.model.state_dict().items()):
        h.update(name.encode())
        h.update(np.ascontiguousarray(arr).tobytes())
    h.update(json.dumps(trainer.tokenizer.state(), sort_keys=True).encode())
    return h.hexdigest()[:16]


def score_pairs_tiled(
    scorer,
    query_emb: np.ndarray,
    cand_emb: np.ndarray,
    row_budget: int = 16384,
) -> np.ndarray:
    """All query×candidate pair-head scores ``(Q, C)``, chunked.

    The single tiling implementation shared by :meth:`EmbeddingIndex.scores`
    and the fast paths in :mod:`repro.eval.retrieval`: queries are repeated
    and candidates tiled into the interleave-ready layout
    ``scorer.score_embeddings`` expects, processed in query chunks so the
    pair-head activation matrix never exceeds ~``row_budget`` rows no
    matter how large Q×C grows.
    """
    queries = np.atleast_2d(np.asarray(query_emb, dtype=np.float32))
    cands = np.atleast_2d(np.asarray(cand_emb, dtype=np.float32))
    num_q, num_c = queries.shape[0], cands.shape[0]
    if num_q == 0 or num_c == 0:
        return np.zeros((num_q, num_c), dtype=np.float32)
    # Chunk both axes: a corpus larger than the budget alone must not
    # defeat the bound.
    c_chunk = min(num_c, max(row_budget, 1))
    q_chunk = max(1, row_budget // c_chunk)
    out = np.empty((num_q, num_c), dtype=np.float32)
    for i in range(0, num_q, q_chunk):
        nq = min(q_chunk, num_q - i)
        for j in range(0, num_c, c_chunk):
            nc = min(c_chunk, num_c - j)
            block = scorer.score_embeddings(
                np.repeat(queries[i : i + nq], nc, axis=0),
                np.tile(cands[j : j + nc], (nq, 1)),
            )
            out[i : i + nq, j : j + nc] = block.reshape(nq, nc)
    return out


def graph_fingerprint(graph: ProgramGraph) -> str:
    """Content hash of a program graph's structure and features.

    Covers everything the encoder consumes — node feature strings, node
    types, per-relation edges and operand positions, source language — and
    deliberately excludes the graph ``name``: structurally identical graphs
    share one embedding.
    """
    h = hashlib.sha256()
    h.update(graph.source_language.encode())
    # One update over a joined buffer per text list (identical byte stream
    # to per-text updates, so digests are stable): hashing is on the
    # serving hot path, where per-node update() calls dominated.
    if graph.node_texts:
        h.update(("\x00".join(graph.node_texts) + "\x00").encode())
    h.update(b"\x01")
    if graph.node_full_texts:
        h.update(("\x00".join(graph.node_full_texts) + "\x00").encode())
    h.update(np.asarray(graph.node_types, dtype=np.int64).tobytes())
    for rel in sorted(graph.edges):
        h.update(rel.encode())
        h.update(np.ascontiguousarray(graph.edges[rel], dtype=np.int64).tobytes())
        pos = graph.positions.get(rel)
        if pos is not None:
            h.update(np.ascontiguousarray(pos, dtype=np.int64).tobytes())
    return h.hexdigest()


@dataclass
class Hit:
    """One retrieval result: entry position, score and its metadata."""

    index: int
    score: float
    meta: dict = field(default_factory=dict)
    key: str = ""


def _require_exact(mode: str) -> None:
    """Shared mode guard for the monolithic (exact-only) index."""
    if mode == "exact":
        return
    if mode == "ann":
        raise ValueError(
            "the monolithic EmbeddingIndex only supports mode='exact'; "
            "build a sharded index with a coarse quantizer "
            "(`repro index build --shard-size N --cells K`) for ANN queries"
        )
    raise ValueError(f"mode must be 'exact' or 'ann', got {mode!r}")


def validate_k(k: Optional[int]) -> None:
    """Reject non-positive ``k`` loudly.

    ``order[:k]`` with a negative ``k`` would silently drop the *top* hits
    from the end of the ranking instead of erroring — the worst possible
    failure mode for a retrieval API.  Any integral type (NumPy ints
    included) is fine; bools and floats are not.
    """
    if k is None:
        return
    if not isinstance(k, numbers.Integral) or isinstance(k, bool) or k < 1:
        raise ValueError(f"k must be a positive integer or None, got {k!r}")


def normalize_query_batch(
    graphs: Optional[Sequence[ProgramGraph]],
    embeddings: Optional[np.ndarray],
    dim: int,
) -> "Tuple[Optional[np.ndarray], int]":
    """Validate the graphs-xor-embeddings contract shared by both indexes.

    Returns ``(embedding matrix or None, query count)``; raises on
    both/neither arguments or an embedding-width mismatch.
    """
    if (graphs is None) == (embeddings is None):
        raise ValueError("pass exactly one of graphs / embeddings")
    if embeddings is None:
        return None, len(graphs)
    q = np.atleast_2d(np.asarray(embeddings, dtype=np.float32))
    if q.shape[1] != dim:
        raise ValueError(f"query embeddings have dim {q.shape[1]}, index has {dim}")
    return q, q.shape[0]


def ranked_hits(
    scores: np.ndarray,
    keys: Sequence[str],
    metas: Sequence[dict],
    k: Optional[int],
) -> List[Hit]:
    """Descending-score :class:`Hit` list (all entries when ``k`` is None).

    The one ranking implementation shared by :class:`EmbeddingIndex` and
    :class:`~repro.index.sharded.ShardedEmbeddingIndex`, so the two always
    break ties identically: descending score, then ascending entry key,
    then entry position (``lexsort`` is stable).  Keying the tie-break on
    content hashes — not positions alone — is what lets exact-vs-ANN
    recall gates and cross-process parity checks survive equal scores,
    where position order would depend on shard layout.
    """
    # lexsort sorts by the *last* key first: -scores primary, keys secondary.
    order = np.lexsort((np.asarray(keys), -scores))
    if k is not None:
        order = order[:k]
    return [
        Hit(int(i), float(scores[i]), dict(metas[i]), keys[i]) for i in order
    ]


class EmbeddingIndex:
    """Encode-once corpus of graph embeddings answering top-k queries.

    Entries keep insertion order, so :meth:`scores` is aligned with the
    order graphs were :meth:`add`-ed — callers that rank an external
    candidate list (``MatcherPipeline.rank_sources``) rely on this.
    """

    def __init__(self, trainer, query_cache_size: int = 256):  # noqa: D107
        if trainer.model is None:
            raise ValueError("trainer has no trained model")
        self.trainer = trainer
        self.dim = 2 * trainer.config.hidden_dim
        self._cache: Dict[str, np.ndarray] = {}
        # Query embeddings live in a separate bounded LRU: corpus entries
        # must stay (they back `embeddings`), but a long-lived index serving
        # mostly-unique queries would otherwise grow without bound.
        self._query_cache: "OrderedDict[str, np.ndarray]" = OrderedDict()
        self.query_cache_size = query_cache_size
        self._keys: List[str] = []
        self._metas: List[dict] = []
        self._matrix: Optional[np.ndarray] = None
        # Optional caller-set identity for the corpus behind the entries
        # (e.g. MatcherPipeline stores a hash of its candidate list here);
        # persisted by save()/load() and checked by callers, not by us.
        self.tag: Optional[str] = None
        self.cache_hits = 0
        self.cache_misses = 0

    # ------------------------------------------------------------- sizing
    def __len__(self) -> int:
        """Number of indexed entries."""
        return len(self._keys)

    @property
    def keys(self) -> List[str]:
        """Entry content-hash keys, in insertion order (a copy)."""
        return list(self._keys)

    @property
    def metas(self) -> List[dict]:
        """Per-entry metadata copies, in insertion order.

        Copies, so callers can annotate freely without corrupting what
        :meth:`save` persists or what integrity checks read.
        """
        return [dict(m) for m in self._metas]

    @property
    def embeddings(self) -> np.ndarray:
        """Entry embeddings ``(C, 2H)`` in insertion order."""
        if self._matrix is None:
            if not self._keys:
                self._matrix = np.zeros((0, self.dim), dtype=np.float32)
            else:
                self._matrix = np.stack([self._cache[k] for k in self._keys])
        return self._matrix

    # ------------------------------------------------------------ loading
    def add(
        self,
        graphs: Sequence[ProgramGraph],
        metas: Optional[Sequence[dict]] = None,
        batch_size: int = 32,
    ) -> List[str]:
        """Index graphs (with optional per-graph metadata); returns keys.

        Only graphs whose fingerprint is not already cached hit the
        encoder; duplicates — within this call or against earlier adds and
        queries — reuse the cached embedding.
        """
        if metas is None:
            metas = [{} for _ in graphs]
        if len(metas) != len(graphs):
            raise ValueError("metas must match graphs 1:1")
        keys = [graph_fingerprint(g) for g in graphs]
        fresh: Dict[str, ProgramGraph] = {}
        for key, graph in zip(keys, graphs):
            if key in self._cache or key in fresh:
                continue
            if key in self._query_cache:
                # Seen as a query earlier: promote, don't re-encode.
                self._cache[key] = self._query_cache.pop(key)
                continue
            fresh[key] = graph
        if fresh:
            embedded = self.trainer.embed_many(list(fresh.values()), batch_size)
            for key, row in zip(fresh, embedded):
                self._cache[key] = row
        self.cache_misses += len(fresh)
        self.cache_hits += len(graphs) - len(fresh)
        self._keys.extend(keys)
        self._metas.extend(dict(m) for m in metas)
        self._matrix = None
        return keys

    def add_precomputed(
        self,
        keys: Sequence[str],
        embeddings: np.ndarray,
        metas: Optional[Sequence[dict]] = None,
    ) -> None:
        """Append entries whose embeddings were already computed.

        Used when re-arranging existing indexes — sharding a monolithic
        index, merging shards — where re-encoding would both waste encoder
        passes and (because batch composition perturbs float accumulation
        order) break bit-exact score parity with the original index.
        """
        embeddings = np.atleast_2d(np.asarray(embeddings, dtype=np.float32))
        if metas is None:
            metas = [{} for _ in keys]
        if len(keys) != embeddings.shape[0] or len(keys) != len(metas):
            raise ValueError(
                f"{len(keys)} keys for {embeddings.shape[0]} embeddings "
                f"and {len(metas)} metas"
            )
        if len(keys) and embeddings.shape[1] != self.dim:
            raise ValueError(
                f"embeddings have dim {embeddings.shape[1]}, index has {self.dim}"
            )
        for key, row in zip(keys, embeddings):
            self._cache.setdefault(key, row)
        self._keys.extend(keys)
        self._metas.extend(dict(m) for m in metas)
        self._matrix = None

    def seed_embedding_cache(self, keys: Sequence[str], embeddings: np.ndarray) -> None:
        """Register precomputed ``key → embedding row`` pairs in the cache.

        Adds no entries — only the permanent content-hash cache consulted
        by :meth:`embed_query` / :meth:`embed_queries` is populated, so
        queries identical to known graphs skip the encoder.  Rows replace
        any prior binding for the same key; by contract the values must be
        identical (same model, same graph), callers only swap storage.
        """
        for key, row in zip(keys, embeddings):
            self._cache[key] = row

    def embed_query(self, graph: ProgramGraph) -> np.ndarray:
        """Query embedding ``(2H,)``, cached by content hash like entries.

        Queries matching a corpus entry reuse its embedding; other query
        embeddings are kept in an LRU bounded by ``query_cache_size``.
        """
        key = graph_fingerprint(graph)
        if key in self._cache:
            self.cache_hits += 1
            return self._cache[key]
        if key in self._query_cache:
            self.cache_hits += 1
            self._query_cache.move_to_end(key)
            return self._query_cache[key]
        self.cache_misses += 1
        embedded = self.trainer.encode_graphs([graph])[0]
        self._query_cache[key] = embedded
        # Trim after insert; return the local so query_cache_size=0
        # (caching disabled) still works.
        while len(self._query_cache) > max(self.query_cache_size, 0):
            self._query_cache.popitem(last=False)
        return embedded

    def embed_queries(
        self, graphs: Sequence[ProgramGraph], batch_size: int = 32
    ) -> np.ndarray:
        """Query embeddings ``(Q, 2H)`` with every uncached graph batched.

        The multi-query analogue of :meth:`embed_query`: all graphs not
        already cached (as corpus entries or earlier queries) go through
        **one** :meth:`MatchTrainer.embed_many` call instead of Q encoder
        invocations — tokenization, graph batching and the segment sorts
        are per-call overheads, so batching them is where
        :meth:`topk_batch`'s speedup comes from.
        """
        keys = [graph_fingerprint(g) for g in graphs]
        fresh: Dict[str, ProgramGraph] = {}
        for key, graph in zip(keys, graphs):
            if key in self._cache or key in self._query_cache or key in fresh:
                continue
            fresh[key] = graph
        if fresh:
            embedded = self.trainer.embed_many(list(fresh.values()), batch_size)
            for key, row in zip(fresh, embedded):
                self._query_cache[key] = row
        self.cache_misses += len(fresh)
        self.cache_hits += len(graphs) - len(fresh)
        out = np.empty((len(graphs), self.dim), dtype=np.float32)
        for i, key in enumerate(keys):
            if key in self._cache:
                out[i] = self._cache[key]
            else:
                out[i] = self._query_cache[key]
                self._query_cache.move_to_end(key)
        # Trim after copying rows out, so query_cache_size=0 still works.
        while len(self._query_cache) > max(self.query_cache_size, 0):
            self._query_cache.popitem(last=False)
        return out

    # ------------------------------------------------------------ queries
    def scores(
        self,
        graph: Optional[ProgramGraph] = None,
        *,
        embedding: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Pair-head scores against every entry, in insertion order.

        The query goes on the matcher's *left* (binary) side, entries on
        the right (source) side — the orientation ``MatchingPair`` and the
        training corpus use throughout.  Delegates to :meth:`scores_batch`
        (one row), so validation, the empty-index short-circuit and
        caching live in exactly one place.
        """
        if embedding is not None:
            embedding = np.asarray(embedding, dtype=np.float32).reshape(1, -1)
        return self.scores_batch(
            None if graph is None else [graph], embeddings=embedding
        )[0]

    def scores_batch(
        self,
        graphs: Optional[Sequence[ProgramGraph]] = None,
        *,
        embeddings: Optional[np.ndarray] = None,
        batch_size: int = 32,
    ) -> np.ndarray:
        """All pair-head scores ``(Q, C)`` for Q queries, one tiled pass.

        The batched analogue of :meth:`scores`: queries are encoded
        together (:meth:`embed_queries`) and scored against the whole
        corpus in a single :func:`score_pairs_tiled` call.
        """
        q, num_q = normalize_query_batch(graphs, embeddings, self.dim)
        if not self._keys:
            return np.zeros((num_q, 0), dtype=np.float32)
        if q is None:
            if num_q == 0:
                return np.zeros((0, len(self._keys)), dtype=np.float32)
            q = self.embed_queries(graphs, batch_size)
        return score_pairs_tiled(self.trainer, q, self.embeddings)

    def topk(
        self,
        graph: Optional[ProgramGraph] = None,
        k: Optional[int] = None,
        *,
        embedding: Optional[np.ndarray] = None,
        mode: str = "exact",
        nprobe: Optional[int] = None,
    ) -> List[Hit]:
        """Top-k entries by descending score (all entries when k is None).

        ``mode``/``nprobe`` exist for signature parity with the sharded
        index; the monolithic index is exact-only.
        """
        validate_k(k)
        _require_exact(mode)
        scores = self.scores(graph, embedding=embedding)
        return ranked_hits(scores, self._keys, self._metas, k)

    def topk_batch(
        self,
        graphs: Optional[Sequence[ProgramGraph]] = None,
        k: Optional[int] = None,
        *,
        embeddings: Optional[np.ndarray] = None,
        batch_size: int = 32,
        mode: str = "exact",
        nprobe: Optional[int] = None,
    ) -> List[List[Hit]]:
        """Per-query top-k hit lists for Q queries in one batched pass.

        Rankings match Q separate :meth:`topk` calls (same scores, same
        stable tie-breaks); the win is running one batched encoder pass
        and one tiled pair-head pass instead of Q of each.
        """
        validate_k(k)
        _require_exact(mode)
        scores = self.scores_batch(graphs, embeddings=embeddings, batch_size=batch_size)
        return [ranked_hits(row, self._keys, self._metas, k) for row in scores]

    # -------------------------------------------------------- persistence
    def save(self, path: PathLike) -> str:
        """Persist embeddings + metadata to one ``.npz`` (no pickle).

        Returns the path actually written: NumPy appends ``.npz`` when the
        name lacks it, and callers (the CLI) report this path, so the two
        must agree.
        """
        path = str(path)
        if not path.endswith(".npz"):
            path += ".npz"
        meta = {
            "keys": self._keys,
            "metas": self._metas,
            "dim": self.dim,
            "hidden_dim": self.trainer.config.hidden_dim,
            "pair_features": self.trainer.config.pair_features,
            "model_sha": model_fingerprint(self.trainer),
            "tag": self.tag,
        }
        payload = np.frombuffer(json.dumps(meta).encode("utf-8"), dtype=np.uint8)
        np.savez_compressed(path, embeddings=self.embeddings, **{_META_KEY: payload})
        return path

    @classmethod
    def load(cls, path: PathLike, trainer) -> "EmbeddingIndex":
        """Restore an index saved by :meth:`save` for the same model shape.

        Embeddings are model-specific: loading against a trainer whose
        embedding width or ``pair_features`` differs is rejected rather
        than silently mis-scored.
        """
        path = str(path)
        if not path.endswith(".npz") and not Path(path).exists():
            if Path(path + ".npz").exists():
                path += ".npz"
        with np.load(path) as archive:
            if _META_KEY not in archive.files or "embeddings" not in archive.files:
                raise ValueError(f"{path} is not an EmbeddingIndex archive")
            meta = json.loads(bytes(archive[_META_KEY].tobytes()).decode("utf-8"))
            # copy=False: the archive already hands us a fresh float32
            # array; an unconditional astype would duplicate every shard.
            embeddings = archive["embeddings"].astype(np.float32, copy=False)
        # A GraphBinMatch checkpoint also carries JSON metadata; reject it
        # (and any other stray archive) by the index schema, not a KeyError.
        if not {"keys", "metas", "dim", "pair_features"} <= meta.keys():
            raise ValueError(f"{path} is not an EmbeddingIndex archive")
        if embeddings.shape != (len(meta["keys"]), meta["dim"]):
            raise ValueError(
                f"{path} is corrupt: {embeddings.shape} embeddings for "
                f"{len(meta['keys'])} keys of dim {meta['dim']}"
            )
        index = cls(trainer)
        if meta["dim"] != index.dim or meta["pair_features"] != trainer.config.pair_features:
            raise ValueError(
                f"index built for dim={meta['dim']}/"
                f"pair_features={meta['pair_features']!r}, trainer has "
                f"dim={index.dim}/pair_features={trainer.config.pair_features!r}"
            )
        want_sha = meta.get("model_sha")
        if want_sha is not None and want_sha != model_fingerprint(trainer):
            raise ValueError(
                f"{path} was built by a different model (weight/tokenizer "
                "fingerprint mismatch); rebuild the index with this checkpoint"
            )
        index._keys = list(meta["keys"])
        index._metas = [dict(m) for m in meta["metas"]]
        index.tag = meta.get("tag")
        for key, row in zip(index._keys, embeddings):
            index._cache.setdefault(key, row)
        return index
