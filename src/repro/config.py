"""Experiment and model presets.

``paper_config`` matches the hyper-parameters reported in §IV-D (embedding
128, five GATv2 layers of 256, Adam lr 6.6e-5, vocab 2048).  ``cpu_config``
is the scaled preset the benchmark harness trains on a CPU in seconds; the
scaling preserves architecture shape (same layer types, same ratios), which
is what the relative comparisons in the tables depend on.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional, Tuple

#: The paper's three structural graph relations (mirrors
#: ``repro.graphs.programl.RELATIONS`` without importing it — config must
#: stay dependency-free for pickling into worker processes).
BASE_RELATIONS: Tuple[str, ...] = ("control", "data", "call")
#: Plus the analysis-derived relations of ``dataflow_edges`` corpora.
EXTENDED_RELATIONS: Tuple[str, ...] = BASE_RELATIONS + ("dataflow", "callsummary")


@dataclass(frozen=True)
class ModelConfig:
    """GraphBinMatch hyper-parameters."""

    embed_dim: int = 128
    hidden_dim: int = 256
    num_layers: int = 5
    heads: int = 1
    dropout: float = 0.2
    max_vocab: int = 2048
    learning_rate: float = 6.6e-5
    epochs: int = 40
    batch_pairs: int = 16
    use_positions: bool = True
    aggregate: str = "max"
    feature_mode: str = "full_text"  # or "text"
    pair_features: str = "concat"  # or "interaction"
    # Binary label smoothing (y -> y(1-s) + s/2).  Keeps the sigmoid scores
    # probability-calibrated instead of saturating at the ends, so the
    # paper's fixed 0.5 decision threshold stays meaningful after the model
    # starts to overfit the small training split.
    label_smoothing: float = 0.0
    grad_clip: float = 5.0
    seed: int = 0
    # Edge relations the GNN convolves over — one GATv2 per entry per
    # layer.  The default is the paper's three structural relations; use
    # EXTENDED_RELATIONS for corpora built with DataConfig.dataflow_edges.
    # Stored as a tuple so the frozen config stays hashable and its JSON
    # round-trip (lists) re-canonicalizes here.
    relations: Tuple[str, ...] = BASE_RELATIONS

    def __post_init__(self):  # noqa: D105
        object.__setattr__(self, "relations", tuple(self.relations))


@dataclass(frozen=True)
class DataConfig:
    """Corpus size / pipeline knobs."""

    num_tasks: int = 30
    variants: int = 4
    seed: int = 0
    opt_level: str = "Oz"  # paper: "0z is set as the default"
    compiler: str = "clang"
    compile_failure_pct: int = 10  # Table I: not every source yields IR
    max_pairs_per_task: int = 12
    # CLCDSA solutions are written independently per language: matching
    # pairs share the algorithm, not identifiers or literal data.  False
    # reproduces the lockstep rendering (all languages make identical
    # choices), which is only appropriate for substrate equivalence tests.
    independent_solutions: bool = True
    # Negative:positive ratio of the valid/test splits.  The paper keeps
    # every split balanced (§IV-B), which is the default; ratios above 1
    # model retrieval-flavoured deployments where non-matches dominate
    # (used by the stress tests and the retrieval example).
    eval_neg_ratio: float = 1.0
    # Root directory of a content-addressed artifact store shared across
    # processes; None disables persistence and every build compiles cold.
    artifact_dir: Optional[str] = None
    # Emit the analysis-derived dataflow/callsummary graph relations (see
    # repro.ir.analysis).  Rides in the pickled config, so parallel build
    # workers and the serial path produce identical graphs; artifact keys
    # carry the matching graph_features qualifier.
    dataflow_edges: bool = False


def paper_config() -> ModelConfig:
    """The configuration reported in the paper (GPU-scale)."""
    return ModelConfig()


def cpu_config(seed: int = 0) -> ModelConfig:
    """CPU-scale preset used by tests and benches.

    Architecture shape follows the paper; dimensions are scaled down and
    ``pair_features="interaction"`` conditions the pair head so training
    converges in tens (not thousands) of CPU epochs — see DESIGN.md's
    substitution notes.
    """
    return ModelConfig(
        embed_dim=32,
        hidden_dim=48,
        num_layers=3,
        dropout=0.1,
        max_vocab=512,
        learning_rate=3e-3,
        epochs=30,
        batch_pairs=8,
        pair_features="interaction",
        seed=seed,
    )


def bench_data_config(seed: int = 0) -> DataConfig:
    """Small-but-representative corpus preset for the benchmark harness."""
    return DataConfig(num_tasks=14, variants=3, seed=seed, max_pairs_per_task=8)


def tiny_data_config(seed: int = 0) -> DataConfig:
    """Minimal corpus for unit tests."""
    return DataConfig(num_tasks=6, variants=2, seed=seed, max_pairs_per_task=4)


def scaled(config: ModelConfig, **kwargs) -> ModelConfig:
    """Return a modified copy of a config."""
    return replace(config, **kwargs)
