"""``repro.core`` — the paper's contribution: the GraphBinMatch system."""

from repro.core.model import GraphBinMatch
from repro.core.node_features import encode_nodes, node_strings, train_tokenizer
from repro.core.pipeline import MatcherPipeline, compile_to_views
from repro.core.trainer import MatchTrainer, TrainReport

__all__ = [
    "GraphBinMatch",
    "MatchTrainer",
    "TrainReport",
    "MatcherPipeline",
    "compile_to_views",
    "encode_nodes",
    "node_strings",
    "train_tokenizer",
]
