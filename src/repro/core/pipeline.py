"""End-to-end user-facing pipeline (Figure 1 of the paper).

``MatcherPipeline`` is what a downstream user touches: give it a trained
:class:`~repro.core.trainer.MatchTrainer` and it scores raw inputs —
source text in any supported language against binary bytes — running the
whole stack through the shared staged
:class:`~repro.pipeline.CompilationPipeline` (front-end → IR → graph on
the source side; disassemble → decompile → graph on the binary side).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.artifacts import ArtifactKey, source_text_id
from repro.core.trainer import MatchTrainer
from repro.data.pairs import MatchingPair
from repro.graphs.programl import ProgramGraph
from repro.index import EmbeddingIndex, model_fingerprint
from repro.pipeline import CompilationPipeline


def source_graph_of(source_text: str, language: str, name: str = "unit") -> ProgramGraph:
    """Source text → source-IR graph, skipping the binary half entirely.

    ``compile_to_views`` exists for callers that need both views; building
    only the source graph must not pay for codegen + decompilation of a
    binary that is immediately discarded.
    """
    return CompilationPipeline().source_graph(source_text, language, name=name)


@dataclass
class CompiledViews:
    """Both views of one program: source-IR graph and binary."""

    source_graph: ProgramGraph
    binary_bytes: bytes
    decompiled_graph: ProgramGraph


def compile_to_views(
    source_text: str,
    language: str,
    opt_level: str = "Oz",
    compiler: str = "clang",
    name: str = "unit",
    store=None,
) -> CompiledViews:
    """Run the full staged pipeline on one source file.

    ``store`` optionally names an :class:`~repro.artifacts.ArtifactStore`;
    repeat compilations of the same text under the same conditions then
    load from disk instead of re-running every stage.
    """
    pipeline = CompilationPipeline(store=store)
    key = None
    if store is not None:
        key = ArtifactKey(
            task="", variant=-1, language=language, opt_level=opt_level,
            compiler=compiler, source_id=source_text_id(source_text),
        )
    result = pipeline.compile(
        source_text, language, name=name, opt_level=opt_level,
        compiler=compiler, cache_key=key,
    )
    return CompiledViews(result.source_graph, result.binary_bytes, result.decompiled_graph)


class MatcherPipeline:
    """Score raw (binary, source) inputs with a trained matcher.

    ``store`` optionally attaches an :class:`~repro.artifacts.ArtifactStore`
    to the internal :class:`CompilationPipeline`, so a long-lived pipeline
    (e.g. the ``repro serve`` process) reuses persisted compilation
    artifacts across requests instead of recompiling repeats.
    """

    def __init__(self, trainer: MatchTrainer, store=None):  # noqa: D107
        if trainer.model is None:
            raise ValueError("trainer has no trained model")
        self.trainer = trainer
        # Emit whatever edge schema the model was trained on: a trainer
        # configured with the analysis-derived relations needs query
        # graphs that actually carry them.
        dataflow = "dataflow" in tuple(getattr(trainer.config, "relations", ()))
        self.compiler = CompilationPipeline(store=store, dataflow_edges=dataflow)
        # Trainers whose weight fingerprint already matched ours; hashing
        # every weight tensor is too expensive to repeat per query.
        self._trusted_trainer_ids: set = set()

    def graph_of_source(self, text: str, language: str) -> ProgramGraph:
        """Source text → source-IR program graph (source-only fast path)."""
        return self.compiler.source_graph(text, language)

    def graph_of_binary(self, raw: bytes, name: str = "binary") -> ProgramGraph:
        """Binary bytes → decompiled-IR program graph."""
        return self.compiler.binary_graph(raw, name=name)

    def score_graphs(self, left: ProgramGraph, right: ProgramGraph) -> float:
        """Matching probability for one (binary-graph, source-graph) pair."""
        pair = MatchingPair(left, right, 0, "?", "?")
        return float(self.trainer.predict([pair])[0])

    def match_binary_to_source(
        self, raw: bytes, source_text: str, language: str
    ) -> float:
        """Score binary bytes against a source file."""
        return self.score_graphs(
            self.graph_of_binary(raw), self.graph_of_source(source_text, language)
        )

    @staticmethod
    def _candidates_tag(candidates: Sequence[Tuple[str, str]]) -> str:
        h = hashlib.sha256()
        for text, lang in candidates:
            h.update(lang.encode())
            h.update(b"\x00")
            h.update(text.encode())
            h.update(b"\x01")
        return h.hexdigest()[:16]

    def source_index(self, candidates: Sequence[Tuple[str, str]]) -> EmbeddingIndex:
        """Encode candidate ``(source_text, language)`` files into an index.

        Build this once and pass it to :meth:`rank_sources` to amortize the
        encoder across many binary queries; entry ``i`` corresponds to
        ``candidates[i]`` (the index is tagged with a content hash of the
        candidate list, which :meth:`rank_sources` checks on reuse).
        """
        index = EmbeddingIndex(self.trainer)
        graphs = [self.graph_of_source(text, lang) for text, lang in candidates]
        index.add(
            graphs,
            metas=[
                {"candidate": i, "language": lang}
                for i, (_, lang) in enumerate(candidates)
            ],
        )
        index.tag = self._candidates_tag(candidates)
        return index

    def rank_sources(
        self,
        raw: bytes,
        candidates: Sequence[Tuple[str, str]],
        index: Optional[EmbeddingIndex] = None,
    ) -> List[Tuple[int, float]]:
        """Rank candidate ``(source_text, language)`` files for a binary.

        Returns ``(candidate_index, score)`` sorted by descending score —
        the reverse-engineering retrieval workflow from the paper's intro.
        Candidates are encoded once into an :class:`EmbeddingIndex` (pass a
        prebuilt one from :meth:`source_index` to reuse it across queries)
        and each query runs one encoder forward plus the vectorized pair
        head, instead of re-encoding every pair from scratch.
        """
        index = self._checked_index(candidates, index)
        scores = index.scores(self.graph_of_binary(raw))
        order = np.argsort(-scores, kind="stable")
        return [(int(i), float(scores[i])) for i in order]

    def rank_sources_batch(
        self,
        raws: Sequence[bytes],
        candidates: Sequence[Tuple[str, str]],
        index: Optional[EmbeddingIndex] = None,
    ) -> List[List[Tuple[int, float]]]:
        """Rank the candidates for many binaries in one batched pass.

        Like a loop of :meth:`rank_sources`, but all query binaries are
        decompiled up front, encoded through the GNN in one batch and
        scored in one tiled pair-head pass — the serving layer's hot path.
        """
        index = self._checked_index(candidates, index)
        graphs = [self.graph_of_binary(raw) for raw in raws]
        all_scores = index.scores_batch(graphs)
        out: List[List[Tuple[int, float]]] = []
        for row in all_scores:
            order = np.argsort(-row, kind="stable")
            out.append([(int(i), float(row[i])) for i in order])
        return out

    def _checked_index(
        self,
        candidates: Sequence[Tuple[str, str]],
        index: Optional[EmbeddingIndex],
    ) -> EmbeddingIndex:
        """Build (or validate a caller-supplied) candidate index."""
        if index is None:
            return self.source_index(candidates)
        # Same trainer object is trivially compatible; otherwise compare
        # weight + tokenizer fingerprints (memoized after the first
        # match), so an index built by a saved-then-reloaded checkpoint
        # of this model stays usable.
        if (
            index.trainer is not self.trainer
            and id(index.trainer) not in self._trusted_trainer_ids
        ):
            if model_fingerprint(index.trainer) != model_fingerprint(self.trainer):
                raise ValueError(
                    "index was built by a different model (weight/tokenizer "
                    "fingerprint mismatch); rebuild with this pipeline's "
                    "source_index()"
                )
            self._trusted_trainer_ids.add(id(index.trainer))
        if len(index) != len(candidates):
            raise ValueError(
                f"index has {len(index)} entries for {len(candidates)} candidates"
            )
        if index.tag != self._candidates_tag(candidates):
            raise ValueError(
                "index does not match this candidate list (tag "
                f"{index.tag!r}); build it with source_index()"
            )
        return index
