"""Training / evaluation loop for GraphBinMatch (§IV-D).

Adam + binary cross-entropy over balanced pair batches.  Each minibatch
batches both graphs of every pair into one disjoint-union graph so the
whole step is a single vectorized forward/backward.
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

import repro.nn as nn
from repro.config import ModelConfig
from repro.core.model import GraphBinMatch
from repro.core.node_features import encode_nodes, encode_nodes_unique, train_tokenizer
from repro.data.pairs import MatchingPair, PairDataset
from repro.graphs.batch import batch_graphs
from repro.graphs.programl import ProgramGraph
from repro.nn.functional import clip_grad_norm
from repro.nn.tensor import no_grad
from repro.tokenize.tokenizer import IRTokenizer
from repro.utils.rng import derive_rng


def config_fingerprint(config: ModelConfig) -> str:
    """Stable content hash of a :class:`ModelConfig` (JSON over its fields)."""
    from dataclasses import asdict

    payload = json.dumps(asdict(config), sort_keys=True)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


@dataclass
class TrainReport:
    """Loss curve, final validation metrics and per-phase wall clock."""

    epoch_losses: List[float] = field(default_factory=list)
    valid_f1: float = 0.0
    valid_f1_curve: List[float] = field(default_factory=list)
    best_epoch: int = -1
    # Wall-clock seconds per training phase: "encode" (batch building and
    # tokenization, train + valid), "optimize" (clip + optimizer step),
    # "valid" (per-epoch early-stopping evaluation), "train" (the whole
    # epoch loop including forward/backward).
    timings: Dict[str, float] = field(default_factory=dict)
    epoch_seconds: List[float] = field(default_factory=list)
    # Early-stopping validation seconds *per epoch* (zeros when early
    # stopping is off).  ``epoch_seconds[i] - epoch_valid_seconds[i]`` is
    # the training-only epoch time — the number optimizer benchmarks
    # compare, since validation cost is identical across optimizer paths
    # and dominates the timer noise at CPU scale.
    epoch_valid_seconds: List[float] = field(default_factory=list)


def weighted_epoch_loss(batch_losses: Sequence[Tuple[float, int]]) -> float:
    """Pair-weighted mean of per-batch mean losses.

    Each entry is ``(mean loss over the batch, pairs in the batch)``.  A
    plain mean over batches would give the ragged final minibatch the same
    weight as a full one, biasing the reported curve toward whatever pairs
    land there; weighting by pair count makes the epoch number the true
    mean loss over all pairs.
    """
    total = sum(count for _, count in batch_losses)
    if total == 0:
        return 0.0
    return float(sum(loss * count for loss, count in batch_losses) / total)


class MatchTrainer:
    """Owns the model, tokenizer and optimization state."""

    def __init__(self, config: ModelConfig, tokenizer: Optional[IRTokenizer] = None):  # noqa: D107
        self.config = config
        self.tokenizer = tokenizer
        self.model: Optional[GraphBinMatch] = None
        self.optimizer: Optional[nn.Adam] = None
        # Optimizer state restored from a checkpoint, pending validation and
        # import by the next train() call (see save/load).
        self._restored_opt: Optional[dict] = None
        # Identity-keyed memo of encoded prediction batches: the validation
        # split is scored every epoch under early stopping and again by the
        # final/calibration passes, but its tokenization + graph batching
        # are pair-content functions — encode once, reuse everywhere.
        self._encoded_memo: List[Tuple[Sequence[MatchingPair], int, list]] = []

    # ------------------------------------------------------------- setup
    def fit_tokenizer(self, pairs: Sequence[MatchingPair]) -> IRTokenizer:
        """Train the tokenizer on the training pairs' graphs."""
        graphs = []
        for p in pairs:
            graphs.append(p.left)
            graphs.append(p.right)
        self.tokenizer = train_tokenizer(
            graphs, mode=self.config.feature_mode, max_vocab=self.config.max_vocab
        )
        return self.tokenizer

    def _ensure_model(self) -> GraphBinMatch:
        if self.model is None:
            if self.tokenizer is None:
                raise RuntimeError("call fit_tokenizer() first")
            self.model = GraphBinMatch(self.tokenizer.vocab_size, self.config)
        return self.model

    # ----------------------------------------------------------- batches
    def _encode_batch(self, pairs: Sequence[MatchingPair]):
        graphs = []
        for p in pairs:
            graphs.append(p.left)
            graphs.append(p.right)
        batch = batch_graphs(graphs)
        token_ids = encode_nodes(self.tokenizer, batch, self.config.feature_mode)
        labels = np.asarray([p.label for p in pairs], dtype=np.float32)
        return batch, token_ids, labels

    # ------------------------------------------------------------- train
    def _apply_restored_optimizer(self, optimizer: nn.Adam) -> None:
        """Import checkpointed Adam moments into a fresh optimizer.

        Resuming against a different architecture or configuration would
        replay moments onto the wrong weights, so both the parameter-layout
        and config fingerprints recorded at save time must match exactly.
        """
        restored = self._restored_opt
        if restored is None:
            return
        layout = self.model.layout_fingerprint()
        config_fp = config_fingerprint(self.config)
        if restored.get("layout") != layout or restored.get("config") != config_fp:
            raise ValueError(
                "refusing to resume: optimizer state was saved for "
                f"layout={restored.get('layout')}/config={restored.get('config')}, "
                f"model is layout={layout}/config={config_fp}"
            )
        optimizer.state_import(restored["state"])

    def train(
        self,
        dataset: PairDataset,
        early_stopping: bool = False,
        fused_optimizer: bool = True,
    ) -> TrainReport:
        """Run the full training schedule; returns the loss curve.

        Pairs are shuffled once and packed into fixed minibatches that are
        *encoded a single time* and reused every epoch (only the batch order
        is re-shuffled).  Tokenization, graph batching and the segment sorts
        are the dominant per-step overheads, so reusing the encoded batches
        cuts epoch time by an order of magnitude; the reduced shuffling is
        compensated by dropout noise and matters little at this data scale.
        The validation split is likewise encoded once and its batches reused
        by every early-stopping evaluation (and by the final / calibration
        passes through :meth:`predict`).

        With ``early_stopping=True`` the validation F1 is evaluated after
        every epoch and the best-scoring weights are restored at the end —
        the unseen-task split overfits quickly at CPU scale, so the last
        epoch is rarely the best one.

        ``fused_optimizer`` selects the :class:`~repro.nn.optim.ParameterArena`
        whole-buffer Adam + gradient clip (the default); ``False`` runs the
        per-parameter reference loop (same arithmetic, used by the parity
        benchmarks).  A trainer restored from a checkpoint that carried
        optimizer state resumes from those moments — fingerprint-validated —
        instead of silently resetting them.
        """
        from repro.eval.metrics import classification_metrics

        report = TrainReport()
        t_encode = time.perf_counter()
        if self.tokenizer is None:
            self.fit_tokenizer(dataset.train)
        model = self._ensure_model()
        rng = derive_rng(self.config.seed, "train-shuffle")
        pairs = list(dataset.train)
        bs = self.config.batch_pairs
        order = rng.permutation(len(pairs))
        encoded = [
            self._encode_batch([pairs[i] for i in order[start : start + bs]])
            for start in range(0, len(pairs), bs)
        ]
        valid_labels = np.asarray([p.label for p in dataset.valid])
        track_valid = early_stopping and len(valid_labels) > 0
        if track_valid:
            encoded_valid = self.encode_pairs(dataset.valid)
        report.timings["encode"] = time.perf_counter() - t_encode

        optimizer = nn.Adam(
            model.parameters(), lr=self.config.learning_rate, fused=fused_optimizer
        )
        self._apply_restored_optimizer(optimizer)
        self.optimizer = optimizer
        best_state = None
        best_f1 = -1.0
        t_optim = 0.0
        t_valid = 0.0
        t_train = time.perf_counter()
        for epoch in range(self.config.epochs):
            t_epoch = time.perf_counter()
            model.train()
            losses = []
            smooth = self.config.label_smoothing
            for bi in rng.permutation(len(encoded)):
                batch, token_ids, labels = encoded[bi]
                targets = labels * (1.0 - smooth) + 0.5 * smooth if smooth else labels
                optimizer.zero_grad()
                scores = model(batch, token_ids)
                loss = nn.binary_cross_entropy(scores, targets)
                loss.backward()
                t0 = time.perf_counter()
                if fused_optimizer:
                    optimizer.clip_grad_norm(self.config.grad_clip)
                else:
                    clip_grad_norm(model.parameters(), self.config.grad_clip)
                optimizer.step()
                t_optim += time.perf_counter() - t0
                losses.append((loss.item(), len(labels)))
            report.epoch_losses.append(weighted_epoch_loss(losses))
            v_epoch = 0.0
            if track_valid:
                t0 = time.perf_counter()
                valid_scores = self._predict_encoded(encoded_valid)
                f1 = classification_metrics(valid_labels, valid_scores >= 0.5).f1
                v_epoch = time.perf_counter() - t0
                t_valid += v_epoch
                report.valid_f1_curve.append(f1)
                if f1 > best_f1:
                    best_f1 = f1
                    best_state = model.state_dict()
                    # Snapshot the moments with the weights: restoring
                    # best-epoch weights but keeping last-epoch Adam state
                    # would hand a resumed run a trajectory that belongs to
                    # neither epoch.
                    best_opt_state = optimizer.state_export()
                    report.best_epoch = epoch
            report.epoch_seconds.append(time.perf_counter() - t_epoch)
            report.epoch_valid_seconds.append(v_epoch)
        report.timings["train"] = time.perf_counter() - t_train
        report.timings["optimize"] = t_optim
        report.timings["valid"] = t_valid
        if track_valid and best_state is not None:
            model.load_state_dict(best_state)
            optimizer.state_import(best_opt_state)

        valid_scores = self.predict(dataset.valid)
        if len(valid_labels):
            report.valid_f1 = classification_metrics(valid_labels, valid_scores >= 0.5).f1
        return report

    # ------------------------------------------------------ checkpointing
    def save(self, path, extra_meta: Optional[dict] = None) -> None:
        """Write model weights + tokenizer + config to one ``.npz`` file.

        When the trainer holds optimizer state (it trained in this process,
        or it restored moments from a checkpoint), the Adam ``t``/``m``/``v``
        ride along so a reloaded trainer resumes training instead of
        silently resetting the moments.  ``extra_meta`` entries are merged
        into the checkpoint metadata (the experiment runner stores its
        fingerprint and report there).
        """
        from dataclasses import asdict

        from repro.nn.serialize import save_state

        if self.model is None or self.tokenizer is None:
            raise RuntimeError("nothing to save: train() or fit_tokenizer() first")
        meta = {"config": asdict(self.config), "tokenizer": self.tokenizer.state()}
        if extra_meta:
            meta.update(extra_meta)
        extra_arrays: Dict[str, np.ndarray] = {}
        opt_state = None
        if self.optimizer is not None:
            opt_state = self.optimizer.state_export()
        elif self._restored_opt is not None:
            opt_state = self._restored_opt["state"]
        if opt_state is not None:
            meta["optimizer"] = {
                "algo": opt_state["algo"],
                "t": int(opt_state.get("t", 0)),
                "layout": self.model.layout_fingerprint(),
                "config": config_fingerprint(self.config),
            }
            for key in ("m", "v", "velocity"):
                if key in opt_state:
                    extra_arrays[f"opt.{key}"] = np.asarray(opt_state[key])
        save_state(self.model, path, meta=meta, extra=extra_arrays or None)

    def save_bytes(self, extra_meta: Optional[dict] = None) -> bytes:
        """The checkpoint :meth:`save` would write, as in-memory bytes.

        Grid pool workers use this to hand a finished model back to the
        parent over a pipe — the parent commits it through the store's
        batched writer, so worker processes never touch the store and a
        killed worker cannot leave it half-written.
        """
        import io

        buf = io.BytesIO()
        self.save(buf, extra_meta=extra_meta)
        return buf.getvalue()

    @classmethod
    def load(cls, path) -> "MatchTrainer":
        """Restore a trainer (model + tokenizer + optimizer state)."""
        from repro.nn.serialize import load_state, read_extra, read_meta

        meta = read_meta(path)
        if meta is None or "config" not in meta or "tokenizer" not in meta:
            raise ValueError(f"{path} has no GraphBinMatch metadata")
        config = ModelConfig(**meta["config"])
        tokenizer = IRTokenizer.from_state(meta["tokenizer"])
        trainer = cls(config, tokenizer=tokenizer)
        load_state(trainer._ensure_model(), path)
        opt_meta = meta.get("optimizer")
        if opt_meta is not None:
            arrays = {
                key.split(".", 1)[1]: arr
                for key, arr in read_extra(path).items()
                if key.startswith("opt.")
            }
            trainer._restored_opt = {
                "layout": opt_meta.get("layout"),
                "config": opt_meta.get("config"),
                "state": {"algo": opt_meta["algo"], "t": opt_meta.get("t", 0), **arrays},
            }
        return trainer

    # --------------------------------------------------------- embeddings
    def encode_graphs(
        self, graphs: Sequence["ProgramGraph"], batch_size: int = 32
    ) -> np.ndarray:
        """Graph-level embeddings ``(G, 2H)``, each graph encoded exactly once.

        This is the siamese half of the matcher: the expensive part of a
        pairwise score is the GNN encoder, and ``score_from_embeddings`` only
        consumes the pooled embeddings.  Retrieval therefore encodes the
        corpus once through this API and re-runs just the pair head per
        query (see :mod:`repro.index`).  Runs in eval mode — BatchNorm uses
        running statistics and dropout is inert — so an embedding does not
        depend on which other graphs shared its batch and caching is exact.
        """
        model = self._ensure_model()
        model.eval()
        out: List[np.ndarray] = []
        with no_grad():
            for start in range(0, len(graphs), batch_size):
                chunk = graphs[start : start + batch_size]
                batch = batch_graphs(chunk)
                # Deduplicated token rows: the embed/reduce stage runs once
                # per distinct instruction shape, not once per node.
                tokens = encode_nodes_unique(
                    self.tokenizer, batch, self.config.feature_mode
                )
                out.append(model.encode_graphs(batch, tokens).data.copy())
        if not out:
            return np.zeros((0, 2 * self.config.hidden_dim), dtype=np.float32)
        return np.concatenate(out, axis=0)

    def embed_many(
        self, graphs: Sequence["ProgramGraph"], batch_size: int = 32
    ) -> np.ndarray:
        """Alias for :meth:`encode_graphs` (the retrieval-facing name)."""
        return self.encode_graphs(graphs, batch_size=batch_size)

    def score_embeddings(self, left: np.ndarray, right: np.ndarray) -> np.ndarray:
        """Pair-head scores for pre-computed embedding rows, vectorized.

        ``left``/``right`` are ``(N, 2H)`` matrices (or single ``(2H,)``
        rows) from :meth:`encode_graphs`.  The rows are interleaved into the
        layout :meth:`GraphBinMatch.score_from_embeddings` expects, so both
        ``pair_features`` modes (``concat`` and ``interaction``) go through
        the same vectorized path as a full forward — only without the
        encoder.
        """
        left = np.atleast_2d(np.asarray(left, dtype=np.float32))
        right = np.atleast_2d(np.asarray(right, dtype=np.float32))
        if left.shape != right.shape:
            raise ValueError(f"embedding shapes differ: {left.shape} vs {right.shape}")
        if left.shape[0] == 0:
            return np.zeros(0, dtype=np.float32)
        model = self._ensure_model()
        model.eval()
        interleaved = np.empty((2 * left.shape[0], left.shape[1]), dtype=np.float32)
        interleaved[0::2] = left
        interleaved[1::2] = right
        from repro.nn.tensor import Tensor

        with no_grad():
            scores = model.score_from_embeddings(Tensor(interleaved))
        return np.atleast_1d(scores.data).astype(np.float32, copy=True)

    # ----------------------------------------------------------- predict
    def encode_pairs(
        self, pairs: Sequence[MatchingPair], batch_size: int = 32
    ) -> list:
        """Tokenize + batch a pair list once; memoized by list identity.

        The encoded batches are what :meth:`predict` consumes.  Early
        stopping scores the same validation list every epoch, and the
        calibration/test passes re-score the same split objects, so a small
        identity-keyed memo (the pair lists are built once per dataset and
        their *elements* never replaced in place) removes all repeat
        encoding work; growing or shrinking a memoized list is detected by
        the recorded length and re-encodes.
        """
        for entry_pairs, entry_len, entry_bs, encoded in self._encoded_memo:
            # The length recorded at encode time catches the common list
            # mutations (append/extend/del) that identity alone would miss.
            if entry_pairs is pairs and entry_bs == batch_size and entry_len == len(pairs):
                return encoded
        encoded = [
            self._encode_batch(pairs[start : start + batch_size])
            for start in range(0, len(pairs), batch_size)
        ]
        self._encoded_memo.append((pairs, len(pairs), batch_size, encoded))
        if len(self._encoded_memo) > 8:
            self._encoded_memo.pop(0)
        return encoded

    def _predict_encoded(self, encoded: list) -> np.ndarray:
        """Scores for pre-encoded batches (eval mode, no tape)."""
        model = self._ensure_model()
        model.eval()
        out: List[np.ndarray] = []
        with no_grad():
            for batch, token_ids, _ in encoded:
                scores = model(batch, token_ids)
                out.append(np.atleast_1d(scores.data))
        return np.concatenate(out) if out else np.zeros(0, dtype=np.float32)

    def predict(self, pairs: Sequence[MatchingPair], batch_size: int = 32) -> np.ndarray:
        """Matching scores in [0, 1] for a pair list."""
        return self._predict_encoded(self.encode_pairs(pairs, batch_size))
