"""Training / evaluation loop for GraphBinMatch (§IV-D).

Adam + binary cross-entropy over balanced pair batches.  Each minibatch
batches both graphs of every pair into one disjoint-union graph so the
whole step is a single vectorized forward/backward.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

import repro.nn as nn
from repro.config import ModelConfig
from repro.core.model import GraphBinMatch
from repro.core.node_features import encode_nodes, encode_nodes_unique, train_tokenizer
from repro.data.pairs import MatchingPair, PairDataset
from repro.graphs.batch import batch_graphs
from repro.graphs.programl import ProgramGraph
from repro.nn.functional import clip_grad_norm
from repro.nn.tensor import no_grad
from repro.tokenize.tokenizer import IRTokenizer
from repro.utils.rng import derive_rng


@dataclass
class TrainReport:
    """Loss curve plus final validation metrics."""

    epoch_losses: List[float] = field(default_factory=list)
    valid_f1: float = 0.0
    valid_f1_curve: List[float] = field(default_factory=list)
    best_epoch: int = -1


def weighted_epoch_loss(batch_losses: Sequence[Tuple[float, int]]) -> float:
    """Pair-weighted mean of per-batch mean losses.

    Each entry is ``(mean loss over the batch, pairs in the batch)``.  A
    plain mean over batches would give the ragged final minibatch the same
    weight as a full one, biasing the reported curve toward whatever pairs
    land there; weighting by pair count makes the epoch number the true
    mean loss over all pairs.
    """
    total = sum(count for _, count in batch_losses)
    if total == 0:
        return 0.0
    return float(sum(loss * count for loss, count in batch_losses) / total)


class MatchTrainer:
    """Owns the model, tokenizer and optimization state."""

    def __init__(self, config: ModelConfig, tokenizer: Optional[IRTokenizer] = None):  # noqa: D107
        self.config = config
        self.tokenizer = tokenizer
        self.model: Optional[GraphBinMatch] = None

    # ------------------------------------------------------------- setup
    def fit_tokenizer(self, pairs: Sequence[MatchingPair]) -> IRTokenizer:
        """Train the tokenizer on the training pairs' graphs."""
        graphs = []
        for p in pairs:
            graphs.append(p.left)
            graphs.append(p.right)
        self.tokenizer = train_tokenizer(
            graphs, mode=self.config.feature_mode, max_vocab=self.config.max_vocab
        )
        return self.tokenizer

    def _ensure_model(self) -> GraphBinMatch:
        if self.model is None:
            if self.tokenizer is None:
                raise RuntimeError("call fit_tokenizer() first")
            self.model = GraphBinMatch(self.tokenizer.vocab_size, self.config)
        return self.model

    # ----------------------------------------------------------- batches
    def _encode_batch(self, pairs: Sequence[MatchingPair]):
        graphs = []
        for p in pairs:
            graphs.append(p.left)
            graphs.append(p.right)
        batch = batch_graphs(graphs)
        token_ids = encode_nodes(self.tokenizer, batch, self.config.feature_mode)
        labels = np.asarray([p.label for p in pairs], dtype=np.float32)
        return batch, token_ids, labels

    # ------------------------------------------------------------- train
    def train(self, dataset: PairDataset, early_stopping: bool = False) -> TrainReport:
        """Run the full training schedule; returns the loss curve.

        Pairs are shuffled once and packed into fixed minibatches that are
        *encoded a single time* and reused every epoch (only the batch order
        is re-shuffled).  Tokenization, graph batching and the segment sorts
        are the dominant per-step overheads, so reusing the encoded batches
        cuts epoch time by an order of magnitude; the reduced shuffling is
        compensated by dropout noise and matters little at this data scale.

        With ``early_stopping=True`` the validation F1 is evaluated after
        every epoch and the best-scoring weights are restored at the end —
        the unseen-task split overfits quickly at CPU scale, so the last
        epoch is rarely the best one.
        """
        from repro.eval.metrics import classification_metrics

        if self.tokenizer is None:
            self.fit_tokenizer(dataset.train)
        model = self._ensure_model()
        optimizer = nn.Adam(model.parameters(), lr=self.config.learning_rate)
        rng = derive_rng(self.config.seed, "train-shuffle")
        report = TrainReport()
        pairs = list(dataset.train)
        bs = self.config.batch_pairs
        order = rng.permutation(len(pairs))
        encoded = [
            self._encode_batch([pairs[i] for i in order[start : start + bs]])
            for start in range(0, len(pairs), bs)
        ]
        valid_labels = np.asarray([p.label for p in dataset.valid])
        track_valid = early_stopping and len(valid_labels) > 0
        best_state = None
        best_f1 = -1.0
        for epoch in range(self.config.epochs):
            model.train()
            losses = []
            smooth = self.config.label_smoothing
            for bi in rng.permutation(len(encoded)):
                batch, token_ids, labels = encoded[bi]
                targets = labels * (1.0 - smooth) + 0.5 * smooth if smooth else labels
                optimizer.zero_grad()
                scores = model(batch, token_ids)
                loss = nn.binary_cross_entropy(scores, targets)
                loss.backward()
                clip_grad_norm(model.parameters(), self.config.grad_clip)
                optimizer.step()
                losses.append((loss.item(), len(labels)))
            report.epoch_losses.append(weighted_epoch_loss(losses))
            if track_valid:
                valid_scores = self.predict(dataset.valid)
                f1 = classification_metrics(valid_labels, valid_scores >= 0.5).f1
                report.valid_f1_curve.append(f1)
                if f1 > best_f1:
                    best_f1 = f1
                    best_state = model.state_dict()
                    report.best_epoch = epoch
        if track_valid and best_state is not None:
            model.load_state_dict(best_state)

        valid_scores = self.predict(dataset.valid)
        if len(valid_labels):
            report.valid_f1 = classification_metrics(valid_labels, valid_scores >= 0.5).f1
        return report

    # ------------------------------------------------------ checkpointing
    def save(self, path) -> None:
        """Write model weights + tokenizer + config to one ``.npz`` file."""
        from dataclasses import asdict

        from repro.nn.serialize import save_state

        if self.model is None or self.tokenizer is None:
            raise RuntimeError("nothing to save: train() or fit_tokenizer() first")
        meta = {"config": asdict(self.config), "tokenizer": self.tokenizer.state()}
        save_state(self.model, path, meta=meta)

    @classmethod
    def load(cls, path) -> "MatchTrainer":
        """Restore a trainer (model + tokenizer) saved by :meth:`save`."""
        from repro.nn.serialize import load_state, read_meta

        meta = read_meta(path)
        if meta is None or "config" not in meta or "tokenizer" not in meta:
            raise ValueError(f"{path} has no GraphBinMatch metadata")
        config = ModelConfig(**meta["config"])
        tokenizer = IRTokenizer.from_state(meta["tokenizer"])
        trainer = cls(config, tokenizer=tokenizer)
        load_state(trainer._ensure_model(), path)
        return trainer

    # --------------------------------------------------------- embeddings
    def encode_graphs(
        self, graphs: Sequence["ProgramGraph"], batch_size: int = 32
    ) -> np.ndarray:
        """Graph-level embeddings ``(G, 2H)``, each graph encoded exactly once.

        This is the siamese half of the matcher: the expensive part of a
        pairwise score is the GNN encoder, and ``score_from_embeddings`` only
        consumes the pooled embeddings.  Retrieval therefore encodes the
        corpus once through this API and re-runs just the pair head per
        query (see :mod:`repro.index`).  Runs in eval mode — BatchNorm uses
        running statistics and dropout is inert — so an embedding does not
        depend on which other graphs shared its batch and caching is exact.
        """
        model = self._ensure_model()
        model.eval()
        out: List[np.ndarray] = []
        with no_grad():
            for start in range(0, len(graphs), batch_size):
                chunk = graphs[start : start + batch_size]
                batch = batch_graphs(chunk)
                # Deduplicated token rows: the embed/reduce stage runs once
                # per distinct instruction shape, not once per node.
                tokens = encode_nodes_unique(
                    self.tokenizer, batch, self.config.feature_mode
                )
                out.append(model.encode_graphs(batch, tokens).data.copy())
        if not out:
            return np.zeros((0, 2 * self.config.hidden_dim), dtype=np.float32)
        return np.concatenate(out, axis=0)

    def embed_many(
        self, graphs: Sequence["ProgramGraph"], batch_size: int = 32
    ) -> np.ndarray:
        """Alias for :meth:`encode_graphs` (the retrieval-facing name)."""
        return self.encode_graphs(graphs, batch_size=batch_size)

    def score_embeddings(self, left: np.ndarray, right: np.ndarray) -> np.ndarray:
        """Pair-head scores for pre-computed embedding rows, vectorized.

        ``left``/``right`` are ``(N, 2H)`` matrices (or single ``(2H,)``
        rows) from :meth:`encode_graphs`.  The rows are interleaved into the
        layout :meth:`GraphBinMatch.score_from_embeddings` expects, so both
        ``pair_features`` modes (``concat`` and ``interaction``) go through
        the same vectorized path as a full forward — only without the
        encoder.
        """
        left = np.atleast_2d(np.asarray(left, dtype=np.float32))
        right = np.atleast_2d(np.asarray(right, dtype=np.float32))
        if left.shape != right.shape:
            raise ValueError(f"embedding shapes differ: {left.shape} vs {right.shape}")
        if left.shape[0] == 0:
            return np.zeros(0, dtype=np.float32)
        model = self._ensure_model()
        model.eval()
        interleaved = np.empty((2 * left.shape[0], left.shape[1]), dtype=np.float32)
        interleaved[0::2] = left
        interleaved[1::2] = right
        from repro.nn.tensor import Tensor

        with no_grad():
            scores = model.score_from_embeddings(Tensor(interleaved))
        return np.atleast_1d(scores.data).astype(np.float32, copy=True)

    # ----------------------------------------------------------- predict
    def predict(self, pairs: Sequence[MatchingPair], batch_size: int = 32) -> np.ndarray:
        """Matching scores in [0, 1] for a pair list."""
        model = self._ensure_model()
        model.eval()
        out: List[np.ndarray] = []
        with no_grad():
            for start in range(0, len(pairs), batch_size):
                chunk = pairs[start : start + batch_size]
                batch, token_ids, _ = self._encode_batch(chunk)
                scores = model(batch, token_ids)
                out.append(np.atleast_1d(scores.data))
        return np.concatenate(out) if out else np.zeros(0, dtype=np.float32)
