"""The GraphBinMatch model (§III-D, Figure 2).

Architecture, layer for layer as described:

1. token **Embedding** over each node's id sequence; the 2-D per-node
   feature is reduced to 1-D with a PAD-masked **max** over the token axis,
2. L heterogeneous convolution layers — one **GATv2** per flow relation
   (control/data/call) with the edge ``position`` embedded into attention,
   outputs stacked and reduced with element-wise **max**, **LayerNorm**
   after each layer,
3. SimGNN-style **global attention pooling** to a graph embedding,
4. the two graph embeddings are concatenated and passed through two fully
   connected layers (LayerNorm after the first, dropout before the last)
   ending in a **sigmoid** matching score.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

import repro.nn as nn
from repro.config import ModelConfig
from repro.core.node_features import NodeTokens
from repro.graphs.batch import GraphBatch
from repro.graphs.programl import EXTENDED_RELATIONS, RELATIONS
from repro.nn.functional import concat
from repro.nn.tensor import Tensor
from repro.utils.rng import derive_rng


class GraphBinMatch(nn.Module):
    """Graph Binary Matching Similarity Neural Network."""

    def __init__(self, vocab_size: int, config: ModelConfig):  # noqa: D107
        super().__init__()
        self.config = config
        relations = tuple(config.relations) or RELATIONS
        unknown = [r for r in relations if r not in EXTENDED_RELATIONS]
        if unknown:
            raise ValueError(
                f"unknown graph relations {unknown}; known: {list(EXTENDED_RELATIONS)}"
            )
        rng = derive_rng(config.seed, "model-init")
        self.token_embedding = nn.Embedding(
            vocab_size, config.embed_dim, padding_idx=0, rng=rng
        )
        self.gnn = nn.HeteroGNNStack(
            relations,
            in_dim=config.embed_dim,
            hidden_dim=config.hidden_dim,
            num_layers=config.num_layers,
            heads=config.heads,
            use_positions=config.use_positions,
            aggregate=config.aggregate,
            rng=rng,
        )
        self.pool = nn.GlobalAttentionPool(config.hidden_dim, rng=rng)
        # Graph representation is [attention-mean ; per-dim max] (2H); the
        # max read-out is the vector analog of SimGNN's histogram features:
        # it preserves the node-level variance that the attention mean alone
        # washes out at CPU scale.  The pair head consumes the plain
        # concatenation (4H — the paper's "Transpose & Concat") or, with
        # pair_features="interaction", concat ⊕ |a-b| ⊕ a*b (8H): the extra
        # terms hand the first linear layer the cross-graph comparisons it
        # would otherwise have to synthesize, which at CPU scale shortens
        # the initial BCE plateau by an order of magnitude.
        if config.pair_features not in ("concat", "interaction"):
            raise ValueError(f"unknown pair_features {config.pair_features!r}")
        # Pooled graph embeddings share a large mean component (common
        # instructions dominate every program graph; their raw cosine is
        # ~0.95).  BatchNorm over the graph axis removes it exactly, so the
        # head sees the *differential* signal from step one.
        self.graph_norm = nn.BatchNorm1d(2 * config.hidden_dim)
        head_in = (4 if config.pair_features == "concat" else 8) * config.hidden_dim
        self.fc1 = nn.Linear(head_in, config.hidden_dim, rng=rng)
        self.fc_norm = nn.LayerNorm(config.hidden_dim)
        self.dropout = nn.Dropout(config.dropout, rng=derive_rng(config.seed, "dropout"))
        self.fc2 = nn.Linear(config.hidden_dim, 1, rng=rng)
        # Graphs pushed through the (expensive) encoder, cumulative.  The
        # retrieval benchmarks read this to show the embedding index really
        # does encode each graph once; not part of the checkpoint state.
        self.encoder_graph_count = 0

    # ----------------------------------------------------------- encoding
    def node_features(self, token_ids) -> Tensor:
        """Embed token ids and max-reduce to per-node features ``(N, D)``.

        ``token_ids`` is a dense ``(N, L)`` matrix or a deduplicated
        :class:`~repro.core.node_features.NodeTokens`; with the latter the
        embed/mask/reduce pipeline runs on the unique rows only and fans
        out by (differentiable) gather — numerically identical, since
        every step is row-independent, and several times less work for
        multi-graph batches where most rows repeat.

        PAD positions (id 0) are masked to -inf before the max so padding
        never wins the reduction; all-PAD rows fall back to zeros.
        """
        if isinstance(token_ids, NodeTokens):
            ids, inverse = token_ids.unique_ids, token_ids.inverse
        else:
            ids, inverse = token_ids, None
        emb = self.token_embedding(ids)  # (U, L, D)
        mask = (ids != 0).astype(np.float32)[:, :, None]  # (U, L, 1)
        neg = Tensor((1.0 - mask) * -1e9)
        masked = emb * Tensor(mask) + neg
        reduced = masked.max(axis=1)  # (U, D)
        any_token = (ids != 0).any(axis=1).astype(np.float32)[:, None]
        out = reduced * Tensor(any_token)
        return out if inverse is None else out[inverse]

    def encode_graphs(self, batch: GraphBatch, token_ids: np.ndarray) -> Tensor:
        """Full encoder: token ids → graph-level embeddings ``(G, 2H)``.

        The read-out concatenates the SimGNN attention pooling (weighted
        mean) with a per-dimension max over nodes.
        """
        from repro.nn.functional import segment_max

        self.encoder_graph_count += batch.num_graphs
        x = self.node_features(token_ids)
        h = self.gnn(x, plans=batch.conv_plans())
        gi = batch.graph_index()
        att = self.pool(h, gi, batch.num_graphs)
        mx = segment_max(h, gi, batch.num_graphs)
        return self.graph_norm(concat([att, mx], axis=1))

    # ------------------------------------------------------------ scoring
    def score_from_embeddings(self, graph_emb: Tensor) -> Tensor:
        """Pairwise scores from interleaved (left0, right0, left1, ...) rows."""
        g = graph_emb.shape[0]
        if g % 2 != 0:
            raise ValueError("expected an even number of graphs (pairs)")
        pairs = graph_emb.reshape(g // 2, 4 * self.config.hidden_dim)
        if self.config.pair_features == "interaction":
            left = graph_emb[np.arange(0, g, 2)]
            right = graph_emb[np.arange(1, g, 2)]
            pairs = concat([pairs, (left - right).abs(), left * right], axis=1)
        hidden = self.fc_norm(self.fc1(pairs)).leaky_relu()
        hidden = self.dropout(hidden)
        return self.fc2(hidden).sigmoid().reshape(g // 2)

    def forward(self, batch: GraphBatch, token_ids: np.ndarray) -> Tensor:
        """Scores for a batch holding interleaved pair graphs."""
        return self.score_from_embeddings(self.encode_graphs(batch, token_ids))
