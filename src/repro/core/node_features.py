"""Node feature extraction: graph node strings → padded token-id matrices.

Implements §III-C: each node's feature is the tokenized ``full_text``
(complete instruction) with ``text`` (opcode only) as the fallback when
``full_text`` is unavailable, SSA variables normalized to ``[VAR]``, and
truncation/padding to the tokenizer's power-of-two length.  Setting
``mode="text"`` reproduces the ProGraML-default ablation of Table VIII.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence

import numpy as np

from repro.graphs.batch import GraphBatch
from repro.graphs.programl import ProgramGraph
from repro.tokenize.tokenizer import IRTokenizer


@dataclass
class NodeTokens:
    """Deduplicated node token ids: unique rows plus a per-node inverse.

    ``unique_ids[inverse]`` is the dense ``(num_nodes, L)`` matrix
    :func:`encode_nodes` returns.  :meth:`GraphBinMatch.node_features`
    consumes this form directly, running the embed/mask/reduce pipeline on
    the unique rows only — in a multi-graph batch ~85% of node rows are
    duplicate instruction shapes, so this is the encoder's single biggest
    batching win.
    """

    unique_ids: np.ndarray  # (U, L)
    inverse: np.ndarray  # (num_nodes,)

    def dense(self) -> np.ndarray:
        """The equivalent per-node ``(num_nodes, L)`` id matrix."""
        return self.unique_ids[self.inverse]


def node_strings(graph_or_batch, mode: str = "full_text") -> List[str]:
    """Feature string per node: full_text with text fallback, or text only."""
    if mode not in ("full_text", "text"):
        raise ValueError(f"unknown feature mode {mode!r}")
    texts = graph_or_batch.node_texts
    fulls = graph_or_batch.node_full_texts
    if mode == "text":
        return list(texts)
    return [full if full else text for text, full in zip(texts, fulls)]


def train_tokenizer(
    graphs: Iterable[ProgramGraph], mode: str = "full_text", max_vocab: int = 2048
) -> IRTokenizer:
    """Fit the tokenizer on every node string of the training graphs."""
    corpus: List[str] = []
    for g in graphs:
        corpus.extend(node_strings(g, mode))
    return IRTokenizer(max_vocab=max_vocab).train(corpus)


def encode_nodes(
    tokenizer: IRTokenizer, batch: GraphBatch, mode: str = "full_text"
) -> np.ndarray:
    """Token-id matrix ``(num_nodes, truncation_length)`` for a batch."""
    return tokenizer.encode_batch(node_strings(batch, mode))


def encode_nodes_unique(
    tokenizer: IRTokenizer, batch: GraphBatch, mode: str = "full_text"
) -> NodeTokens:
    """Deduplicated :class:`NodeTokens` for a batch (see that class)."""
    mat, inverse = tokenizer.encode_unique(node_strings(batch, mode))
    return NodeTokens(mat, inverse)
