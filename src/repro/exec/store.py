"""Content-addressed on-disk store for *trained* models.

Mirrors :class:`repro.artifacts.ArtifactStore`, one level up the stack:
entries are finished :class:`~repro.core.trainer.MatchTrainer` checkpoints
(weights + tokenizer + optimizer moments, via ``MatchTrainer.save``'s
pickle-free ``.npz``) addressed by an experiment fingerprint computed in
:mod:`repro.exec.runner`.  Writes are atomic (temp file + ``os.replace``),
so parallel grid workers share one store without locks; unreadable or
mismatched entries are misses, never errors — counted in ``read_errors``
when the entry exists but cannot be read, so faults stay observable.

Each checkpoint gains a ``<fingerprint>.npz.sha256`` sidecar recording
the committed file's content hash (older sidecar-less entries keep
opening unchanged); ``verify_reads`` / ``REPRO_VERIFY_READS=1`` checks
it before deserializing, and ``repro fsck`` uses it to classify entries.
"""

from __future__ import annotations

import os
import zipfile
from pathlib import Path
from typing import List, Optional, Union

from repro import faults
from repro.core.trainer import MatchTrainer
from repro.utils.fsio import (
    TMP_SWEEP_AGE_SECONDS,
    env_verify_reads as _env_verify_reads,
    sha256_file,
    sweep_orphan_tmps,
)

PathLike = Union[str, Path]

#: Everything a failed checkpoint read can raise: IO faults (including
#: injected ones), truncated/invalid zip containers, bad JSON metadata,
#: schema drift in the serialized trainer.  Not a bare ``Exception``.
READ_ERRORS = (
    OSError,
    EOFError,
    ValueError,
    KeyError,
    IndexError,
    TypeError,
    zipfile.BadZipFile,
)

# Pins the trainer implementation in every experiment fingerprint: bump
# when training semantics change observably (optimizer math, batching,
# early-stopping rule), so stale cached models miss instead of serving
# results the current code would not produce.
RUNNER_VERSION = "train-1"


class ModelStore:
    """Directory of content-addressed trained-model checkpoints.

    ``get``/``put`` speak :class:`MatchTrainer`; ``hits``/``misses`` count
    lookups for reporting (the ``experiment`` CLI and ``bench_train``
    print them).
    """

    def __init__(
        self,
        root: PathLike,
        verify_reads: bool = False,
        sweep_age_seconds: float = TMP_SWEEP_AGE_SECONDS,
    ):
        """Open (creating if needed) the store at ``root``.

        ``verify_reads`` checks each checkpoint's sha256 sidecar before
        loading (also switchable via ``REPRO_VERIFY_READS=1``).  Opening
        sweeps temp files older than ``sweep_age_seconds`` left behind by
        crashed writers.
        """
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.verify_reads = verify_reads or _env_verify_reads()
        self.hits = 0
        self.misses = 0
        self.read_errors = 0
        self.swept_tmps = sweep_orphan_tmps(self.root, sweep_age_seconds)

    # ------------------------------------------------------------- layout
    def path_for(self, fingerprint: str) -> Path:
        """Entry path: two-hex-char shard directory + full fingerprint."""
        return self.root / fingerprint[:2] / (fingerprint + ".npz")

    @staticmethod
    def checksum_path(path: PathLike) -> Path:
        """The sha256 sidecar recorded next to one checkpoint."""
        path = Path(path)
        return path.with_name(path.name + ".sha256")

    def __contains__(self, fingerprint: str) -> bool:
        """True when an entry exists on disk (no validation, no counters)."""
        return self.path_for(fingerprint).exists()

    def _entry_paths(self):
        """Stored checkpoints, excluding in-flight ``.<fp>.<pid>.tmp.npz``
        temps (pathlib's ``*`` matches dotfiles, and a killed writer can
        leave one behind)."""
        return (p for p in self.root.glob("*/*.npz") if not p.name.startswith("."))

    def __len__(self) -> int:
        """Number of stored checkpoints."""
        return sum(1 for _ in self._entry_paths())

    def size_bytes(self) -> int:
        """Total on-disk size of all entries."""
        return sum(p.stat().st_size for p in self._entry_paths())

    # -------------------------------------------------------------- write
    def put(self, fingerprint: str, trainer: MatchTrainer, meta: dict) -> Path:
        """Persist a trained model; atomic, safe under concurrent writers.

        ``meta`` is stored under the checkpoint's ``experiment`` key — the
        runner records the fingerprint, spec name, report summary and
        timing there; ``get`` validates the fingerprint on the way back.
        """
        path = self.path_for(fingerprint)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(f".{fingerprint}.{os.getpid()}.tmp.npz")
        try:
            faults.hit("models.put.write")
            trainer.save(
                str(tmp), extra_meta={"experiment": {**meta, "fingerprint": fingerprint}}
            )
            # Hash the temp (== committed) bytes *before* the rename: a
            # commit-time fault that corrupts the entry then disagrees
            # with the sidecar instead of blessing the damage.
            digest = sha256_file(tmp)
            faults.replace(tmp, path, "models.put")
        except BaseException:
            if tmp.exists():
                tmp.unlink()
            raise
        self._commit_sidecar(path, fingerprint, digest)
        return path

    def put_bytes(self, fingerprint: str, payload: bytes) -> Path:
        """Persist an already-serialized checkpoint (``MatchTrainer.save_bytes``).

        Same atomic commit protocol and fault sites as :meth:`put` — the
        payload is staged to a temp file, hashed, renamed into place, then
        the sidecar commits.  This is the sink of the grid pool's batched
        writer: workers ship checkpoint bytes over a pipe and only the
        parent ever writes the store.
        """
        path = self.path_for(fingerprint)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(f".{fingerprint}.{os.getpid()}.tmp.npz")
        try:
            faults.hit("models.put.write")
            tmp.write_bytes(payload)
            digest = sha256_file(tmp)
            faults.replace(tmp, path, "models.put")
        except BaseException:
            if tmp.exists():
                tmp.unlink()
            raise
        self._commit_sidecar(path, fingerprint, digest)
        return path

    def _commit_sidecar(self, path: Path, fingerprint: str, digest: str) -> None:
        # Sidecar commits after the entry: the worst crash window leaves a
        # checkpoint without (or with a stale) sidecar, which readers and
        # fsck treat as "unverified", never as valid-but-wrong.
        sidecar = self.checksum_path(path)
        sidecar_tmp = sidecar.with_name(f".{fingerprint}.{os.getpid()}.sha.tmp")
        try:
            sidecar_tmp.write_text(digest + "\n")
            os.replace(sidecar_tmp, sidecar)
        except BaseException:
            if sidecar_tmp.exists():
                sidecar_tmp.unlink()
            raise

    # --------------------------------------------------------------- read
    def get(self, fingerprint: str) -> Optional[MatchTrainer]:
        """Load a trained model, or ``None`` on any miss (absent, corrupt, stale).

        An entry that exists but fails to read (IO fault, truncated file,
        sidecar checksum mismatch under ``verify_reads``) is still a miss
        — grid runs retrain — but bumps ``read_errors`` so corruption is
        observable, never silently swallowed.
        """
        path = self.path_for(fingerprint)
        try:
            faults.hit("models.get.read")
            if self.verify_reads:
                self.verify_checksum(path)
            trainer = MatchTrainer.load(str(path))
            meta = self.read_meta(path)
            if meta.get("fingerprint") != fingerprint:
                self.misses += 1
                return None
        except FileNotFoundError:
            self.misses += 1
            return None
        except READ_ERRORS:
            self.read_errors += 1
            self.misses += 1
            return None
        self.hits += 1
        return trainer

    @classmethod
    def verify_checksum(cls, path: PathLike) -> Optional[bool]:
        """Check one checkpoint against its sha256 sidecar.

        Returns True on match, ``None`` when no sidecar exists (a
        pre-sidecar entry: unverifiable, not wrong), and raises
        ``ValueError`` on mismatch.
        """
        sidecar = cls.checksum_path(path)
        try:
            recorded = sidecar.read_text().strip()
        except FileNotFoundError:
            return None
        actual = sha256_file(path)
        if actual != recorded:
            raise ValueError(
                f"checksum mismatch for {Path(path).name}: sidecar records "
                f"{recorded[:12]}…, file hashes to {actual[:12]}…"
            )
        return True

    @staticmethod
    def read_meta(path: PathLike) -> dict:
        """The ``experiment`` metadata of one stored checkpoint."""
        from repro.nn.serialize import read_meta

        meta = read_meta(str(path)) or {}
        return meta.get("experiment", {})

    def entries(self) -> List[dict]:
        """Experiment metadata of every stored checkpoint (for ``list``)."""
        out = []
        for path in sorted(self._entry_paths()):
            try:
                meta = self.read_meta(path)
            except READ_ERRORS:
                # Listing is a survey, not a health check: unreadable
                # entries are skipped here and diagnosed by `repro fsck`.
                continue
            meta = dict(meta)
            meta["path"] = str(path)
            meta["bytes"] = path.stat().st_size
            out.append(meta)
        return out

    # ---------------------------------------------------------- reporting
    def stats(self) -> dict:
        """Counters + on-disk footprint for status displays."""
        return {
            "root": str(self.root),
            "entries": len(self),
            "bytes": self.size_bytes(),
            "hits": self.hits,
            "misses": self.misses,
            "read_errors": self.read_errors,
            "swept_tmps": self.swept_tmps,
        }


class BatchedModelWriter:
    """Buffer finished checkpoints and commit them in batches.

    The grid pool's parent-side sink: each worker result (fingerprint,
    checkpoint bytes) is :meth:`add`-ed as it arrives, and every
    ``max_pending``-th addition flushes the buffer through
    :meth:`ModelStore.put_bytes` — amortizing the directory churn of the
    per-run atomic round-trips without ever weakening them: each entry
    still commits via temp file + ``os.replace`` + sidecar, so a crash
    mid-flush loses only uncommitted buffers, never corrupts the store.

    Use as a context manager; exit flushes whatever is pending (also on
    error — buffered checkpoints are finished work worth keeping).
    """

    def __init__(self, store: ModelStore, max_pending: int = 8):  # noqa: D107
        if max_pending < 1:
            raise ValueError(f"max_pending must be >= 1, got {max_pending}")
        self.store = store
        self.max_pending = int(max_pending)
        self.pending: List[tuple] = []
        self.committed = 0
        self.flushes = 0

    def add(self, fingerprint: str, payload: bytes) -> None:
        """Queue one checkpoint; flushes when the buffer fills."""
        self.pending.append((fingerprint, payload))
        if len(self.pending) >= self.max_pending:
            self.flush()

    def flush(self) -> int:
        """Commit every pending checkpoint; returns how many were written."""
        if not self.pending:
            return 0
        batch, self.pending = self.pending, []
        self.flushes += 1
        for fingerprint, payload in batch:
            self.store.put_bytes(fingerprint, payload)
            self.committed += 1
        return len(batch)

    def __enter__(self) -> "BatchedModelWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.flush()
