"""Content-addressed on-disk store for *trained* models.

Mirrors :class:`repro.artifacts.ArtifactStore`, one level up the stack:
entries are finished :class:`~repro.core.trainer.MatchTrainer` checkpoints
(weights + tokenizer + optimizer moments, via ``MatchTrainer.save``'s
pickle-free ``.npz``) addressed by an experiment fingerprint computed in
:mod:`repro.exec.runner`.  Writes are atomic (temp file + ``os.replace``),
so parallel grid workers share one store without locks; unreadable or
mismatched entries are misses, never errors.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import List, Optional, Union

from repro.core.trainer import MatchTrainer

PathLike = Union[str, Path]

# Pins the trainer implementation in every experiment fingerprint: bump
# when training semantics change observably (optimizer math, batching,
# early-stopping rule), so stale cached models miss instead of serving
# results the current code would not produce.
RUNNER_VERSION = "train-1"


class ModelStore:
    """Directory of content-addressed trained-model checkpoints.

    ``get``/``put`` speak :class:`MatchTrainer`; ``hits``/``misses`` count
    lookups for reporting (the ``experiment`` CLI and ``bench_train``
    print them).
    """

    def __init__(self, root: PathLike):  # noqa: D107
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------- layout
    def path_for(self, fingerprint: str) -> Path:
        """Entry path: two-hex-char shard directory + full fingerprint."""
        return self.root / fingerprint[:2] / (fingerprint + ".npz")

    def __contains__(self, fingerprint: str) -> bool:
        """True when an entry exists on disk (no validation, no counters)."""
        return self.path_for(fingerprint).exists()

    def _entry_paths(self):
        """Stored checkpoints, excluding in-flight ``.<fp>.<pid>.tmp.npz``
        temps (pathlib's ``*`` matches dotfiles, and a killed writer can
        leave one behind)."""
        return (p for p in self.root.glob("*/*.npz") if not p.name.startswith("."))

    def __len__(self) -> int:
        """Number of stored checkpoints."""
        return sum(1 for _ in self._entry_paths())

    def size_bytes(self) -> int:
        """Total on-disk size of all entries."""
        return sum(p.stat().st_size for p in self._entry_paths())

    # -------------------------------------------------------------- write
    def put(self, fingerprint: str, trainer: MatchTrainer, meta: dict) -> Path:
        """Persist a trained model; atomic, safe under concurrent writers.

        ``meta`` is stored under the checkpoint's ``experiment`` key — the
        runner records the fingerprint, spec name, report summary and
        timing there; ``get`` validates the fingerprint on the way back.
        """
        path = self.path_for(fingerprint)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(f".{fingerprint}.{os.getpid()}.tmp.npz")
        try:
            trainer.save(
                str(tmp), extra_meta={"experiment": {**meta, "fingerprint": fingerprint}}
            )
            os.replace(tmp, path)
        except BaseException:
            if tmp.exists():
                tmp.unlink()
            raise
        return path

    # --------------------------------------------------------------- read
    def get(self, fingerprint: str) -> Optional[MatchTrainer]:
        """Load a trained model, or ``None`` on any miss (absent, corrupt, stale)."""
        path = self.path_for(fingerprint)
        try:
            trainer = MatchTrainer.load(str(path))
            meta = self.read_meta(path)
            if meta.get("fingerprint") != fingerprint:
                self.misses += 1
                return None
        except Exception:  # noqa: BLE001 - cache read: unreadable entry = miss
            self.misses += 1
            return None
        self.hits += 1
        return trainer

    @staticmethod
    def read_meta(path: PathLike) -> dict:
        """The ``experiment`` metadata of one stored checkpoint."""
        from repro.nn.serialize import read_meta

        meta = read_meta(str(path)) or {}
        return meta.get("experiment", {})

    def entries(self) -> List[dict]:
        """Experiment metadata of every stored checkpoint (for ``list``)."""
        out = []
        for path in sorted(self._entry_paths()):
            try:
                meta = self.read_meta(path)
            except Exception:  # noqa: BLE001 - skip unreadable entries
                continue
            meta = dict(meta)
            meta["path"] = str(path)
            meta["bytes"] = path.stat().st_size
            out.append(meta)
        return out

    # ---------------------------------------------------------- reporting
    def stats(self) -> dict:
        """Counters + on-disk footprint for status displays."""
        return {
            "root": str(self.root),
            "entries": len(self),
            "bytes": self.size_bytes(),
            "hits": self.hits,
            "misses": self.misses,
        }
