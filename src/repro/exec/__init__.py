"""Training-throughput subsystem: trained-model store + experiment runner.

The evaluation layer is a grid of trained models (every paper table trains
one or more GraphBinMatch instances), and at CPU scale training dominates
the bench suite's wall clock the way compilation used to dominate corpus
builds.  This package applies the PR-2 artifact-store pattern to *training
runs*:

* :class:`ModelStore` — a content-addressed on-disk cache of finished
  checkpoints, keyed by a fingerprint over (model config, dataset split
  content, trainer version);
* :func:`run_experiment` — train once per fingerprint, load everywhere
  else (reloaded trainers are fingerprint-equal, so metric rows are
  identical);
* :func:`run_grid` — fan the independent trainings of a table across
  persistent :class:`WarmPool` workers (shared datasets, batched store
  commits) with results identical to the serial path.
"""

from repro.exec.pool import JobFailed, SharedRef, WarmPool, get_pool, shutdown_pools
from repro.exec.runner import (
    ExperimentRun,
    ExperimentSpec,
    dataset_fingerprint,
    experiment_fingerprint,
    run_experiment,
    run_grid,
)
from repro.exec.store import RUNNER_VERSION, BatchedModelWriter, ModelStore

__all__ = [
    "BatchedModelWriter",
    "ExperimentRun",
    "ExperimentSpec",
    "JobFailed",
    "ModelStore",
    "RUNNER_VERSION",
    "SharedRef",
    "WarmPool",
    "dataset_fingerprint",
    "experiment_fingerprint",
    "get_pool",
    "run_experiment",
    "run_grid",
    "shutdown_pools",
]
