"""Training-throughput subsystem: trained-model store + experiment runner.

The evaluation layer is a grid of trained models (every paper table trains
one or more GraphBinMatch instances), and at CPU scale training dominates
the bench suite's wall clock the way compilation used to dominate corpus
builds.  This package applies the PR-2 artifact-store pattern to *training
runs*:

* :class:`ModelStore` — a content-addressed on-disk cache of finished
  checkpoints, keyed by a fingerprint over (model config, dataset split
  content, trainer version);
* :func:`run_experiment` — train once per fingerprint, load everywhere
  else (reloaded trainers are fingerprint-equal, so metric rows are
  identical);
* :func:`run_grid` — fan the independent trainings of a table across
  worker processes with results identical to the serial path.
"""

from repro.exec.runner import (
    ExperimentRun,
    ExperimentSpec,
    dataset_fingerprint,
    experiment_fingerprint,
    run_experiment,
    run_grid,
)
from repro.exec.store import RUNNER_VERSION, ModelStore

__all__ = [
    "ExperimentRun",
    "ExperimentSpec",
    "ModelStore",
    "RUNNER_VERSION",
    "dataset_fingerprint",
    "experiment_fingerprint",
    "run_experiment",
    "run_grid",
]
