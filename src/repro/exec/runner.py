"""The experiment runner: fingerprinted, cached, parallel training runs.

A training run is fully determined by ``(ModelConfig, dataset split
content, trainer version)`` — the trainer's RNG streams all derive from
``config.seed`` and the dataset is an explicit list of graph pairs — so a
finished run can be content-addressed exactly like a compilation artifact.
:func:`run_experiment` consults a :class:`~repro.exec.store.ModelStore`
before training; a warm hit loads the checkpoint (fingerprint-equal to the
trainer that wrote it, so every downstream metric row is identical) in a
fraction of a percent of the training cost.

:func:`run_grid` runs the *independent* trainings of a table — Table IV/V
train ten models, the ablation benches eight — and can fan cold runs
across a multiprocessing pool.  Workers only fill the store; the parent
then loads every entry in order, so grid output is identical to the
serial path by construction.
"""

from __future__ import annotations

import hashlib
import json
import multiprocessing
import shutil
import tempfile
import time
import weakref
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.config import ModelConfig
from repro.core.trainer import MatchTrainer, TrainReport
from repro.data.pairs import PairDataset
from repro.exec.store import RUNNER_VERSION, ModelStore

PathLike = str


@dataclass(frozen=True)
class ExperimentSpec:
    """One training run: a named model configuration.

    ``name`` is cosmetic (display / store metadata); the fingerprint covers
    only ``config`` and ``early_stopping``, so two specs that train the
    same model on the same dataset share one cache entry whatever they are
    called.
    """

    name: str
    config: ModelConfig
    early_stopping: bool = True


@dataclass
class ExperimentRun:
    """A finished (or cache-served) training run."""

    spec: ExperimentSpec
    fingerprint: str
    trainer: MatchTrainer
    from_cache: bool
    seconds: float
    report: Optional[TrainReport] = None
    report_meta: Dict[str, object] = field(default_factory=dict)


# Dataset fingerprints are content hashes over every split's graphs and
# labels; graphs repeat across pairs (and datasets are built once and
# reused by a whole bench process), so both levels memoize — per-graph by
# object identity inside one call, per-dataset by weakly-referenced
# identity across calls.
_DATASET_FP_MEMO: Dict[int, Tuple["weakref.ref", str]] = {}


def dataset_fingerprint(dataset: PairDataset) -> str:
    """Content hash of a :class:`PairDataset` (splits, graphs, labels)."""
    key = id(dataset)
    hit = _DATASET_FP_MEMO.get(key)
    if hit is not None:
        ref, fp = hit
        if ref() is dataset:
            return fp
    from repro.index.embedding_index import graph_fingerprint

    graph_memo: Dict[int, str] = {}

    def gfp(graph) -> str:
        g_key = id(graph)
        cached = graph_memo.get(g_key)
        if cached is None:
            cached = graph_memo[g_key] = graph_fingerprint(graph)
        return cached

    h = hashlib.sha256()
    for split_name, pairs in (
        ("train", dataset.train),
        ("valid", dataset.valid),
        ("test", dataset.test),
    ):
        h.update(f"{split_name}:{len(pairs)}".encode("utf-8"))
        for pair in pairs:
            h.update(gfp(pair.left).encode("ascii"))
            h.update(gfp(pair.right).encode("ascii"))
            h.update(f"{pair.label}:{pair.task_left}:{pair.task_right}".encode("utf-8"))
    fp = h.hexdigest()
    try:
        # memo bound into the defaults: see the matching note in
        # repro.nn.segments — globals may be gone when the callback fires.
        ref = weakref.ref(
            dataset, lambda _, k=key, memo=_DATASET_FP_MEMO: memo.pop(k, None)
        )
        _DATASET_FP_MEMO[key] = (ref, fp)
    except TypeError:  # pragma: no cover - non-weakref-able dataset type
        pass
    return fp


def experiment_fingerprint(spec: ExperimentSpec, dataset_fp: str) -> str:
    """Content address of one training run.

    Covers the full model config, the early-stopping protocol, the dataset
    content hash and :data:`RUNNER_VERSION`; change any of them and the
    old entry misses instead of serving a model the current code would not
    train.
    """
    payload = "\x1f".join(
        [
            RUNNER_VERSION,
            json.dumps(asdict(spec.config), sort_keys=True),
            str(bool(spec.early_stopping)),
            dataset_fp,
        ]
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def _report_meta(spec: ExperimentSpec, report: TrainReport, seconds: float) -> dict:
    return {
        "name": spec.name,
        "config": asdict(spec.config),
        "early_stopping": bool(spec.early_stopping),
        "valid_f1": float(report.valid_f1),
        "best_epoch": int(report.best_epoch),
        "epochs": len(report.epoch_losses),
        "final_loss": float(report.epoch_losses[-1]) if report.epoch_losses else None,
        "train_seconds": float(seconds),
        "timings": {k: float(v) for k, v in report.timings.items()},
    }


def run_experiment(
    spec: ExperimentSpec,
    dataset: PairDataset,
    store: Optional[ModelStore] = None,
    dataset_fp: Optional[str] = None,
) -> ExperimentRun:
    """Train ``spec`` on ``dataset``, or load it from the model store.

    A warm hit returns a fingerprint-equal reloaded trainer: same weights,
    same tokenizer, same predictions, identical downstream metric rows —
    the store is a cache in the strict sense.  Pass ``dataset_fp`` when
    the caller already computed it (grid runs share one dataset hash).
    """
    dataset_fp = dataset_fp or dataset_fingerprint(dataset)
    fingerprint = experiment_fingerprint(spec, dataset_fp)
    t0 = time.perf_counter()
    if store is not None:
        trainer = store.get(fingerprint)
        if trainer is not None:
            return ExperimentRun(
                spec=spec,
                fingerprint=fingerprint,
                trainer=trainer,
                from_cache=True,
                seconds=time.perf_counter() - t0,
                report_meta=ModelStore.read_meta(store.path_for(fingerprint)),
            )
    trainer = MatchTrainer(spec.config)
    report = trainer.train(dataset, early_stopping=spec.early_stopping)
    seconds = time.perf_counter() - t0
    meta = _report_meta(spec, report, seconds)
    if store is not None:
        store.put(fingerprint, trainer, meta)
    return ExperimentRun(
        spec=spec,
        fingerprint=fingerprint,
        trainer=trainer,
        from_cache=False,
        seconds=seconds,
        report=report,
        report_meta=meta,
    )


def _train_into_store(payload) -> str:
    """Worker entry point: train one grid job and persist it to the store."""
    spec, dataset, store_root, fingerprint = payload
    store = ModelStore(store_root)
    if fingerprint not in store:
        trainer = MatchTrainer(spec.config)
        t0 = time.perf_counter()
        report = trainer.train(dataset, early_stopping=spec.early_stopping)
        store.put(
            fingerprint, trainer, _report_meta(spec, report, time.perf_counter() - t0)
        )
    return fingerprint


def run_grid(
    jobs: Sequence[Tuple[ExperimentSpec, PairDataset]],
    store: Optional[ModelStore] = None,
    workers: int = 0,
) -> List[ExperimentRun]:
    """Run a table's independent trainings, optionally across processes.

    Each job's RNG streams derive only from its own ``config.seed``, so
    jobs are independent and the parallel schedule cannot change any
    result: with ``workers > 1`` the cold jobs are fanned over a
    multiprocessing pool that only *fills the store*, and every run —
    warm or cold — is then materialized in order through
    :func:`run_experiment`, making grid output identical to the serial
    path by construction.  Without a store, parallel runs use a temporary
    one for the duration of the call.
    """
    if workers < 0:
        raise ValueError(f"workers must be >= 0, got {workers}")
    jobs = list(jobs)
    scratch: Optional[str] = None
    if store is None and workers > 1 and len(jobs) > 1:
        scratch = tempfile.mkdtemp(prefix="repro-models-")
        store = ModelStore(scratch)
    try:
        if store is not None and workers > 1:
            fps: List[str] = [
                experiment_fingerprint(spec, dataset_fingerprint(dataset))
                for spec, dataset in jobs
            ]
            todo = [
                (spec, dataset, str(store.root), fp)
                for (spec, dataset), fp in zip(jobs, fps)
                if fp not in store
            ]
            # Deduplicate by fingerprint so two same-config jobs don't train
            # twice; strided chunks keep every pool slot busy.
            todo = list({payload[3]: payload for payload in todo}.values())
            if len(todo) > 1:
                fan_out = min(workers, len(todo))
                with multiprocessing.Pool(fan_out) as pool:
                    pool.map(_train_into_store, todo)
            elif todo:
                _train_into_store(todo[0])
        return [run_experiment(spec, dataset, store=store) for spec, dataset in jobs]
    finally:
        if scratch is not None:
            shutil.rmtree(scratch, ignore_errors=True)
