"""The experiment runner: fingerprinted, cached, parallel training runs.

A training run is fully determined by ``(ModelConfig, dataset split
content, trainer version)`` — the trainer's RNG streams all derive from
``config.seed`` and the dataset is an explicit list of graph pairs — so a
finished run can be content-addressed exactly like a compilation artifact.
:func:`run_experiment` consults a :class:`~repro.exec.store.ModelStore`
before training; a warm hit loads the checkpoint (fingerprint-equal to the
trainer that wrote it, so every downstream metric row is identical) in a
fraction of a percent of the training cost.

:func:`run_grid` runs the *independent* trainings of a table — Table IV/V
train ten models, the ablation benches eight — and can fan cold runs
across a persistent :class:`~repro.exec.pool.WarmPool`.  Workers receive
the dataset once (fork copy-on-write, or one shared-memory pickle under
spawn) instead of a fresh copy per job, return checkpoint *bytes* that
the parent commits through a :class:`~repro.exec.store.BatchedModelWriter`
— workers never write the store, so a killed worker cannot corrupt it —
and the parent then loads every entry in order, so grid output is
identical to the serial path by construction.
"""

from __future__ import annotations

import hashlib
import json
import shutil
import tempfile
import time
import weakref
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.config import ModelConfig
from repro.core.trainer import MatchTrainer, TrainReport
from repro.data.pairs import PairDataset
from repro.exec.pool import SharedRef, WarmPool, get_pool
from repro.exec.store import RUNNER_VERSION, BatchedModelWriter, ModelStore

PathLike = str


@dataclass(frozen=True)
class ExperimentSpec:
    """One training run: a named model configuration.

    ``name`` is cosmetic (display / store metadata); the fingerprint covers
    only ``config`` and ``early_stopping``, so two specs that train the
    same model on the same dataset share one cache entry whatever they are
    called.
    """

    name: str
    config: ModelConfig
    early_stopping: bool = True


@dataclass
class ExperimentRun:
    """A finished (or cache-served) training run."""

    spec: ExperimentSpec
    fingerprint: str
    trainer: MatchTrainer
    from_cache: bool
    seconds: float
    report: Optional[TrainReport] = None
    report_meta: Dict[str, object] = field(default_factory=dict)


# Dataset fingerprints are content hashes over every split's graphs and
# labels; graphs repeat across pairs (and datasets are built once and
# reused by a whole bench process), so both levels memoize — per-graph by
# object identity inside one call, per-dataset by weakly-referenced
# identity across calls.
_DATASET_FP_MEMO: Dict[int, Tuple["weakref.ref", str]] = {}


def dataset_fingerprint(dataset: PairDataset) -> str:
    """Content hash of a :class:`PairDataset` (splits, graphs, labels)."""
    key = id(dataset)
    hit = _DATASET_FP_MEMO.get(key)
    if hit is not None:
        ref, fp = hit
        if ref() is dataset:
            return fp
    from repro.index.embedding_index import graph_fingerprint

    graph_memo: Dict[int, str] = {}

    def gfp(graph) -> str:
        g_key = id(graph)
        cached = graph_memo.get(g_key)
        if cached is None:
            cached = graph_memo[g_key] = graph_fingerprint(graph)
        return cached

    h = hashlib.sha256()
    for split_name, pairs in (
        ("train", dataset.train),
        ("valid", dataset.valid),
        ("test", dataset.test),
    ):
        h.update(f"{split_name}:{len(pairs)}".encode("utf-8"))
        for pair in pairs:
            h.update(gfp(pair.left).encode("ascii"))
            h.update(gfp(pair.right).encode("ascii"))
            h.update(f"{pair.label}:{pair.task_left}:{pair.task_right}".encode("utf-8"))
    fp = h.hexdigest()
    try:
        # memo bound into the defaults: see the matching note in
        # repro.nn.segments — globals may be gone when the callback fires.
        ref = weakref.ref(
            dataset, lambda _, k=key, memo=_DATASET_FP_MEMO: memo.pop(k, None)
        )
        _DATASET_FP_MEMO[key] = (ref, fp)
    except TypeError:  # pragma: no cover - non-weakref-able dataset type
        pass
    return fp


def experiment_fingerprint(spec: ExperimentSpec, dataset_fp: str) -> str:
    """Content address of one training run.

    Covers the full model config, the early-stopping protocol, the dataset
    content hash and :data:`RUNNER_VERSION`; change any of them and the
    old entry misses instead of serving a model the current code would not
    train.
    """
    payload = "\x1f".join(
        [
            RUNNER_VERSION,
            json.dumps(asdict(spec.config), sort_keys=True),
            str(bool(spec.early_stopping)),
            dataset_fp,
        ]
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def _report_meta(spec: ExperimentSpec, report: TrainReport, seconds: float) -> dict:
    return {
        "name": spec.name,
        "config": asdict(spec.config),
        "early_stopping": bool(spec.early_stopping),
        "valid_f1": float(report.valid_f1),
        "best_epoch": int(report.best_epoch),
        "epochs": len(report.epoch_losses),
        "final_loss": float(report.epoch_losses[-1]) if report.epoch_losses else None,
        "train_seconds": float(seconds),
        "timings": {k: float(v) for k, v in report.timings.items()},
    }


def run_experiment(
    spec: ExperimentSpec,
    dataset: PairDataset,
    store: Optional[ModelStore] = None,
    dataset_fp: Optional[str] = None,
) -> ExperimentRun:
    """Train ``spec`` on ``dataset``, or load it from the model store.

    A warm hit returns a fingerprint-equal reloaded trainer: same weights,
    same tokenizer, same predictions, identical downstream metric rows —
    the store is a cache in the strict sense.  Pass ``dataset_fp`` when
    the caller already computed it (grid runs share one dataset hash).
    """
    dataset_fp = dataset_fp or dataset_fingerprint(dataset)
    fingerprint = experiment_fingerprint(spec, dataset_fp)
    t0 = time.perf_counter()
    if store is not None:
        trainer = store.get(fingerprint)
        if trainer is not None:
            return ExperimentRun(
                spec=spec,
                fingerprint=fingerprint,
                trainer=trainer,
                from_cache=True,
                seconds=time.perf_counter() - t0,
                report_meta=ModelStore.read_meta(store.path_for(fingerprint)),
            )
    trainer = MatchTrainer(spec.config)
    report = trainer.train(dataset, early_stopping=spec.early_stopping)
    seconds = time.perf_counter() - t0
    meta = _report_meta(spec, report, seconds)
    if store is not None:
        store.put(fingerprint, trainer, meta)
    return ExperimentRun(
        spec=spec,
        fingerprint=fingerprint,
        trainer=trainer,
        from_cache=False,
        seconds=seconds,
        report=report,
        report_meta=meta,
    )


def _pool_train_job(
    spec: ExperimentSpec, dataset: PairDataset, fingerprint: str
) -> Tuple[str, bytes]:
    """Warm-pool job: train one grid entry, return the checkpoint as bytes.

    The worker never opens the store — the parent commits the returned
    payload through its batched writer, so a worker killed mid-train (or
    mid-serialize) leaves no trace on disk.
    """
    trainer = MatchTrainer(spec.config)
    t0 = time.perf_counter()
    report = trainer.train(dataset, early_stopping=spec.early_stopping)
    meta = _report_meta(spec, report, time.perf_counter() - t0)
    return fingerprint, trainer.save_bytes(
        extra_meta={"experiment": {**meta, "fingerprint": fingerprint}}
    )


def _fill_store_parallel(
    todo: List[Tuple[ExperimentSpec, PairDataset, str]],
    store: ModelStore,
    workers: int,
    start_method: Optional[str],
    pool: Optional[WarmPool],
) -> None:
    """Train every ``todo`` entry into ``store`` via the warm pool."""
    if len(todo) == 1 and pool is None:
        # One cold job: the pool buys nothing, train inline.
        fp, payload = _pool_train_job(*todo[0])
        store.put_bytes(fp, payload)
        return
    if pool is None:
        pool = get_pool(min(workers, len(todo)), start_method)
    keys: List[str] = []
    payloads: List[Tuple] = []
    for spec, dataset, fp in todo:
        # Share each distinct dataset once; jobs carry a reference, not a
        # pickled copy (fork workers resolve it copy-on-write, spawn
        # workers through one shared-memory pickle).
        key = f"grid-dataset-{dataset_fingerprint(dataset)[:16]}"
        pool.share(key, dataset)
        keys.append(key)
        payloads.append((spec, SharedRef(key), fp))
    try:
        with BatchedModelWriter(store) as writer:
            for fp, payload in pool.run(_pool_train_job, payloads):
                writer.add(fp, payload)
    finally:
        for key in dict.fromkeys(keys):
            pool.unshare(key)


def run_grid(
    jobs: Sequence[Tuple[ExperimentSpec, PairDataset]],
    store: Optional[ModelStore] = None,
    workers: int = 0,
    start_method: Optional[str] = None,
    pool: Optional[WarmPool] = None,
) -> List[ExperimentRun]:
    """Run a table's independent trainings, optionally across processes.

    Each job's RNG streams derive only from its own ``config.seed``, so
    jobs are independent and the parallel schedule cannot change any
    result: with ``workers > 1`` (or an explicit ``pool``) the cold jobs
    are fanned over a persistent :class:`~repro.exec.pool.WarmPool` that
    only *fills the store* — workers return checkpoint bytes, the parent
    commits them — and every run, warm or cold, is then materialized in
    order through :func:`run_experiment`, making grid output identical to
    the serial path by construction.  ``start_method`` picks the pool's
    multiprocessing start method (default: the platform's); pass ``pool``
    to reuse a caller-owned pool.  Without a store, parallel runs use a
    temporary one for the duration of the call.
    """
    if workers < 0:
        raise ValueError(f"workers must be >= 0, got {workers}")
    jobs = list(jobs)
    fan_out = pool is not None or workers > 1
    scratch: Optional[str] = None
    if store is None and fan_out and len(jobs) > 1:
        scratch = tempfile.mkdtemp(prefix="repro-models-")
        store = ModelStore(scratch)
    try:
        if store is not None and fan_out:
            fps: List[str] = [
                experiment_fingerprint(spec, dataset_fingerprint(dataset))
                for spec, dataset in jobs
            ]
            todo = [
                (spec, dataset, fp)
                for (spec, dataset), fp in zip(jobs, fps)
                if fp not in store
            ]
            # Deduplicate by fingerprint so two same-config jobs don't
            # train twice.
            todo = list({entry[2]: entry for entry in todo}.values())
            if todo:
                _fill_store_parallel(
                    todo, store, max(workers, 1), start_method, pool
                )
        return [run_experiment(spec, dataset, store=store) for spec, dataset in jobs]
    finally:
        if scratch is not None:
            shutil.rmtree(scratch, ignore_errors=True)
