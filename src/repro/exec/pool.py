"""A persistent warm worker pool for grid training and corpus builds.

``multiprocessing.Pool`` answers a different question than a training
grid asks.  A grid submits a handful of long jobs over and over (one
batch per table), and the throwaway pool charges the full warmup —
process start, interpreter + NumPy + ``repro`` import under spawn, and a
pickled copy of the shared dataset *per job* — to every batch.  This
module keeps the workers.

* **Warm workers** — processes start once, import once, and stay resident
  across :meth:`WarmPool.run` batches; :func:`get_pool` keeps one pool
  per (size, start method) for the life of the parent process.
* **Shared read-only data** — :meth:`WarmPool.share` publishes an object
  under a key; job payloads reference it with :class:`SharedRef` instead
  of carrying it.  Fork workers resolve the key through inherited memory
  (copy-on-write: zero copies, zero serialization); spawn workers attach
  a shared-memory segment holding one pickle of the object and
  deserialize it once, caching it for every later job.
* **Fault tolerance** — each worker runs ``faults.hit("pool.worker.job")``
  before a job, so the PR 9 fault grammar reaches inside real workers
  (``crash:pool.worker.job@0.5~7``).  A worker that dies or hangs is
  respawned and its job retried up to ``max_job_retries`` times; a job
  that keeps failing raises :class:`JobFailed` with the worker's story.
  Results flow back over per-worker pipes — never ``mp.Queue``, whose
  feeder thread can lose a message when a process dies hard (the PR 6
  serve-pool lesson) — and workers never touch any store: the parent
  commits results, so a killed worker cannot corrupt anything.

Scheduling cannot change results: pool users (``run_grid``,
``build_parallel``) only use workers to *fill caches*, and materialize
their outputs through the serial path afterwards.
"""

from __future__ import annotations

import atexit
import itertools
import multiprocessing
import os
import pickle
import time
from collections import deque
from multiprocessing import connection
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro import faults
from repro.utils.shm import SharedBlock

#: Fault-injection site fired by a worker before every job it runs.
WORKER_JOB_SITE = "pool.worker.job"

#: Seconds to wait for a worker to exit after a "stop" message.
STOP_GRACE_SECONDS = 5.0

# Parent-side registry of shared objects.  Fork workers inherit this dict
# (copy-on-write — never serialized, never copied until written, which
# read-only datasets are not); spawn workers start with it empty and fall
# back to the shared-memory pickle.
_COW_REGISTRY: Dict[str, object] = {}

# Worker-side cache of objects resolved from shared-memory segments, so
# each worker deserializes a shared object exactly once.
_WORKER_CACHE: Dict[str, object] = {}


class SharedRef:
    """A placeholder for a shared object inside a job payload.

    The parent sends ``SharedRef(key)`` where the object would go; the
    worker swaps the real object back in before calling the job function.
    """

    __slots__ = ("key",)

    def __init__(self, key: str):  # noqa: D107
        self.key = key

    def __repr__(self) -> str:  # noqa: D105
        return f"SharedRef({self.key!r})"


class JobFailed(RuntimeError):
    """A pool job could not be completed (retries exhausted or clean error)."""


def ping(value=None):
    """Trivial job: returns its argument (health checks, dispatch benches)."""
    return value


def _resolve_shares(args: Tuple, shares: Dict[str, Tuple[str, int]]) -> Tuple:
    """Replace every :class:`SharedRef` in ``args`` with the real object."""
    return tuple(
        _lookup_shared(a.key, shares) if isinstance(a, SharedRef) else a for a in args
    )


def _lookup_shared(key: str, shares: Dict[str, Tuple[str, int]]):
    cached = _WORKER_CACHE.get(key)
    if cached is not None:
        return cached
    obj = _COW_REGISTRY.get(key)  # fork: inherited, zero-copy
    if obj is None:
        try:
            name, nbytes = shares[key]
        except KeyError:
            raise JobFailed(f"shared object {key!r} is not published") from None
        block = SharedBlock.attach(name, nbytes)
        try:
            obj = pickle.loads(bytes(block.buf))
        finally:
            block.close()
    _WORKER_CACHE[key] = obj
    return obj


def _worker_main(conn) -> None:
    """Worker loop: resolve shares, run jobs, report over the pipe.

    Job exceptions are *reported*, not fatal — the worker stays warm for
    the next job.  Only parent death (EOF on the pipe) or an injected
    crash/kill ends the process.
    """
    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError):
            return  # parent is gone; nothing left to serve
        kind = msg[0]
        if kind == "stop":
            conn.close()
            return
        if kind == "drop":
            _WORKER_CACHE.pop(msg[1], None)
            _COW_REGISTRY.pop(msg[1], None)
            continue
        token, func, args, shares = msg[1], msg[2], msg[3], msg[4]
        try:
            faults.hit(WORKER_JOB_SITE)
            result = func(*_resolve_shares(args, shares))
        except Exception as exc:  # boundary: report to the parent, stay warm
            conn.send(("err", token, f"{type(exc).__name__}: {exc}"))
        else:
            conn.send(("ok", token, result))


class _Worker:
    """Parent-side handle: process + duplex pipe + the in-flight token."""

    __slots__ = ("proc", "conn", "token")

    def __init__(self, proc, conn):  # noqa: D107
        self.proc = proc
        self.conn = conn
        self.token: Optional[int] = None  # the job it is running, if any


class WarmPool:
    """Persistent worker processes with shared data and crash recovery.

    ``start_method`` is ``fork``/``spawn``/``forkserver`` or ``None`` for
    the platform default.  ``job_timeout`` (seconds) turns a hung worker
    into a kill + respawn + retry; ``max_job_retries`` bounds how many
    times one job survives its worker dying before :class:`JobFailed`.
    """

    def __init__(
        self,
        workers: int,
        start_method: Optional[str] = None,
        job_timeout: Optional[float] = None,
        max_job_retries: int = 2,
    ):  # noqa: D107
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = int(workers)
        self.start_method = start_method or multiprocessing.get_start_method()
        self.job_timeout = job_timeout
        self.max_job_retries = int(max_job_retries)
        self._ctx = multiprocessing.get_context(self.start_method)
        self._pool: List[_Worker] = []
        self._shares: Dict[str, SharedBlock] = {}
        self._tokens = itertools.count(1)
        self._closed = False
        self.respawns = 0
        self.jobs_done = 0

    # ------------------------------------------------------------ lifecycle
    def _spawn_worker(self) -> _Worker:
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        proc = self._ctx.Process(
            target=_worker_main, args=(child_conn,), daemon=True
        )
        proc.start()
        child_conn.close()
        return _Worker(proc, parent_conn)

    def _ensure_workers(self, need: int) -> None:
        while len(self._pool) < min(self.workers, max(need, 1)):
            self._pool.append(self._spawn_worker())

    def _respawn(self, worker: _Worker) -> None:
        """Replace a dead (or killed) worker with a fresh one, in place."""
        if worker.proc.is_alive():
            worker.proc.terminate()
        worker.proc.join(STOP_GRACE_SECONDS)
        worker.conn.close()
        fresh = self._spawn_worker()
        worker.proc, worker.conn, worker.token = fresh.proc, fresh.conn, None
        self.respawns += 1

    def close(self) -> None:
        """Stop every worker and release every shared segment (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for worker in self._pool:
            try:
                worker.conn.send(("stop",))
            except (BrokenPipeError, OSError):
                pass  # boundary: worker already died; join below cleans up
        for worker in self._pool:
            worker.proc.join(STOP_GRACE_SECONDS)
            if worker.proc.is_alive():
                worker.proc.terminate()
                worker.proc.join(STOP_GRACE_SECONDS)
            worker.conn.close()
        self._pool.clear()
        for key in list(self._shares):
            block = self._shares.pop(key)
            block.close()
            block.unlink()
            _COW_REGISTRY.pop(key, None)

    def __enter__(self) -> "WarmPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # --------------------------------------------------------- shared data
    def share(self, key: str, obj: object) -> None:
        """Publish ``obj`` under ``key`` for :class:`SharedRef` payloads.

        Registers the object for fork copy-on-write *and* stages one
        pickle of it in a shared-memory segment — the spawn-safe fallback,
        and what a fork worker started before this call attaches.  Safe to
        call again with the same key (no-op).
        """
        if key in self._shares:
            return
        _COW_REGISTRY[key] = obj
        self._shares[key] = SharedBlock.from_bytes(
            pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
        )

    def unshare(self, key: str) -> None:
        """Retire a shared object: unlink its segment, evict worker caches."""
        block = self._shares.pop(key, None)
        if block is None:
            return
        block.close()
        block.unlink()
        _COW_REGISTRY.pop(key, None)
        for worker in self._pool:
            if worker.proc.is_alive() and worker.token is None:
                try:
                    worker.conn.send(("drop", key))
                except (BrokenPipeError, OSError):
                    pass  # boundary: dying worker forgets the key anyway

    def _share_descriptors(self) -> Dict[str, Tuple[str, int]]:
        return {key: (b.name, b.nbytes) for key, b in self._shares.items()}

    # ---------------------------------------------------------------- jobs
    def run(self, func: Callable, payloads: Sequence[Tuple]) -> List[object]:
        """Run ``func(*payload)`` for every payload; results in order.

        Jobs are handed to idle workers as they free up.  A worker that
        dies mid-job is respawned and the job requeued (``max_job_retries``
        deaths per job, then :class:`JobFailed`); a job that raises cleanly
        fails the whole batch immediately — that is a real error, not a
        fault to retry.  On failure, workers still running other jobs are
        recycled so the pool comes back clean.
        """
        if self._closed:
            raise RuntimeError("pool is closed")
        payloads = [tuple(p) for p in payloads]
        if not payloads:
            return []
        self._ensure_workers(len(payloads))
        results: List[object] = [None] * len(payloads)
        queue = deque((i, 0) for i in range(len(payloads)))
        # token → (worker, payload index, attempts, deadline)
        pending: Dict[int, Tuple[_Worker, int, int, Optional[float]]] = {}
        shares = self._share_descriptors()
        try:
            while queue or pending:
                self._assign(func, payloads, queue, pending, shares)
                self._collect(results, queue, pending)
        except BaseException:
            self._abort_inflight(pending)
            raise
        return results

    def _assign(self, func, payloads, queue, pending, shares) -> None:
        for worker in self._pool:
            if not queue:
                return
            if worker.token is not None:
                continue
            if not worker.proc.is_alive():
                self._respawn(worker)
            index, attempts = queue.popleft()
            token = next(self._tokens)
            deadline = (
                time.monotonic() + self.job_timeout if self.job_timeout else None
            )
            try:
                worker.conn.send(("job", token, func, payloads[index], shares))
            except (BrokenPipeError, OSError):
                # The worker died between the liveness check and the send:
                # recycle it and put the job back for the next pass.
                self._requeue(queue, pending, index, attempts, "died on dispatch")
                self._respawn(worker)
                continue
            worker.token = token
            pending[token] = (worker, index, attempts, deadline)

    def _collect(self, results, queue, pending) -> None:
        if not pending:
            return
        waitables = []
        for worker, _, _, _ in pending.values():
            waitables.append(worker.conn)
            waitables.append(worker.proc.sentinel)
        timeout = None
        now = time.monotonic()
        deadlines = [d for _, _, _, d in pending.values() if d is not None]
        if deadlines:
            timeout = max(0.0, min(deadlines) - now)
        ready = connection.wait(waitables, timeout)
        ready_set = set(ready)
        for token in list(pending):
            worker, index, attempts, deadline = pending[token]
            if worker.conn in ready_set:
                try:
                    msg = worker.conn.recv()
                except (EOFError, OSError):
                    self._on_death(queue, pending, token, "died mid-job")
                    continue
                if msg[1] != token:
                    continue  # stale result from an aborted batch: drop it
                del pending[token]
                worker.token = None
                if msg[0] == "err":
                    raise JobFailed(f"pool job {index} failed cleanly: {msg[2]}")
                results[index] = msg[2]
                self.jobs_done += 1
            elif worker.proc.sentinel in ready_set and not worker.proc.is_alive():
                self._on_death(queue, pending, token, "was killed")
            elif deadline is not None and time.monotonic() >= deadline:
                self._on_death(
                    queue, pending, token,
                    f"hung past the {self.job_timeout:.1f}s job timeout",
                )

    def _on_death(self, queue, pending, token, why: str) -> None:
        worker, index, attempts, _ = pending.pop(token)
        self._respawn(worker)
        self._requeue(queue, pending, index, attempts, why)

    def _requeue(self, queue, pending, index, attempts, why: str) -> None:
        if attempts >= self.max_job_retries:
            self._abort_inflight(pending)
            raise JobFailed(
                f"pool job {index} {why} and exhausted its "
                f"{self.max_job_retries} retries"
            )
        queue.append((index, attempts + 1))

    def _abort_inflight(self, pending) -> None:
        """Recycle every worker still running a job of an aborted batch."""
        for worker, _, _, _ in pending.values():
            self._respawn(worker)
        pending.clear()


# ------------------------------------------------------- process-wide pool
_POOLS: Dict[Tuple[int, str], WarmPool] = {}
_atexit_registered = False


def get_pool(workers: int, start_method: Optional[str] = None) -> WarmPool:
    """The process-wide warm pool for (``workers``, ``start_method``).

    Created on first use and kept resident — this is what makes the
    second grid of a bench run warm.  Closed automatically at interpreter
    exit; call :func:`shutdown_pools` to do it sooner.
    """
    global _atexit_registered
    method = start_method or multiprocessing.get_start_method()
    key = (int(workers), method)
    pool = _POOLS.get(key)
    if pool is None or pool._closed:
        pool = _POOLS[key] = WarmPool(workers, start_method=method)
        if not _atexit_registered:
            _atexit_registered = True
            atexit.register(shutdown_pools)
    return pool


def shutdown_pools() -> None:
    """Close every process-wide pool (workers stopped, segments unlinked)."""
    for pool in list(_POOLS.values()):
        pool.close()
    _POOLS.clear()
