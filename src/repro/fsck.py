"""Integrity scanner and self-healing repair for the on-disk stores.

``repro fsck`` is the operational counterpart of the checksum layer: the
stores *detect* corruption at read time (and shrug it off as a miss or a
quarantined shard); this module finds it proactively, gets it out of the
way, and — for the artifact store — undoes it.

One scan walks a store or index directory and classifies every entry:

``ok``
    Readable, and its recorded checksum (entry ``payload_sha256``, model
    sidecar, or index-manifest ``sha256`` field) matches.  Entries from
    pre-checksum formats that read fine are ``ok`` with
    ``"verified": false`` — unverifiable is not wrong.
``corrupt``
    Unreadable, structurally invalid, mislocated, or checksum-mismatched.
``orphaned-tmp``
    Residue of a crashed or fault-injected writer: a ``*.tmp`` /
    ``*.tmp.npz`` file nobody will ever rename into place.

With ``quarantine=True`` corrupt entries are moved to a ``quarantine/``
subdirectory (suffixed ``.quarantined`` so no store glob ever counts
them) and orphaned temps are deleted.  With ``repair=True`` (implies
quarantine) corrupt *artifact* entries are re-derived through the
content-addressed pipeline: the store's ``keys.jsonl`` journal maps the
entry's digest back to its :class:`~repro.artifacts.ArtifactKey`, and a
generator-spec ``source_id`` (``gen:<seed>:<independent>:<genfp>``)
regenerates the identical source text, so the recompiled entry is
byte-identical to the lost one (the pipeline and ``.npz`` serialization
are deterministic; ``benchmarks/bench_faults.py`` gates exactly this
round trip).  Model checkpoints and index shards are not re-derivable
from a spec — for those, quarantine plus a retrain/rebuild is the fix,
and degraded-mode serving (see :mod:`repro.index.sharded`) covers the
gap.

Everything here works without a trained model: index scans validate
files against the manifest, not against a checkpoint.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, List, Optional, Union

import numpy as np

from repro.artifacts.store import (
    _META_KEY,
    JOURNAL_NAME,
    READ_ERRORS,
    ArtifactKey,
    ArtifactStore,
    payload_sha256,
)
from repro.exec.store import ModelStore
from repro.index.sharded import MANIFEST_NAME, _FORMAT, _FORMAT_V1, _FORMAT_V2
from repro.pipeline.staged import PIPELINE_VERSION, StageFailure
from repro.utils.fsio import find_orphan_tmps, sha256_file

PathLike = Union[str, Path]

QUARANTINE_DIR = "quarantine"
QUARANTINE_SUFFIX = ".quarantined"

KINDS = ("auto", "artifacts", "models", "index")

#: Report statuses, in severity order.
STATUS_OK = "ok"
STATUS_CORRUPT = "corrupt"
STATUS_ORPHAN = "orphaned-tmp"


def detect_kind(root: PathLike) -> str:
    """Which store flavor lives at ``root`` (raises when undecidable)."""
    root = Path(root)
    if not root.is_dir():
        raise ValueError(f"{root} is not a directory (nothing to fsck)")
    if (root / MANIFEST_NAME).exists():
        return "index"
    if (root / JOURNAL_NAME).exists():
        return "artifacts"
    for path in root.glob("*/*.npz"):
        if path.name.startswith(".") or QUARANTINE_DIR in path.parts:
            continue
        # Artifact entries are named by a 64-hex sha256 digest; model
        # checkpoints by a short experiment fingerprint.
        stem = path.name[: -len(".npz")]
        if len(stem) == 64 and all(c in "0123456789abcdef" for c in stem):
            return "artifacts"
        return "models"
    raise ValueError(
        f"cannot tell what {root} is: no index manifest, no key journal, "
        "and no entries to inspect — pass --kind explicitly"
    )


def _quarantine(root: Path, path: Path) -> str:
    """Move one corrupt file out of service; returns the destination."""
    dest_dir = root / QUARANTINE_DIR
    dest_dir.mkdir(parents=True, exist_ok=True)
    dest = dest_dir / (path.name + QUARANTINE_SUFFIX)
    os.replace(path, dest)
    return str(dest.relative_to(root))


def _sweep_tmps(root: Path, report: dict, act: bool) -> None:
    """Classify (and with ``act``, delete) every orphaned temp file."""
    for tmp in find_orphan_tmps(root, max_age_seconds=0.0):
        if QUARANTINE_DIR in tmp.parts:
            continue
        entry = {
            "file": str(tmp.relative_to(root)),
            "status": STATUS_ORPHAN,
            "detail": "writer residue (crashed or torn replace)",
        }
        if act:
            try:
                tmp.unlink()
                entry["action"] = "deleted"
            except OSError as exc:  # racing writer cleanup; report, move on
                entry["action"] = f"delete failed: {exc}"
        report["entries"].append(entry)


def _new_report(root: Path, kind: str) -> dict:
    return {"path": str(root), "kind": kind, "entries": []}


def _finalize(report: dict) -> dict:
    counts: Dict[str, int] = {STATUS_OK: 0, STATUS_CORRUPT: 0, STATUS_ORPHAN: 0}
    actions: Dict[str, int] = {}
    for entry in report["entries"]:
        counts[entry["status"]] = counts.get(entry["status"], 0) + 1
        action = entry.get("action")
        if action:
            actions[action.split(":")[0]] = actions.get(action.split(":")[0], 0) + 1
    report["counts"] = counts
    report["actions"] = actions
    report["clean"] = all(
        e["status"] == STATUS_OK or e.get("action") in ("repaired", "deleted")
        for e in report["entries"]
    )
    return report


# ----------------------------------------------------------- artifacts
def _check_artifact_entry(path: Path) -> dict:
    """Classify one artifact-store ``.npz`` entry."""
    try:
        with np.load(str(path)) as archive:
            meta = json.loads(
                bytes(np.asarray(archive[_META_KEY]).tobytes()).decode("utf-8")
            )
            key_fields = meta.get("key")
            if key_fields is None:
                return {"status": STATUS_CORRUPT, "detail": "entry has no key metadata"}
            digest = ArtifactKey(**key_fields).digest
            if digest + ".npz" != path.name:
                return {
                    "status": STATUS_CORRUPT,
                    "detail": f"entry is mislocated: key digests to {digest[:12]}…",
                }
            recorded = meta.get("payload_sha256")
            if recorded is None:
                return {"status": STATUS_OK, "verified": False}
            actual = payload_sha256({name: archive[name] for name in archive.files})
            if actual != recorded:
                return {
                    "status": STATUS_CORRUPT,
                    "detail": (
                        f"payload checksum mismatch (recorded {recorded[:12]}…, "
                        f"actual {actual[:12]}…)"
                    ),
                }
            return {"status": STATUS_OK, "verified": True}
    except READ_ERRORS as exc:
        return {"status": STATUS_CORRUPT, "detail": f"unreadable: {exc}"}


def _rederive_artifact(store: ArtifactStore, key: ArtifactKey) -> Optional[str]:
    """Rebuild one artifact entry through the pipeline; None on success,
    else the reason it cannot be re-derived."""
    if key.version != PIPELINE_VERSION:
        return (
            f"entry was built by pipeline {key.version!r}; the current "
            f"{PIPELINE_VERSION!r} would not reproduce it"
        )
    parts = key.source_id.split(":")
    if len(parts) != 4 or parts[0] != "gen":
        return (
            f"source_id {key.source_id!r} is not a generator spec; the "
            "source text is not re-derivable"
        )
    # Imported here: fsck of models/indexes must not pay for (or require)
    # the generation + pipeline stack.
    from repro.data.corpus import _generator_fingerprint
    from repro.lang.generator import SolutionGenerator
    from repro.pipeline.staged import CompilationPipeline

    seed, independent, genfp = int(parts[1]), bool(int(parts[2])), parts[3]
    if genfp != _generator_fingerprint():
        return (
            f"entry was generated by lang fingerprint {genfp!r}; the current "
            "generator would produce different source text"
        )
    generator = SolutionGenerator(seed=seed, independent=independent)
    sf = generator.generate(key.task, key.variant, key.language)
    pipeline = CompilationPipeline(
        store=store, dataflow_edges=key.graph_features == "dataflow"
    )
    try:
        pipeline.compile(
            sf.text,
            key.language,
            name=f"{key.task}/v{key.variant}.{key.language}",
            opt_level=key.opt_level,
            compiler=key.compiler,
            program=sf.program,
            cache_key=key,
            cache_lookup=False,  # the corrupt entry is the reason we are here
            transforms=key.transforms,
        )
    except StageFailure as failure:
        return f"re-derivation failed at stage {failure.stage!r}"
    return None


def fsck_artifact_store(
    root: PathLike, quarantine: bool = False, repair: bool = False
) -> dict:
    """Scan (and optionally heal) one artifact store; returns the report."""
    root = Path(root)
    report = _new_report(root, "artifacts")
    quarantine = quarantine or repair
    journal = None
    store = None
    for path in sorted(root.glob("*/*.npz")):
        if path.name.startswith(".") or QUARANTINE_DIR in path.parts:
            continue
        entry = _check_artifact_entry(path)
        entry["file"] = str(path.relative_to(root))
        report["entries"].append(entry)
        if entry["status"] != STATUS_CORRUPT or not quarantine:
            continue
        entry["action"] = "quarantined"
        entry["quarantined_to"] = _quarantine(root, path)
        if not repair:
            continue
        if store is None:
            # sweep_age -1 so fsck's own temp accounting below stays exact
            store = ArtifactStore(root, sweep_age_seconds=float("inf"))
            journal = store.journal_keys()
        digest = path.name[: -len(".npz")]
        key = journal.get(digest)
        if key is None:
            entry["action"] = "unrepairable"
            entry["detail"] = (
                (entry.get("detail") or "")
                + "; digest not in the key journal, cannot re-derive"
            ).lstrip("; ")
            continue
        reason = _rederive_artifact(store, key)
        if reason is None:
            entry["action"] = "repaired"
        else:
            entry["action"] = "unrepairable"
            entry["detail"] = ((entry.get("detail") or "") + "; " + reason).lstrip("; ")
    _sweep_tmps(root, report, act=quarantine)
    return _finalize(report)


# -------------------------------------------------------------- models
def fsck_model_store(root: PathLike, quarantine: bool = False, repair: bool = False) -> dict:
    """Scan one model store.  Corrupt checkpoints are quarantined, never
    repaired — a trained model is not re-derivable from its fingerprint;
    retrain via ``repro experiment``."""
    root = Path(root)
    report = _new_report(root, "models")
    quarantine = quarantine or repair
    for path in sorted(root.glob("*/*.npz")):
        if path.name.startswith(".") or QUARANTINE_DIR in path.parts:
            continue
        entry: dict = {"file": str(path.relative_to(root))}
        try:
            verified = ModelStore.verify_checksum(path)
            meta = ModelStore.read_meta(path)
            if meta.get("fingerprint", path.name[: -len(".npz")]) != path.name[: -len(".npz")]:
                raise ValueError(
                    f"entry is mislocated: metadata records fingerprint "
                    f"{meta.get('fingerprint')!r}"
                )
            entry.update(status=STATUS_OK, verified=bool(verified))
        except READ_ERRORS as exc:
            entry.update(status=STATUS_CORRUPT, detail=str(exc))
            if quarantine:
                entry["action"] = "quarantined"
                entry["quarantined_to"] = _quarantine(root, path)
                sidecar = ModelStore.checksum_path(path)
                if sidecar.exists():
                    _quarantine(root, sidecar)
                if repair:
                    entry["action"] = "unrepairable"
                    entry["detail"] += (
                        "; checkpoints are not re-derivable — retrain via "
                        "`repro experiment`"
                    )
        report["entries"].append(entry)
    _sweep_tmps(root, report, act=quarantine)
    return _finalize(report)


# --------------------------------------------------------------- index
def _check_index_file(root: Path, name: str, recorded_sha: Optional[str]) -> Optional[str]:
    """Detail string when one index file is corrupt, else None."""
    path = root / name
    if not path.exists():
        return "file is missing"
    if recorded_sha:
        actual = sha256_file(path)
        if actual != recorded_sha:
            return (
                f"checksum mismatch (manifest records {recorded_sha[:12]}…, "
                f"file hashes to {actual[:12]}…)"
            )
        return None
    # No recorded checksum (pre-v3 manifest entry): structural probe only.
    try:
        if name.endswith(".npz"):
            with np.load(path) as archive:
                if _META_KEY not in archive.files or "embeddings" not in archive.files:
                    return "not an EmbeddingIndex archive"
        elif name.endswith(".npy"):
            np.load(path, mmap_mode="r", allow_pickle=False)
        else:
            json.loads(path.read_text())
    except READ_ERRORS as exc:
        return f"unreadable: {exc}"
    return None


def fsck_index(root: PathLike, quarantine: bool = False, repair: bool = False) -> dict:
    """Scan one sharded index directory against its own manifest.

    Corrupt shard files are quarantined (the manifest keeps its entry:
    global positions must not silently renumber) — a degraded-mode open
    then serves the survivors, and rebuilding the index is the repair.
    """
    root = Path(root)
    report = _new_report(root, "index")
    quarantine = quarantine or repair
    manifest_path = root / MANIFEST_NAME
    try:
        manifest = json.loads(manifest_path.read_text())
        if manifest.get("format") not in (_FORMAT_V1, _FORMAT_V2, _FORMAT):
            raise ValueError(f"unknown manifest format {manifest.get('format')!r}")
    except READ_ERRORS as exc:
        report["entries"].append(
            {
                "file": MANIFEST_NAME,
                "status": STATUS_CORRUPT,
                "detail": f"manifest unreadable: {exc}; the index must be rebuilt",
            }
        )
        _sweep_tmps(root, report, act=quarantine)
        return _finalize(report)
    report["entries"].append({"file": MANIFEST_NAME, "status": STATUS_OK, "verified": True})
    payload = manifest.get("quantizer")
    if payload is not None:
        from repro.index.quantizer import CoarseQuantizer

        entry = {"file": f"{MANIFEST_NAME}#quantizer"}
        try:
            CoarseQuantizer.from_manifest(payload)
            entry.update(status=STATUS_OK, verified=True)
        except (ValueError, KeyError, TypeError) as exc:
            # In-manifest payload: nothing to move; degraded serving falls
            # back to the exact path, retraining the quantizer repairs it.
            entry.update(status=STATUS_CORRUPT, detail=str(exc))
        report["entries"].append(entry)
    for shard in manifest.get("shards", []):
        checks = [("file", "sha256")]
        if shard.get("meta"):
            checks.append(("meta", "meta_sha256"))
        if shard.get("cells"):
            checks.append(("cells", "cells_sha256"))
        for name_field, sha_field in checks:
            name = shard[name_field]
            entry = {"file": name}
            detail = _check_index_file(root, name, shard.get(sha_field))
            if detail is None:
                entry.update(status=STATUS_OK, verified=bool(shard.get(sha_field)))
            else:
                entry.update(status=STATUS_CORRUPT, detail=detail)
                if quarantine and (root / name).exists():
                    entry["action"] = "quarantined"
                    entry["quarantined_to"] = _quarantine(root, root / name)
                if repair:
                    entry["action"] = "unrepairable"
                    entry["detail"] += (
                        "; shards are not re-derivable — rebuild the index "
                        "(degraded-mode serving covers the gap)"
                    )
            report["entries"].append(entry)
    _sweep_tmps(root, report, act=quarantine)
    return _finalize(report)


# ----------------------------------------------------------- dispatch
def fsck(
    path: PathLike,
    kind: str = "auto",
    quarantine: bool = False,
    repair: bool = False,
) -> dict:
    """Scan (and optionally quarantine/repair) whatever lives at ``path``."""
    if kind not in KINDS:
        raise ValueError(f"kind must be one of {KINDS}, got {kind!r}")
    if kind == "auto":
        kind = detect_kind(path)
    scan = {
        "artifacts": fsck_artifact_store,
        "models": fsck_model_store,
        "index": fsck_index,
    }[kind]
    return scan(path, quarantine=quarantine, repair=repair)
