"""Language-neutral abstract syntax shared by MiniC, MiniCpp and MiniJava.

The three front-ends parse their own surface syntax into these nodes; the
IR lowerers consume them.  The type system is deliberately small — ``int``
(32-bit), ``long`` (64-bit), ``bool`` and 1-D ``int`` arrays — which covers
the arithmetic/array/loop-heavy programs of competitive-programming corpora
like CLCDSA and POJ-104.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple


# ----------------------------------------------------------------- types
@dataclass(frozen=True)
class ScalarType:
    """A scalar type: ``int`` (i32), ``long`` (i64), or ``bool`` (i1)."""

    name: str  # "int" | "long" | "bool" | "void"

    def __post_init__(self):
        if self.name not in ("int", "long", "bool", "void"):
            raise ValueError(f"unknown scalar type {self.name!r}")


@dataclass(frozen=True)
class ArrayType:
    """A 1-D array of a scalar element type."""

    element: ScalarType


INT = ScalarType("int")
LONG = ScalarType("long")
BOOL = ScalarType("bool")
VOID = ScalarType("void")
INT_ARRAY = ArrayType(INT)

Type = object  # ScalarType | ArrayType


# ----------------------------------------------------------- expressions
class Expr:
    """Base class for expression nodes."""


@dataclass
class IntLit(Expr):
    """Integer literal."""

    value: int


@dataclass
class BoolLit(Expr):
    """Boolean literal."""

    value: bool


@dataclass
class Var(Expr):
    """Variable reference by name."""

    name: str


@dataclass
class BinOp(Expr):
    """Binary operation.

    ``op`` is one of ``+ - * / % < <= > >= == != && || & | ^ << >>``.
    """

    op: str
    left: Expr
    right: Expr


@dataclass
class UnaryOp(Expr):
    """Unary operation: ``-`` (negate) or ``!`` (logical not)."""

    op: str
    operand: Expr


@dataclass
class Call(Expr):
    """Function call, either user-defined or a builtin.

    Builtin names are canonicalized by the parsers: ``len`` (array length),
    ``min``, ``max``, ``abs``, ``sort`` (in-place ascending sort),
    ``read_int`` (input).
    """

    name: str
    args: List[Expr] = field(default_factory=list)


@dataclass
class Index(Expr):
    """Array subscript ``base[index]``."""

    base: Expr
    index: Expr


@dataclass
class NewArray(Expr):
    """Array allocation of ``size`` elements (``new int[n]`` / ``int a[n]``)."""

    element: ScalarType
    size: Expr


@dataclass
class ArrayLit(Expr):
    """Brace-initialized array literal ``{1, 2, 3}``."""

    elements: List[Expr] = field(default_factory=list)


# ------------------------------------------------------------ statements
class Stmt:
    """Base class for statement nodes."""


@dataclass
class Block(Stmt):
    """Braced statement sequence."""

    statements: List[Stmt] = field(default_factory=list)


@dataclass
class VarDecl(Stmt):
    """Variable declaration with optional initializer."""

    name: str
    type: Type
    init: Optional[Expr] = None


@dataclass
class Assign(Stmt):
    """Assignment to a variable or array element."""

    target: Expr  # Var or Index
    value: Expr


@dataclass
class If(Stmt):
    """Conditional with optional else branch."""

    cond: Expr
    then: Block
    otherwise: Optional[Block] = None


@dataclass
class While(Stmt):
    """While loop."""

    cond: Expr
    body: Block


@dataclass
class For(Stmt):
    """C-style for loop: ``for (init; cond; step) body``.

    ``init`` and ``step`` are single statements (or ``None``).
    """

    init: Optional[Stmt]
    cond: Optional[Expr]
    step: Optional[Stmt]
    body: Block


@dataclass
class Return(Stmt):
    """Return with optional value."""

    value: Optional[Expr] = None


@dataclass
class Break(Stmt):
    """Break out of the innermost loop."""


@dataclass
class Continue(Stmt):
    """Continue the innermost loop."""


@dataclass
class ExprStmt(Stmt):
    """Expression evaluated for effect (e.g. a call)."""

    expr: Expr


@dataclass
class Print(Stmt):
    """Output an integer value (printf / cout / System.out.println)."""

    value: Expr


# ------------------------------------------------------------- top level
@dataclass
class Param:
    """Function parameter."""

    name: str
    type: Type


@dataclass
class Function:
    """Function definition."""

    name: str
    params: List[Param]
    return_type: Type
    body: Block


@dataclass
class Program:
    """A whole translation unit: an ordered list of functions.

    By convention the entry point is named ``main`` and takes no parameters.
    """

    functions: List[Function] = field(default_factory=list)
    language: str = ""

    def function(self, name: str) -> Function:
        """Look up a function by name."""
        for f in self.functions:
            if f.name == name:
                return f
        raise KeyError(f"no function named {name!r}")


# ----------------------------------------------------------- AST walking
def walk_expr(expr: Expr):
    """Yield ``expr`` and all sub-expressions, pre-order."""
    yield expr
    if isinstance(expr, BinOp):
        yield from walk_expr(expr.left)
        yield from walk_expr(expr.right)
    elif isinstance(expr, UnaryOp):
        yield from walk_expr(expr.operand)
    elif isinstance(expr, Call):
        for a in expr.args:
            yield from walk_expr(a)
    elif isinstance(expr, Index):
        yield from walk_expr(expr.base)
        yield from walk_expr(expr.index)
    elif isinstance(expr, NewArray):
        yield from walk_expr(expr.size)
    elif isinstance(expr, ArrayLit):
        for e in expr.elements:
            yield from walk_expr(e)


def walk_stmts(stmt: Stmt):
    """Yield ``stmt`` and all nested statements, pre-order."""
    yield stmt
    if isinstance(stmt, Block):
        for s in stmt.statements:
            yield from walk_stmts(s)
    elif isinstance(stmt, If):
        yield from walk_stmts(stmt.then)
        if stmt.otherwise is not None:
            yield from walk_stmts(stmt.otherwise)
    elif isinstance(stmt, While):
        yield from walk_stmts(stmt.body)
    elif isinstance(stmt, For):
        if stmt.init is not None:
            yield from walk_stmts(stmt.init)
        if stmt.step is not None:
            yield from walk_stmts(stmt.step)
        yield from walk_stmts(stmt.body)


def program_size(program: Program) -> int:
    """Rough AST size (number of statements), used by dataset statistics."""
    return sum(1 for f in program.functions for _ in walk_stmts(f.body))
