"""Tree-walking interpreter for the shared AST.

Used as the semantic oracle in tests: for any generated program,
``interpret(ast)``, the IR interpreter, and the binary VM must all print the
same lines.  Integer semantics are 64-bit two's-complement (like the IR and
the VM), division truncates toward zero (C semantics).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.lang import ast

_MASK = (1 << 64) - 1


def wrap64(x: int) -> int:
    """Wrap a Python int to signed 64-bit."""
    x &= _MASK
    return x - (1 << 64) if x >= (1 << 63) else x


def trunc_div(a: int, b: int) -> int:
    """C-style truncating division."""
    if b == 0:
        raise ZeroDivisionError("division by zero in interpreted program")
    q = abs(a) // abs(b)
    return -q if (a < 0) != (b < 0) else q


def trunc_mod(a: int, b: int) -> int:
    """C-style remainder (sign follows the dividend)."""
    return a - trunc_div(a, b) * b


class _Return(Exception):
    def __init__(self, value):
        self.value = value


class _Break(Exception):
    pass


class _Continue(Exception):
    pass


class InterpreterError(RuntimeError):
    """Raised on undefined variables, bad calls, or out-of-bounds access."""


class Interpreter:
    """Evaluate a :class:`~repro.lang.ast.Program` starting at ``main``."""

    def __init__(self, program: ast.Program, max_steps: int = 2_000_000):  # noqa: D107
        self.program = program
        self.output: List[int] = []
        self.max_steps = max_steps
        self._steps = 0

    # ------------------------------------------------------------- driver
    def run(self, entry: str = "main", args: Optional[list] = None) -> List[int]:
        """Execute ``entry`` and return the list of printed integers."""
        self.output = []
        self._steps = 0
        self.call_function(entry, args or [])
        return self.output

    def call_function(self, name: str, args: list):
        """Invoke a user function with evaluated arguments."""
        fn = self.program.function(name)
        if len(args) != len(fn.params):
            raise InterpreterError(
                f"{name} expects {len(fn.params)} args, got {len(args)}"
            )
        env: Dict[str, object] = {p.name: a for p, a in zip(fn.params, args)}
        try:
            self.exec_block(fn.body, env)
        except _Return as r:
            return r.value
        return None

    def _tick(self):
        self._steps += 1
        if self._steps > self.max_steps:
            raise InterpreterError("step budget exceeded (infinite loop?)")

    # --------------------------------------------------------- statements
    def exec_block(self, blk: ast.Block, env: Dict[str, object]):
        """Execute each statement in the block."""
        for s in blk.statements:
            self.exec_stmt(s, env)

    def exec_stmt(self, s: ast.Stmt, env: Dict[str, object]):
        """Execute one statement."""
        self._tick()
        if isinstance(s, ast.Block):
            self.exec_block(s, env)
        elif isinstance(s, ast.VarDecl):
            env[s.name] = self.eval(s.init, env) if s.init is not None else 0
        elif isinstance(s, ast.Assign):
            value = self.eval(s.value, env)
            if isinstance(s.target, ast.Var):
                if s.target.name not in env:
                    raise InterpreterError(f"assignment to undeclared {s.target.name}")
                env[s.target.name] = value
            elif isinstance(s.target, ast.Index):
                arr = self.eval(s.target.base, env)
                pos = self.eval(s.target.index, env)
                self._bounds(arr, pos)
                arr[pos] = value
            else:
                raise InterpreterError("bad assignment target")
        elif isinstance(s, ast.If):
            if self._truthy(self.eval(s.cond, env)):
                self.exec_block(s.then, env)
            elif s.otherwise is not None:
                self.exec_block(s.otherwise, env)
        elif isinstance(s, ast.While):
            while self._truthy(self.eval(s.cond, env)):
                self._tick()
                try:
                    self.exec_block(s.body, env)
                except _Break:
                    break
                except _Continue:
                    continue
        elif isinstance(s, ast.For):
            if s.init is not None:
                self.exec_stmt(s.init, env)
            while s.cond is None or self._truthy(self.eval(s.cond, env)):
                self._tick()
                try:
                    self.exec_block(s.body, env)
                except _Break:
                    break
                except _Continue:
                    pass
                if s.step is not None:
                    self.exec_stmt(s.step, env)
        elif isinstance(s, ast.Return):
            raise _Return(self.eval(s.value, env) if s.value is not None else None)
        elif isinstance(s, ast.Break):
            raise _Break()
        elif isinstance(s, ast.Continue):
            raise _Continue()
        elif isinstance(s, ast.Print):
            self.output.append(int(self.eval(s.value, env)))
        elif isinstance(s, ast.ExprStmt):
            self.eval(s.expr, env)
        else:
            raise InterpreterError(f"unknown statement {type(s).__name__}")

    # -------------------------------------------------------- expressions
    def eval(self, expr: ast.Expr, env: Dict[str, object]):
        """Evaluate an expression to an int or a list (array)."""
        self._tick()
        if isinstance(expr, ast.IntLit):
            return expr.value
        if isinstance(expr, ast.BoolLit):
            return 1 if expr.value else 0
        if isinstance(expr, ast.Var):
            if expr.name not in env:
                raise InterpreterError(f"undefined variable {expr.name}")
            return env[expr.name]
        if isinstance(expr, ast.BinOp):
            return self._binop(expr, env)
        if isinstance(expr, ast.UnaryOp):
            val = self.eval(expr.operand, env)
            if expr.op == "-":
                return wrap64(-val)
            if expr.op == "!":
                return 0 if self._truthy(val) else 1
            raise InterpreterError(f"unknown unary {expr.op}")
        if isinstance(expr, ast.Index):
            arr = self.eval(expr.base, env)
            pos = self.eval(expr.index, env)
            self._bounds(arr, pos)
            return arr[pos]
        if isinstance(expr, ast.NewArray):
            size = self.eval(expr.size, env)
            if size < 0:
                raise InterpreterError("negative array size")
            return [0] * size
        if isinstance(expr, ast.ArrayLit):
            return [self.eval(x, env) for x in expr.elements]
        if isinstance(expr, ast.Call):
            return self._call(expr, env)
        raise InterpreterError(f"unknown expression {type(expr).__name__}")

    def _binop(self, expr: ast.BinOp, env):
        op = expr.op
        if op == "&&":
            return 1 if (self._truthy(self.eval(expr.left, env)) and self._truthy(self.eval(expr.right, env))) else 0
        if op == "||":
            return 1 if (self._truthy(self.eval(expr.left, env)) or self._truthy(self.eval(expr.right, env))) else 0
        a = self.eval(expr.left, env)
        b = self.eval(expr.right, env)
        if op == "+":
            return wrap64(a + b)
        if op == "-":
            return wrap64(a - b)
        if op == "*":
            return wrap64(a * b)
        if op == "/":
            return wrap64(trunc_div(a, b))
        if op == "%":
            return wrap64(trunc_mod(a, b))
        if op == "<":
            return 1 if a < b else 0
        if op == "<=":
            return 1 if a <= b else 0
        if op == ">":
            return 1 if a > b else 0
        if op == ">=":
            return 1 if a >= b else 0
        if op == "==":
            return 1 if a == b else 0
        if op == "!=":
            return 1 if a != b else 0
        if op == "&":
            return wrap64(a & b)
        if op == "|":
            return wrap64(a | b)
        if op == "^":
            return wrap64(a ^ b)
        if op == "<<":
            return wrap64(a << (b & 63))
        if op == ">>":
            return wrap64(a >> (b & 63))
        raise InterpreterError(f"unknown operator {op}")

    def _call(self, expr: ast.Call, env):
        name = expr.name
        args = [self.eval(a, env) for a in expr.args]
        if name == "len":
            return len(args[0])
        if name == "min":
            return min(args)
        if name == "max":
            return max(args)
        if name == "abs":
            return abs(args[0])
        if name == "swap":
            raise InterpreterError("swap is lowered before interpretation")
        if name == "sort":
            arr = args[0]
            n = args[1] if len(args) > 1 else len(arr)
            arr[:n] = sorted(arr[:n])
            return None
        try:
            self.program.function(name)
        except KeyError:
            raise InterpreterError(f"call to unknown function {name}")
        return self.call_function(name, args)

    @staticmethod
    def _truthy(value) -> bool:
        return bool(value)

    @staticmethod
    def _bounds(arr, pos):
        if not isinstance(arr, list):
            raise InterpreterError("indexing a non-array value")
        if not (0 <= pos < len(arr)):
            raise InterpreterError(f"index {pos} out of bounds for length {len(arr)}")


def interpret(program: ast.Program, entry: str = "main") -> List[int]:
    """Convenience wrapper: run the program, return printed integers."""
    return Interpreter(program).run(entry)
