"""Solution generator: (task, variant, language) → source file → parsed AST.

This is the corpus factory.  A :class:`SolutionGenerator` instantiates task
templates into source *text* in each language, then runs the text back
through the real front-end parser — so everything downstream (IR lowering,
graph construction) consumes genuinely compiled programs, not in-memory
shortcuts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.lang import ast
from repro.lang.minic import MiniCRenderer, parse_minic
from repro.lang.minicpp import MiniCppRenderer, parse_minicpp
from repro.lang.minijava import MiniJavaRenderer, parse_minijava
from repro.lang.tasks import TASK_REGISTRY, Spec

LANGUAGES = ("c", "cpp", "java")

_RENDERERS = {
    "c": MiniCRenderer,
    "cpp": MiniCppRenderer,
    "java": MiniJavaRenderer,
}
_PARSERS = {
    "c": parse_minic,
    "cpp": parse_minicpp,
    "java": parse_minijava,
}


@dataclass
class SourceFile:
    """A generated solution: source text plus its front-end parse.

    ``program`` is the AST obtained by *parsing the rendered text back*,
    i.e. what a compiler front-end would actually see.
    """

    task: str
    variant: int
    language: str
    text: str
    program: ast.Program = field(repr=False)

    @property
    def identifier(self) -> str:
        """Stable id, e.g. ``sum_array/v3.java``."""
        return f"{self.task}/v{self.variant}.{self.language}"


class SolutionGenerator:
    """Deterministic factory for solution source files.

    Parameters
    ----------
    seed:
        Root seed; every (task, variant, language) triple derives its own
        stream, so corpora are reproducible and order-independent.
    independent:
        When True, each language renders a (task, variant) with its own
        names, styles and literal data — modelling CLCDSA's independently
        written solutions (shared algorithm, not shared literals).  When
        False (default) the renderings make identical choices and are
        semantically equivalent across languages.
    """

    def __init__(self, seed: int = 0, independent: bool = False):  # noqa: D107
        self.seed = seed
        self.independent = independent

    def generate(self, task: str, variant: int, language: str) -> SourceFile:
        """Instantiate one solution and round-trip it through the parser."""
        if language not in LANGUAGES:
            raise ValueError(f"unknown language {language!r}")
        if task not in TASK_REGISTRY:
            raise KeyError(f"unknown task {task!r}")
        spec = Spec(self.seed, task, variant, language, independent=self.independent)
        built = TASK_REGISTRY[task].build(spec)
        text = _RENDERERS[language]().render(built)
        program = _PARSERS[language](text)
        return SourceFile(task=task, variant=variant, language=language, text=text, program=program)

    def generate_many(
        self,
        tasks: Optional[List[str]] = None,
        variants: int = 4,
        languages: Optional[List[str]] = None,
    ) -> List[SourceFile]:
        """Generate a full corpus: every task × variant × language."""
        tasks = tasks if tasks is not None else sorted(TASK_REGISTRY)
        languages = languages if languages is not None else list(LANGUAGES)
        files: List[SourceFile] = []
        for task in tasks:
            for variant in range(variants):
                for language in languages:
                    files.append(self.generate(task, variant, language))
        return files

    def corpus_by_task(
        self, tasks: Optional[List[str]] = None, variants: int = 4,
        languages: Optional[List[str]] = None,
    ) -> Dict[str, List[SourceFile]]:
        """Like :meth:`generate_many`, grouped by task name."""
        grouped: Dict[str, List[SourceFile]] = {}
        for f in self.generate_many(tasks, variants, languages):
            grouped.setdefault(f.task, []).append(f)
        return grouped
