"""MiniCpp front-end: renderer (AST → C++ source) and parser (C++ → AST).

C++ solutions lean on the standard library: ``std::sort``, ``std::max``,
``std::min``, ``std::abs`` and ``cout``.  The parser canonicalizes those to
builtin :class:`~repro.lang.ast.Call` nodes; the Clang-like lowerer then
*instantiates template bodies into the module* (mangled ``_ZSt...``
functions), reproducing the paper's observation that "templates are also
compiled as a part of LLVM-IR".
"""

from __future__ import annotations

from typing import List, Optional

from repro.lang import ast
from repro.lang.lexer import strip_using_namespace, tokenize
from repro.lang.minic import MiniCParser, MiniCRenderer
from repro.lang.parser_base import ParseError

STD_BUILTINS = {"sort", "max", "min", "abs", "swap"}


class MiniCppRenderer(MiniCRenderer):
    """Render an AST as C++ source using standard-library idioms."""

    language = "cpp"

    def expr(self, e: ast.Expr) -> str:
        """Render an expression; builtins become ``std::`` calls."""
        if isinstance(e, ast.Call):
            if e.name == "sort":
                if len(e.args) != 2:
                    raise ValueError("sort(array, n) expected")
                a, n = self.expr(e.args[0]), self.expr(e.args[1])
                return f"std::sort({a}, {a} + {n})"
            if e.name in ("max", "min"):
                args = ", ".join(self.expr(a) for a in e.args)
                return f"std::{e.name}({args})"
            if e.name == "abs":
                return f"std::abs({self.expr(e.args[0])})"
            if e.name == "len":
                raise ValueError("MiniCpp has no len(); generator must pass lengths")
            args = ", ".join(self.expr(a) for a in e.args)
            return f"{e.name}({args})"
        return super().expr(e)

    def stmt(self, s: ast.Stmt, indent: int) -> List[str]:
        """Render a statement; printing uses iostream."""
        pad = "    " * indent
        if isinstance(s, ast.Print):
            return [pad + f"std::cout << {self.expr(s.value)} << std::endl;"]
        return super().stmt(s, indent)

    def render(self, program: ast.Program) -> str:
        """Render the translation unit with C++ headers."""
        self._used_helpers = set()
        chunks: List[str] = []
        for f in program.functions:
            params = ", ".join(
                (
                    f"int* {p.name}"
                    if isinstance(p.type, ast.ArrayType)
                    else f"{self.type_str(p.type)} {p.name}"
                )
                for p in f.params
            )
            header = f"{self.type_str(f.return_type)} {f.name}({params}) {{"
            body = self.block_lines(f.body, 1)
            chunks.append("\n".join([header] + body + ["}"]))
        if self._used_helpers:
            raise RuntimeError(
                "MiniCpp should use std:: builtins, not emitted helpers"
            )
        headers = "#include <iostream>\n#include <algorithm>\n#include <cstdlib>\n"
        return headers + "\n" + "\n\n".join(chunks) + "\n"


class MiniCppParser(MiniCParser):
    """Parser for MiniCpp: MiniC grammar plus ``std::`` calls and ``cout``."""

    language = "cpp"

    def parse_primary_hook(self) -> Optional[ast.Expr]:
        """Handle ``std::name(args)`` calls."""
        tok = self.peek()
        if tok.kind == "id" and tok.value == "std" and self.peek(1).value == "::":
            self.advance()  # std
            self.advance()  # ::
            name_tok = self.expect_kind("id")
            args = self.parse_call_args()
            return self._canonical_std_call(name_tok.value, args, name_tok.line)
        if tok.kind == "id" and tok.value in STD_BUILTINS and self.peek(1).value == "(":
            # `using namespace std;` style unqualified call
            self.advance()
            args = self.parse_call_args()
            return self._canonical_std_call(tok.value, args, tok.line)
        return None

    def _canonical_std_call(self, name: str, args: List[ast.Expr], line: int) -> ast.Expr:
        if name == "sort":
            if len(args) != 2:
                raise ParseError(f"[cpp] line {line}: std::sort expects 2 iterators")
            first, last = args
            if (
                isinstance(last, ast.BinOp)
                and last.op == "+"
                and isinstance(last.left, ast.Var)
                and isinstance(first, ast.Var)
                and last.left.name == first.name
            ):
                return ast.Call("sort", [first, last.right])
            raise ParseError(
                f"[cpp] line {line}: std::sort must be called as sort(a, a + n)"
            )
        if name in ("max", "min", "abs", "swap"):
            return ast.Call(name, args)
        raise ParseError(f"[cpp] line {line}: unknown std:: function {name!r}")

    def parse_print_hook(self) -> Optional[ast.Stmt]:
        """``cout << expr << endl;`` (optionally ``std::`` qualified)."""
        tok = self.peek()
        is_cout = tok.kind == "id" and tok.value == "cout"
        is_std_cout = (
            tok.kind == "id"
            and tok.value == "std"
            and self.peek(1).value == "::"
            and self.peek(2).value == "cout"
        )
        if not (is_cout or is_std_cout):
            return None
        if is_std_cout:
            self.advance()
            self.advance()
        self.advance()  # cout
        self.expect("<<")
        # Parse at precedence above `<<` so the stream operator is not
        # swallowed as a shift; renderer parenthesizes compound values.
        value = self.parse_expr(9)
        if self.accept("<<"):
            # swallow `endl` / `std::endl` / "\n"
            if self.peek().value == "std":
                self.advance()
                self.expect("::")
                self.expect("endl")
            elif self.peek().kind == "str":
                self.advance()
            else:
                self.expect("endl")
        self.expect(";")
        return ast.Print(value)


def parse_minicpp(source: str) -> ast.Program:
    """Parse MiniCpp source text into a Program."""
    tokens = strip_using_namespace(tokenize(source))
    return MiniCppParser(tokens).parse_program()
