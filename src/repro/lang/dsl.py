"""Shorthand constructors for building ASTs in the task library.

The task templates in :mod:`repro.lang.tasks` build the same program dozens
of times with small variations; these helpers keep them readable:

>>> body = block(decl("s", 0), forto("i", 0, v("n"), block(
...     assign("s", add(v("s"), idx("a", v("i")))))), ret(v("s")))
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Union

from repro.lang import ast

ExprLike = Union[ast.Expr, int, bool, str]


def e(x: ExprLike) -> ast.Expr:
    """Coerce ints/bools/strs into literal/var expression nodes."""
    if isinstance(x, ast.Expr):
        return x
    if isinstance(x, bool):
        return ast.BoolLit(x)
    if isinstance(x, int):
        return ast.IntLit(x)
    if isinstance(x, str):
        return ast.Var(x)
    raise TypeError(f"cannot coerce {type(x).__name__} to expression")


def v(name: str) -> ast.Var:
    """Variable reference."""
    return ast.Var(name)


def i(value: int) -> ast.IntLit:
    """Integer literal."""
    return ast.IntLit(value)


def binop(op: str, left: ExprLike, right: ExprLike) -> ast.BinOp:
    """Binary operation with coercion."""
    return ast.BinOp(op, e(left), e(right))


def add(a: ExprLike, b: ExprLike) -> ast.BinOp:
    """a + b"""
    return binop("+", a, b)


def sub(a: ExprLike, b: ExprLike) -> ast.BinOp:
    """a - b"""
    return binop("-", a, b)


def mul(a: ExprLike, b: ExprLike) -> ast.BinOp:
    """a * b"""
    return binop("*", a, b)


def div(a: ExprLike, b: ExprLike) -> ast.BinOp:
    """a / b (truncating)"""
    return binop("/", a, b)


def mod(a: ExprLike, b: ExprLike) -> ast.BinOp:
    """a % b"""
    return binop("%", a, b)


def lt(a: ExprLike, b: ExprLike) -> ast.BinOp:
    """a < b"""
    return binop("<", a, b)


def le(a: ExprLike, b: ExprLike) -> ast.BinOp:
    """a <= b"""
    return binop("<=", a, b)


def gt(a: ExprLike, b: ExprLike) -> ast.BinOp:
    """a > b"""
    return binop(">", a, b)


def ge(a: ExprLike, b: ExprLike) -> ast.BinOp:
    """a >= b"""
    return binop(">=", a, b)


def eq(a: ExprLike, b: ExprLike) -> ast.BinOp:
    """a == b"""
    return binop("==", a, b)


def ne(a: ExprLike, b: ExprLike) -> ast.BinOp:
    """a != b"""
    return binop("!=", a, b)


def land(a: ExprLike, b: ExprLike) -> ast.BinOp:
    """a && b"""
    return binop("&&", a, b)


def lor(a: ExprLike, b: ExprLike) -> ast.BinOp:
    """a || b"""
    return binop("||", a, b)


def neg(a: ExprLike) -> ast.UnaryOp:
    """-a"""
    return ast.UnaryOp("-", e(a))


def lnot(a: ExprLike) -> ast.UnaryOp:
    """!a"""
    return ast.UnaryOp("!", e(a))


def call(name: str, *args: ExprLike) -> ast.Call:
    """Function/builtin call."""
    return ast.Call(name, [e(a) for a in args])


def idx(base: ExprLike, index: ExprLike) -> ast.Index:
    """base[index]"""
    return ast.Index(e(base), e(index))


def block(*stmts: ast.Stmt) -> ast.Block:
    """Statement block."""
    return ast.Block(list(stmts))


def decl(name: str, init: Optional[ExprLike] = None, type_=None) -> ast.VarDecl:
    """``int name = init`` (type defaults to int)."""
    t = type_ if type_ is not None else ast.ScalarType("int")
    return ast.VarDecl(name, t, e(init) if init is not None else None)


def decl_array(name: str, init: ast.Expr) -> ast.VarDecl:
    """``int[] name = init`` where init is NewArray or ArrayLit."""
    return ast.VarDecl(name, ast.ArrayType(ast.ScalarType("int")), init)


def array_lit(values: Sequence[int]) -> ast.ArrayLit:
    """``{v0, v1, ...}``"""
    return ast.ArrayLit([ast.IntLit(int(x)) for x in values])


def new_array(size: ExprLike) -> ast.NewArray:
    """``new int[size]``"""
    return ast.NewArray(ast.ScalarType("int"), e(size))


def assign(target: ExprLike, value: ExprLike) -> ast.Assign:
    """``target = value`` (target is a var name or Index)."""
    return ast.Assign(e(target), e(value))


def if_(cond: ExprLike, then: ast.Block, otherwise: Optional[ast.Block] = None) -> ast.If:
    """if statement."""
    return ast.If(e(cond), then, otherwise)


def while_(cond: ExprLike, body: ast.Block) -> ast.While:
    """while loop."""
    return ast.While(e(cond), body)


def forto(var: str, start: ExprLike, stop: ExprLike, body: ast.Block, step: int = 1) -> ast.For:
    """``for (int var = start; var < stop; var += step)`` (or ``>`` when step<0)."""
    cmp_op = "<" if step > 0 else ">"
    return ast.For(
        decl(var, start),
        binop(cmp_op, v(var), stop),
        assign(var, add(v(var), step)),
        body,
    )


def for_down(var: str, start: ExprLike, stop: ExprLike, body: ast.Block) -> ast.For:
    """``for (int var = start; var >= stop; var--)``."""
    return ast.For(
        decl(var, start),
        ge(v(var), stop),
        assign(var, sub(v(var), 1)),
        body,
    )


def ret(value: Optional[ExprLike] = None) -> ast.Return:
    """return statement."""
    return ast.Return(e(value) if value is not None else None)


def pr(value: ExprLike) -> ast.Print:
    """print statement."""
    return ast.Print(e(value))


def expr_stmt(expr: ExprLike) -> ast.ExprStmt:
    """Expression statement."""
    return ast.ExprStmt(e(expr))


def param(name: str, array: bool = False) -> ast.Param:
    """Function parameter (int or int[])."""
    t = ast.ArrayType(ast.ScalarType("int")) if array else ast.ScalarType("int")
    return ast.Param(name, t)


def func(name: str, params: List[ast.Param], return_type: str, body: ast.Block) -> ast.Function:
    """Function definition; return_type is a scalar-type name."""
    return ast.Function(name, params, ast.ScalarType(return_type), body)
